//! # tommy — probabilistic fair ordering
//!
//! An umbrella crate re-exporting the whole Tommy workspace, a from-scratch
//! Rust reproduction of *"Beyond Lamport, Towards Probabilistic Fair
//! Ordering"* (HotNets '25).
//!
//! The workspace implements the paper's sequencer (the `likely-happened-
//! before` relation, tournament ordering, threshold batching, offline and
//! online sequencing), every substrate it needs (statistics/FFT, clock and
//! clock-synchronization models, a discrete-event network simulator, a wire
//! protocol, an async TCP deployment), the baselines it compares against
//! (FIFO, WaitsForOne, TrueTime), and the experiment/benchmark harness that
//! regenerates the paper's evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use tommy::prelude::*;
//!
//! // Three clients with different clock qualities share their offset
//! // distributions with the sequencer.
//! let mut sequencer = TommySequencer::new(SequencerConfig::default());
//! sequencer.register_client(ClientId(0), OffsetDistribution::gaussian(0.0, 1.0));
//! sequencer.register_client(ClientId(1), OffsetDistribution::gaussian(0.0, 5.0));
//! sequencer.register_client(ClientId(2), OffsetDistribution::gaussian(0.0, 40.0));
//!
//! // Three messages with noisy local timestamps.
//! let messages = vec![
//!     Message::new(MessageId(0), ClientId(0), 100.0),
//!     Message::new(MessageId(1), ClientId(1), 103.0),
//!     Message::new(MessageId(2), ClientId(2), 101.0),
//! ];
//!
//! let order = sequencer.sequence(&messages).unwrap();
//! // Batches are totally ordered; messages the sequencer cannot confidently
//! // separate share a batch.
//! assert!(order.num_batches() >= 1 && order.num_batches() <= 3);
//! assert_eq!(order.num_messages(), 3);
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios, the
//! `tommy-sim` binaries for the paper's experiments, and the repository's
//! `ARCHITECTURE.md` for the pipeline walk-through (incremental engines,
//! the invariants their counters guard, and the crate map).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tommy_clock as clock;
pub use tommy_core as core;
pub use tommy_metrics as metrics;
pub use tommy_netsim as netsim;
pub use tommy_sim as sim;
pub use tommy_stats as stats;
#[cfg(feature = "transport")]
pub use tommy_transport as transport;
pub use tommy_wire as wire;
pub use tommy_workload as workload;

/// The most commonly used items across the workspace.
pub mod prelude {
    pub use tommy_core::baselines::{FifoSequencer, TrueTimeSequencer, WfoSequencer};
    pub use tommy_core::batching::{Batch, FairOrder};
    pub use tommy_core::config::SequencerConfig;
    pub use tommy_core::message::{ClientId, Message, MessageId};
    pub use tommy_core::registry::DistributionRegistry;
    pub use tommy_core::sequencer::offline::TommySequencer;
    pub use tommy_core::sequencer::online::OnlineSequencer;
    pub use tommy_metrics::ras::{rank_agreement_score, RasScore};
    pub use tommy_stats::distribution::{Distribution, OffsetDistribution};
    pub use tommy_stats::gaussian::Gaussian;
}
