//! Messages, clients and timestamps.
//!
//! A message carries the local timestamp its client attached at generation
//! time (§3.1: "Each client submits a message to the sequencer and attaches
//! the current timestamp from its local clock"). For evaluation purposes a
//! message may also carry its ground-truth generation time — the timestamp an
//! omniscient observer (Definition 1) would have assigned — which the
//! sequencer never looks at but the metrics crate does.

/// Identifier of a client (a participant submitting messages).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClientId(pub u32);

impl std::fmt::Display for ClientId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "client{}", self.0)
    }
}

/// Identifier of a message, unique within one experiment / sequencer run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MessageId(pub u64);

impl std::fmt::Display for MessageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "msg{}", self.0)
    }
}

/// A timestamped message as seen by the sequencer.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Message {
    /// Unique message identifier.
    pub id: MessageId,
    /// The client that generated the message.
    pub client: ClientId,
    /// The local timestamp the client attached (`T_i` in the paper).
    pub timestamp: f64,
    /// Ground-truth generation time in the sequencer's frame (`T*_i`), if
    /// known. Only simulations know this; the sequencer itself never uses it.
    pub true_time: Option<f64>,
}

impl Message {
    /// Create a message without ground truth (what a real deployment sees).
    pub fn new(id: MessageId, client: ClientId, timestamp: f64) -> Self {
        assert!(timestamp.is_finite(), "timestamps must be finite");
        Message {
            id,
            client,
            timestamp,
            true_time: None,
        }
    }

    /// Create a message with ground truth attached (for simulations).
    pub fn with_true_time(id: MessageId, client: ClientId, timestamp: f64, true_time: f64) -> Self {
        assert!(timestamp.is_finite(), "timestamps must be finite");
        assert!(true_time.is_finite(), "true time must be finite");
        Message {
            id,
            client,
            timestamp,
            true_time: Some(true_time),
        }
    }

    /// The realized clock offset of this message (`timestamp − true_time`),
    /// if the ground truth is known.
    pub fn realized_offset(&self) -> Option<f64> {
        self.true_time.map(|t| self.timestamp - t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(ClientId(3).to_string(), "client3");
        assert_eq!(MessageId(42).to_string(), "msg42");
    }

    #[test]
    fn message_without_ground_truth() {
        let m = Message::new(MessageId(1), ClientId(2), 10.5);
        assert_eq!(m.true_time, None);
        assert_eq!(m.realized_offset(), None);
    }

    #[test]
    fn realized_offset_is_timestamp_minus_truth() {
        let m = Message::with_true_time(MessageId(1), ClientId(2), 105.0, 100.0);
        assert_eq!(m.realized_offset(), Some(5.0));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_timestamp_rejected() {
        Message::new(MessageId(1), ClientId(1), f64::NAN);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(MessageId(1) < MessageId(2));
        assert!(ClientId(0) < ClientId(1));
    }
}
