//! Shared helpers for dense square buffers with geometric stride growth.
//!
//! Both the [`PrecedenceMatrix`](crate::precedence::PrecedenceMatrix) (f64
//! probabilities) and the
//! [`IncrementalTournament`](crate::tournament::IncrementalTournament)
//! (edge-orientation bools) store an `n × n` grid inside a larger
//! `stride × stride` buffer so incremental inserts amortize to O(n), and
//! both compact survivors in place on batch removal. The two structures must
//! grow and compact identically to keep their indices in lockstep, so the
//! logic lives here once.

/// Grow `buf`/`stride` so the square grid can hold at least `cap` rows,
/// doubling the stride (geometric growth: the O(n²) relocation amortizes to
/// O(n) per insert) and relocating the live `n × n` prefix. No-op when the
/// current stride already suffices.
pub(crate) fn grow_square<T: Copy>(
    buf: &mut Vec<T>,
    stride: &mut usize,
    n: usize,
    cap: usize,
    fill: T,
) {
    if cap <= *stride {
        return;
    }
    let mut new_stride = (*stride).max(4);
    while new_stride < cap {
        new_stride *= 2;
    }
    let mut grown = vec![fill; new_stride * new_stride];
    for i in 0..n {
        grown[i * new_stride..i * new_stride + n]
            .copy_from_slice(&buf[i * *stride..i * *stride + n]);
    }
    *buf = grown;
    *stride = new_stride;
}

/// Compact the rows/columns `kept` (ascending pre-removal indices) of the
/// `stride`-strided grid into its top-left corner, in place.
///
/// Safe without a scratch buffer: the destination `(a, b)` satisfies
/// `a <= kept[a]` and `b <= kept[b]`, so every write lands at an index no
/// larger than its source — and strictly smaller than every source a later
/// iteration still reads.
pub(crate) fn compact_square<T: Copy>(buf: &mut [T], stride: usize, kept: &[usize]) {
    for (a, &i) in kept.iter().enumerate() {
        for (b, &j) in kept.iter().enumerate() {
            buf[a * stride + b] = buf[i * stride + j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grow_preserves_prefix_and_doubles() {
        let mut buf = vec![0u8; 16];
        let mut stride = 4usize;
        for i in 0..3 {
            for j in 0..3 {
                buf[i * stride + j] = (10 * i + j) as u8;
            }
        }
        grow_square(&mut buf, &mut stride, 3, 5, 255);
        assert_eq!(stride, 8);
        assert_eq!(buf.len(), 64);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(buf[i * stride + j], (10 * i + j) as u8);
            }
        }
        assert_eq!(buf[3 * stride + 3], 255, "new cells take the fill value");
        // Already-large strides are left alone.
        let before = buf.clone();
        grow_square(&mut buf, &mut stride, 3, 8, 255);
        assert_eq!(stride, 8);
        assert_eq!(buf, before);
    }

    #[test]
    fn compact_moves_survivors_in_place() {
        let stride = 4usize;
        let mut buf: Vec<u8> = (0..16).collect();
        // Keep rows/cols 1 and 3.
        compact_square(&mut buf, stride, &[1, 3]);
        assert_eq!(buf[0], 5); // (1,1)
        assert_eq!(buf[1], 7); // (1,3)
        assert_eq!(buf[stride], 13); // (3,1)
        assert_eq!(buf[stride + 1], 15); // (3,3)
    }
}
