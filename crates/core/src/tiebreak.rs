//! Extending the fair partial order to a fair total order.
//!
//! §5 of the paper ("Extension to Fair Total Order"): some applications need
//! individual messages, not batches. "Arbitrarily breaking ties on messages
//! of a batch would violate fairness as some clients may always be preferred
//! over others. A random mechanism for breaking ties might be of interest as
//! it would lead to stochastic fairness over a sufficiently long duration."
//! This module implements that random tie-breaking plus the bookkeeping
//! needed to *verify* the stochastic-fairness claim across many rounds.

use crate::batching::FairOrder;
use crate::message::{ClientId, MessageId};
use rand::Rng;
use rand::RngCore;
use std::collections::HashMap;

/// Produce a total order from a fair partial order by shuffling messages
/// uniformly at random within each batch.
pub fn break_ties_randomly(order: &FairOrder, rng: &mut dyn RngCore) -> Vec<MessageId> {
    let mut total = Vec::with_capacity(order.num_messages());
    for batch in order.batches() {
        let mut members = batch.messages.clone();
        // Fisher–Yates shuffle.
        for i in (1..members.len()).rev() {
            let j = rng.random_range(0..=i);
            members.swap(i, j);
        }
        total.extend(members);
    }
    total
}

/// Produce a total order by breaking ties deterministically on message id —
/// the *unfair* strawman the paper warns about, kept for comparison.
pub fn break_ties_by_id(order: &FairOrder) -> Vec<MessageId> {
    let mut total = Vec::with_capacity(order.num_messages());
    for batch in order.batches() {
        let mut members = batch.messages.clone();
        members.sort();
        total.extend(members);
    }
    total
}

/// Tracks, across many sequencing rounds, how favourably each client's
/// messages are placed *within* their batches. A mean relative position of
/// 0.5 for every client means no client is systematically advantaged by the
/// tie-breaking scheme — the stochastic-fairness property.
#[derive(Debug, Clone, Default)]
pub struct AdvantageTracker {
    position_sum: HashMap<ClientId, f64>,
    count: HashMap<ClientId, u64>,
}

impl AdvantageTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        AdvantageTracker::default()
    }

    /// Record one round: `total_order` is the tie-broken order, `order` the
    /// batched partial order it came from, and `client_of` maps messages to
    /// their clients.
    pub fn record_round(
        &mut self,
        order: &FairOrder,
        total_order: &[MessageId],
        client_of: &HashMap<MessageId, ClientId>,
    ) {
        // Position of every message within the flattened total order.
        let pos: HashMap<MessageId, usize> = total_order
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        for batch in order.batches() {
            let n = batch.len();
            if n < 2 {
                continue; // singleton batches carry no tie-breaking signal
            }
            // Rank the batch members by their position in the total order.
            let mut members: Vec<MessageId> = batch.messages.clone();
            members.sort_by_key(|id| pos.get(id).copied().unwrap_or(usize::MAX));
            for (rank_in_batch, id) in members.iter().enumerate() {
                let client = match client_of.get(id) {
                    Some(c) => *c,
                    None => continue,
                };
                let relative = rank_in_batch as f64 / (n - 1) as f64;
                *self.position_sum.entry(client).or_insert(0.0) += relative;
                *self.count.entry(client).or_insert(0) += 1;
            }
        }
    }

    /// The mean relative position (0 = always first in its batch, 1 = always
    /// last) of a client's messages, if any were observed in multi-message
    /// batches.
    pub fn mean_position(&self, client: ClientId) -> Option<f64> {
        let count = *self.count.get(&client)?;
        if count == 0 {
            return None;
        }
        Some(self.position_sum[&client] / count as f64)
    }

    /// The largest deviation from 0.5 across all observed clients (0 when no
    /// data). Small values mean the tie-breaking is fair in the long run.
    pub fn max_bias(&self) -> f64 {
        self.count
            .keys()
            .filter_map(|&c| self.mean_position(c))
            .map(|p| (p - 0.5).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_batch_order() -> FairOrder {
        FairOrder::from_groups(vec![
            vec![MessageId(0)],
            vec![MessageId(1), MessageId(2), MessageId(3)],
        ])
    }

    #[test]
    fn tie_breaking_preserves_batch_boundaries() {
        let order = two_batch_order();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let total = break_ties_randomly(&order, &mut rng);
            assert_eq!(total.len(), 4);
            assert_eq!(total[0], MessageId(0)); // batch 0 always first
            let mut tail: Vec<u64> = total[1..].iter().map(|m| m.0).collect();
            tail.sort_unstable();
            assert_eq!(tail, vec![1, 2, 3]);
        }
    }

    #[test]
    fn deterministic_tie_breaking_is_stable() {
        let order = two_batch_order();
        let a = break_ties_by_id(&order);
        let b = break_ties_by_id(&order);
        assert_eq!(a, b);
        assert_eq!(a, vec![MessageId(0), MessageId(1), MessageId(2), MessageId(3)]);
    }

    #[test]
    fn random_tie_breaking_is_unbiased_over_many_rounds() {
        let order = two_batch_order();
        let client_of: HashMap<MessageId, ClientId> = [
            (MessageId(0), ClientId(0)),
            (MessageId(1), ClientId(1)),
            (MessageId(2), ClientId(2)),
            (MessageId(3), ClientId(3)),
        ]
        .into_iter()
        .collect();
        let mut tracker = AdvantageTracker::new();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..3000 {
            let total = break_ties_randomly(&order, &mut rng);
            tracker.record_round(&order, &total, &client_of);
        }
        // Every client in the 3-message batch should average close to 0.5.
        for c in [1u32, 2, 3] {
            let p = tracker.mean_position(ClientId(c)).unwrap();
            assert!((p - 0.5).abs() < 0.05, "client {c} mean position {p}");
        }
        assert!(tracker.max_bias() < 0.05);
        // The singleton-batch client contributes no signal.
        assert_eq!(tracker.mean_position(ClientId(0)), None);
    }

    #[test]
    fn deterministic_tie_breaking_is_systematically_biased() {
        let order = two_batch_order();
        let client_of: HashMap<MessageId, ClientId> = [
            (MessageId(1), ClientId(1)),
            (MessageId(2), ClientId(2)),
            (MessageId(3), ClientId(3)),
        ]
        .into_iter()
        .collect();
        let mut tracker = AdvantageTracker::new();
        for _ in 0..100 {
            let total = break_ties_by_id(&order);
            tracker.record_round(&order, &total, &client_of);
        }
        // Client 1's messages always come first within the batch: maximal bias.
        assert_eq!(tracker.mean_position(ClientId(1)), Some(0.0));
        assert_eq!(tracker.mean_position(ClientId(3)), Some(1.0));
        assert!(tracker.max_bias() > 0.49);
    }

    #[test]
    fn empty_order_yields_empty_total_order() {
        let order = FairOrder::default();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(break_ties_randomly(&order, &mut rng).is_empty());
        assert!(break_ties_by_id(&order).is_empty());
    }
}
