//! The tournament graph induced by pairwise preceding probabilities.
//!
//! §3.4 of the paper: "we model each message as a node in a graph, where
//! `--p-->` denotes a directed edge with weight p. In our construction there
//! will be two edges between each pair of nodes; for every such pair, we
//! discard the edge with the lower weight." The result is a *tournament*.
//! If the underlying probabilities are transitive (guaranteed for Gaussian
//! offsets, Appendix A), the tournament is a transitive tournament with a
//! unique Hamiltonian path; otherwise it contains cycles which are broken by
//! the heuristics in [`crate::graph::fas`].
//!
//! Two representations are provided:
//!
//! * [`Tournament`] — built in one shot from a full [`PrecedenceMatrix`]
//!   (the offline §3 pipeline).
//! * [`IncrementalTournament`] — maintained edge-by-edge alongside an
//!   incrementally updated matrix ([`PrecedenceMatrix::insert`] /
//!   [`PrecedenceMatrix::remove_batch`]), with the linear order repaired in
//!   place: a new arrival is slotted into the maintained condensation (one
//!   scan over its per-SCC blocks), and an intransitivity cycle — never
//!   produced by Gaussian offsets (Appendix A) — re-solves only the one
//!   component the arrival strongly connects (the incremental FAS engine).
//!   This is what makes the online arrival path O(n) instead of O(n²).

use crate::config::SequencerConfig;
use crate::graph::fas::{greedy_order, stochastic_order};
use crate::graph::tarjan::strongly_connected_components;
use crate::graph::toposort::{topological_sort, TopoResult};
use crate::precedence::PrecedenceMatrix;
use rand::RngCore;

/// A tournament over the messages of a [`PrecedenceMatrix`].
#[derive(Debug, Clone)]
pub struct Tournament {
    n: usize,
    /// `adj[i]` lists the indices j such that the kept edge is `i -> j`.
    adj: Vec<Vec<usize>>,
}

impl Tournament {
    /// Build the tournament from a precedence matrix: for each pair keep the
    /// direction with the larger probability (ties, `p = 0.5` exactly, are
    /// broken towards the smaller index so the result is still a tournament).
    pub fn from_matrix(matrix: &PrecedenceMatrix) -> Self {
        let n = matrix.len();
        let mut adj = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                if matrix.prob(i, j) >= matrix.prob(j, i) {
                    adj[i].push(j);
                } else {
                    adj[j].push(i);
                }
            }
        }
        Tournament { n, adj }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the tournament has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Out-neighbours of node `i`.
    pub fn successors(&self, i: usize) -> &[usize] {
        &self.adj[i]
    }

    /// Whether the kept edge between `i` and `j` points `i -> j`.
    pub fn has_edge(&self, i: usize, j: usize) -> bool {
        self.adj[i].contains(&j)
    }

    /// Whether the tournament is transitive (equivalently: acyclic).
    ///
    /// Uses the score-sequence characterization: a tournament on `n` nodes is
    /// transitive iff its out-degrees are exactly `{0, 1, …, n−1}`.
    pub fn is_transitive(&self) -> bool {
        let mut degrees: Vec<usize> = self.adj.iter().map(|a| a.len()).collect();
        degrees.sort_unstable();
        degrees.iter().enumerate().all(|(i, &d)| d == i)
    }

    /// Whether the tournament contains at least one cycle.
    pub fn has_cycle(&self) -> bool {
        !self.is_transitive()
    }

    /// The unique topological order if the tournament is transitive.
    pub fn hamiltonian_path(&self) -> Option<Vec<usize>> {
        match topological_sort(&self.adj) {
            TopoResult::Unique(order) => Some(order),
            TopoResult::Multiple(order) if self.n <= 1 => Some(order),
            _ => None,
        }
    }

    /// The strongly connected components, in topological order of the
    /// condensation (earliest component first).
    pub fn components_in_order(&self) -> Vec<Vec<usize>> {
        let mut comps = strongly_connected_components(&self.adj);
        // Tarjan returns reverse topological order.
        comps.reverse();
        comps
    }

    /// The per-component linear orders of the tournament, earliest component
    /// first (the condensation of a tournament is a total order of its SCCs).
    ///
    /// Each component's members are canonicalized ascending before the cycle
    /// heuristic runs, so a component's order is a pure function of its
    /// member *set* and the pairwise probabilities — the property that lets
    /// the incremental engine ([`IncrementalTournament`]) cache per-component
    /// orders across arrivals and stay bit-identical to this one-shot path.
    ///
    /// * Transitive tournament → one singleton component per node, in
    ///   Hamiltonian-path order.
    /// * Cyclic component → ordered by the greedy feedback-arc-set
    ///   heuristic, or by the stochastic heuristic when
    ///   [`SequencerConfig::stochastic_cycle_breaking`] is set (in which case
    ///   `rng` must be provided).
    pub fn ordered_components(
        &self,
        matrix: &PrecedenceMatrix,
        config: &SequencerConfig,
        mut rng: Option<&mut dyn RngCore>,
    ) -> Vec<Vec<usize>> {
        if let Some(path) = self.hamiltonian_path() {
            return path.into_iter().map(|v| vec![v]).collect();
        }
        let prob = |a: usize, b: usize| matrix.prob(a, b);
        let mut components = Vec::new();
        for mut component in self.components_in_order() {
            if component.len() == 1 {
                components.push(component);
                continue;
            }
            component.sort_unstable();
            let ordered = if config.stochastic_cycle_breaking {
                let rng = rng
                    .as_deref_mut()
                    .expect("stochastic cycle breaking requires an RNG");
                stochastic_order(&component, &prob, rng)
            } else {
                greedy_order(&component, &prob)
            };
            components.push(ordered);
        }
        components
    }

    /// Extract a complete linear order of all messages (§3.4): the
    /// concatenation of [`ordered_components`](Self::ordered_components).
    pub fn linear_order(
        &self,
        matrix: &PrecedenceMatrix,
        config: &SequencerConfig,
        rng: Option<&mut dyn RngCore>,
    ) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.n);
        for component in self.ordered_components(matrix, config, rng) {
            order.extend(component);
        }
        order
    }
}

/// A tournament (and its linear order) maintained *incrementally* alongside
/// an incrementally updated [`PrecedenceMatrix`].
///
/// Instead of rebuilding [`Tournament::from_matrix`] + `linear_order` on
/// every change — O(n²) comparisons per arrival — this structure:
///
/// * orients only the `n` new edges when a message is inserted
///   ([`insert_last`](Self::insert_last)), locating the arrival's place in
///   the maintained order with one O(n) scan over the condensation blocks;
/// * drops rows/columns in place when a batch is emitted
///   ([`remove_indices`](Self::remove_indices)) — untouched components keep
///   their cached order (the induced sub-tournament of each surviving SCC is
///   unchanged), so only partially-removed cyclic components are re-solved;
/// * handles intransitivity cycles with the **incremental FAS engine**: the
///   maintained order is segmented into per-SCC `blocks` (the condensation
///   of a tournament is always a total order of its SCCs), and an arrival
///   that closes a cycle strongly connects exactly one contiguous span of
///   blocks — that merged component alone is re-solved by the bounded
///   local-repair pass ([`crate::graph::fas::repair_component`]), while
///   every other block's cached order carries over. A cyclic arrival is
///   therefore no longer an automatic full rebuild;
/// * falls back to a full recompute (counted by
///   [`full_rebuilds`](Self::full_rebuilds)) only on wholesale invalidation
///   ([`rebuild`](Self::rebuild), e.g. a client re-registration) or when
///   the incremental FAS engine is disabled
///   ([`set_incremental_fas`](Self::set_incremental_fas), the measured
///   baseline of the `fas_stress` bench).
///
/// The maintained state is always element-wise identical to what
/// `Tournament::from_matrix(matrix)` would build over the same matrix, and
/// [`linear_order`](Self::linear_order) returns exactly the order the
/// one-shot pipeline would: both paths order each SCC's canonically-sorted
/// member set with the same deterministic heuristic, so cached per-component
/// orders and recomputed ones are bit-identical (property-tested below and
/// in `crate::sequencer::core`).
#[derive(Debug, Clone)]
pub struct IncrementalTournament {
    n: usize,
    /// Row stride of `forward` (grown geometrically, like the matrix).
    stride: usize,
    /// `forward[i * stride + j]` is `true` iff the kept edge points `i -> j`
    /// (valid for `i != j`, both `< n`).
    forward: Vec<bool>,
    /// The maintained linear order (valid when `!order_dirty`).
    order: Vec<usize>,
    /// Lengths of the consecutive condensation blocks of `order` (valid when
    /// `!order_dirty`): `order` is the concatenation of per-SCC orders,
    /// earliest component first, and `blocks` records where each SCC starts
    /// and ends. All-singleton blocks ⇔ transitive.
    blocks: Vec<usize>,
    /// Number of blocks with more than one member (intransitivity cycles).
    cyclic_blocks: usize,
    /// Whether the tournament was transitive at the last point it was known
    /// (kept exactly up to date while maintenance stays incremental).
    transitive: bool,
    /// Set when the order can no longer be repaired incrementally (a
    /// wholesale rebuild, or a cycle event with the incremental FAS engine
    /// disabled); cleared by the next [`linear_order`](Self::linear_order)
    /// recompute.
    order_dirty: bool,
    /// Whether cycle events are handled by SCC-scoped local repairs (the
    /// default) or by invalidating the whole order (the fallback baseline).
    incremental_fas: bool,
    comparisons: u64,
    full_rebuilds: u64,
    local_repairs: u64,
}

impl Default for IncrementalTournament {
    fn default() -> Self {
        IncrementalTournament::new()
    }
}

impl IncrementalTournament {
    /// An empty tournament, ready to track an empty matrix, with the
    /// incremental FAS engine enabled.
    pub fn new() -> Self {
        IncrementalTournament {
            n: 0,
            stride: 0,
            forward: Vec::new(),
            order: Vec::new(),
            blocks: Vec::new(),
            cyclic_blocks: 0,
            transitive: true,
            order_dirty: false,
            incremental_fas: true,
            comparisons: 0,
            full_rebuilds: 0,
            local_repairs: 0,
        }
    }

    /// Enable or disable the incremental FAS engine. When disabled, every
    /// cycle event (a cyclic arrival, or any mutation while the maintained
    /// order is cyclic) invalidates the whole order, recomputed one-shot by
    /// the next [`linear_order`](Self::linear_order) — the historical
    /// behaviour, kept as the correctness fallback and measured baseline.
    ///
    /// Callers using [`SequencerConfig::stochastic_cycle_breaking`] must
    /// disable the engine (stochastic per-component orders are not
    /// cacheable); [`SequencingCore`](crate::sequencer::core::SequencingCore)
    /// does this automatically.
    pub fn set_incremental_fas(&mut self, enabled: bool) {
        self.incremental_fas = enabled;
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the tournament has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether the kept edge between `i` and `j` points `i -> j`.
    pub fn has_edge(&self, i: usize, j: usize) -> bool {
        debug_assert!(i != j && i < self.n && j < self.n);
        self.forward[i * self.stride + j]
    }

    /// Total pairwise probability comparisons performed so far (edge
    /// orientations decided). The online arrival path's O(n) guarantee is
    /// asserted against this counter: one arrival into a pending set of size
    /// `n` decides exactly `n` orientations.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Number of full order recomputations performed. Stays **zero** on
    /// acyclic (e.g. Gaussian, Appendix A) workloads, no matter how many
    /// inserts and removals happen — and, with the incremental FAS engine
    /// enabled (the default), on *cyclic* workloads too: cycle events are
    /// absorbed by SCC-scoped [`local_repairs`](Self::local_repairs)
    /// instead.
    pub fn full_rebuilds(&self) -> u64 {
        self.full_rebuilds
    }

    /// Number of SCC-scoped local repairs the incremental FAS engine
    /// performed: one per component merged by a cyclic arrival, one per
    /// cyclic component re-solved after a partial removal. Stays **zero** on
    /// acyclic (Gaussian) workloads and on the fallback path.
    pub fn local_repairs(&self) -> u64 {
        self.local_repairs
    }

    /// Whether the tournament is currently known to be transitive. Exact
    /// while maintenance stays incremental (the block structure tracks every
    /// merge and split); after a wholesale invalidation it reflects the last
    /// recompute (call [`linear_order`](Self::linear_order) to refresh).
    pub fn is_transitive(&self) -> bool {
        self.transitive
    }

    fn grow_to(&mut self, cap: usize) {
        crate::grid::grow_square(&mut self.forward, &mut self.stride, self.n, cap, false);
    }

    fn set_edge(&mut self, i: usize, j: usize, towards_j: bool) {
        self.forward[i * self.stride + j] = towards_j;
        self.forward[j * self.stride + i] = !towards_j;
    }

    /// Incorporate the message that `matrix` just gained via
    /// [`PrecedenceMatrix::insert`] (it is the matrix's last index).
    ///
    /// Orients the `n` new edges with the same rule as
    /// [`Tournament::from_matrix`] (ties towards the smaller index), then
    /// scans the maintained condensation blocks once to locate the span the
    /// arrival touches:
    ///
    /// * If the arrival slots cleanly *between* two blocks (its predecessors
    ///   are a prefix of the block sequence), it becomes a new singleton
    ///   block and the insertion position is returned — the hook the
    ///   incremental batch-boundary engine
    ///   ([`IncrementalFairOrder`](crate::batching::IncrementalFairOrder))
    ///   uses to stay aligned with the maintained order. This is the only
    ///   path a transitive (Gaussian) stream ever takes, and in a cyclic
    ///   state it is also how arrivals that don't touch a cycle are
    ///   absorbed — without any FAS work.
    /// * Otherwise the arrival strongly connects a contiguous span of blocks
    ///   (exact for tournaments: everything between the first block it
    ///   beats into and the last block that beats it joins one SCC). With
    ///   the incremental FAS engine enabled that merged component alone is
    ///   re-solved in place and `None` is returned (the order changed beyond
    ///   a point insertion); with it disabled the whole order is invalidated
    ///   and recomputed lazily by the next
    ///   [`linear_order`](Self::linear_order) call.
    ///
    /// # Panics
    ///
    /// Panics if `matrix.len() != self.len() + 1` — the tournament must be
    /// updated in lockstep with the matrix.
    pub fn insert_last(&mut self, matrix: &PrecedenceMatrix) -> Option<usize> {
        let k = self.n;
        assert_eq!(
            matrix.len(),
            k + 1,
            "insert_last must follow PrecedenceMatrix::insert"
        );
        self.grow_to(k + 1);
        self.n = k + 1;
        for j in 0..k {
            // Pair (j, k) with j < k: j -> k iff prob(j, k) >= prob(k, j),
            // exactly the from_matrix orientation rule.
            let towards_new = matrix.prob(j, k) >= matrix.prob(k, j);
            self.set_edge(j, k, towards_new);
        }
        self.comparisons += k as u64;

        if self.order_dirty {
            return None; // already awaiting a recompute
        }
        if !self.transitive && !self.incremental_fas {
            // Fallback baseline: a maintained cyclic order cannot absorb an
            // arrival in place (the FAS heuristics are not prefix-stable).
            self.order_dirty = true;
            return None;
        }
        // One scan over the blocks: `first` is the first block containing a
        // member the arrival beats (everything before it beats the arrival),
        // `last` the last block containing a member that beats the arrival
        // (everything after it loses to the arrival).
        let mut first_block = self.blocks.len();
        let mut first_pos = self.order.len();
        let mut last_block = None;
        let mut last_end = 0usize;
        let mut pos = 0usize;
        for (b, &len) in self.blocks.iter().enumerate() {
            let members = &self.order[pos..pos + len];
            if first_block == self.blocks.len()
                && members.iter().any(|&m| self.forward[k * self.stride + m])
            {
                first_block = b;
                first_pos = pos;
            }
            if members.iter().any(|&m| self.forward[m * self.stride + k]) {
                last_block = Some(b);
                last_end = pos + len;
            }
            pos += len;
        }
        match last_block {
            Some(lb) if lb >= first_block => {
                // The arrival closes a cycle through blocks first..=lb.
                if !self.incremental_fas {
                    self.transitive = false;
                    self.order_dirty = true;
                    return None;
                }
                self.merge_span(first_block, lb, first_pos, last_end, matrix);
                None
            }
            _ => {
                // Clean insertion: the arrival is its own singleton SCC
                // between blocks. No FAS work, cyclic state or not.
                self.blocks.insert(first_block, 1);
                self.order.insert(first_pos, k);
                Some(first_pos)
            }
        }
    }

    /// Merge blocks `first_block..=last_block` (spanning order positions
    /// `first_pos..last_end`) with the just-inserted node into one SCC and
    /// re-solve that component alone (the bounded local-repair pass).
    fn merge_span(
        &mut self,
        first_block: usize,
        last_block: usize,
        first_pos: usize,
        last_end: usize,
        matrix: &PrecedenceMatrix,
    ) {
        let k = self.n - 1;
        let mut members: Vec<usize> = self.order[first_pos..last_end].to_vec();
        members.push(k);
        members.sort_unstable();
        let prob = |a: usize, b: usize| matrix.prob(a, b);
        let repaired = crate::graph::fas::repair_component(&members, &prob);
        let merged_cyclic = self.blocks[first_block..=last_block]
            .iter()
            .filter(|&&len| len > 1)
            .count();
        self.order.splice(first_pos..last_end, repaired);
        self.blocks
            .splice(first_block..=last_block, std::iter::once(members.len()));
        self.cyclic_blocks = self.cyclic_blocks - merged_cyclic + 1;
        self.transitive = false;
        self.local_repairs += 1;
    }

    /// Drop the nodes at (pre-removal) indices `removed`, compacting the
    /// survivors exactly like [`PrecedenceMatrix::remove_batch`] does (the
    /// relative order of survivors is preserved, so edge orientations carry
    /// over unchanged). Call with the indices the matrix reported *before*
    /// its own removal; `matrix` is the *post-removal* matrix (only read
    /// when a partially-removed cyclic component must be re-solved).
    ///
    /// Removal can only *split* SCCs, never merge them, and each surviving
    /// component stays in its condensation slot — so untouched blocks keep
    /// their cached order, fully-removed blocks vanish, and only a cyclic
    /// block that lost some (but not all) members is re-solved: its
    /// survivors' sub-condensation is recomputed locally and each cyclic
    /// sub-component repaired in place.
    ///
    /// Returns `true` when the maintained linear order survived the removal
    /// as a pure subsequence restriction (no block needed re-solving) and
    /// `false` when it was reordered or invalidated — the signal the
    /// incremental batch-boundary engine follows in lockstep.
    pub fn remove_indices(&mut self, removed: &[usize], matrix: &PrecedenceMatrix) -> bool {
        if removed.is_empty() {
            return !self.order_dirty;
        }
        let n = self.n;
        let mut keep = vec![true; n];
        for &i in removed {
            assert!(i < n, "removed index {i} out of range for {n} nodes");
            keep[i] = false;
        }
        let kept: Vec<usize> = (0..n).filter(|&i| keep[i]).collect();
        if kept.len() == n {
            return !self.order_dirty;
        }
        let mut new_index = vec![usize::MAX; n];
        for (a, &i) in kept.iter().enumerate() {
            new_index[i] = a;
        }
        crate::grid::compact_square(&mut self.forward, self.stride, &kept);
        self.n = kept.len();
        if self.order_dirty {
            return false;
        }
        if self.transitive {
            // The induced sub-tournament of a transitive tournament is
            // transitive and its unique Hamiltonian path is the surviving
            // subsequence.
            self.order.retain(|&v| keep[v]);
            for v in &mut self.order {
                *v = new_index[*v];
            }
            self.blocks = vec![1; self.n];
            return true;
        }
        if !self.incremental_fas {
            // Fallback baseline: a FAS-repaired order is not
            // restriction-stable; recompute wholesale.
            self.order_dirty = true;
            return false;
        }
        debug_assert_eq!(matrix.len(), self.n, "matrix must already be compacted");
        let old_order = std::mem::take(&mut self.order);
        let old_blocks = std::mem::take(&mut self.blocks);
        let mut new_order = Vec::with_capacity(self.n);
        let mut new_blocks = Vec::with_capacity(old_blocks.len());
        let mut cyclic = 0usize;
        let mut restriction = true;
        let mut pos = 0usize;
        for &len in &old_blocks {
            let members = &old_order[pos..pos + len];
            pos += len;
            let surviving: Vec<usize> = members.iter().copied().filter(|&m| keep[m]).collect();
            if surviving.is_empty() {
                continue;
            }
            if surviving.len() == len || surviving.len() == 1 {
                // Untouched component (cached order carries over), or a lone
                // survivor (trivially its own SCC): a pure restriction.
                if surviving.len() > 1 {
                    cyclic += 1;
                }
                new_blocks.push(surviving.len());
                new_order.extend(surviving.iter().map(|&m| new_index[m]));
                continue;
            }
            // A cyclic component lost some members: its survivors may have
            // split into several SCCs. Re-derive the sub-condensation and
            // repair each cyclic sub-component locally.
            restriction = false;
            let local: Vec<usize> = surviving.iter().map(|&m| new_index[m]).collect();
            for mut component in self.sub_components(&local) {
                if component.len() > 1 {
                    component.sort_unstable();
                    let prob = |a: usize, b: usize| matrix.prob(a, b);
                    component = crate::graph::fas::repair_component(&component, &prob);
                    self.local_repairs += 1;
                    cyclic += 1;
                }
                new_blocks.push(component.len());
                new_order.extend(component);
            }
        }
        self.order = new_order;
        self.blocks = new_blocks;
        self.cyclic_blocks = cyclic;
        self.transitive = cyclic == 0;
        restriction
    }

    /// The strongly connected components of the sub-tournament induced on
    /// `members` (current node indices), in topological order of its
    /// condensation — the local counterpart of
    /// [`Tournament::components_in_order`].
    fn sub_components(&self, members: &[usize]) -> Vec<Vec<usize>> {
        let s = members.len();
        let mut adj = vec![Vec::new(); s];
        for a in 0..s {
            for b in (a + 1)..s {
                if self.forward[members[a] * self.stride + members[b]] {
                    adj[a].push(b);
                } else {
                    adj[b].push(a);
                }
            }
        }
        let mut comps = strongly_connected_components(&adj);
        comps.reverse(); // Tarjan returns reverse topological order.
        comps
            .into_iter()
            .map(|c| c.into_iter().map(|p| members[p]).collect())
            .collect()
    }

    /// Re-derive every edge from `matrix` (used when a client
    /// re-registration changes pairwise probabilities wholesale). The linear
    /// order is recomputed lazily by the next
    /// [`linear_order`](Self::linear_order) call.
    pub fn rebuild(&mut self, matrix: &PrecedenceMatrix) {
        let n = matrix.len();
        // Grow before adopting the new dimension: grow_square relocates the
        // live `self.n × self.n` prefix, which must still describe the *old*
        // state (rebuilding a small tournament into a larger matrix would
        // otherwise copy out of bounds).
        self.grow_to(n);
        self.n = n;
        for i in 0..n {
            for j in (i + 1)..n {
                let towards_j = matrix.prob(i, j) >= matrix.prob(j, i);
                self.set_edge(i, j, towards_j);
            }
        }
        self.comparisons += (n * n.saturating_sub(1) / 2) as u64;
        self.order.clear();
        self.blocks.clear();
        self.cyclic_blocks = 0;
        self.order_dirty = n > 0;
        if n == 0 {
            self.transitive = true;
            self.order_dirty = false;
        }
    }

    /// Materialize the one-shot [`Tournament`] this incremental state
    /// represents, with the exact adjacency-list construction order of
    /// [`Tournament::from_matrix`] (so Tarjan component enumeration — and
    /// therefore the cyclic linear order — is bit-identical).
    fn as_tournament(&self) -> Tournament {
        let n = self.n;
        let mut adj = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                if self.forward[i * self.stride + j] {
                    adj[i].push(j);
                } else {
                    adj[j].push(i);
                }
            }
        }
        Tournament { n, adj }
    }

    /// Make the maintained linear order valid, recomputing it only if a
    /// wholesale [`rebuild`](Self::rebuild) (or, on the fallback path, a
    /// cycle event) invalidated it. The recompute — tournament adjacency +
    /// SCC condensation + FAS heuristics, counted by
    /// [`full_rebuilds`](Self::full_rebuilds) — never happens on acyclic
    /// (Gaussian) workloads, and with the incremental FAS engine enabled
    /// never happens on cyclic arrivals or emissions either.
    pub fn ensure_order(
        &mut self,
        matrix: &PrecedenceMatrix,
        config: &SequencerConfig,
        rng: Option<&mut dyn RngCore>,
    ) {
        debug_assert_eq!(matrix.len(), self.n, "tournament out of sync with matrix");
        if self.order_dirty {
            let tournament = self.as_tournament();
            self.transitive = tournament.is_transitive();
            self.order.clear();
            self.blocks.clear();
            self.cyclic_blocks = 0;
            for component in tournament.ordered_components(matrix, config, rng) {
                if component.len() > 1 {
                    self.cyclic_blocks += 1;
                }
                self.blocks.push(component.len());
                self.order.extend(component);
            }
            self.order_dirty = false;
            self.full_rebuilds += 1;
        }
    }

    /// The maintained linear order, by reference (no clone). Only valid
    /// after [`ensure_order`](Self::ensure_order) — callers on the hot path
    /// ([`SequencingCore`](crate::sequencer::core::SequencingCore)) read it
    /// this way so a candidate recomputation copies nothing.
    pub fn order(&self) -> &[usize] {
        debug_assert!(!self.order_dirty, "order read while awaiting a recompute");
        &self.order
    }

    /// The complete linear order of the tracked messages (§3.4), identical
    /// to `Tournament::from_matrix(matrix).linear_order(..)` over the same
    /// matrix.
    ///
    /// While maintenance stays incremental (always, with the incremental
    /// FAS engine) this returns the maintained order with **zero**
    /// additional comparisons; see [`ensure_order`](Self::ensure_order) for
    /// the recompute fallback.
    pub fn linear_order(
        &mut self,
        matrix: &PrecedenceMatrix,
        config: &SequencerConfig,
        rng: Option<&mut dyn RngCore>,
    ) -> Vec<usize> {
        self.ensure_order(matrix, config, rng);
        self.order.clone()
    }

    /// Number of strongly connected components with more than one node —
    /// the intransitivity cycles the §3 diagnostics report. Read off the
    /// maintained block structure in O(1) while the order is valid; only a
    /// dirty state (awaiting a recompute) materializes the one-shot
    /// adjacency (`O(n²)`).
    pub fn cyclic_component_count(&self) -> usize {
        if !self.order_dirty {
            return self.cyclic_blocks;
        }
        self.as_tournament()
            .components_in_order()
            .iter()
            .filter(|c| c.len() > 1)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{ClientId, Message, MessageId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn msgs(n: usize) -> Vec<Message> {
        (0..n)
            .map(|i| Message::new(MessageId(i as u64), ClientId(i as u32), 0.0))
            .collect()
    }

    fn matrix_from(pairwise: Vec<Vec<f64>>) -> PrecedenceMatrix {
        PrecedenceMatrix::from_probabilities(&msgs(pairwise.len()), &pairwise)
    }

    fn appendix_b_matrix() -> PrecedenceMatrix {
        matrix_from(vec![
            vec![0.5, 0.85, 0.65, 0.92],
            vec![0.15, 0.5, 0.72, 0.68],
            vec![0.35, 0.28, 0.5, 0.80],
            vec![0.08, 0.32, 0.20, 0.5],
        ])
    }

    fn cyclic_matrix() -> PrecedenceMatrix {
        // 0 beats 1, 1 beats 2, 2 beats 0 — plus 3 loses to everyone.
        matrix_from(vec![
            vec![0.5, 0.8, 0.3, 0.9],
            vec![0.2, 0.5, 0.8, 0.9],
            vec![0.7, 0.2, 0.5, 0.9],
            vec![0.1, 0.1, 0.1, 0.5],
        ])
    }

    #[test]
    fn appendix_b_tournament_is_transitive() {
        let t = Tournament::from_matrix(&appendix_b_matrix());
        assert!(t.is_transitive());
        assert!(!t.has_cycle());
        assert!(t.has_edge(0, 1));
        assert!(t.has_edge(1, 2));
        assert!(t.has_edge(2, 3));
        assert!(t.has_edge(0, 3));
    }

    #[test]
    fn appendix_b_hamiltonian_path_is_abcd() {
        let t = Tournament::from_matrix(&appendix_b_matrix());
        assert_eq!(t.hamiltonian_path(), Some(vec![0, 1, 2, 3]));
    }

    #[test]
    fn cyclic_tournament_detected() {
        let t = Tournament::from_matrix(&cyclic_matrix());
        assert!(t.has_cycle());
        assert!(!t.is_transitive());
        assert_eq!(t.hamiltonian_path(), None);
    }

    #[test]
    fn components_isolate_the_cycle() {
        let t = Tournament::from_matrix(&cyclic_matrix());
        let comps = t.components_in_order();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![0, 1, 2]); // the cycle comes first
        assert_eq!(comps[1], vec![3]); // the universally-last message
    }

    #[test]
    fn linear_order_on_transitive_matrix_is_the_unique_path() {
        let t = Tournament::from_matrix(&appendix_b_matrix());
        let order = t.linear_order(&appendix_b_matrix(), &SequencerConfig::default(), None);
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn linear_order_on_cycle_is_complete_and_ends_with_loser() {
        let m = cyclic_matrix();
        let t = Tournament::from_matrix(&m);
        let order = t.linear_order(&m, &SequencerConfig::default(), None);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        assert_eq!(*order.last().unwrap(), 3);
    }

    #[test]
    fn stochastic_linear_order_varies_on_cycles() {
        let m = cyclic_matrix();
        let t = Tournament::from_matrix(&m);
        let config = SequencerConfig::default().with_stochastic_cycle_breaking(true);
        let mut rng = StdRng::seed_from_u64(11);
        let mut leaders = std::collections::HashSet::new();
        for _ in 0..100 {
            let order = t.linear_order(&m, &config, Some(&mut rng));
            leaders.insert(order[0]);
            assert_eq!(*order.last().unwrap(), 3);
        }
        assert!(leaders.len() >= 2, "leaders = {leaders:?}");
    }

    #[test]
    fn ties_still_produce_a_tournament() {
        // All probabilities exactly 0.5: every pair still gets exactly one edge.
        let m = matrix_from(vec![
            vec![0.5, 0.5, 0.5],
            vec![0.5, 0.5, 0.5],
            vec![0.5, 0.5, 0.5],
        ]);
        let t = Tournament::from_matrix(&m);
        let mut edge_count = 0;
        for i in 0..3 {
            edge_count += t.successors(i).len();
        }
        assert_eq!(edge_count, 3); // C(3,2) edges
    }

    #[test]
    fn single_message_tournament() {
        let m = matrix_from(vec![vec![0.5]]);
        let t = Tournament::from_matrix(&m);
        assert_eq!(t.len(), 1);
        assert!(t.is_transitive());
        assert_eq!(t.hamiltonian_path(), Some(vec![0]));
    }

    #[test]
    #[should_panic(expected = "requires an RNG")]
    fn stochastic_without_rng_panics() {
        let m = cyclic_matrix();
        let t = Tournament::from_matrix(&m);
        let config = SequencerConfig::default().with_stochastic_cycle_breaking(true);
        t.linear_order(&m, &config, None);
    }

    // ---- IncrementalTournament ----

    use crate::registry::DistributionRegistry;
    use tommy_stats::distribution::OffsetDistribution;

    /// The incremental state must equal the one-shot pipeline: element-wise
    /// edges and the identical linear order.
    fn assert_tournaments_identical(inc: &mut IncrementalTournament, matrix: &PrecedenceMatrix) {
        let scratch = Tournament::from_matrix(matrix);
        assert_eq!(inc.len(), scratch.len());
        for i in 0..matrix.len() {
            for j in 0..matrix.len() {
                if i == j {
                    continue;
                }
                assert_eq!(
                    inc.has_edge(i, j),
                    scratch.has_edge(i, j),
                    "edge ({i},{j}) diverged"
                );
            }
        }
        let config = SequencerConfig::default();
        assert_eq!(
            inc.linear_order(matrix, &config, None),
            scratch.linear_order(matrix, &config, None),
            "linear order diverged"
        );
    }

    #[test]
    fn incremental_insert_builds_appendix_b_path() {
        let full = appendix_b_matrix();
        let reference = full.messages().to_vec();
        let pairwise: Vec<Vec<f64>> = (0..4)
            .map(|i| (0..4).map(|j| full.prob(i, j)).collect())
            .collect();
        let mut inc = IncrementalTournament::new();
        for k in 1..=4usize {
            let prefix: Vec<Vec<f64>> = (0..k)
                .map(|i| (0..k).map(|j| pairwise[i][j]).collect())
                .collect();
            let matrix = PrecedenceMatrix::from_probabilities(&reference[..k], &prefix);
            inc.insert_last(&matrix);
            assert_tournaments_identical(&mut inc, &matrix);
        }
        assert!(inc.is_transitive());
        assert_eq!(inc.full_rebuilds(), 0, "transitive stream must never rebuild");
        assert_eq!(inc.comparisons(), 6); // 0 + 1 + 2 + 3 new edges
    }

    #[test]
    fn incremental_cycle_repairs_locally_without_rebuilds() {
        let full = cyclic_matrix();
        let reference = full.messages().to_vec();
        let pairwise: Vec<Vec<f64>> = (0..4)
            .map(|i| (0..4).map(|j| full.prob(i, j)).collect())
            .collect();
        let mut inc = IncrementalTournament::new();
        for k in 1..=4usize {
            let prefix: Vec<Vec<f64>> = (0..k)
                .map(|i| (0..k).map(|j| pairwise[i][j]).collect())
                .collect();
            let matrix = PrecedenceMatrix::from_probabilities(&reference[..k], &prefix);
            inc.insert_last(&matrix);
            assert_tournaments_identical(&mut inc, &matrix);
        }
        assert!(!inc.is_transitive());
        assert_eq!(inc.cyclic_component_count(), 1);
        // The 0-1-2 cycle closes at the third insert — one SCC-scoped local
        // repair; the fourth insert (a universal loser) slots in cleanly
        // after the cyclic block. No full rebuild anywhere.
        assert_eq!(inc.full_rebuilds(), 0);
        assert_eq!(inc.local_repairs(), 1);
    }

    /// The fallback baseline (incremental FAS disabled) keeps the historical
    /// behaviour: every mutation in (or into) a cyclic state invalidates the
    /// whole order — while producing exactly the same orders.
    #[test]
    fn fallback_mode_rebuilds_on_cycles_with_identical_output() {
        let full = cyclic_matrix();
        let reference = full.messages().to_vec();
        let pairwise: Vec<Vec<f64>> = (0..4)
            .map(|i| (0..4).map(|j| full.prob(i, j)).collect())
            .collect();
        let mut inc = IncrementalTournament::new();
        inc.set_incremental_fas(false);
        for k in 1..=4usize {
            let prefix: Vec<Vec<f64>> = (0..k)
                .map(|i| (0..k).map(|j| pairwise[i][j]).collect())
                .collect();
            let matrix = PrecedenceMatrix::from_probabilities(&reference[..k], &prefix);
            inc.insert_last(&matrix);
            assert_tournaments_identical(&mut inc, &matrix);
        }
        assert!(!inc.is_transitive());
        // The cycle closes at the third insert; the fourth insert dirties
        // the already-cyclic order again. Two full recomputes, zero repairs.
        assert_eq!(inc.full_rebuilds(), 2);
        assert_eq!(inc.local_repairs(), 0);
    }

    #[test]
    fn incremental_removal_from_transitive_state_is_free() {
        let reg = {
            let mut reg = DistributionRegistry::new();
            for c in 0..4u32 {
                reg.register(ClientId(c), OffsetDistribution::gaussian(0.0, 5.0));
            }
            reg
        };
        let mut matrix = PrecedenceMatrix::empty();
        let mut inc = IncrementalTournament::new();
        for i in 0..8u64 {
            matrix
                .insert(
                    Message::new(MessageId(i), ClientId((i % 4) as u32), i as f64 * 3.0),
                    &reg,
                )
                .unwrap();
            inc.insert_last(&matrix);
        }
        // Remove an interior batch.
        let removed_ids = [MessageId(2), MessageId(3), MessageId(5)];
        let removed_indices: Vec<usize> = removed_ids
            .iter()
            .map(|id| matrix.index_of(*id).unwrap())
            .collect();
        matrix.remove_batch(&removed_ids);
        inc.remove_indices(&removed_indices, &matrix);
        assert_tournaments_identical(&mut inc, &matrix);
        assert_eq!(inc.full_rebuilds(), 0);
    }

    /// Satellite: seeded randomized property test — after *any* insert/remove
    /// sequence the incremental tournament equals `Tournament::from_matrix`
    /// on the same matrix (element-wise edges + identical `linear_order`),
    /// mirroring the `PrecedenceMatrix` equality test. Gaussian + Laplace
    /// clients exercise both the closed-form and numeric probability paths.
    #[test]
    fn random_insert_remove_sequences_match_from_matrix() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut reg = DistributionRegistry::new();
            for c in 0..4u32 {
                let dist = if c % 2 == 0 {
                    OffsetDistribution::gaussian(0.0, 1.0 + c as f64)
                } else {
                    OffsetDistribution::laplace(0.0, 1.0 + c as f64)
                };
                reg.register(ClientId(c), dist);
            }
            let mut matrix = PrecedenceMatrix::empty();
            let mut inc = IncrementalTournament::new();
            let mut next_id = 0u64;
            for _ in 0..30 {
                let remove = !matrix.is_empty() && rng.random_range(0u32..4) == 0;
                if remove {
                    let count = rng.random_range(1usize..=matrix.len());
                    let mut indices: Vec<usize> = (0..matrix.len()).collect();
                    for _ in 0..(matrix.len() - count) {
                        let k = rng.random_range(0usize..indices.len());
                        indices.remove(k);
                    }
                    let ids: Vec<MessageId> =
                        indices.iter().map(|&i| matrix.message(i).id).collect();
                    matrix.remove_batch(&ids);
                    inc.remove_indices(&indices, &matrix);
                } else {
                    let m = Message::new(
                        MessageId(next_id),
                        ClientId(rng.random_range(0u32..4)),
                        rng.random_range(-100.0..100.0f64),
                    );
                    next_id += 1;
                    matrix.insert(m, &reg).unwrap();
                    inc.insert_last(&matrix);
                }
                if matrix.is_empty() {
                    assert!(inc.is_empty());
                } else {
                    assert_tournaments_identical(&mut inc, &matrix);
                }
            }
        }
    }

    /// Same property over *explicit* random probability matrices, which —
    /// unlike Gaussian offsets — produce intransitive triples, exercising
    /// the cyclic fallback and removal-from-cyclic-state paths.
    #[test]
    #[allow(clippy::needless_range_loop)] // symmetric (i, j) matrix fill
    fn random_probability_matrices_match_from_matrix_including_cycles() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        const POOL: usize = 24;
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(1_000 + seed);
            // A fixed random probability relation over a pool of messages.
            let mut pairwise = vec![vec![0.5; POOL]; POOL];
            for i in 0..POOL {
                for j in (i + 1)..POOL {
                    let p = rng.random_range(0.05..0.95f64);
                    pairwise[i][j] = p;
                    pairwise[j][i] = 1.0 - p;
                }
            }
            let pool_msgs = msgs(POOL);

            let rebuild_matrix = |pending: &[usize]| -> PrecedenceMatrix {
                let messages: Vec<Message> =
                    pending.iter().map(|&g| pool_msgs[g].clone()).collect();
                let probs: Vec<Vec<f64>> = pending
                    .iter()
                    .map(|&gi| pending.iter().map(|&gj| pairwise[gi][gj]).collect())
                    .collect();
                PrecedenceMatrix::from_probabilities(&messages, &probs)
            };

            let mut pending: Vec<usize> = Vec::new();
            let mut inc = IncrementalTournament::new();
            let mut next = 0usize;
            let mut saw_cycle = false;
            for _ in 0..40 {
                let remove = !pending.is_empty() && rng.random_range(0u32..3) == 0;
                if remove {
                    let count = rng.random_range(1usize..=pending.len());
                    let mut positions: Vec<usize> = (0..pending.len()).collect();
                    for _ in 0..(pending.len() - count) {
                        let k = rng.random_range(0usize..positions.len());
                        positions.remove(k);
                    }
                    for &p in positions.iter().rev() {
                        pending.remove(p);
                    }
                    if pending.is_empty() {
                        inc.remove_indices(&positions, &PrecedenceMatrix::empty());
                    } else {
                        inc.remove_indices(&positions, &rebuild_matrix(&pending));
                    }
                } else if next < POOL {
                    pending.push(next);
                    next += 1;
                    inc.insert_last(&rebuild_matrix(&pending));
                } else {
                    continue;
                }
                if pending.is_empty() {
                    assert!(inc.is_empty());
                } else {
                    let matrix = rebuild_matrix(&pending);
                    assert_tournaments_identical(&mut inc, &matrix);
                    saw_cycle |= !inc.is_transitive();
                }
            }
            assert!(saw_cycle, "seed {seed}: random relation never cycled");
        }
    }

    #[test]
    fn comparisons_grow_linearly_per_insert() {
        let reg = {
            let mut reg = DistributionRegistry::new();
            reg.register(ClientId(0), OffsetDistribution::gaussian(0.0, 5.0));
            reg
        };
        let mut matrix = PrecedenceMatrix::empty();
        let mut inc = IncrementalTournament::new();
        let mut previous = 0u64;
        for i in 0..20u64 {
            matrix
                .insert(Message::new(MessageId(i), ClientId(0), i as f64), &reg)
                .unwrap();
            inc.insert_last(&matrix);
            let now = inc.comparisons();
            assert_eq!(now - previous, i, "insert {i} must decide exactly i edges");
            previous = now;
        }
    }
}
