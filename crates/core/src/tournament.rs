//! The tournament graph induced by pairwise preceding probabilities.
//!
//! §3.4 of the paper: "we model each message as a node in a graph, where
//! `--p-->` denotes a directed edge with weight p. In our construction there
//! will be two edges between each pair of nodes; for every such pair, we
//! discard the edge with the lower weight." The result is a *tournament*.
//! If the underlying probabilities are transitive (guaranteed for Gaussian
//! offsets, Appendix A), the tournament is a transitive tournament with a
//! unique Hamiltonian path; otherwise it contains cycles which are broken by
//! the heuristics in [`crate::graph::fas`].

use crate::config::SequencerConfig;
use crate::graph::fas::{greedy_order, stochastic_order};
use crate::graph::tarjan::strongly_connected_components;
use crate::graph::toposort::{topological_sort, TopoResult};
use crate::precedence::PrecedenceMatrix;
use rand::RngCore;

/// A tournament over the messages of a [`PrecedenceMatrix`].
#[derive(Debug, Clone)]
pub struct Tournament {
    n: usize,
    /// `adj[i]` lists the indices j such that the kept edge is `i -> j`.
    adj: Vec<Vec<usize>>,
}

impl Tournament {
    /// Build the tournament from a precedence matrix: for each pair keep the
    /// direction with the larger probability (ties, `p = 0.5` exactly, are
    /// broken towards the smaller index so the result is still a tournament).
    pub fn from_matrix(matrix: &PrecedenceMatrix) -> Self {
        let n = matrix.len();
        let mut adj = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                if matrix.prob(i, j) >= matrix.prob(j, i) {
                    adj[i].push(j);
                } else {
                    adj[j].push(i);
                }
            }
        }
        Tournament { n, adj }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the tournament has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Out-neighbours of node `i`.
    pub fn successors(&self, i: usize) -> &[usize] {
        &self.adj[i]
    }

    /// Whether the kept edge between `i` and `j` points `i -> j`.
    pub fn has_edge(&self, i: usize, j: usize) -> bool {
        self.adj[i].contains(&j)
    }

    /// Whether the tournament is transitive (equivalently: acyclic).
    ///
    /// Uses the score-sequence characterization: a tournament on `n` nodes is
    /// transitive iff its out-degrees are exactly `{0, 1, …, n−1}`.
    pub fn is_transitive(&self) -> bool {
        let mut degrees: Vec<usize> = self.adj.iter().map(|a| a.len()).collect();
        degrees.sort_unstable();
        degrees.iter().enumerate().all(|(i, &d)| d == i)
    }

    /// Whether the tournament contains at least one cycle.
    pub fn has_cycle(&self) -> bool {
        !self.is_transitive()
    }

    /// The unique topological order if the tournament is transitive.
    pub fn hamiltonian_path(&self) -> Option<Vec<usize>> {
        match topological_sort(&self.adj) {
            TopoResult::Unique(order) => Some(order),
            TopoResult::Multiple(order) if self.n <= 1 => Some(order),
            _ => None,
        }
    }

    /// The strongly connected components, in topological order of the
    /// condensation (earliest component first).
    pub fn components_in_order(&self) -> Vec<Vec<usize>> {
        let mut comps = strongly_connected_components(&self.adj);
        // Tarjan returns reverse topological order.
        comps.reverse();
        comps
    }

    /// Extract a complete linear order of all messages (§3.4).
    ///
    /// * Transitive tournament → the unique Hamiltonian path.
    /// * Cyclic tournament → the condensation is ordered topologically and
    ///   each cyclic component is ordered by the greedy feedback-arc-set
    ///   heuristic, or by the stochastic heuristic when
    ///   [`SequencerConfig::stochastic_cycle_breaking`] is set (in which case
    ///   `rng` must be provided).
    pub fn linear_order(
        &self,
        matrix: &PrecedenceMatrix,
        config: &SequencerConfig,
        mut rng: Option<&mut dyn RngCore>,
    ) -> Vec<usize> {
        if let Some(path) = self.hamiltonian_path() {
            return path;
        }
        let prob = |a: usize, b: usize| matrix.prob(a, b);
        let mut order = Vec::with_capacity(self.n);
        for component in self.components_in_order() {
            if component.len() == 1 {
                order.push(component[0]);
                continue;
            }
            let ordered = if config.stochastic_cycle_breaking {
                let rng = rng
                    .as_deref_mut()
                    .expect("stochastic cycle breaking requires an RNG");
                stochastic_order(&component, &prob, rng)
            } else {
                greedy_order(&component, &prob)
            };
            order.extend(ordered);
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{ClientId, Message, MessageId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn msgs(n: usize) -> Vec<Message> {
        (0..n)
            .map(|i| Message::new(MessageId(i as u64), ClientId(i as u32), 0.0))
            .collect()
    }

    fn matrix_from(pairwise: Vec<Vec<f64>>) -> PrecedenceMatrix {
        PrecedenceMatrix::from_probabilities(&msgs(pairwise.len()), &pairwise)
    }

    fn appendix_b_matrix() -> PrecedenceMatrix {
        matrix_from(vec![
            vec![0.5, 0.85, 0.65, 0.92],
            vec![0.15, 0.5, 0.72, 0.68],
            vec![0.35, 0.28, 0.5, 0.80],
            vec![0.08, 0.32, 0.20, 0.5],
        ])
    }

    fn cyclic_matrix() -> PrecedenceMatrix {
        // 0 beats 1, 1 beats 2, 2 beats 0 — plus 3 loses to everyone.
        matrix_from(vec![
            vec![0.5, 0.8, 0.3, 0.9],
            vec![0.2, 0.5, 0.8, 0.9],
            vec![0.7, 0.2, 0.5, 0.9],
            vec![0.1, 0.1, 0.1, 0.5],
        ])
    }

    #[test]
    fn appendix_b_tournament_is_transitive() {
        let t = Tournament::from_matrix(&appendix_b_matrix());
        assert!(t.is_transitive());
        assert!(!t.has_cycle());
        assert!(t.has_edge(0, 1));
        assert!(t.has_edge(1, 2));
        assert!(t.has_edge(2, 3));
        assert!(t.has_edge(0, 3));
    }

    #[test]
    fn appendix_b_hamiltonian_path_is_abcd() {
        let t = Tournament::from_matrix(&appendix_b_matrix());
        assert_eq!(t.hamiltonian_path(), Some(vec![0, 1, 2, 3]));
    }

    #[test]
    fn cyclic_tournament_detected() {
        let t = Tournament::from_matrix(&cyclic_matrix());
        assert!(t.has_cycle());
        assert!(!t.is_transitive());
        assert_eq!(t.hamiltonian_path(), None);
    }

    #[test]
    fn components_isolate_the_cycle() {
        let t = Tournament::from_matrix(&cyclic_matrix());
        let comps = t.components_in_order();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![0, 1, 2]); // the cycle comes first
        assert_eq!(comps[1], vec![3]); // the universally-last message
    }

    #[test]
    fn linear_order_on_transitive_matrix_is_the_unique_path() {
        let t = Tournament::from_matrix(&appendix_b_matrix());
        let order = t.linear_order(&appendix_b_matrix(), &SequencerConfig::default(), None);
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn linear_order_on_cycle_is_complete_and_ends_with_loser() {
        let m = cyclic_matrix();
        let t = Tournament::from_matrix(&m);
        let order = t.linear_order(&m, &SequencerConfig::default(), None);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        assert_eq!(*order.last().unwrap(), 3);
    }

    #[test]
    fn stochastic_linear_order_varies_on_cycles() {
        let m = cyclic_matrix();
        let t = Tournament::from_matrix(&m);
        let config = SequencerConfig::default().with_stochastic_cycle_breaking(true);
        let mut rng = StdRng::seed_from_u64(11);
        let mut leaders = std::collections::HashSet::new();
        for _ in 0..100 {
            let order = t.linear_order(&m, &config, Some(&mut rng));
            leaders.insert(order[0]);
            assert_eq!(*order.last().unwrap(), 3);
        }
        assert!(leaders.len() >= 2, "leaders = {leaders:?}");
    }

    #[test]
    fn ties_still_produce_a_tournament() {
        // All probabilities exactly 0.5: every pair still gets exactly one edge.
        let m = matrix_from(vec![
            vec![0.5, 0.5, 0.5],
            vec![0.5, 0.5, 0.5],
            vec![0.5, 0.5, 0.5],
        ]);
        let t = Tournament::from_matrix(&m);
        let mut edge_count = 0;
        for i in 0..3 {
            edge_count += t.successors(i).len();
        }
        assert_eq!(edge_count, 3); // C(3,2) edges
    }

    #[test]
    fn single_message_tournament() {
        let m = matrix_from(vec![vec![0.5]]);
        let t = Tournament::from_matrix(&m);
        assert_eq!(t.len(), 1);
        assert!(t.is_transitive());
        assert_eq!(t.hamiltonian_path(), Some(vec![0]));
    }

    #[test]
    #[should_panic(expected = "requires an RNG")]
    fn stochastic_without_rng_panics() {
        let m = cyclic_matrix();
        let t = Tournament::from_matrix(&m);
        let config = SequencerConfig::default().with_stochastic_cycle_breaking(true);
        t.linear_order(&m, &config, None);
    }
}
