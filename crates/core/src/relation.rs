//! The `likely-happened-before` relation.
//!
//! §1/§3.2 of the paper introduce `x --p--> y`: "x happened before y with
//! probability p". The relation generalizes Lamport's happened-before to
//! *concurrent* events: any two timestamped messages can be related, but only
//! probabilistically, and — unlike Lamport's relation — the result is not
//! necessarily transitive (§3.4, Appendix A).

use crate::error::CoreError;
use crate::message::{Message, MessageId};
use crate::registry::DistributionRegistry;

/// One directed `likely-happened-before` edge: `from --p--> to`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LikelyHappenedBefore {
    /// The message that likely happened first.
    pub from: MessageId,
    /// The message that likely happened later.
    pub to: MessageId,
    /// The probability that `from` truly precedes `to`.
    pub probability: f64,
}

impl LikelyHappenedBefore {
    /// Construct the relation between two messages, oriented so the edge
    /// points from the more-likely-earlier message to the other one (i.e.
    /// `probability >= 0.5`). This mirrors the paper's construction where,
    /// of the two directed edges between a pair, the lower-weight one is
    /// discarded.
    pub fn between(
        registry: &DistributionRegistry,
        a: &Message,
        b: &Message,
    ) -> Result<LikelyHappenedBefore, CoreError> {
        let p_ab = registry.preceding_probability(a, b)?;
        if p_ab >= 0.5 {
            Ok(LikelyHappenedBefore {
                from: a.id,
                to: b.id,
                probability: p_ab,
            })
        } else {
            Ok(LikelyHappenedBefore {
                from: b.id,
                to: a.id,
                probability: 1.0 - p_ab,
            })
        }
    }

    /// Whether this edge clears the batching threshold of §3.4 — i.e. the
    /// sequencer is confident enough to place the two messages in different
    /// batches.
    pub fn is_confident(&self, threshold: f64) -> bool {
        self.probability > threshold
    }
}

impl std::fmt::Display for LikelyHappenedBefore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} --{:.3}--> {}", self.from, self.probability, self.to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ClientId;
    use tommy_stats::distribution::OffsetDistribution;

    fn registry() -> DistributionRegistry {
        let mut reg = DistributionRegistry::new();
        reg.register(ClientId(0), OffsetDistribution::gaussian(0.0, 2.0));
        reg.register(ClientId(1), OffsetDistribution::gaussian(0.0, 2.0));
        reg
    }

    fn msg(id: u64, client: u32, ts: f64) -> Message {
        Message::new(MessageId(id), ClientId(client), ts)
    }

    #[test]
    fn edge_points_from_likely_earlier_message() {
        let reg = registry();
        let a = msg(0, 0, 100.0);
        let b = msg(1, 1, 120.0);
        let rel = LikelyHappenedBefore::between(&reg, &a, &b).unwrap();
        assert_eq!(rel.from, MessageId(0));
        assert_eq!(rel.to, MessageId(1));
        assert!(rel.probability > 0.99);

        // Asking in the other argument order yields the same oriented edge.
        let rel2 = LikelyHappenedBefore::between(&reg, &b, &a).unwrap();
        assert_eq!(rel2.from, MessageId(0));
        assert!((rel2.probability - rel.probability).abs() < 1e-9);
    }

    #[test]
    fn probability_never_below_half() {
        let reg = registry();
        for gap in [-50.0, -1.0, 0.0, 0.5, 10.0] {
            let a = msg(0, 0, 100.0);
            let b = msg(1, 1, 100.0 + gap);
            let rel = LikelyHappenedBefore::between(&reg, &a, &b).unwrap();
            assert!(rel.probability >= 0.5 - 1e-9, "p = {}", rel.probability);
        }
    }

    #[test]
    fn confidence_threshold() {
        let rel = LikelyHappenedBefore {
            from: MessageId(0),
            to: MessageId(1),
            probability: 0.8,
        };
        assert!(rel.is_confident(0.75));
        assert!(!rel.is_confident(0.9));
        assert!(!rel.is_confident(0.8)); // strictly greater, per §3.4
    }

    #[test]
    fn display_shows_probability() {
        let rel = LikelyHappenedBefore {
            from: MessageId(2),
            to: MessageId(7),
            probability: 0.925,
        };
        assert_eq!(rel.to_string(), "msg2 --0.925--> msg7");
    }

    #[test]
    fn unknown_client_propagates_error() {
        let reg = DistributionRegistry::new();
        let a = msg(0, 0, 1.0);
        let b = msg(1, 1, 2.0);
        assert!(LikelyHappenedBefore::between(&reg, &a, &b).is_err());
    }
}
