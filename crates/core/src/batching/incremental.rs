//! The incremental batch-boundary engine.
//!
//! [`IncrementalFairOrder`] maintains the §3.4 threshold batching *across*
//! arrivals and removals instead of recomputing
//! [`FairOrder::from_linear_order`] per arrival. A batch boundary between two
//! adjacent messages depends only on that pair's probability, so:
//!
//! * an arrival inserted at position `k` of the maintained linear order
//!   re-evaluates exactly the two adjacencies `k−1/k` and `k/k+1`
//!   (and drops the old `k−1/k+1` one), splitting or merging batches
//!   locally;
//! * an emitted batch's removal keeps every surviving adjacency's bit and
//!   re-evaluates only the one seam per removed run;
//! * ranks are derived lazily from a prefix count over the boundary bits
//!   ([`BoundarySet`]) and a dense position index keyed by matrix slot —
//!   no `HashMap<MessageId, usize>` is ever rebuilt on the arrival path.
//!
//! When the tournament's maintained order is invalidated (an intransitivity
//! cycle — never for Gaussian offsets), the engine is marked dirty and
//! rebuilt one-shot from the recomputed linear order, mirroring
//! [`IncrementalTournament`](crate::tournament::IncrementalTournament)'s
//! `full_rebuilds` fallback. The maintained state is pinned equal to the
//! one-shot constructor — batches, ranks, and boundary set — by the property
//! tests below and in [`crate::sequencer::core`].

use crate::batching::boundary::BoundarySet;
use crate::batching::fair_order::FairOrder;
use crate::message::MessageId;
use crate::precedence::PrecedenceMatrix;

/// Counters describing the work an [`IncrementalFairOrder`] performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FairOrderCounters {
    /// Adjacent-pair probability re-evaluations (each a single matrix read).
    /// An arrival costs at most two; a removal costs one per removed run; a
    /// rebuild or threshold change costs `n − 1`.
    pub boundary_evals: u64,
    /// Local edits that increased the boundary count (an arrival separating
    /// what was one batch).
    pub batch_splits: u64,
    /// Local edits that decreased the boundary count (an arrival bridging
    /// two batches into one).
    pub batch_merges: u64,
    /// One-shot rebuilds from a recomputed linear order (cycle fallbacks and
    /// wholesale re-registrations). Stays **zero** on acyclic (Gaussian)
    /// workloads.
    pub full_rebuilds: u64,
}

/// Threshold batching maintained incrementally over a linear order that is
/// itself maintained incrementally (see module docs).
#[derive(Debug, Clone)]
pub struct IncrementalFairOrder {
    threshold: f64,
    /// The maintained linear order: position → matrix slot. Kept in lockstep
    /// with `IncrementalTournament`'s maintained order by
    /// [`SequencingCore`](crate::sequencer::core::SequencingCore).
    order: Vec<usize>,
    /// Batch-start bits aligned with `order`.
    boundary: BoundarySet,
    /// Dense slot → position map, rebuilt lazily (only rank queries need it;
    /// the arrival path never does).
    pos_of_slot: Vec<usize>,
    pos_valid: bool,
    /// Set when the maintained order was invalidated wholesale; cleared by
    /// [`rebuild_from`](Self::rebuild_from).
    dirty: bool,
    counters: FairOrderCounters,
}

impl IncrementalFairOrder {
    /// An empty engine at the given batching threshold (same domain as
    /// [`FairOrder::from_linear_order`]).
    pub fn new(threshold: f64) -> Self {
        assert!(
            (0.5..1.0).contains(&threshold),
            "threshold must be in [0.5, 1.0), got {threshold}"
        );
        IncrementalFairOrder {
            threshold,
            order: Vec::new(),
            boundary: BoundarySet::new(),
            pos_of_slot: Vec::new(),
            pos_valid: false,
            dirty: false,
            counters: FairOrderCounters::default(),
        }
    }

    /// Number of tracked messages.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether no messages are tracked.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The batching threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Work counters so far.
    pub fn counters(&self) -> FairOrderCounters {
        self.counters
    }

    /// Whether the maintained state awaits a [`rebuild_from`](Self::rebuild_from).
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Invalidate the maintained state (the linear order changed wholesale —
    /// a cycle appeared or a client was re-registered).
    pub fn mark_dirty(&mut self) {
        self.dirty = true;
    }

    /// The maintained linear order (position → matrix slot).
    pub fn order(&self) -> &[usize] {
        debug_assert!(!self.dirty, "order read while dirty");
        &self.order
    }

    /// Number of batches.
    pub fn num_batches(&self) -> usize {
        debug_assert!(!self.dirty, "batches read while dirty");
        self.boundary.num_batches()
    }

    /// The boundary positions (`p ≥ 1` such that position `p` starts a new
    /// batch), ascending — the set the equivalence tests compare against the
    /// one-shot constructor.
    pub fn boundary_positions(&self) -> Vec<usize> {
        debug_assert!(!self.dirty, "boundaries read while dirty");
        self.boundary.positions()
    }

    /// The matrix slots of the lowest-rank batch (positions `0..` up to the
    /// first boundary). `O(batch size)`.
    pub fn first_batch(&self) -> &[usize] {
        debug_assert!(!self.dirty, "first batch read while dirty");
        let end = self.boundary.first_boundary().unwrap_or(self.order.len());
        &self.order[..end]
    }

    /// Rank of the batch containing matrix slot `slot`, derived from the
    /// lazily rebuilt dense position index and the boundary prefix count —
    /// no per-arrival hashing anywhere. `None` when out of range.
    pub fn rank_of_slot(&mut self, slot: usize) -> Option<usize> {
        debug_assert!(!self.dirty, "ranks read while dirty");
        if slot >= self.order.len() {
            return None;
        }
        if !self.pos_valid {
            self.pos_of_slot.clear();
            self.pos_of_slot.resize(self.order.len(), usize::MAX);
            for (p, &s) in self.order.iter().enumerate() {
                self.pos_of_slot[s] = p;
            }
            self.pos_valid = true;
        }
        Some(self.boundary.rank_of_position(self.pos_of_slot[slot]))
    }

    /// Rebuild one-shot from a recomputed linear order (the cycle / wholesale
    /// fallback): every adjacent pair is re-evaluated, exactly as
    /// [`FairOrder::from_linear_order`] would. Clears the dirty flag and
    /// counts a full rebuild.
    pub fn rebuild_from(&mut self, order: &[usize], matrix: &PrecedenceMatrix) {
        debug_assert_eq!(order.len(), matrix.len(), "order out of sync with matrix");
        self.order = order.to_vec();
        let mut bits = Vec::with_capacity(order.len());
        for (p, &slot) in order.iter().enumerate() {
            let start = p == 0 || matrix.prob(order[p - 1], slot) > self.threshold;
            bits.push(start);
        }
        self.counters.boundary_evals += order.len().saturating_sub(1) as u64;
        self.counters.full_rebuilds += 1;
        self.boundary = BoundarySet::from_bits(bits);
        self.pos_valid = false;
        self.dirty = false;
    }

    /// Change the batching threshold, re-evaluating every boundary bit
    /// (`n − 1` matrix reads; the maintained order is untouched).
    pub fn set_threshold(&mut self, threshold: f64, matrix: &PrecedenceMatrix) {
        assert!(
            (0.5..1.0).contains(&threshold),
            "threshold must be in [0.5, 1.0), got {threshold}"
        );
        self.threshold = threshold;
        if self.dirty {
            return; // the pending rebuild re-evaluates everything anyway
        }
        for p in 1..self.order.len() {
            let start = matrix.prob(self.order[p - 1], self.order[p]) > threshold;
            self.boundary.set(p, start);
        }
        self.counters.boundary_evals += self.order.len().saturating_sub(1) as u64;
    }

    /// Incorporate the message `matrix` just gained (its last slot), inserted
    /// at position `pos` of the maintained linear order — the position the
    /// tournament's block scan chose. Exactly the two new adjacencies are
    /// evaluated; the old `pos−1/pos` adjacency bit is replaced.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range; the engine must not be dirty and the
    /// matrix must be one message ahead of the engine (debug-asserted).
    pub fn insert_at(&mut self, pos: usize, matrix: &PrecedenceMatrix) {
        debug_assert!(!self.dirty, "insert into a dirty engine");
        let n = self.order.len();
        debug_assert_eq!(matrix.len(), n + 1, "insert_at must follow the matrix insert");
        assert!(pos <= n, "insert position {pos} out of range for {n} messages");
        let slot = matrix.len() - 1;

        let old_boundary = pos > 0 && pos < n && self.boundary.get(pos);
        let left_start = if pos == 0 {
            true
        } else {
            self.counters.boundary_evals += 1;
            matrix.prob(self.order[pos - 1], slot) > self.threshold
        };
        let right_start = if pos < n {
            self.counters.boundary_evals += 1;
            Some(matrix.prob(slot, self.order[pos]) > self.threshold)
        } else {
            None
        };

        self.order.insert(pos, slot);
        self.boundary.insert(pos, left_start);
        if let Some(start) = right_start {
            self.boundary.set(pos + 1, start);
        }
        self.pos_valid = false;

        let new_boundaries =
            usize::from(pos > 0 && left_start) + usize::from(right_start == Some(true));
        let old_boundaries = usize::from(old_boundary);
        if new_boundaries > old_boundaries {
            self.counters.batch_splits += (new_boundaries - old_boundaries) as u64;
        } else if old_boundaries > new_boundaries {
            self.counters.batch_merges += (old_boundaries - new_boundaries) as u64;
        }
    }

    /// Drop the messages at (pre-removal) matrix slots `removed`, compacting
    /// the survivors exactly like [`PrecedenceMatrix::remove_batch`] and
    /// `IncrementalTournament::remove_indices` do. `matrix` is the
    /// *post-removal* matrix. Surviving adjacencies keep their bits; only
    /// the one seam per removed run is re-evaluated.
    pub fn remove_slots(&mut self, removed: &[usize], matrix: &PrecedenceMatrix) {
        debug_assert!(!self.dirty, "removal from a dirty engine");
        if removed.is_empty() {
            return;
        }
        let n = self.order.len();
        let mut keep = vec![true; n];
        for &s in removed {
            assert!(s < n, "removed slot {s} out of range for {n} messages");
            keep[s] = false;
        }
        let mut new_slot = vec![usize::MAX; n];
        let mut next = 0usize;
        for (s, &k) in keep.iter().enumerate() {
            if k {
                new_slot[s] = next;
                next += 1;
            }
        }
        // A non-empty `removed` always clears at least one slot.
        debug_assert!(next < n, "non-empty removal must shrink the order");
        debug_assert_eq!(matrix.len(), next, "matrix must already be compacted");

        let mut new_order = Vec::with_capacity(next);
        let mut bits = Vec::with_capacity(next);
        let mut prev_pos: Option<usize> = None;
        for (p, &slot) in self.order.iter().enumerate() {
            if !keep[slot] {
                continue;
            }
            let start = match prev_pos {
                None => true,
                // Adjacent survivors: the pair (and its probability) is
                // unchanged, so the bit carries over.
                Some(q) if q + 1 == p => self.boundary.get(p),
                // A removed run sat between them: one seam re-evaluation.
                Some(_) => {
                    self.counters.boundary_evals += 1;
                    let left = *new_order.last().expect("seam implies a predecessor");
                    matrix.prob(left, new_slot[slot]) > self.threshold
                }
            };
            bits.push(start);
            new_order.push(new_slot[slot]);
            prev_pos = Some(p);
        }
        self.order = new_order;
        self.boundary = BoundarySet::from_bits(bits);
        self.pos_valid = false;
    }

    /// Materialize the maintained state as a [`FairOrder`] (used by the
    /// offline path's output and by the equivalence tests).
    pub fn to_fair_order(&self, matrix: &PrecedenceMatrix) -> FairOrder {
        debug_assert!(!self.dirty, "materialized while dirty");
        let mut groups: Vec<Vec<MessageId>> = Vec::with_capacity(self.boundary.num_batches());
        for (p, &slot) in self.order.iter().enumerate() {
            if p == 0 || self.boundary.get(p) {
                groups.push(Vec::new());
            }
            groups
                .last_mut()
                .expect("position 0 opens a group")
                .push(matrix.message(slot).id);
        }
        FairOrder::from_groups(groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{ClientId, Message};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn mk_msgs(n: usize) -> Vec<Message> {
        (0..n)
            .map(|i| Message::new(MessageId(i as u64), ClientId(i as u32), 0.0))
            .collect()
    }

    fn appendix_b_matrix() -> PrecedenceMatrix {
        PrecedenceMatrix::from_probabilities(
            &mk_msgs(4),
            &[
                vec![0.5, 0.85, 0.65, 0.92],
                vec![0.15, 0.5, 0.72, 0.68],
                vec![0.35, 0.28, 0.5, 0.80],
                vec![0.08, 0.32, 0.20, 0.5],
            ],
        )
    }

    /// The maintained state must equal the one-shot constructor over the
    /// maintained order: batches, ranks, and boundary positions.
    fn assert_matches_one_shot(inc: &mut IncrementalFairOrder, matrix: &PrecedenceMatrix) {
        let order = inc.order().to_vec();
        let reference = FairOrder::from_linear_order(matrix, &order, inc.threshold());
        let materialized = inc.to_fair_order(matrix);
        assert_eq!(materialized, reference, "batches diverged");
        assert_eq!(
            inc.boundary_positions(),
            reference.boundary_positions(),
            "boundaries diverged"
        );
        assert_eq!(inc.num_batches(), reference.num_batches());
        for &slot in &order {
            let id = matrix.message(slot).id;
            assert_eq!(inc.rank_of_slot(slot), reference.rank_of(id), "rank of {id}");
        }
        // First batch = batch 0 of the reference.
        let first_ids: Vec<MessageId> = inc
            .first_batch()
            .iter()
            .map(|&s| matrix.message(s).id)
            .collect();
        assert_eq!(first_ids, reference.batches()[0].messages);
    }

    #[test]
    fn appendix_b_built_by_appends_matches_one_shot() {
        // Insert A, B, C, D in order (each appended at the end of the path),
        // reproducing the paper's {A} ≺ {B, C} ≺ {D} at threshold 0.75.
        let full = appendix_b_matrix();
        let reference = full.messages().to_vec();
        let pairwise: Vec<Vec<f64>> = (0..4)
            .map(|i| (0..4).map(|j| full.prob(i, j)).collect())
            .collect();
        let mut inc = IncrementalFairOrder::new(0.75);
        for k in 1..=4usize {
            let prefix: Vec<Vec<f64>> = (0..k)
                .map(|i| (0..k).map(|j| pairwise[i][j]).collect())
                .collect();
            let matrix = PrecedenceMatrix::from_probabilities(&reference[..k], &prefix);
            inc.insert_at(k - 1, &matrix);
            assert_matches_one_shot(&mut inc, &matrix);
        }
        assert_eq!(inc.num_batches(), 3);
        assert_eq!(inc.first_batch(), &[0]);
        assert_eq!(inc.counters().full_rebuilds, 0);
        // 3 appends with an existing neighbour: one eval each.
        assert_eq!(inc.counters().boundary_evals, 3);
    }

    /// Random insert positions and thresholds: after every edit the engine
    /// equals the one-shot constructor over its own order. Exercises splits,
    /// merges, interior inserts, and threshold changes.
    #[test]
    #[allow(clippy::needless_range_loop)] // symmetric (i, j) matrix fill
    fn random_insert_positions_match_one_shot() {
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            const POOL: usize = 16;
            let mut pairwise = vec![vec![0.5; POOL]; POOL];
            for i in 0..POOL {
                for j in (i + 1)..POOL {
                    let p = rng.random_range(0.05..0.95f64);
                    pairwise[i][j] = p;
                    pairwise[j][i] = 1.0 - p;
                }
            }
            let pool_msgs = mk_msgs(POOL);
            let threshold = rng.random_range(0.55..0.95f64);
            let mut inc = IncrementalFairOrder::new(threshold);
            for k in 1..=POOL {
                let prefix: Vec<Vec<f64>> = (0..k)
                    .map(|i| (0..k).map(|j| pairwise[i][j]).collect())
                    .collect();
                let matrix = PrecedenceMatrix::from_probabilities(&pool_msgs[..k], &prefix);
                let pos = rng.random_range(0..k); // any position is legal here
                inc.insert_at(pos, &matrix);
                assert_matches_one_shot(&mut inc, &matrix);
                if k == POOL / 2 {
                    let new_threshold = rng.random_range(0.55..0.95f64);
                    inc.set_threshold(new_threshold, &matrix);
                    assert_matches_one_shot(&mut inc, &matrix);
                }
            }
        }
    }

    #[test]
    fn removal_keeps_surviving_bits_and_reevaluates_seams() {
        let matrix = appendix_b_matrix();
        let mut inc = IncrementalFairOrder::new(0.75);
        inc.rebuild_from(&[0, 1, 2, 3], &matrix);
        assert_eq!(inc.counters().full_rebuilds, 1);
        // Remove B (slot 1): A and C become adjacent — p(A→C) = 0.65 ≤ 0.75,
        // so they merge into one batch; D stays separate (p(C→D) = 0.80).
        let survivors = vec![
            matrix.message(0).clone(),
            matrix.message(2).clone(),
            matrix.message(3).clone(),
        ];
        let compacted = PrecedenceMatrix::from_probabilities(
            &survivors,
            &[
                vec![0.5, 0.65, 0.92],
                vec![0.35, 0.5, 0.80],
                vec![0.08, 0.20, 0.5],
            ],
        );
        let before = inc.counters().boundary_evals;
        inc.remove_slots(&[1], &compacted);
        assert_eq!(inc.counters().boundary_evals, before + 1, "one seam");
        assert_matches_one_shot(&mut inc, &compacted);
        assert_eq!(inc.num_batches(), 2);
        assert_eq!(inc.first_batch(), &[0, 1]);
    }

    #[test]
    fn split_and_merge_counters_track_local_edits() {
        // Two inseparable messages (p = 0.6 ≤ 0.75): one batch.
        let msgs = mk_msgs(3);
        let m2 = PrecedenceMatrix::from_probabilities(
            &msgs[..2],
            &[vec![0.5, 0.6], vec![0.4, 0.5]],
        );
        let mut inc = IncrementalFairOrder::new(0.75);
        inc.insert_at(0, &PrecedenceMatrix::from_probabilities(&msgs[..1], &[vec![0.5]]));
        inc.insert_at(1, &m2);
        assert_eq!(inc.num_batches(), 1);
        assert_eq!(inc.counters().batch_splits, 0);
        // A third message lands *between* them and separates both sides:
        // one old (absent) boundary replaced by two new ones — 2 splits.
        let m3 = PrecedenceMatrix::from_probabilities(
            &msgs,
            &[
                vec![0.5, 0.6, 0.9],
                vec![0.4, 0.5, 0.05],
                vec![0.1, 0.95, 0.5],
            ],
        );
        inc.insert_at(1, &m3);
        assert_eq!(inc.num_batches(), 3);
        assert_eq!(inc.counters().batch_splits, 2);
        assert_eq!(inc.counters().batch_merges, 0);
        assert_matches_one_shot(&mut inc, &m3);
    }

    #[test]
    fn dirty_engine_rebuilds_to_clean_state() {
        let matrix = appendix_b_matrix();
        let mut inc = IncrementalFairOrder::new(0.75);
        inc.rebuild_from(&[0, 1, 2, 3], &matrix);
        inc.mark_dirty();
        assert!(inc.is_dirty());
        inc.rebuild_from(&[3, 2, 1, 0], &matrix); // any recomputed order
        assert!(!inc.is_dirty());
        assert_matches_one_shot(&mut inc, &matrix);
        assert_eq!(inc.counters().full_rebuilds, 2);
    }

    #[test]
    #[should_panic(expected = "threshold must be in")]
    fn out_of_range_threshold_rejected() {
        IncrementalFairOrder::new(1.0);
    }
}
