//! The static fair-order types: [`Batch`] and [`FairOrder`].
//!
//! [`FairOrder::from_linear_order`] is the one-shot §3.4 constructor — walk
//! the linear order, split wherever the adjacent-pair probability exceeds the
//! threshold. The offline sequencer materializes its output through it; the
//! online sequencer maintains the same boundary set incrementally
//! ([`crate::batching::incremental::IncrementalFairOrder`]) and only builds a
//! `FairOrder` for emitted history.

use crate::message::MessageId;
use crate::precedence::PrecedenceMatrix;
use std::collections::HashMap;

/// One batch of messages sharing a rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// The batch's rank; batches are processed in increasing rank order.
    pub rank: usize,
    /// The messages in this batch, in the order the linear extraction
    /// produced them (this internal order carries *no* fairness meaning).
    pub messages: Vec<MessageId>,
}

impl Batch {
    /// Number of messages in the batch.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// Whether the batch is empty (never true for sequencer output).
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }
}

/// The output of a fair sequencer: a totally ordered sequence of batches,
/// i.e. a fair partial order over messages.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FairOrder {
    batches: Vec<Batch>,
    rank_index: HashMap<MessageId, usize>,
}

impl FairOrder {
    /// Build a fair order by walking a linear order and inserting batch
    /// boundaries wherever the adjacent-pair probability exceeds `threshold`.
    ///
    /// `order` contains indices into `matrix`.
    pub fn from_linear_order(matrix: &PrecedenceMatrix, order: &[usize], threshold: f64) -> Self {
        assert!(
            (0.5..1.0).contains(&threshold) || threshold == 0.5,
            "threshold must be in [0.5, 1.0), got {threshold}"
        );
        let mut groups: Vec<Vec<MessageId>> = Vec::new();
        let mut current: Vec<MessageId> = Vec::new();
        for (pos, &idx) in order.iter().enumerate() {
            if pos > 0 {
                let prev = order[pos - 1];
                if matrix.prob(prev, idx) > threshold {
                    groups.push(std::mem::take(&mut current));
                }
            }
            current.push(matrix.message(idx).id);
        }
        if !current.is_empty() {
            groups.push(current);
        }
        FairOrder::from_groups(groups)
    }

    /// Build a fair order from explicit groups of message ids (each group is
    /// one batch, in the given order).
    ///
    /// Every id must appear in at most one group; the duplicate check
    /// re-hashes each message and is only performed in debug builds (the
    /// sequencers construct groups from a matrix that already rejects
    /// duplicates).
    pub fn from_groups(groups: Vec<Vec<MessageId>>) -> Self {
        let total: usize = groups.iter().map(Vec::len).sum();
        let mut batches = Vec::with_capacity(groups.len());
        let mut rank_index = HashMap::with_capacity(total);
        for (rank, messages) in groups.into_iter().enumerate() {
            assert!(!messages.is_empty(), "batches must be non-empty");
            for &id in &messages {
                #[cfg(debug_assertions)]
                {
                    let previous = rank_index.insert(id, rank);
                    assert!(previous.is_none(), "message {id} appears in two batches");
                }
                #[cfg(not(debug_assertions))]
                rank_index.insert(id, rank);
            }
            batches.push(Batch { rank, messages });
        }
        FairOrder {
            batches,
            rank_index,
        }
    }

    /// Build a fair *total* order: every message is its own batch, in the
    /// given order. Used by the FIFO / WFO baselines.
    pub fn from_total_order(ids: &[MessageId]) -> Self {
        FairOrder::from_groups(ids.iter().map(|&id| vec![id]).collect())
    }

    /// The batches in rank order.
    pub fn batches(&self) -> &[Batch] {
        &self.batches
    }

    /// Number of batches.
    pub fn num_batches(&self) -> usize {
        self.batches.len()
    }

    /// Total number of messages across all batches.
    pub fn num_messages(&self) -> usize {
        self.rank_index.len()
    }

    /// Whether the order contains no messages.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// The rank of the batch containing `id`, if the message was sequenced.
    pub fn rank_of(&self, id: MessageId) -> Option<usize> {
        self.rank_index.get(&id).copied()
    }

    /// Whether two messages were confidently ordered (different batches).
    /// Returns `None` if either message was not sequenced.
    pub fn ordered(&self, a: MessageId, b: MessageId) -> Option<bool> {
        Some(self.rank_of(a)? != self.rank_of(b)?)
    }

    /// Sizes of all batches, in rank order.
    pub fn batch_sizes(&self) -> Vec<usize> {
        self.batches.iter().map(|b| b.len()).collect()
    }

    /// The batch-boundary positions in flattened order: the cumulative batch
    /// lengths, excluding the total (a boundary sits *before* each batch of
    /// rank ≥ 1). Matches
    /// [`IncrementalFairOrder::boundary_positions`](crate::batching::IncrementalFairOrder::boundary_positions)
    /// when both describe the same order.
    pub fn boundary_positions(&self) -> Vec<usize> {
        let mut positions = Vec::with_capacity(self.batches.len().saturating_sub(1));
        let mut cut = 0usize;
        for batch in &self.batches {
            if cut > 0 {
                positions.push(cut);
            }
            cut += batch.len();
        }
        positions
    }

    /// The size of the largest batch (0 if empty).
    pub fn max_batch_size(&self) -> usize {
        self.batches.iter().map(|b| b.len()).max().unwrap_or(0)
    }

    /// Mean batch size (0 if empty).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches.is_empty() {
            return 0.0;
        }
        self.num_messages() as f64 / self.num_batches() as f64
    }

    /// All message ids flattened in batch-rank order (within a batch the
    /// internal order is preserved but meaningless).
    pub fn flatten(&self) -> Vec<MessageId> {
        self.batches
            .iter()
            .flat_map(|b| b.messages.iter().copied())
            .collect()
    }

    /// Append a batch at the end (used by the online sequencer as batches are
    /// emitted incrementally).
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or contains an already-sequenced message.
    pub fn push_batch(&mut self, messages: Vec<MessageId>) {
        assert!(!messages.is_empty(), "batches must be non-empty");
        let rank = self.batches.len();
        for &id in &messages {
            let previous = self.rank_index.insert(id, rank);
            assert!(previous.is_none(), "message {id} appears in two batches");
        }
        self.batches.push(Batch { rank, messages });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{ClientId, Message};

    fn mk_msgs(n: usize) -> Vec<Message> {
        (0..n)
            .map(|i| Message::new(MessageId(i as u64), ClientId(i as u32), 0.0))
            .collect()
    }

    fn appendix_b_matrix() -> PrecedenceMatrix {
        PrecedenceMatrix::from_probabilities(
            &mk_msgs(4),
            &[
                vec![0.5, 0.85, 0.65, 0.92],
                vec![0.15, 0.5, 0.72, 0.68],
                vec![0.35, 0.28, 0.5, 0.80],
                vec![0.08, 0.32, 0.20, 0.5],
            ],
        )
    }

    #[test]
    fn appendix_b_batching_at_075() {
        // Paper: {A} ≺ {B, C} ≺ {D} at threshold 0.75.
        let m = appendix_b_matrix();
        let order = vec![0, 1, 2, 3];
        let fo = FairOrder::from_linear_order(&m, &order, 0.75);
        assert_eq!(fo.num_batches(), 3);
        assert_eq!(fo.batches()[0].messages, vec![MessageId(0)]);
        assert_eq!(fo.batches()[1].messages, vec![MessageId(1), MessageId(2)]);
        assert_eq!(fo.batches()[2].messages, vec![MessageId(3)]);
        assert_eq!(fo.rank_of(MessageId(0)), Some(0));
        assert_eq!(fo.rank_of(MessageId(2)), Some(1));
        assert_eq!(fo.rank_of(MessageId(3)), Some(2));
    }

    #[test]
    fn higher_threshold_gives_fewer_batches() {
        let m = appendix_b_matrix();
        let order = vec![0, 1, 2, 3];
        let strict = FairOrder::from_linear_order(&m, &order, 0.9);
        let loose = FairOrder::from_linear_order(&m, &order, 0.6);
        assert!(strict.num_batches() <= loose.num_batches());
        // At 0.9 only the 0.92 edge? No adjacent edge exceeds 0.9
        // (0.85, 0.72, 0.80), so everything is one batch.
        assert_eq!(strict.num_batches(), 1);
        // At 0.6 every adjacent edge exceeds the threshold: total order.
        assert_eq!(loose.num_batches(), 4);
    }

    #[test]
    fn batching_preserves_all_messages_exactly_once() {
        let m = appendix_b_matrix();
        let order = vec![0, 1, 2, 3];
        for threshold in [0.55, 0.7, 0.75, 0.85, 0.95] {
            let fo = FairOrder::from_linear_order(&m, &order, threshold);
            assert_eq!(fo.num_messages(), 4);
            let mut flat = fo.flatten();
            flat.sort();
            assert_eq!(
                flat,
                vec![MessageId(0), MessageId(1), MessageId(2), MessageId(3)]
            );
            // Ranks within bounds and non-decreasing along the linear order.
            let ranks: Vec<usize> = order
                .iter()
                .map(|&i| fo.rank_of(m.message(i).id).unwrap())
                .collect();
            for w in ranks.windows(2) {
                assert!(w[1] >= w[0]);
            }
        }
    }

    #[test]
    fn total_order_helper() {
        let ids = vec![MessageId(5), MessageId(3), MessageId(9)];
        let fo = FairOrder::from_total_order(&ids);
        assert_eq!(fo.num_batches(), 3);
        assert_eq!(fo.rank_of(MessageId(3)), Some(1));
        assert_eq!(fo.max_batch_size(), 1);
        assert!((fo.mean_batch_size() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ordered_pairs() {
        let fo = FairOrder::from_groups(vec![
            vec![MessageId(1)],
            vec![MessageId(2), MessageId(3)],
        ]);
        assert_eq!(fo.ordered(MessageId(1), MessageId(2)), Some(true));
        assert_eq!(fo.ordered(MessageId(2), MessageId(3)), Some(false));
        assert_eq!(fo.ordered(MessageId(1), MessageId(99)), None);
    }

    #[test]
    fn push_batch_appends_with_increasing_rank() {
        let mut fo = FairOrder::default();
        assert!(fo.is_empty());
        fo.push_batch(vec![MessageId(1)]);
        fo.push_batch(vec![MessageId(2), MessageId(3)]);
        assert_eq!(fo.num_batches(), 2);
        assert_eq!(fo.rank_of(MessageId(3)), Some(1));
        assert_eq!(fo.batch_sizes(), vec![1, 2]);
    }

    /// The duplicate check is debug-only: release builds trust the caller
    /// (the matrix already rejects duplicate ids) and skip the re-hash.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "two batches")]
    fn duplicate_message_across_batches_rejected() {
        FairOrder::from_groups(vec![vec![MessageId(1)], vec![MessageId(1)]]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_batch_rejected() {
        FairOrder::from_groups(vec![vec![]]);
    }
}
