//! Batch-boundary storage: a batch-start bitset aligned with a linear order.
//!
//! Position `p` of the tracked linear order *starts a batch* when the
//! adjacent-pair probability `p(order[p-1] → order[p])` exceeds the
//! threshold (position 0 always starts one). [`BoundarySet`] stores exactly
//! those bits, keeps the batch count eagerly, and derives per-position ranks
//! from a lazily rebuilt prefix count over the bits: a Fenwick tree would
//! give `O(log n)` point updates but cannot absorb the position *shifts* an
//! insertion causes, while the lazy prefix array costs nothing on the
//! arrival path (the online sequencer never queries ranks there — only the
//! equivalence tests and the offline materialization do) and answers every
//! rank query in `O(1)` once rebuilt.

/// The batch-start bits of a linear order, with an eager batch count and a
/// lazily rebuilt prefix-rank array.
#[derive(Debug, Clone, Default)]
pub struct BoundarySet {
    /// `starts[p]` — position `p` begins a batch. `starts[0]` is always set
    /// while the order is non-empty.
    starts: Vec<bool>,
    /// Number of set bits (equals the number of batches).
    set_bits: usize,
    /// `prefix[p]` = rank of the batch containing position `p`; rebuilt on
    /// demand after structural edits.
    prefix: Vec<usize>,
    prefix_valid: bool,
}

impl BoundarySet {
    /// An empty set tracking an empty order.
    pub fn new() -> Self {
        BoundarySet::default()
    }

    /// Build from explicit batch-start bits (`bits[0]` must be set when
    /// non-empty).
    pub fn from_bits(bits: Vec<bool>) -> Self {
        debug_assert!(bits.is_empty() || bits[0], "position 0 must start a batch");
        let set_bits = bits.iter().filter(|&&b| b).count();
        BoundarySet {
            starts: bits,
            set_bits,
            prefix: Vec::new(),
            prefix_valid: false,
        }
    }

    /// Number of tracked positions.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// Whether no positions are tracked.
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Number of batches (the set-bit count).
    pub fn num_batches(&self) -> usize {
        self.set_bits
    }

    /// Whether position `p` starts a batch.
    pub fn get(&self, p: usize) -> bool {
        self.starts[p]
    }

    /// Shift positions `>= p` up by one and set the new bit at `p`.
    pub fn insert(&mut self, p: usize, start: bool) {
        self.starts.insert(p, start);
        self.set_bits += usize::from(start);
        self.prefix_valid = false;
    }

    /// Overwrite the bit at `p`.
    pub fn set(&mut self, p: usize, start: bool) {
        let old = self.starts[p];
        self.starts[p] = start;
        self.set_bits = self.set_bits + usize::from(start) - usize::from(old);
        self.prefix_valid = false;
    }

    /// The first boundary position (`p >= 1` with the bit set), i.e. the
    /// position one past the end of batch 0. `None` when everything shares
    /// one batch.
    pub fn first_boundary(&self) -> Option<usize> {
        self.starts.iter().skip(1).position(|&b| b).map(|i| i + 1)
    }

    /// All boundary positions (`p >= 1` with the bit set), ascending. The
    /// batch at rank `r` spans positions `[positions[r-1], positions[r])`
    /// (with sentinels 0 and `len`).
    pub fn positions(&self) -> Vec<usize> {
        self.starts
            .iter()
            .enumerate()
            .skip(1)
            .filter_map(|(p, &b)| b.then_some(p))
            .collect()
    }

    /// Rank of the batch containing position `p` (0-based), from the prefix
    /// count over the start bits. Rebuilds the prefix array if a structural
    /// edit invalidated it; `O(1)` afterwards.
    pub fn rank_of_position(&mut self, p: usize) -> usize {
        if !self.prefix_valid {
            self.prefix.clear();
            self.prefix.reserve(self.starts.len());
            let mut rank = 0usize;
            for (q, &start) in self.starts.iter().enumerate() {
                if start && q > 0 {
                    rank += 1;
                }
                self.prefix.push(rank);
            }
            self.prefix_valid = true;
        }
        self.prefix[p]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_bits_counts_batches() {
        let b = BoundarySet::from_bits(vec![true, false, true, true, false]);
        assert_eq!(b.len(), 5);
        assert_eq!(b.num_batches(), 3);
        assert_eq!(b.first_boundary(), Some(2));
        assert_eq!(b.positions(), vec![2, 3]);
    }

    #[test]
    fn insert_and_set_maintain_counts() {
        let mut b = BoundarySet::new();
        assert!(b.is_empty());
        b.insert(0, true);
        b.insert(1, false);
        b.insert(1, true); // split: [x][y z] -> positions shift
        assert_eq!(b.num_batches(), 2);
        assert_eq!(b.positions(), vec![1]);
        b.set(1, false); // merge back
        assert_eq!(b.num_batches(), 1);
        assert_eq!(b.first_boundary(), None);
    }

    #[test]
    fn ranks_follow_prefix_counts_across_edits() {
        let mut b = BoundarySet::from_bits(vec![true, false, true, false]);
        assert_eq!(b.rank_of_position(0), 0);
        assert_eq!(b.rank_of_position(1), 0);
        assert_eq!(b.rank_of_position(3), 1);
        // Edit invalidates the cached prefix; the next query rebuilds it.
        b.insert(2, true);
        assert_eq!(b.rank_of_position(2), 1);
        assert_eq!(b.rank_of_position(4), 2);
        assert_eq!(b.num_batches(), 3);
    }
}
