//! Threshold batching and the fair (partial) order it produces.
//!
//! §3.4 of the paper: after a linear order is extracted from the tournament,
//! adjacent messages are batched — a batch boundary is placed between `i` and
//! `j` (adjacent in the linear order) only when `p(i → j) > threshold`, so
//! messages the sequencer cannot confidently separate share a batch. The
//! batches themselves are totally ordered; the messages are only partially
//! ordered. "Ideally, each batch should be of size 1."
//!
//! A batch boundary is a purely *local* property — whether one sits between
//! two adjacent messages depends only on that pair's probability — so the
//! boundary set admits incremental maintenance: an arrival that lands at
//! position `k` of the linear order only changes the two adjacencies at
//! `k−1/k` and `k/k+1` (and removes the old `k−1/k+1` one), and an emission
//! only creates one new adjacency per removed run. The module is organized
//! around that observation:
//!
//! * [`fair_order`] — the static output types: [`Batch`] and [`FairOrder`]
//!   (one-shot construction via [`FairOrder::from_linear_order`], explicit
//!   groups, total orders).
//! * [`boundary`] — [`BoundarySet`], the batch-start bitset aligned with a
//!   linear order, with an eagerly maintained batch count and lazily rebuilt
//!   prefix ranks.
//! * [`incremental`] — [`IncrementalFairOrder`], the engine the online
//!   sequencer maintains across arrivals and removals instead of
//!   recomputing `FairOrder::from_linear_order` per arrival. Its state is
//!   pinned equal to the one-shot constructor (batches, ranks, boundary set)
//!   by randomized property tests here and in
//!   [`crate::sequencer::core`].

pub mod boundary;
pub mod fair_order;
pub mod incremental;

pub use boundary::BoundarySet;
pub use fair_order::{Batch, FairOrder};
pub use incremental::{FairOrderCounters, IncrementalFairOrder};
