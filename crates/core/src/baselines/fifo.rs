//! The FIFO (arrival-order) sequencer.
//!
//! "This ranking is typically independent of when a message was originally
//! generated. Instead, it is assigned based on the order in which it is
//! observed by a server/sequencer (i.e., FIFO sequencer)." — §1 of the paper.
//! FIFO is fair only when the network does not reorder messages relative to
//! their generation order (the engineered equal-length-wire setting of
//! Figure 4).

use crate::batching::FairOrder;
use crate::message::Message;

/// A FIFO sequencer: ranks messages purely by arrival time.
#[derive(Debug, Default)]
pub struct FifoSequencer {
    arrivals: Vec<(Message, f64)>,
}

impl FifoSequencer {
    /// Create an empty FIFO sequencer.
    pub fn new() -> Self {
        FifoSequencer::default()
    }

    /// Record a message arrival.
    pub fn submit(&mut self, message: Message, arrival_time: f64) {
        assert!(arrival_time.is_finite(), "arrival time must be finite");
        self.arrivals.push((message, arrival_time));
    }

    /// Number of messages received.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether no messages have been received.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Produce the total order: one batch per message, in arrival order
    /// (ties broken by message id for determinism).
    pub fn sequence(&self) -> FairOrder {
        let mut sorted: Vec<&(Message, f64)> = self.arrivals.iter().collect();
        sorted.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .expect("finite arrival times")
                .then_with(|| a.0.id.cmp(&b.0.id))
        });
        FairOrder::from_total_order(&sorted.iter().map(|(m, _)| m.id).collect::<Vec<_>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{ClientId, MessageId};

    fn msg(id: u64, ts: f64) -> Message {
        Message::new(MessageId(id), ClientId(id as u32), ts)
    }

    #[test]
    fn ranks_follow_arrival_not_timestamp() {
        let mut fifo = FifoSequencer::new();
        // Message 0 was generated first (timestamp 1) but arrives last.
        fifo.submit(msg(0, 1.0), 10.0);
        fifo.submit(msg(1, 5.0), 2.0);
        fifo.submit(msg(2, 6.0), 3.0);
        let order = fifo.sequence();
        assert_eq!(order.rank_of(MessageId(1)), Some(0));
        assert_eq!(order.rank_of(MessageId(2)), Some(1));
        assert_eq!(order.rank_of(MessageId(0)), Some(2));
        assert_eq!(order.num_batches(), 3);
    }

    #[test]
    fn arrival_ties_broken_by_id() {
        let mut fifo = FifoSequencer::new();
        fifo.submit(msg(7, 0.0), 1.0);
        fifo.submit(msg(3, 0.0), 1.0);
        let order = fifo.sequence();
        assert_eq!(order.rank_of(MessageId(3)), Some(0));
        assert_eq!(order.rank_of(MessageId(7)), Some(1));
    }

    #[test]
    fn empty_sequencer_produces_empty_order() {
        let fifo = FifoSequencer::new();
        assert!(fifo.is_empty());
        assert_eq!(fifo.sequence().num_messages(), 0);
    }

    #[test]
    fn every_message_gets_its_own_batch() {
        let mut fifo = FifoSequencer::new();
        for i in 0..50 {
            fifo.submit(msg(i, i as f64), i as f64);
        }
        let order = fifo.sequence();
        assert_eq!(order.num_batches(), 50);
        assert_eq!(order.max_batch_size(), 1);
        assert_eq!(fifo.len(), 50);
    }
}
