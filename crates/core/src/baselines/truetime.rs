//! The TrueTime-style baseline.
//!
//! §4 of the paper: "we emulate Spanner TrueTime, where each message is
//! assigned an uncertainty interval `[T − 3σ, T + 3σ]`, and overlapping
//! intervals are assigned the same rank." TrueTime is conservative: it never
//! claims an order it is not sure about, so its Rank Agreement Score never
//! goes negative — but it also leaves far more pairs unordered than Tommy
//! when clock errors grow.

use crate::batching::FairOrder;
use crate::error::CoreError;
use crate::message::Message;
use crate::registry::DistributionRegistry;
use tommy_stats::distribution::Distribution;

/// The TrueTime-style interval sequencer.
#[derive(Debug)]
pub struct TrueTimeSequencer<'a> {
    registry: &'a DistributionRegistry,
    interval_sigmas: f64,
}

/// A message's uncertainty interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UncertaintyInterval {
    /// Interval lower bound.
    pub lo: f64,
    /// Interval upper bound.
    pub hi: f64,
}

impl UncertaintyInterval {
    /// Whether two intervals overlap (closed-interval semantics).
    pub fn overlaps(&self, other: &UncertaintyInterval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }
}

impl<'a> TrueTimeSequencer<'a> {
    /// Create a TrueTime baseline using `±3σ` intervals (the paper's choice).
    pub fn new(registry: &'a DistributionRegistry) -> Self {
        TrueTimeSequencer {
            registry,
            interval_sigmas: 3.0,
        }
    }

    /// Use a different interval half-width multiplier (`±kσ`).
    ///
    /// # Panics
    ///
    /// Panics if `k` is not positive.
    pub fn with_interval_sigmas(mut self, k: f64) -> Self {
        assert!(k > 0.0 && k.is_finite(), "interval width must be positive");
        self.interval_sigmas = k;
        self
    }

    /// The uncertainty interval assigned to one message.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownClient`] if the message's client has no
    /// registered distribution.
    pub fn interval(&self, message: &Message) -> Result<UncertaintyInterval, CoreError> {
        let dist = self
            .registry
            .get(message.client)
            .ok_or(CoreError::UnknownClient(message.client))?;
        // Centre the interval on the bias-corrected timestamp so a known mean
        // offset does not skew the interval (TrueTime's epsilon is symmetric
        // around the corrected time).
        let center = message.timestamp - dist.mean();
        let half_width = self.interval_sigmas * dist.std_dev();
        Ok(UncertaintyInterval {
            lo: center - half_width,
            hi: center + half_width,
        })
    }

    /// Sequence messages: sort by interval start and fuse transitively
    /// overlapping intervals into one rank.
    pub fn sequence(&self, messages: &[Message]) -> Result<FairOrder, CoreError> {
        if messages.is_empty() {
            return Err(CoreError::EmptyInput);
        }
        let mut with_intervals: Vec<(&Message, UncertaintyInterval)> = messages
            .iter()
            .map(|m| self.interval(m).map(|iv| (m, iv)))
            .collect::<Result<_, _>>()?;
        with_intervals.sort_by(|a, b| {
            a.1.lo
                .partial_cmp(&b.1.lo)
                .expect("finite bounds")
                .then_with(|| a.0.id.cmp(&b.0.id))
        });

        let mut groups = Vec::new();
        let mut current: Vec<crate::message::MessageId> = Vec::new();
        let mut current_hi = f64::NEG_INFINITY;
        for (m, iv) in with_intervals {
            if current.is_empty() || iv.lo <= current_hi {
                current.push(m.id);
                current_hi = current_hi.max(iv.hi);
            } else {
                groups.push(std::mem::take(&mut current));
                current.push(m.id);
                current_hi = iv.hi;
            }
        }
        if !current.is_empty() {
            groups.push(current);
        }
        Ok(FairOrder::from_groups(groups))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{ClientId, MessageId};
    use tommy_stats::distribution::OffsetDistribution;

    fn registry(sigma: f64, clients: u32) -> DistributionRegistry {
        let mut reg = DistributionRegistry::new();
        for c in 0..clients {
            reg.register(ClientId(c), OffsetDistribution::gaussian(0.0, sigma));
        }
        reg
    }

    fn msg(id: u64, client: u32, ts: f64) -> Message {
        Message::new(MessageId(id), ClientId(client), ts)
    }

    #[test]
    fn disjoint_intervals_get_distinct_ranks() {
        let reg = registry(1.0, 3);
        let tt = TrueTimeSequencer::new(&reg);
        let msgs = vec![msg(0, 0, 0.0), msg(1, 1, 100.0), msg(2, 2, 200.0)];
        let order = tt.sequence(&msgs).unwrap();
        assert_eq!(order.num_batches(), 3);
        assert_eq!(order.rank_of(MessageId(0)), Some(0));
        assert_eq!(order.rank_of(MessageId(2)), Some(2));
    }

    #[test]
    fn overlapping_intervals_share_a_rank() {
        let reg = registry(10.0, 2);
        let tt = TrueTimeSequencer::new(&reg);
        // 3σ intervals are ±30; timestamps 0 and 20 overlap.
        let msgs = vec![msg(0, 0, 0.0), msg(1, 1, 20.0)];
        let order = tt.sequence(&msgs).unwrap();
        assert_eq!(order.num_batches(), 1);
        assert_eq!(order.batches()[0].len(), 2);
    }

    #[test]
    fn overlap_grouping_is_transitive() {
        let reg = registry(10.0, 3);
        let tt = TrueTimeSequencer::new(&reg);
        // A overlaps B, B overlaps C, but A does not directly overlap C:
        // all three must still share one rank (chained overlap).
        let msgs = vec![msg(0, 0, 0.0), msg(1, 1, 50.0), msg(2, 2, 100.0)];
        let order = tt.sequence(&msgs).unwrap();
        assert_eq!(order.num_batches(), 1);
    }

    #[test]
    fn interval_uses_bias_corrected_center() {
        let mut reg = DistributionRegistry::new();
        reg.register(ClientId(0), OffsetDistribution::gaussian(50.0, 1.0));
        let tt = TrueTimeSequencer::new(&reg);
        let iv = tt.interval(&msg(0, 0, 100.0)).unwrap();
        assert!((iv.lo - 47.0).abs() < 1e-9);
        assert!((iv.hi - 53.0).abs() < 1e-9);
    }

    #[test]
    fn narrower_intervals_order_more_pairs() {
        let reg = registry(10.0, 2);
        let msgs = vec![msg(0, 0, 0.0), msg(1, 1, 20.0)];
        let tt3 = TrueTimeSequencer::new(&reg);
        let tt05 = TrueTimeSequencer::new(&reg).with_interval_sigmas(0.5);
        assert_eq!(tt3.sequence(&msgs).unwrap().num_batches(), 1);
        assert_eq!(tt05.sequence(&msgs).unwrap().num_batches(), 2);
    }

    #[test]
    fn unknown_client_and_empty_input_errors() {
        let reg = registry(1.0, 1);
        let tt = TrueTimeSequencer::new(&reg);
        assert_eq!(tt.sequence(&[]), Err(CoreError::EmptyInput));
        assert_eq!(
            tt.sequence(&[msg(0, 5, 0.0)]),
            Err(CoreError::UnknownClient(ClientId(5)))
        );
    }

    #[test]
    fn interval_overlap_helper() {
        let a = UncertaintyInterval { lo: 0.0, hi: 10.0 };
        let b = UncertaintyInterval { lo: 10.0, hi: 20.0 };
        let c = UncertaintyInterval { lo: 10.1, hi: 20.0 };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }
}
