//! Baseline sequencers the paper compares against (or builds on).
//!
//! * [`fifo`] — the classic arrival-order sequencer ("assign ranks … based on
//!   the order in which it is observed by a server", §1).
//! * [`wfo`] — the WaitsForOne sequencer of Figure 2: wait for one message
//!   from every client, release the one with the smallest timestamp,
//!   iteratively. Fair only when clock errors are negligible.
//! * [`truetime`] — the Spanner-TrueTime-style baseline of §4: every message
//!   gets an uncertainty interval `[T − kσ, T + kσ]` and overlapping
//!   intervals share a rank.

pub mod fifo;
pub mod truetime;
pub mod wfo;

pub use fifo::FifoSequencer;
pub use truetime::TrueTimeSequencer;
pub use wfo::WfoSequencer;
