//! The WaitsForOne (WFO) sequencer.
//!
//! Figure 2 / §1 of the paper: "by waiting for at least one message from
//! every client and then releasing the message with the smallest timestamp,
//! iteratively. This algorithm achieves a fair total order, provided in-order
//! delivery of messages per client" — *and* provided clock-synchronization
//! errors are negligible, which is exactly the assumption Tommy removes.

use crate::batching::FairOrder;
use crate::error::CoreError;
use crate::message::{ClientId, Message};
use std::collections::HashMap;
use std::collections::VecDeque;

/// The WaitsForOne sequencer over a fixed, known set of clients.
#[derive(Debug)]
pub struct WfoSequencer {
    queues: HashMap<ClientId, VecDeque<Message>>,
    finished: HashMap<ClientId, bool>,
}

impl WfoSequencer {
    /// Create a WFO sequencer for the given client set.
    pub fn new(clients: &[ClientId]) -> Self {
        WfoSequencer {
            queues: clients.iter().map(|&c| (c, VecDeque::new())).collect(),
            finished: clients.iter().map(|&c| (c, false)).collect(),
        }
    }

    /// Enqueue a message in its client's arrival-order queue.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownClient`] for clients outside the known set.
    pub fn submit(&mut self, message: Message) -> Result<(), CoreError> {
        let queue = self
            .queues
            .get_mut(&message.client)
            .ok_or(CoreError::UnknownClient(message.client))?;
        queue.push_back(message);
        Ok(())
    }

    /// Declare that a client will send no further messages (end of the
    /// workload); the sequencer stops waiting for it.
    pub fn finish_client(&mut self, client: ClientId) {
        if let Some(flag) = self.finished.get_mut(&client) {
            *flag = true;
        }
    }

    /// Number of messages currently queued across all clients.
    pub fn queued(&self) -> usize {
        self.queues.values().map(|q| q.len()).sum()
    }

    /// Release messages while every unfinished client has at least one queued
    /// message: repeatedly emit the head with the smallest timestamp. Returns
    /// the released messages as a total order (one batch each).
    pub fn release(&mut self) -> Vec<Message> {
        let mut released = Vec::new();
        loop {
            // WFO only proceeds when it holds a message from every client
            // that may still send.
            let blocked = self
                .queues
                .iter()
                .any(|(c, q)| q.is_empty() && !self.finished[c]);
            if blocked {
                break;
            }
            // Pick the head with the smallest timestamp (ties by message id).
            let next_client = self
                .queues
                .iter()
                .filter_map(|(c, q)| q.front().map(|m| (*c, m.timestamp, m.id)))
                .min_by(|a, b| {
                    a.1.partial_cmp(&b.1)
                        .expect("finite timestamps")
                        .then_with(|| a.2.cmp(&b.2))
                })
                .map(|(c, _, _)| c);
            match next_client {
                Some(c) => {
                    let msg = self.queues.get_mut(&c).expect("known client").pop_front();
                    released.push(msg.expect("non-empty queue"));
                }
                None => break, // all queues empty
            }
        }
        released
    }

    /// Convenience: sequence a complete offline workload (every message is
    /// already present, no client will send more) into a fair total order.
    pub fn sequence_offline(clients: &[ClientId], messages: &[Message]) -> Result<FairOrder, CoreError> {
        let mut wfo = WfoSequencer::new(clients);
        for m in messages {
            wfo.submit(m.clone())?;
        }
        for &c in clients {
            wfo.finish_client(c);
        }
        let released = wfo.release();
        Ok(FairOrder::from_total_order(
            &released.iter().map(|m| m.id).collect::<Vec<_>>(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageId;

    fn msg(id: u64, client: u32, ts: f64) -> Message {
        Message::new(MessageId(id), ClientId(client), ts)
    }

    #[test]
    fn blocks_until_every_client_has_a_message() {
        let clients = vec![ClientId(0), ClientId(1)];
        let mut wfo = WfoSequencer::new(&clients);
        wfo.submit(msg(0, 0, 5.0)).unwrap();
        assert!(wfo.release().is_empty());
        wfo.submit(msg(1, 1, 3.0)).unwrap();
        let released = wfo.release();
        // Both heads present: the smaller timestamp (client 1) goes first,
        // then client 0's queue head is released too? No — once client 1's
        // queue empties, WFO blocks again.
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].id, MessageId(1));
        assert_eq!(wfo.queued(), 1);
    }

    #[test]
    fn finished_clients_no_longer_block() {
        let clients = vec![ClientId(0), ClientId(1)];
        let mut wfo = WfoSequencer::new(&clients);
        wfo.submit(msg(0, 0, 5.0)).unwrap();
        wfo.finish_client(ClientId(1));
        let released = wfo.release();
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].id, MessageId(0));
    }

    #[test]
    fn offline_sequence_orders_by_timestamp() {
        let clients: Vec<ClientId> = (0..3).map(ClientId).collect();
        // Per-client timestamps are monotone (as the paper assumes).
        let messages = vec![
            msg(0, 0, 10.0),
            msg(1, 0, 40.0),
            msg(2, 1, 20.0),
            msg(3, 1, 50.0),
            msg(4, 2, 30.0),
        ];
        let order = WfoSequencer::sequence_offline(&clients, &messages).unwrap();
        let expected = [0u64, 2, 4, 1, 3];
        for (rank, id) in expected.iter().enumerate() {
            assert_eq!(order.rank_of(MessageId(*id)), Some(rank));
        }
        assert_eq!(order.max_batch_size(), 1);
    }

    #[test]
    fn unknown_client_rejected() {
        let mut wfo = WfoSequencer::new(&[ClientId(0)]);
        assert_eq!(
            wfo.submit(msg(0, 7, 1.0)),
            Err(CoreError::UnknownClient(ClientId(7)))
        );
    }

    #[test]
    fn wfo_is_fair_with_perfect_clocks_despite_reordered_arrival() {
        // Messages arrive out of generation order across clients (submission
        // order below), but per-client order is preserved. With perfect
        // clocks (timestamp == true time), WFO recovers the fair order.
        let clients: Vec<ClientId> = (0..2).map(ClientId).collect();
        let mut wfo = WfoSequencer::new(&clients);
        // Client 1's messages arrive before client 0's earlier message.
        wfo.submit(msg(2, 1, 15.0)).unwrap();
        wfo.submit(msg(3, 1, 25.0)).unwrap();
        wfo.submit(msg(0, 0, 10.0)).unwrap();
        wfo.submit(msg(1, 0, 20.0)).unwrap();
        for c in &clients {
            wfo.finish_client(*c);
        }
        let released = wfo.release();
        let ids: Vec<u64> = released.iter().map(|m| m.id.0).collect();
        assert_eq!(ids, vec![0, 2, 1, 3]); // sorted by true generation time
    }
}
