//! Small-model exhaustive checking of the online sequencer's ordering
//! invariants.
//!
//! Sampled simulations (the `tommy-sim` runner) show the sequencer behaves
//! well *on the schedules the simulator happens to draw*. This module makes
//! the complementary TLA-style argument on tiny models: enumerate **every**
//! admissible delivery schedule of a small workload — bounded reordering
//! over per-client FIFO channels — replay each one through a real
//! [`OnlineSequencer`], and assert four invariants on every trace:
//!
//! 1. **Per-client emission monotonicity** — flattening emitted batches in
//!    emission order, each client's timestamps never decrease (the ordered
//!    per-channel guarantee of §3.5 survives sequencing);
//! 2. **No loss, no duplication** — the emitted multiset of message ids
//!    equals the submitted multiset (emission drops nothing and repeats
//!    nothing);
//! 3. **Boundary consistency** — every emitted batch equals the candidate
//!    batch a *from-scratch* sequencing of the pre-emission pending set
//!    produces (the incrementally maintained matrix/tournament/boundary
//!    state never diverges from the one-shot Appendix C closure);
//! 4. **Bounded fairness-violation rate** — the fraction of submissions
//!    flagged as fairness violations stays within the model's bound.
//!
//! The schedule space is what a bounded-reordering network can produce: at
//! each step any of the oldest [`ModelSpec::max_in_flight`] undelivered
//! messages (per-client FIFO respected) may be delivered next. Clients
//! heartbeat whenever doing so cannot overtake one of their own undelivered
//! messages, mirroring the ordered-channel semantics of the sim runner.
//!
//! Invariants 1, 2 and 4 are pure trace predicates, exposed through
//! [`check_trace`] so tests can also prove the checker *can* fail (corrupt
//! a trace, watch it fire); invariant 3 is checked during replay, where the
//! pre-emission pending set is still known. See `ARCHITECTURE.md`, "Threat
//! model & degradation", for the row-per-invariant table.

use std::collections::HashMap;

use tommy_stats::distribution::{Distribution, OffsetDistribution};

use crate::config::SequencerConfig;
use crate::error::CoreError;
use crate::message::{ClientId, Message, MessageId};
use crate::precedence::PrecedenceMatrix;
use crate::sequencer::online::{EmittedBatch, OnlineSequencer, OnlineStats};
use crate::sequencer::SequencingCore;

/// A small model: a fixed client population, a fixed message set, and the
/// network/bound parameters defining the schedule space.
#[derive(Debug, Clone)]
pub struct ModelSpec {
    /// Per-client offset distributions *as registered with the sequencer*
    /// (under a misreport attack these are the claims, not the truth).
    pub offsets: Vec<(ClientId, OffsetDistribution)>,
    /// The workload, with ground-truth times attached
    /// ([`Message::with_true_time`]); per-client timestamps must be
    /// monotone in true-time order (the tagging/attack pipelines guarantee
    /// this, and replay clamps defensively).
    pub messages: Vec<Message>,
    /// Sequencer configuration under test. Must be deterministic
    /// ([`SequencerConfig::stochastic_cycle_breaking`] off): the
    /// boundary-consistency invariant compares against an independent
    /// from-scratch solve, which under stochastic repairs would
    /// legitimately differ.
    pub config: SequencerConfig,
    /// Fixed network delay added to a message's true time to form its
    /// earliest arrival; the sequencer clock never runs backwards, so a
    /// reordered delivery arrives at `max(clock so far, truth + delay)`.
    pub network_delay: f64,
    /// Reordering bound: at each step, any of the oldest `max_in_flight`
    /// undelivered messages may be delivered next. `1` is FIFO delivery;
    /// the schedule count grows combinatorially with the bound.
    pub max_in_flight: usize,
    /// Invariant 4's bound on `fairness_violations / messages` per trace.
    pub max_violation_rate: f64,
    /// Hard cap on enumerated schedules (a runaway-model guard, reported
    /// as [`CheckReport::truncated`] when hit).
    pub max_schedules: usize,
}

/// One invariant failure on one trace.
#[derive(Debug, Clone, PartialEq)]
pub enum InvariantViolation {
    /// Invariant 1: a client's emitted timestamps went backwards.
    NonMonotoneEmission {
        /// The offending client.
        client: ClientId,
        /// The timestamp emitted earlier.
        earlier: f64,
        /// The smaller timestamp emitted later.
        later: f64,
    },
    /// Invariant 2: a submitted message never surfaced in any batch.
    MessageLost {
        /// The lost message.
        id: MessageId,
    },
    /// Invariant 2: a message appeared in more emitted slots than it was
    /// submitted.
    MessageDuplicated {
        /// The duplicated message.
        id: MessageId,
    },
    /// Invariant 3: an emitted batch differs from the from-scratch
    /// candidate over the same pending set.
    BoundaryMismatch {
        /// The batch the from-scratch solve produces (sorted ids).
        expected: Vec<MessageId>,
        /// The batch actually emitted (sorted ids).
        emitted: Vec<MessageId>,
    },
    /// Invariant 4: the trace's fairness-violation rate exceeds the bound.
    ViolationRateExceeded {
        /// Fairness violations counted by the sequencer.
        violations: usize,
        /// Messages submitted in the trace.
        messages: usize,
        /// The configured bound on `violations / messages`.
        bound: f64,
    },
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvariantViolation::NonMonotoneEmission {
                client,
                earlier,
                later,
            } => write!(
                f,
                "{client} emitted {later} after {earlier} (non-monotone emission)"
            ),
            InvariantViolation::MessageLost { id } => write!(f, "{id} was never emitted"),
            InvariantViolation::MessageDuplicated { id } => {
                write!(f, "{id} was emitted more than once")
            }
            InvariantViolation::BoundaryMismatch { expected, emitted } => write!(
                f,
                "emitted batch {emitted:?} differs from the from-scratch candidate {expected:?}"
            ),
            InvariantViolation::ViolationRateExceeded {
                violations,
                messages,
                bound,
            } => write!(
                f,
                "{violations}/{messages} fairness violations exceeds the {bound} rate bound"
            ),
        }
    }
}

/// What one replayed schedule produced — the trace the pure invariants are
/// evaluated on. Exposed (with [`check_trace`]) so tests can corrupt a
/// trace and prove the invariants actually fire.
#[derive(Debug, Clone)]
pub struct RunTrace {
    /// The messages as submitted (after per-client floor clamping), in
    /// delivery order.
    pub submitted: Vec<Message>,
    /// Every batch emitted, in emission order.
    pub emitted: Vec<EmittedBatch>,
    /// The sequencer's final counters.
    pub stats: OnlineStats,
}

/// An invariant failure tagged with the schedule that produced it.
#[derive(Debug, Clone)]
pub struct ScheduleViolation {
    /// Indices into [`ModelSpec::messages`], in delivery order.
    pub schedule: Vec<usize>,
    /// The failed invariant.
    pub violation: InvariantViolation,
}

/// Result of an exhaustive check.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Schedules enumerated and replayed.
    pub schedules: usize,
    /// Whether enumeration stopped at [`ModelSpec::max_schedules`].
    pub truncated: bool,
    /// Every invariant failure found, tagged with its schedule.
    pub violations: Vec<ScheduleViolation>,
}

impl CheckReport {
    /// Whether every enumerated schedule satisfied every invariant.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Evaluate the pure trace invariants (1, 2 and 4 — monotonicity, no
/// loss/duplication, bounded violation rate) on a finished trace.
pub fn check_trace(trace: &RunTrace, max_violation_rate: f64) -> Vec<InvariantViolation> {
    let mut found = Vec::new();

    // Invariant 1: per-client monotone emission.
    let mut last_ts: HashMap<ClientId, f64> = HashMap::new();
    for batch in &trace.emitted {
        for m in &batch.messages {
            if let Some(&prev) = last_ts.get(&m.client) {
                if m.timestamp < prev {
                    found.push(InvariantViolation::NonMonotoneEmission {
                        client: m.client,
                        earlier: prev,
                        later: m.timestamp,
                    });
                }
            }
            last_ts.insert(m.client, m.timestamp);
        }
    }

    // Invariant 2: emitted multiset == submitted multiset.
    let mut emitted_count: HashMap<MessageId, usize> = HashMap::new();
    for batch in &trace.emitted {
        for m in &batch.messages {
            *emitted_count.entry(m.id).or_insert(0) += 1;
        }
    }
    for m in &trace.submitted {
        match emitted_count.get_mut(&m.id) {
            Some(n) if *n > 0 => *n -= 1,
            _ => found.push(InvariantViolation::MessageLost { id: m.id }),
        }
    }
    let mut extras: Vec<(MessageId, usize)> =
        emitted_count.into_iter().filter(|&(_, n)| n > 0).collect();
    extras.sort();
    for (id, n) in extras {
        for _ in 0..n {
            found.push(InvariantViolation::MessageDuplicated { id });
        }
    }

    // Invariant 4: bounded fairness-violation rate.
    if !trace.submitted.is_empty() {
        let rate = trace.stats.fairness_violations as f64 / trace.submitted.len() as f64;
        if rate > max_violation_rate {
            found.push(InvariantViolation::ViolationRateExceeded {
                violations: trace.stats.fairness_violations,
                messages: trace.submitted.len(),
                bound: max_violation_rate,
            });
        }
    }

    found
}

fn truth_of(m: &Message) -> f64 {
    m.true_time.unwrap_or(m.timestamp)
}

impl ModelSpec {
    /// A model with default bounds: unit network delay, a reordering window
    /// of 3, no violation-rate bound (1.0 — every submission may violate),
    /// and a 20 000-schedule cap.
    pub fn new(offsets: Vec<(ClientId, OffsetDistribution)>, messages: Vec<Message>) -> Self {
        ModelSpec {
            offsets,
            messages,
            config: SequencerConfig::default(),
            network_delay: 1.0,
            max_in_flight: 3,
            max_violation_rate: 1.0,
            max_schedules: 20_000,
        }
    }

    /// Set the sequencer configuration under test.
    pub fn with_config(mut self, config: SequencerConfig) -> Self {
        self.config = config;
        self
    }

    /// Set the reordering bound (`1` = FIFO delivery only).
    pub fn with_max_in_flight(mut self, max_in_flight: usize) -> Self {
        assert!(max_in_flight >= 1, "need at least one deliverable message");
        self.max_in_flight = max_in_flight;
        self
    }

    /// Set invariant 4's bound on the per-trace fairness-violation rate.
    pub fn with_max_violation_rate(mut self, max_violation_rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&max_violation_rate),
            "rate bound must be in [0, 1]"
        );
        self.max_violation_rate = max_violation_rate;
        self
    }

    /// Set the fixed network delay.
    pub fn with_network_delay(mut self, network_delay: f64) -> Self {
        assert!(
            network_delay >= 0.0 && network_delay.is_finite(),
            "delay must be finite and non-negative"
        );
        self.network_delay = network_delay;
        self
    }

    /// Set the schedule-enumeration cap.
    pub fn with_max_schedules(mut self, max_schedules: usize) -> Self {
        assert!(max_schedules >= 1, "need at least one schedule");
        self.max_schedules = max_schedules;
        self
    }

    /// Enumerate every admissible delivery schedule, replay each through a
    /// real [`OnlineSequencer`], and evaluate all four invariants.
    ///
    /// # Errors
    ///
    /// Errors propagate from replay (unknown client, duplicate id, …) —
    /// they indicate a malformed model, not an invariant violation.
    pub fn check(&self) -> Result<CheckReport, CoreError> {
        assert!(
            !self.config.stochastic_cycle_breaking,
            "the boundary-consistency invariant requires a deterministic config"
        );
        // Deliveries are chosen among messages ordered by ground truth.
        let mut by_truth: Vec<usize> = (0..self.messages.len()).collect();
        by_truth.sort_by(|&a, &b| {
            truth_of(&self.messages[a])
                .partial_cmp(&truth_of(&self.messages[b]))
                .expect("finite true times")
        });

        let mut report = CheckReport {
            schedules: 0,
            truncated: false,
            violations: Vec::new(),
        };
        let mut delivered = vec![false; self.messages.len()];
        let mut schedule: Vec<usize> = Vec::with_capacity(self.messages.len());
        self.explore(&by_truth, &mut delivered, &mut schedule, &mut report)?;
        Ok(report)
    }

    /// DFS over the schedule space (see [`check`](Self::check)).
    fn explore(
        &self,
        by_truth: &[usize],
        delivered: &mut Vec<bool>,
        schedule: &mut Vec<usize>,
        report: &mut CheckReport,
    ) -> Result<(), CoreError> {
        if report.truncated {
            return Ok(());
        }
        if schedule.len() == self.messages.len() {
            report.schedules += 1;
            let (trace, mut violations) = self.replay(schedule)?;
            violations.extend(check_trace(&trace, self.max_violation_rate));
            for violation in violations {
                report.violations.push(ScheduleViolation {
                    schedule: schedule.clone(),
                    violation,
                });
            }
            if report.schedules >= self.max_schedules {
                report.truncated = true;
            }
            return Ok(());
        }
        // The choice set: among the oldest `max_in_flight` undelivered
        // messages (by ground truth), each client's earliest one — per-client
        // channels deliver in FIFO order.
        let mut choices: Vec<usize> = Vec::new();
        let mut frontier = 0usize;
        let mut seen_clients: Vec<ClientId> = Vec::new();
        for &idx in by_truth.iter().filter(|&&i| !delivered[i]) {
            let client = self.messages[idx].client;
            if !seen_clients.contains(&client) {
                seen_clients.push(client);
                choices.push(idx);
            }
            frontier += 1;
            if frontier == self.max_in_flight {
                break;
            }
        }
        for idx in choices {
            delivered[idx] = true;
            schedule.push(idx);
            self.explore(by_truth, delivered, schedule, report)?;
            schedule.pop();
            delivered[idx] = false;
        }
        Ok(())
    }

    /// Replay one delivery schedule (indices into [`ModelSpec::messages`])
    /// through a fresh sequencer, checking boundary consistency
    /// (invariant 3) at every emission. Returns the trace and any boundary
    /// violations found.
    ///
    /// Replay mirrors the sim runner's semantics: arrivals happen at
    /// `max(clock so far, truth + network_delay)`; per-client timestamps are
    /// clamped to the client's floor (an earlier heartbeat may have advanced
    /// past a reordered timestamp); after each delivery, every client whose
    /// undelivered messages all lie in the future heartbeats at the round's
    /// true time; the stream closes with past-every-horizon heartbeats, a
    /// final tick and a flush.
    ///
    /// # Errors
    ///
    /// Propagates sequencer rejections (unknown client, duplicate id) —
    /// a malformed model, not an invariant violation.
    pub fn replay(
        &self,
        schedule: &[usize],
    ) -> Result<(RunTrace, Vec<InvariantViolation>), CoreError> {
        let mut seq = OnlineSequencer::new(self.config);
        for (client, dist) in &self.offsets {
            seq.register_client(*client, dist.clone());
        }
        let mut undelivered: HashMap<ClientId, Vec<f64>> = HashMap::new();
        for m in &self.messages {
            undelivered.entry(m.client).or_default().push(truth_of(m));
        }

        let mut clock = 0.0_f64;
        let mut floors: HashMap<ClientId, f64> = HashMap::new();
        let mut submitted: Vec<Message> = Vec::new();
        let mut pending: Vec<Message> = Vec::new();
        let mut violations: Vec<InvariantViolation> = Vec::new();

        for &idx in schedule {
            let m = &self.messages[idx];
            let t = truth_of(m);
            clock = clock.max(t + self.network_delay);

            let floor = floors.get(&m.client).copied().unwrap_or(f64::NEG_INFINITY);
            let ts = m.timestamp.max(floor);
            floors.insert(m.client, ts);
            let msg = Message {
                id: m.id,
                client: m.client,
                timestamp: ts,
                true_time: m.true_time,
            };
            if let Some(v) = undelivered.get_mut(&m.client) {
                if let Some(pos) = v.iter().position(|&u| u == t) {
                    v.remove(pos);
                }
            }
            submitted.push(msg.clone());
            pending.push(msg.clone());
            let batches = seq.submit(msg, clock)?;
            self.account(&seq, &batches, &mut pending, &mut violations)?;

            // Ordered channels: a client may heartbeat at this round's true
            // time only if none of its own undelivered messages would be
            // overtaken.
            for (client, _) in &self.offsets {
                if *client == m.client {
                    continue;
                }
                let blocked = undelivered
                    .get(client)
                    .is_some_and(|v| v.iter().any(|&u| u <= t));
                if blocked {
                    continue;
                }
                let floor = floors.get(client).copied().unwrap_or(f64::NEG_INFINITY);
                let hb = t.max(floor);
                floors.insert(*client, hb);
                let batches = seq.heartbeat(*client, hb, clock)?;
                self.account(&seq, &batches, &mut pending, &mut violations)?;
            }
        }

        // Close the stream: every client heartbeats past every horizon, the
        // clock passes every safe-emission time, and a flush drains any
        // leftovers — the sim runner's shutdown sequence.
        let max_ts = floors.values().fold(0.0_f64, |a, &b| a.max(b));
        let max_sd = self
            .offsets
            .iter()
            .map(|(_, d)| d.std_dev())
            .fold(0.0_f64, f64::max);
        let horizon = max_ts + 1000.0 * max_sd.max(1.0);
        for (client, _) in &self.offsets {
            let batches = seq.heartbeat(*client, horizon, clock)?;
            self.account(&seq, &batches, &mut pending, &mut violations)?;
        }
        let batches = seq.tick(horizon + self.network_delay);
        self.account(&seq, &batches, &mut pending, &mut violations)?;
        let batches = seq.flush();
        self.account(&seq, &batches, &mut pending, &mut violations)?;

        let stats = seq.stats();
        Ok((
            RunTrace {
                submitted,
                emitted: seq.take_emitted(),
                stats,
            },
            violations,
        ))
    }

    /// Check invariant 3 for each batch just emitted: the batch must equal
    /// the candidate a from-scratch sequencing of the pre-emission pending
    /// set produces. Consumes the batches from the shadow pending list.
    fn account(
        &self,
        seq: &OnlineSequencer,
        batches: &[EmittedBatch],
        pending: &mut Vec<Message>,
        violations: &mut Vec<InvariantViolation>,
    ) -> Result<(), CoreError> {
        for batch in batches {
            let matrix = PrecedenceMatrix::compute_parallel(pending, seq.registry(), 1)?;
            let mut core = SequencingCore::new(self.config);
            core.load(&matrix);
            let mut expected: Vec<MessageId> = core
                .candidate_indices(&matrix, None)
                .unwrap_or_default()
                .into_iter()
                .map(|i| pending[i].id)
                .collect();
            expected.sort();
            let mut got = batch.message_ids();
            got.sort();
            if expected != got {
                violations.push(InvariantViolation::BoundaryMismatch {
                    expected,
                    emitted: got.clone(),
                });
            }
            pending.retain(|m| !got.contains(&m.id));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_offsets() -> Vec<(ClientId, OffsetDistribution)> {
        (0..3)
            .map(|c| (ClientId(c), OffsetDistribution::gaussian(0.0, 2.0)))
            .collect()
    }

    fn tiny_messages() -> Vec<Message> {
        // Two messages per client, spread enough to emit in several batches.
        let mut v = Vec::new();
        let mut id = 0;
        for round in 0..2 {
            for c in 0..3u32 {
                let t = 10.0 + round as f64 * 40.0 + c as f64 * 2.0;
                v.push(Message::with_true_time(MessageId(id), ClientId(c), t, t));
                id += 1;
            }
        }
        v
    }

    #[test]
    fn fifo_model_has_one_schedule_and_passes() {
        let spec = ModelSpec::new(tiny_offsets(), tiny_messages()).with_max_in_flight(1);
        let report = spec.check().unwrap();
        assert_eq!(report.schedules, 1);
        assert!(!report.truncated);
        assert!(report.ok(), "{:?}", report.violations);
    }

    #[test]
    fn reordered_model_enumerates_many_schedules_and_passes() {
        let spec = ModelSpec::new(tiny_offsets(), tiny_messages()).with_max_in_flight(3);
        let report = spec.check().unwrap();
        assert!(report.schedules > 50, "only {} schedules", report.schedules);
        assert!(!report.truncated);
        assert!(report.ok(), "{:?}", report.violations);
    }

    #[test]
    fn schedule_cap_truncates() {
        let spec = ModelSpec::new(tiny_offsets(), tiny_messages())
            .with_max_in_flight(3)
            .with_max_schedules(5);
        let report = spec.check().unwrap();
        assert!(report.truncated);
        assert_eq!(report.schedules, 5);
    }

    #[test]
    fn corrupted_trace_loss_and_duplication_fire() {
        let spec = ModelSpec::new(tiny_offsets(), tiny_messages()).with_max_in_flight(1);
        let schedule: Vec<usize> = (0..spec.messages.len()).collect();
        let (mut trace, boundary) = spec.replay(&schedule).unwrap();
        assert!(boundary.is_empty(), "{boundary:?}");
        assert!(check_trace(&trace, 1.0).is_empty());

        // Corrupt the trace: drop one emitted message (loss) and double
        // another (duplication).
        let dropped = trace.emitted[0].messages.remove(0);
        let last = trace.emitted.last_mut().unwrap();
        let dup = last.messages[0].clone();
        last.messages.push(dup.clone());

        let found = check_trace(&trace, 1.0);
        assert!(found.contains(&InvariantViolation::MessageLost { id: dropped.id }));
        assert!(found.contains(&InvariantViolation::MessageDuplicated { id: dup.id }));
    }

    #[test]
    fn corrupted_trace_non_monotone_emission_fires() {
        let spec = ModelSpec::new(tiny_offsets(), tiny_messages()).with_max_in_flight(1);
        let schedule: Vec<usize> = (0..spec.messages.len()).collect();
        let (mut trace, _) = spec.replay(&schedule).unwrap();
        // Rewind one client's last emission behind its earlier one.
        let client = trace.emitted[0].messages[0].client;
        let m = trace
            .emitted
            .iter_mut()
            .rev()
            .flat_map(|b| b.messages.iter_mut())
            .find(|m| m.client == client)
            .unwrap();
        m.timestamp = -1e9;
        let found = check_trace(&trace, 1.0);
        assert!(found
            .iter()
            .any(|v| matches!(v, InvariantViolation::NonMonotoneEmission { .. })));
    }

    #[test]
    fn violation_rate_bound_fires_on_inflated_stats() {
        let spec = ModelSpec::new(tiny_offsets(), tiny_messages()).with_max_in_flight(1);
        let schedule: Vec<usize> = (0..spec.messages.len()).collect();
        let (mut trace, _) = spec.replay(&schedule).unwrap();
        trace.stats.fairness_violations = trace.submitted.len();
        let found = check_trace(&trace, 0.5);
        assert!(found
            .iter()
            .any(|v| matches!(v, InvariantViolation::ViolationRateExceeded { .. })));
    }

    #[test]
    fn violation_display_is_readable() {
        let v = InvariantViolation::ViolationRateExceeded {
            violations: 2,
            messages: 10,
            bound: 0.1,
        };
        assert_eq!(
            v.to_string(),
            "2/10 fairness violations exceeds the 0.1 rate bound"
        );
        let v = InvariantViolation::MessageLost { id: MessageId(7) };
        assert_eq!(v.to_string(), "msg7 was never emitted");
    }
}
