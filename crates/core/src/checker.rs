//! Small-model exhaustive checking of the online sequencer's ordering
//! invariants.
//!
//! Sampled simulations (the `tommy-sim` runner) show the sequencer behaves
//! well *on the schedules the simulator happens to draw*. This module makes
//! the complementary TLA-style argument on tiny models: enumerate **every**
//! admissible delivery schedule of a small workload — bounded reordering
//! over per-client FIFO channels — replay each one through a real
//! [`OnlineSequencer`], and assert four invariants on every trace:
//!
//! 1. **Per-client emission monotonicity** — flattening emitted batches in
//!    emission order, each client's timestamps never decrease (the ordered
//!    per-channel guarantee of §3.5 survives sequencing);
//! 2. **No loss, no duplication** — the emitted multiset of message ids
//!    equals the submitted multiset (emission drops nothing and repeats
//!    nothing);
//! 3. **Boundary consistency** — every emitted batch equals the candidate
//!    batch a *from-scratch* sequencing of the pre-emission pending set
//!    produces (the incrementally maintained matrix/tournament/boundary
//!    state never diverges from the one-shot Appendix C closure);
//! 4. **Bounded fairness-violation rate** — the fraction of submissions
//!    flagged as fairness violations stays within the model's bound.
//!
//! The schedule space is what a bounded-reordering network can produce: at
//! each step any of the oldest [`ModelSpec::max_in_flight`] undelivered
//! messages (per-client FIFO respected) may be delivered next. Clients
//! heartbeat whenever doing so cannot overtake one of their own undelivered
//! messages, mirroring the ordered-channel semantics of the sim runner.
//!
//! Invariants 1, 2 and 4 are pure trace predicates, exposed through
//! [`check_trace`] so tests can also prove the checker *can* fail (corrupt
//! a trace, watch it fire); invariant 3 is checked during replay, where the
//! pre-emission pending set is still known. See `ARCHITECTURE.md`, "Threat
//! model & degradation", for the row-per-invariant table.
//!
//! ## State-space reductions
//!
//! Two sound reductions (on by default, [`ModelSpec::with_reductions`] to
//! disable) keep larger models enumerable:
//!
//! * **Symmetry** — clients with identical claimed distributions *and*
//!   bit-identical `(timestamp, true-time)` message sequences are fully
//!   exchangeable: replay is equivariant under permuting them and every
//!   invariant is client-permutation-invariant, so enumeration explores only
//!   the canonical interleaving per orbit (a client's *first* delivery is
//!   admitted only if it is the least unused member of its orbit). Pruned
//!   branches are counted in [`CheckReport::symmetry_pruned`].
//! * **Partial order over heartbeats** — with liveness disabled, a heartbeat
//!   whose clamped reading does not advance the client's floor, arriving at
//!   the current clock right after a sequencer call that emitted nothing, is
//!   a provable no-op (watermarks keep maxima, the candidate cache is
//!   untouched, and the previous `try_emit` already ran to fixpoint under
//!   identical inputs) — replay elides it instead of making the call.
//!   Elisions are counted in [`CheckReport::heartbeats_elided`].
//!
//! On top of the base invariants, [`ModelSpec::check_collusive`] checks a
//! *collusive* model end to end: every schedule must leave every listed
//! colluder quarantined by the cross-client correlation defense and every
//! honest client untouched (see [`crate::defense`]). And
//! [`ModelSpec::check_sharded`] replays every schedule through the
//! [`ShardedSequencer`] instead, asserting the cross-shard margin
//! invariant — no watermark-approved release ever precedes a cross-shard
//! message whose probability of having happened first exceeds the
//! threshold (see [`crate::sequencer::sharded`], "Merge watermark
//! invariant").

use std::collections::{BTreeMap, HashMap, HashSet};

use tommy_stats::distribution::{Distribution, OffsetDistribution};

use crate::config::{LivenessConfig, SequencerConfig};
use crate::defense::TrustLevel;
use crate::error::CoreError;
use crate::message::{ClientId, Message, MessageId};
use crate::precedence::PrecedenceMatrix;
use crate::registry::DistributionRegistry;
use crate::sequencer::online::{EmittedBatch, OnlineSequencer, OnlineStats};
use crate::sequencer::sharded::ShardedSequencer;
use crate::sequencer::SequencingCore;
use crate::session::{RecoveryPolicy, SequenceValidator, SessionAction, SessionCounters};

/// A small model: a fixed client population, a fixed message set, and the
/// network/bound parameters defining the schedule space.
#[derive(Debug, Clone)]
pub struct ModelSpec {
    /// Per-client offset distributions *as registered with the sequencer*
    /// (under a misreport attack these are the claims, not the truth).
    pub offsets: Vec<(ClientId, OffsetDistribution)>,
    /// The workload, with ground-truth times attached
    /// ([`Message::with_true_time`]); per-client timestamps must be
    /// monotone in true-time order (the tagging/attack pipelines guarantee
    /// this, and replay clamps defensively).
    pub messages: Vec<Message>,
    /// Sequencer configuration under test. Must be deterministic
    /// ([`SequencerConfig::stochastic_cycle_breaking`] off): the
    /// boundary-consistency invariant compares against an independent
    /// from-scratch solve, which under stochastic repairs would
    /// legitimately differ.
    pub config: SequencerConfig,
    /// Fixed network delay added to a message's true time to form its
    /// earliest arrival; the sequencer clock never runs backwards, so a
    /// reordered delivery arrives at `max(clock so far, truth + delay)`.
    pub network_delay: f64,
    /// Reordering bound: at each step, any of the oldest `max_in_flight`
    /// undelivered messages may be delivered next. `1` is FIFO delivery;
    /// the schedule count grows combinatorially with the bound.
    pub max_in_flight: usize,
    /// Invariant 4's bound on `fairness_violations / messages` per trace.
    pub max_violation_rate: f64,
    /// Hard cap on enumerated schedules (a runaway-model guard, reported
    /// as [`CheckReport::truncated`] when hit).
    pub max_schedules: usize,
    /// Whether the sound state-space reductions (client-orbit symmetry
    /// canonicalization and no-op heartbeat elision — see the module docs)
    /// are applied. On by default; disable to cross-validate the reductions
    /// against the full space on small models.
    pub reductions: bool,
}

/// One invariant failure on one trace.
#[derive(Debug, Clone, PartialEq)]
pub enum InvariantViolation {
    /// Invariant 1: a client's emitted timestamps went backwards.
    NonMonotoneEmission {
        /// The offending client.
        client: ClientId,
        /// The timestamp emitted earlier.
        earlier: f64,
        /// The smaller timestamp emitted later.
        later: f64,
    },
    /// Invariant 2: a submitted message never surfaced in any batch.
    MessageLost {
        /// The lost message.
        id: MessageId,
    },
    /// Invariant 2: a message appeared in more emitted slots than it was
    /// submitted.
    MessageDuplicated {
        /// The duplicated message.
        id: MessageId,
    },
    /// Invariant 3: an emitted batch differs from the from-scratch
    /// candidate over the same pending set.
    BoundaryMismatch {
        /// The batch the from-scratch solve produces (sorted ids).
        expected: Vec<MessageId>,
        /// The batch actually emitted (sorted ids).
        emitted: Vec<MessageId>,
    },
    /// Invariant 4: the trace's fairness-violation rate exceeds the bound.
    ViolationRateExceeded {
        /// Fairness violations counted by the sequencer.
        violations: usize,
        /// Messages submitted in the trace.
        messages: usize,
        /// The configured bound on `violations / messages`.
        bound: f64,
    },
    /// Fault invariant: a delivery fault (dropped frame) left no trace in
    /// the session layer — the stream advanced past the hole without
    /// counting a gap, so the loss would go unnoticed.
    UndetectedGap {
        /// The client whose stream silently skipped a hole.
        client: ClientId,
    },
    /// Fault invariant: messages the sequencer accepted were still pending
    /// after the liveness horizon (final tick past the staleness deadline)
    /// — the watermark stalled instead of evicting the failed client.
    WatermarkStalled {
        /// How many accepted messages never emitted.
        pending: usize,
    },
    /// Collusion invariant ([`ModelSpec::check_collusive`]): a listed
    /// colluder finished the replay unquarantined — the correlation
    /// defense missed it on this schedule.
    ColluderMissed {
        /// The undetected colluder.
        client: ClientId,
    },
    /// Collusion invariant: an honest client finished the replay
    /// quarantined — the defense false-positived under collusive load.
    HonestQuarantined {
        /// The wrongly quarantined client.
        client: ClientId,
    },
    /// Sharded invariant ([`ModelSpec::check_sharded`]): a message released
    /// through the cross-shard merge watermark preceded a cross-shard
    /// message whose probability of having happened first exceeds the
    /// batching threshold — the combiner emitted out of margin.
    CrossShardMarginExceeded {
        /// The message released earlier.
        earlier: MessageId,
        /// The cross-shard message released later.
        later: MessageId,
        /// `p(later ≺ earlier)` under the claimed distributions.
        probability: f64,
        /// The threshold the merge watermark must bound that probability by.
        threshold: f64,
    },
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvariantViolation::NonMonotoneEmission {
                client,
                earlier,
                later,
            } => write!(
                f,
                "{client} emitted {later} after {earlier} (non-monotone emission)"
            ),
            InvariantViolation::MessageLost { id } => write!(f, "{id} was never emitted"),
            InvariantViolation::MessageDuplicated { id } => {
                write!(f, "{id} was emitted more than once")
            }
            InvariantViolation::BoundaryMismatch { expected, emitted } => write!(
                f,
                "emitted batch {emitted:?} differs from the from-scratch candidate {expected:?}"
            ),
            InvariantViolation::ViolationRateExceeded {
                violations,
                messages,
                bound,
            } => write!(
                f,
                "{violations}/{messages} fairness violations exceeds the {bound} rate bound"
            ),
            InvariantViolation::UndetectedGap { client } => {
                write!(f, "{client}'s stream passed a dropped frame without detecting a gap")
            }
            InvariantViolation::WatermarkStalled { pending } => write!(
                f,
                "{pending} accepted messages still pending after the liveness horizon"
            ),
            InvariantViolation::ColluderMissed { client } => {
                write!(f, "colluder {client} was never quarantined")
            }
            InvariantViolation::HonestQuarantined { client } => {
                write!(f, "honest {client} was quarantined under collusive load")
            }
            InvariantViolation::CrossShardMarginExceeded {
                earlier,
                later,
                probability,
                threshold,
            } => write!(
                f,
                "{earlier} released before cross-shard {later} with p(later first) = \
                 {probability} > threshold {threshold}"
            ),
        }
    }
}

/// What one replayed schedule produced — the trace the pure invariants are
/// evaluated on. Exposed (with [`check_trace`]) so tests can corrupt a
/// trace and prove the invariants actually fire.
#[derive(Debug, Clone)]
pub struct RunTrace {
    /// The messages as submitted (after per-client floor clamping), in
    /// delivery order.
    pub submitted: Vec<Message>,
    /// Every batch emitted, in emission order.
    pub emitted: Vec<EmittedBatch>,
    /// The sequencer's final counters.
    pub stats: OnlineStats,
    /// Clients the defense had quarantined by the end of the replay
    /// (sorted; empty when the defense is disabled).
    pub quarantined: Vec<ClientId>,
}

/// An invariant failure tagged with the schedule that produced it.
#[derive(Debug, Clone)]
pub struct ScheduleViolation {
    /// Indices into [`ModelSpec::messages`], in delivery order.
    pub schedule: Vec<usize>,
    /// The failed invariant.
    pub violation: InvariantViolation,
}

/// Result of an exhaustive check.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Schedules enumerated and replayed.
    pub schedules: usize,
    /// Whether enumeration stopped at [`ModelSpec::max_schedules`].
    pub truncated: bool,
    /// Branches the symmetry reduction pruned during enumeration: each is a
    /// non-canonical first use of an exchangeable client whose entire
    /// subtree was skipped (0 when reductions are off or every orbit is a
    /// singleton).
    pub symmetry_pruned: u64,
    /// No-op heartbeats the partial-order reduction elided across every
    /// replay (0 when reductions are off or liveness is enabled).
    pub heartbeats_elided: u64,
    /// Every invariant failure found, tagged with its schedule.
    pub violations: Vec<ScheduleViolation>,
}

impl CheckReport {
    /// Whether every enumerated schedule satisfied every invariant.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Result of an exhaustive sharded check ([`ModelSpec::check_sharded`]).
#[derive(Debug, Clone)]
pub struct ShardedCheckReport {
    /// Schedules enumerated and replayed (reductions are disabled for
    /// sharded checks — shard assignment follows registration order, so
    /// clients on different shards are not exchangeable).
    pub schedules: usize,
    /// Whether enumeration stopped at [`ModelSpec::max_schedules`].
    pub truncated: bool,
    /// Cross-shard ordered message pairs whose margin was evaluated across
    /// every replay — the check is vacuous unless this is positive.
    pub cross_pairs_checked: u64,
    /// The largest `p(later ≺ earlier)` observed over every watermark-
    /// approved cross-shard ordered pair (flush-forced releases excluded).
    /// Bounded by the threshold when the merge watermark is sound.
    pub max_cross_probability: f64,
    /// Every invariant failure found, tagged with its schedule.
    pub violations: Vec<ScheduleViolation>,
}

impl ShardedCheckReport {
    /// Whether every enumerated schedule satisfied every invariant.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Evaluate the pure trace invariants (1, 2 and 4 — monotonicity, no
/// loss/duplication, bounded violation rate) on a finished trace.
pub fn check_trace(trace: &RunTrace, max_violation_rate: f64) -> Vec<InvariantViolation> {
    let mut found = Vec::new();

    // Invariant 1: per-client monotone emission.
    let mut last_ts: HashMap<ClientId, f64> = HashMap::new();
    for batch in &trace.emitted {
        for m in &batch.messages {
            if let Some(&prev) = last_ts.get(&m.client) {
                if m.timestamp < prev {
                    found.push(InvariantViolation::NonMonotoneEmission {
                        client: m.client,
                        earlier: prev,
                        later: m.timestamp,
                    });
                }
            }
            last_ts.insert(m.client, m.timestamp);
        }
    }

    // Invariant 2: emitted multiset == submitted multiset.
    let mut emitted_count: HashMap<MessageId, usize> = HashMap::new();
    for batch in &trace.emitted {
        for m in &batch.messages {
            *emitted_count.entry(m.id).or_insert(0) += 1;
        }
    }
    for m in &trace.submitted {
        match emitted_count.get_mut(&m.id) {
            Some(n) if *n > 0 => *n -= 1,
            _ => found.push(InvariantViolation::MessageLost { id: m.id }),
        }
    }
    let mut extras: Vec<(MessageId, usize)> =
        emitted_count.into_iter().filter(|&(_, n)| n > 0).collect();
    extras.sort();
    for (id, n) in extras {
        for _ in 0..n {
            found.push(InvariantViolation::MessageDuplicated { id });
        }
    }

    // Invariant 4: bounded fairness-violation rate.
    if !trace.submitted.is_empty() {
        let rate = trace.stats.fairness_violations as f64 / trace.submitted.len() as f64;
        if rate > max_violation_rate {
            found.push(InvariantViolation::ViolationRateExceeded {
                violations: trace.stats.fairness_violations,
                messages: trace.submitted.len(),
                bound: max_violation_rate,
            });
        }
    }

    found
}

fn truth_of(m: &Message) -> f64 {
    m.true_time.unwrap_or(m.timestamp)
}

/// The result of one schedule-space enumeration, with reduction accounting.
struct Enumeration {
    schedules: Vec<Vec<usize>>,
    truncated: bool,
    symmetry_pruned: u64,
}

/// What one sharded replay produced (see `ModelSpec::replay_sharded`).
struct ShardedReplay {
    trace: RunTrace,
    violations: Vec<InvariantViolation>,
    cross_pairs: u64,
    max_cross_probability: f64,
}

impl ModelSpec {
    /// A model with default bounds: unit network delay, a reordering window
    /// of 3, no violation-rate bound (1.0 — every submission may violate),
    /// and a 20 000-schedule cap.
    pub fn new(offsets: Vec<(ClientId, OffsetDistribution)>, messages: Vec<Message>) -> Self {
        ModelSpec {
            offsets,
            messages,
            config: SequencerConfig::default(),
            network_delay: 1.0,
            max_in_flight: 3,
            max_violation_rate: 1.0,
            max_schedules: 20_000,
            reductions: true,
        }
    }

    /// Set the sequencer configuration under test.
    pub fn with_config(mut self, config: SequencerConfig) -> Self {
        self.config = config;
        self
    }

    /// Set the reordering bound (`1` = FIFO delivery only).
    pub fn with_max_in_flight(mut self, max_in_flight: usize) -> Self {
        assert!(max_in_flight >= 1, "need at least one deliverable message");
        self.max_in_flight = max_in_flight;
        self
    }

    /// Set invariant 4's bound on the per-trace fairness-violation rate.
    pub fn with_max_violation_rate(mut self, max_violation_rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&max_violation_rate),
            "rate bound must be in [0, 1]"
        );
        self.max_violation_rate = max_violation_rate;
        self
    }

    /// Set the fixed network delay.
    pub fn with_network_delay(mut self, network_delay: f64) -> Self {
        assert!(
            network_delay >= 0.0 && network_delay.is_finite(),
            "delay must be finite and non-negative"
        );
        self.network_delay = network_delay;
        self
    }

    /// Set the schedule-enumeration cap.
    pub fn with_max_schedules(mut self, max_schedules: usize) -> Self {
        assert!(max_schedules >= 1, "need at least one schedule");
        self.max_schedules = max_schedules;
        self
    }

    /// Enable or disable the sound state-space reductions (symmetry
    /// canonicalization and heartbeat elision; see the module docs). On by
    /// default.
    pub fn with_reductions(mut self, reductions: bool) -> Self {
        self.reductions = reductions;
        self
    }

    /// Enumerate every admissible delivery schedule, replay each through a
    /// real [`OnlineSequencer`], and evaluate all four invariants.
    ///
    /// # Errors
    ///
    /// Errors propagate from replay (unknown client, duplicate id, …) —
    /// they indicate a malformed model, not an invariant violation.
    pub fn check(&self) -> Result<CheckReport, CoreError> {
        assert!(
            !self.config.stochastic_cycle_breaking,
            "the boundary-consistency invariant requires a deterministic config"
        );
        let enumeration = self.enumerate();
        let mut report = CheckReport {
            schedules: enumeration.schedules.len(),
            truncated: enumeration.truncated,
            symmetry_pruned: enumeration.symmetry_pruned,
            heartbeats_elided: 0,
            violations: Vec::new(),
        };
        for schedule in &enumeration.schedules {
            let (trace, mut violations, elided) = self.replay_full(schedule)?;
            report.heartbeats_elided += elided;
            violations.extend(check_trace(&trace, self.max_violation_rate));
            for violation in violations {
                report.violations.push(ScheduleViolation {
                    schedule: schedule.clone(),
                    violation,
                });
            }
        }
        Ok(report)
    }

    /// Exhaustively check a *collusive* model: on top of the pure trace
    /// invariants, every enumerated schedule must end with every listed
    /// colluder quarantined by the defense ([`InvariantViolation::ColluderMissed`]
    /// otherwise) and every other client unquarantined
    /// ([`InvariantViolation::HonestQuarantined`] otherwise). The model's
    /// [`SequencerConfig`] must have the defense enabled; the colluders'
    /// forged message sequences make them exchangeable, so the symmetry
    /// reduction collapses their interleavings too.
    ///
    /// # Errors
    ///
    /// Errors propagate from replay — they indicate a malformed model, not
    /// an invariant violation.
    pub fn check_collusive(&self, colluders: &[ClientId]) -> Result<CheckReport, CoreError> {
        assert!(
            self.config.defense.enabled,
            "a collusive check requires the defense enabled"
        );
        assert!(
            !self.config.stochastic_cycle_breaking,
            "the boundary-consistency invariant requires a deterministic config"
        );
        let enumeration = self.enumerate();
        let mut report = CheckReport {
            schedules: enumeration.schedules.len(),
            truncated: enumeration.truncated,
            symmetry_pruned: enumeration.symmetry_pruned,
            heartbeats_elided: 0,
            violations: Vec::new(),
        };
        for schedule in &enumeration.schedules {
            let (trace, mut violations, elided) = self.replay_full(schedule)?;
            report.heartbeats_elided += elided;
            violations.extend(check_trace(&trace, self.max_violation_rate));
            for (client, _) in &self.offsets {
                let quarantined = trace.quarantined.contains(client);
                if colluders.contains(client) {
                    if !quarantined {
                        violations.push(InvariantViolation::ColluderMissed { client: *client });
                    }
                } else if quarantined {
                    violations.push(InvariantViolation::HonestQuarantined { client: *client });
                }
            }
            for violation in violations {
                report.violations.push(ScheduleViolation {
                    schedule: schedule.clone(),
                    violation,
                });
            }
        }
        Ok(report)
    }

    /// Exhaustively check the **sharded** sequencer: enumerate every
    /// admissible delivery schedule (reductions disabled — shard assignment
    /// follows registration order, so clients on different shards are not
    /// exchangeable and orbit canonicalization would be unsound), replay
    /// each through a [`ShardedSequencer`] with `shards` shards, and assert:
    ///
    /// 1. the pure trace invariants (per-client monotone emission, no loss,
    ///    no duplication, bounded violation rate);
    /// 2. the **cross-shard margin invariant**: for every pair of messages
    ///    `(i, j)` on different shards with `i` released in a strictly
    ///    earlier batch than `j`, if `i`'s batch was released through the
    ///    merge watermark (not forced out by the closing flush), then
    ///    `p(j ≺ i) ≤ threshold + 1e-9` under the claimed distributions —
    ///    the fairness bound the merge window `w = z_θ·√2·σ_min` is derived
    ///    to guarantee (see `sequencer::sharded`).
    ///
    /// The report carries [`ShardedCheckReport::cross_pairs_checked`] and
    /// the observed [`ShardedCheckReport::max_cross_probability`] so a test
    /// can also assert the check was not vacuous.
    ///
    /// # Errors
    ///
    /// Errors propagate from replay (unknown client, duplicate id, a
    /// rejected event) — they indicate a malformed model, not an invariant
    /// violation.
    pub fn check_sharded(&self, shards: usize) -> Result<ShardedCheckReport, CoreError> {
        assert!(
            !self.config.stochastic_cycle_breaking,
            "sharded checks require a deterministic config"
        );
        let enumeration = {
            let mut unreduced = self.clone();
            unreduced.reductions = false;
            unreduced.enumerate()
        };
        let mut report = ShardedCheckReport {
            schedules: enumeration.schedules.len(),
            truncated: enumeration.truncated,
            cross_pairs_checked: 0,
            max_cross_probability: 0.0,
            violations: Vec::new(),
        };
        for schedule in &enumeration.schedules {
            let outcome = self.replay_sharded(schedule, shards)?;
            report.cross_pairs_checked += outcome.cross_pairs;
            report.max_cross_probability =
                report.max_cross_probability.max(outcome.max_cross_probability);
            let mut violations = outcome.violations;
            violations.extend(check_trace(&outcome.trace, self.max_violation_rate));
            for violation in violations {
                report.violations.push(ScheduleViolation {
                    schedule: schedule.clone(),
                    violation,
                });
            }
        }
        Ok(report)
    }

    /// Replay one delivery schedule through a [`ShardedSequencer`] with
    /// `shards` shards (`0` is clamped to 1 so replays stay machine-
    /// independent), mirroring [`replay`](Self::replay)'s semantics —
    /// clamped monotone per-client timestamps, ordered-channel heartbeats,
    /// the same stream close — with the wrapper driven after every event.
    /// Checks the cross-shard margin invariant over the released order.
    fn replay_sharded(
        &self,
        schedule: &[usize],
        shards: usize,
    ) -> Result<ShardedReplay, CoreError> {
        let config = self.config.with_shards(shards.max(1));
        let mut seq = ShardedSequencer::new(config);
        let mut registry = DistributionRegistry::new();
        for (client, dist) in &self.offsets {
            seq.register_client(*client, dist.clone());
            registry.register(*client, dist.clone());
        }
        let mut undelivered: HashMap<ClientId, Vec<f64>> = HashMap::new();
        for m in &self.messages {
            undelivered.entry(m.client).or_default().push(truth_of(m));
        }

        let mut clock = 0.0_f64;
        let mut floors: HashMap<ClientId, f64> = HashMap::new();
        let mut submitted: Vec<Message> = Vec::new();
        for &idx in schedule {
            let m = &self.messages[idx];
            let t = truth_of(m);
            clock = clock.max(t + self.network_delay);

            let floor = floors.get(&m.client).copied().unwrap_or(f64::NEG_INFINITY);
            let ts = m.timestamp.max(floor);
            floors.insert(m.client, ts);
            let msg = Message {
                id: m.id,
                client: m.client,
                timestamp: ts,
                true_time: m.true_time,
            };
            if let Some(v) = undelivered.get_mut(&m.client) {
                if let Some(pos) = v.iter().position(|&u| u == t) {
                    v.remove(pos);
                }
            }
            submitted.push(msg.clone());
            seq.submit(msg, clock)?;
            seq.drive(clock);

            for (client, _) in &self.offsets {
                if *client == m.client {
                    continue;
                }
                let blocked = undelivered
                    .get(client)
                    .is_some_and(|v| v.iter().any(|&u| u <= t));
                if blocked {
                    continue;
                }
                let floor = floors.get(client).copied().unwrap_or(f64::NEG_INFINITY);
                let hb = t.max(floor);
                floors.insert(*client, hb);
                seq.heartbeat(*client, hb, clock)?;
                seq.drive(clock);
            }
        }

        // Close the stream exactly like the single-engine replay.
        let max_ts = floors.values().fold(0.0_f64, |a, &b| a.max(b));
        let max_sd = self
            .offsets
            .iter()
            .map(|(_, d)| d.std_dev())
            .fold(0.0_f64, f64::max);
        let horizon = max_ts + 1000.0 * max_sd.max(1.0);
        for (client, _) in &self.offsets {
            seq.heartbeat(*client, horizon, clock)?;
        }
        seq.tick(horizon + self.network_delay);
        // Batches released up to here were approved by the merge watermark
        // and owe the margin bound; the flush force-drains the remainder.
        let watermark_batches = seq.emitted().len();
        seq.flush();
        if let Some(rejection) = seq.take_rejections().into_iter().next() {
            // Replay clamps timestamps monotone, so any queued rejection is
            // a malformed model, mirroring the eager engine's error path.
            return Err(rejection);
        }

        let stats = seq.stats();
        let emitted = seq.take_emitted();
        let mut violations = Vec::new();
        let mut cross_pairs = 0u64;
        let mut max_cross_probability = 0.0f64;
        for (bi, earlier) in emitted.iter().enumerate() {
            for later in emitted.iter().skip(bi + 1) {
                for i in &earlier.messages {
                    for j in &later.messages {
                        if seq.shard_of(i.client) == seq.shard_of(j.client) {
                            continue;
                        }
                        cross_pairs += 1;
                        let p = registry.preceding_probability(j, i)?;
                        if bi < watermark_batches {
                            max_cross_probability = max_cross_probability.max(p);
                            if p > self.config.threshold + 1e-9 {
                                violations.push(InvariantViolation::CrossShardMarginExceeded {
                                    earlier: i.id,
                                    later: j.id,
                                    probability: p,
                                    threshold: self.config.threshold,
                                });
                            }
                        }
                    }
                }
            }
        }

        Ok(ShardedReplay {
            trace: RunTrace {
                submitted,
                emitted,
                stats,
                quarantined: Vec::new(),
            },
            violations,
            cross_pairs,
            max_cross_probability,
        })
    }

    /// Enumerate every admissible delivery schedule (up to
    /// [`ModelSpec::max_schedules`]). Returns the schedules (as indices into
    /// [`ModelSpec::messages`], in delivery order) and whether the cap was
    /// hit.
    pub fn enumerate_schedules(&self) -> (Vec<Vec<usize>>, bool) {
        let enumeration = self.enumerate();
        (enumeration.schedules, enumeration.truncated)
    }

    /// Group clients into exchangeability orbits: two clients share an
    /// orbit when they are fully interchangeable — identical claimed
    /// distribution *and* bit-identical `(timestamp, true-time)` message
    /// sequences. Replay is equivariant under permuting such clients and
    /// every invariant is client-permutation-invariant, so enumeration only
    /// needs one canonical interleaving per orbit.
    fn orbit_members(&self) -> HashMap<ClientId, Vec<ClientId>> {
        let mut sigs: HashMap<ClientId, Vec<(u64, u64)>> = HashMap::new();
        for (client, _) in &self.offsets {
            sigs.entry(*client).or_default();
        }
        for m in &self.messages {
            sigs.entry(m.client)
                .or_default()
                .push((m.timestamp.to_bits(), truth_of(m).to_bits()));
        }
        for sig in sigs.values_mut() {
            sig.sort_unstable();
        }
        let mut members: HashMap<ClientId, Vec<ClientId>> = HashMap::new();
        for (a, da) in &self.offsets {
            let mut orbit: Vec<ClientId> = self
                .offsets
                .iter()
                .filter(|(b, db)| da == db && sigs.get(a) == sigs.get(b))
                .map(|(b, _)| *b)
                .collect();
            orbit.sort();
            members.insert(*a, orbit);
        }
        members
    }

    /// Enumerate the schedule space with reduction accounting.
    fn enumerate(&self) -> Enumeration {
        let mut by_truth: Vec<usize> = (0..self.messages.len()).collect();
        by_truth.sort_by(|&a, &b| {
            truth_of(&self.messages[a])
                .partial_cmp(&truth_of(&self.messages[b]))
                .expect("finite true times")
        });
        let orbits = self.orbit_members();
        let mut enumeration = Enumeration {
            schedules: Vec::new(),
            truncated: false,
            symmetry_pruned: 0,
        };
        let mut delivered = vec![false; self.messages.len()];
        let mut used: HashMap<ClientId, usize> = HashMap::new();
        let mut schedule: Vec<usize> = Vec::with_capacity(self.messages.len());
        self.explore(
            &by_truth,
            &orbits,
            &mut used,
            &mut delivered,
            &mut schedule,
            &mut enumeration,
        );
        enumeration
    }

    /// DFS over the schedule space (see
    /// [`enumerate_schedules`](Self::enumerate_schedules)).
    #[allow(clippy::too_many_arguments)]
    fn explore(
        &self,
        by_truth: &[usize],
        orbits: &HashMap<ClientId, Vec<ClientId>>,
        used: &mut HashMap<ClientId, usize>,
        delivered: &mut Vec<bool>,
        schedule: &mut Vec<usize>,
        enumeration: &mut Enumeration,
    ) {
        if enumeration.truncated {
            return;
        }
        if schedule.len() == self.messages.len() {
            enumeration.schedules.push(schedule.clone());
            if enumeration.schedules.len() >= self.max_schedules {
                enumeration.truncated = true;
            }
            return;
        }
        // The choice set: among the oldest `max_in_flight` undelivered
        // messages (by ground truth), each client's earliest one — per-client
        // channels deliver in FIFO order.
        let mut choices: Vec<usize> = Vec::new();
        let mut frontier = 0usize;
        let mut seen_clients: Vec<ClientId> = Vec::new();
        for &idx in by_truth.iter().filter(|&&i| !delivered[i]) {
            let client = self.messages[idx].client;
            if !seen_clients.contains(&client) {
                seen_clients.push(client);
                choices.push(idx);
            }
            frontier += 1;
            if frontier == self.max_in_flight {
                break;
            }
        }
        for idx in choices {
            let client = self.messages[idx].client;
            // Symmetry canonicalization: a client's *first* delivery is
            // admissible only if it is the least not-yet-used member of its
            // orbit — any other interleaving is a relabeling of one already
            // explored.
            if self.reductions && used.get(&client).copied().unwrap_or(0) == 0 {
                let non_canonical = orbits[&client]
                    .iter()
                    .any(|c| *c < client && used.get(c).copied().unwrap_or(0) == 0);
                if non_canonical {
                    enumeration.symmetry_pruned += 1;
                    continue;
                }
            }
            delivered[idx] = true;
            *used.entry(client).or_insert(0) += 1;
            schedule.push(idx);
            self.explore(by_truth, orbits, used, delivered, schedule, enumeration);
            schedule.pop();
            *used.get_mut(&client).expect("just incremented") -= 1;
            delivered[idx] = false;
        }
    }

    /// Replay one delivery schedule (indices into [`ModelSpec::messages`])
    /// through a fresh sequencer, checking boundary consistency
    /// (invariant 3) at every emission. Returns the trace and any boundary
    /// violations found.
    ///
    /// Replay mirrors the sim runner's semantics: arrivals happen at
    /// `max(clock so far, truth + network_delay)`; per-client timestamps are
    /// clamped to the client's floor (an earlier heartbeat may have advanced
    /// past a reordered timestamp); after each delivery, every client whose
    /// undelivered messages all lie in the future heartbeats at the round's
    /// true time; the stream closes with past-every-horizon heartbeats, a
    /// final tick and a flush.
    ///
    /// # Errors
    ///
    /// Propagates sequencer rejections (unknown client, duplicate id) —
    /// a malformed model, not an invariant violation.
    pub fn replay(
        &self,
        schedule: &[usize],
    ) -> Result<(RunTrace, Vec<InvariantViolation>), CoreError> {
        let (trace, violations, _) = self.replay_full(schedule)?;
        Ok((trace, violations))
    }

    /// [`replay`](Self::replay) plus the heartbeat-elision count (the third
    /// element), which [`check`](Self::check) accumulates onto
    /// [`CheckReport::heartbeats_elided`].
    fn replay_full(
        &self,
        schedule: &[usize],
    ) -> Result<(RunTrace, Vec<InvariantViolation>, u64), CoreError> {
        let mut seq = OnlineSequencer::new(self.config);
        for (client, dist) in &self.offsets {
            seq.register_client(*client, dist.clone());
        }
        let mut undelivered: HashMap<ClientId, Vec<f64>> = HashMap::new();
        for m in &self.messages {
            undelivered.entry(m.client).or_default().push(truth_of(m));
        }

        let mut clock = 0.0_f64;
        let mut floors: HashMap<ClientId, f64> = HashMap::new();
        let mut submitted: Vec<Message> = Vec::new();
        let mut pending: Vec<Message> = Vec::new();
        let mut violations: Vec<InvariantViolation> = Vec::new();
        let mut heartbeats_elided = 0u64;
        // Whether the most recent sequencer call emitted anything — the
        // elision guard: after a non-emitting call, `try_emit` has already
        // run to fixpoint, so a heartbeat changing neither the clock, the
        // watermark frontier nor the pending set cannot emit either.
        // (Assigned by the submit that starts every delivery round before
        // any heartbeat reads it.)
        let mut last_call_emitted;
        let elide = self.reductions && !self.config.liveness.enabled;

        for &idx in schedule {
            let m = &self.messages[idx];
            let t = truth_of(m);
            clock = clock.max(t + self.network_delay);

            let floor = floors.get(&m.client).copied().unwrap_or(f64::NEG_INFINITY);
            let ts = m.timestamp.max(floor);
            floors.insert(m.client, ts);
            let msg = Message {
                id: m.id,
                client: m.client,
                timestamp: ts,
                true_time: m.true_time,
            };
            if let Some(v) = undelivered.get_mut(&m.client) {
                if let Some(pos) = v.iter().position(|&u| u == t) {
                    v.remove(pos);
                }
            }
            submitted.push(msg.clone());
            pending.push(msg.clone());
            let batches = seq.submit(msg, clock)?;
            last_call_emitted = !batches.is_empty();
            self.account(&seq, &batches, &mut pending, &mut violations)?;

            // Ordered channels: a client may heartbeat at this round's true
            // time only if none of its own undelivered messages would be
            // overtaken.
            for (client, _) in &self.offsets {
                if *client == m.client {
                    continue;
                }
                let blocked = undelivered
                    .get(client)
                    .is_some_and(|v| v.iter().any(|&u| u <= t));
                if blocked {
                    continue;
                }
                let floor = floors.get(client).copied().unwrap_or(f64::NEG_INFINITY);
                let hb = t.max(floor);
                // Partial-order reduction: with liveness off, a heartbeat
                // whose reading does not advance the client's floor,
                // arriving at the unchanged current clock right after a
                // non-emitting call, is a pure no-op — skip the call.
                if elide && hb <= floor && !last_call_emitted {
                    heartbeats_elided += 1;
                    continue;
                }
                floors.insert(*client, hb);
                let batches = seq.heartbeat(*client, hb, clock)?;
                last_call_emitted = !batches.is_empty();
                self.account(&seq, &batches, &mut pending, &mut violations)?;
            }
        }

        // Close the stream: every client heartbeats past every horizon, the
        // clock passes every safe-emission time, and a flush drains any
        // leftovers — the sim runner's shutdown sequence.
        let max_ts = floors.values().fold(0.0_f64, |a, &b| a.max(b));
        let max_sd = self
            .offsets
            .iter()
            .map(|(_, d)| d.std_dev())
            .fold(0.0_f64, f64::max);
        let horizon = max_ts + 1000.0 * max_sd.max(1.0);
        for (client, _) in &self.offsets {
            let batches = seq.heartbeat(*client, horizon, clock)?;
            self.account(&seq, &batches, &mut pending, &mut violations)?;
        }
        let batches = seq.tick(horizon + self.network_delay);
        self.account(&seq, &batches, &mut pending, &mut violations)?;
        let batches = seq.flush();
        self.account(&seq, &batches, &mut pending, &mut violations)?;

        let stats = seq.stats();
        let mut quarantined: Vec<ClientId> = self
            .offsets
            .iter()
            .map(|(c, _)| *c)
            .filter(|c| {
                seq.registry()
                    .trust_state(*c)
                    .is_some_and(|s| s.level() == TrustLevel::Quarantined)
            })
            .collect();
        quarantined.sort();
        Ok((
            RunTrace {
                submitted,
                emitted: seq.take_emitted(),
                stats,
                quarantined,
            },
            violations,
            heartbeats_elided,
        ))
    }

    /// Check invariant 3 for each batch just emitted: the batch must equal
    /// the candidate a from-scratch sequencing of the pre-emission pending
    /// set produces. Consumes the batches from the shadow pending list.
    fn account(
        &self,
        seq: &OnlineSequencer,
        batches: &[EmittedBatch],
        pending: &mut Vec<Message>,
        violations: &mut Vec<InvariantViolation>,
    ) -> Result<(), CoreError> {
        for batch in batches {
            let matrix = PrecedenceMatrix::compute_parallel(pending, seq.registry(), 1)?;
            let mut core = SequencingCore::new(self.config);
            core.load(&matrix);
            let mut expected: Vec<MessageId> = core
                .candidate_indices(&matrix, None)
                .unwrap_or_default()
                .into_iter()
                .map(|i| pending[i].id)
                .collect();
            expected.sort();
            let mut got = batch.message_ids();
            got.sort();
            if expected != got {
                violations.push(InvariantViolation::BoundaryMismatch {
                    expected,
                    emitted: got.clone(),
                });
            }
            pending.retain(|m| !got.contains(&m.id));
        }
        Ok(())
    }
}

/// The fault model layered on a [`ModelSpec`] by
/// [`ModelSpec::check_faulty`]: a session-layer [`RecoveryPolicy`] plus
/// bounds on how many deliveries the adversary may drop or duplicate per
/// schedule.
#[derive(Debug, Clone, Copy)]
pub struct FaultSpec {
    /// The recovery policy every client stream runs under.
    pub policy: RecoveryPolicy,
    /// Maximum deliveries dropped per schedule (every subset up to this
    /// size is checked).
    pub max_dropped: usize,
    /// Maximum deliveries duplicated per schedule (every subset up to this
    /// size is checked; duplicating a dropped delivery is skipped — there
    /// is no copy to duplicate).
    pub max_duplicated: usize,
    /// Heartbeat staleness deadline for the sequencer's liveness detector
    /// (always enabled in faulty replays: a blocked stream must be evicted,
    /// not waited on forever).
    pub staleness_deadline: f64,
}

impl FaultSpec {
    /// A spec for `policy` checking one drop and one duplicate per
    /// schedule, with a staleness deadline of 50 time units.
    pub fn new(policy: RecoveryPolicy) -> Self {
        policy.validate();
        FaultSpec {
            policy,
            max_dropped: 1,
            max_duplicated: 1,
            staleness_deadline: 50.0,
        }
    }

    /// Set the per-schedule drop bound.
    pub fn with_max_dropped(mut self, max_dropped: usize) -> Self {
        self.max_dropped = max_dropped;
        self
    }

    /// Set the per-schedule duplication bound.
    pub fn with_max_duplicated(mut self, max_duplicated: usize) -> Self {
        self.max_duplicated = max_duplicated;
        self
    }

    /// Set the liveness staleness deadline.
    ///
    /// # Panics
    ///
    /// Panics unless the deadline is positive and finite.
    pub fn with_staleness_deadline(mut self, deadline: f64) -> Self {
        assert!(
            deadline.is_finite() && deadline > 0.0,
            "staleness deadline must be positive and finite, got {deadline}"
        );
        self.staleness_deadline = deadline;
        self
    }
}

/// An invariant failure tagged with the schedule *and fault pattern* that
/// produced it.
#[derive(Debug, Clone)]
pub struct FaultViolation {
    /// Indices into [`ModelSpec::messages`], in delivery order.
    pub schedule: Vec<usize>,
    /// Schedule positions whose delivery was dropped.
    pub dropped: Vec<usize>,
    /// Schedule positions whose delivery was duplicated.
    pub duplicated: Vec<usize>,
    /// The failed invariant.
    pub violation: InvariantViolation,
}

/// Result of an exhaustive fault check.
#[derive(Debug, Clone)]
pub struct FaultCheckReport {
    /// Delivery schedules enumerated.
    pub schedules: usize,
    /// Total (schedule × drop-subset × dup-subset) cases replayed.
    pub cases: usize,
    /// Whether schedule enumeration stopped at [`ModelSpec::max_schedules`].
    pub truncated: bool,
    /// Every invariant failure found, tagged with its fault pattern.
    pub violations: Vec<FaultViolation>,
}

impl FaultCheckReport {
    /// Whether every case satisfied every invariant.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Report from [`ModelSpec::check_crash_liveness`].
#[derive(Debug, Clone)]
pub struct CrashLivenessReport {
    /// Messages the sequencer accepted (the crashed client's unsent tail is
    /// excluded by construction).
    pub submitted: usize,
    /// Messages emitted in batches (without any flush).
    pub emitted: usize,
    /// Accepted messages still pending after the liveness horizon.
    pub stalled: usize,
    /// Clients evicted by the staleness detector.
    pub evictions: usize,
    /// The sequencer's final counters.
    pub stats: OnlineStats,
}

/// Every subset of `{0, .., n-1}` with at most `k` elements (the empty set
/// first), in a deterministic order.
fn subsets_up_to(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out: Vec<Vec<usize>> = vec![Vec::new()];
    let mut current: Vec<Vec<usize>> = vec![Vec::new()];
    for _ in 0..k {
        let mut next: Vec<Vec<usize>> = Vec::new();
        for prefix in &current {
            let start = prefix.last().map_or(0, |&p| p + 1);
            for i in start..n {
                let mut s = prefix.clone();
                s.push(i);
                next.push(s);
            }
        }
        out.extend(next.iter().cloned());
        current = next;
    }
    out
}

/// Mutable state threaded through one faulty replay.
struct FaultReplay {
    seq: OnlineSequencer,
    validators: BTreeMap<ClientId, SequenceValidator<Option<usize>>>,
    /// Per-client send history: sequence number → message index (`None` is
    /// the closing fin). Retransmissions are answered from here.
    frames: BTreeMap<ClientId, Vec<Option<usize>>>,
    clock: f64,
    floors: HashMap<ClientId, f64>,
    /// Truths of each client's not-yet-released messages — heartbeats ride
    /// the same ordered stream, so a client may only heartbeat past what it
    /// has actually gotten through.
    unreleased: HashMap<ClientId, Vec<f64>>,
    submitted: Vec<Message>,
    pending: Vec<Message>,
    violations: Vec<InvariantViolation>,
}

impl ModelSpec {
    /// Enumerate every admissible delivery schedule and, for each, every
    /// drop/duplication pattern within [`FaultSpec`]'s bounds; replay each
    /// case through a session layer (one [`SequenceValidator`] per client
    /// stream, heartbeats gated behind release order) feeding a
    /// liveness-enabled [`OnlineSequencer`], and assert the fault
    /// invariants:
    ///
    /// * every hole left by a dropped delivery is **detected** (counted as
    ///   a gap by its stream) — no silent loss under any policy;
    /// * no duplicated delivery is ever emitted twice;
    /// * under [`RecoveryPolicy::RequestRetransmit`], every message —
    ///   dropped or not — is eventually accepted and emitted exactly once;
    /// * under [`RecoveryPolicy::SkipAfterTimeout`], every non-dropped
    ///   message is emitted exactly once;
    /// * the watermark never stalls past the liveness horizon: everything
    ///   the sequencer accepted is emitted **without a flush** (blocked
    ///   clients must be evicted, not waited on);
    /// * plus the base invariants (per-client monotone emission, boundary
    ///   consistency, bounded violation rate) on every trace.
    ///
    /// # Errors
    ///
    /// Errors propagate from replay (unknown client, duplicate id, …) —
    /// they indicate a malformed model, not an invariant violation.
    pub fn check_faulty(&self, spec: &FaultSpec) -> Result<FaultCheckReport, CoreError> {
        assert!(
            !self.config.stochastic_cycle_breaking,
            "the boundary-consistency invariant requires a deterministic config"
        );
        let (schedules, truncated) = self.enumerate_schedules();
        let mut report = FaultCheckReport {
            schedules: schedules.len(),
            cases: 0,
            truncated,
            violations: Vec::new(),
        };
        for schedule in &schedules {
            let drop_sets = subsets_up_to(schedule.len(), spec.max_dropped);
            let dup_sets = subsets_up_to(schedule.len(), spec.max_duplicated);
            for dropped in &drop_sets {
                for duplicated in &dup_sets {
                    if duplicated.iter().any(|p| dropped.contains(p)) {
                        continue;
                    }
                    report.cases += 1;
                    let (_, violations) =
                        self.replay_faulty(schedule, dropped, duplicated, spec)?;
                    for violation in violations {
                        report.violations.push(FaultViolation {
                            schedule: schedule.clone(),
                            dropped: dropped.clone(),
                            duplicated: duplicated.clone(),
                            violation,
                        });
                    }
                }
            }
        }
        Ok(report)
    }

    /// Replay one schedule under one fault pattern (see
    /// [`check_faulty`](Self::check_faulty) for the semantics and the
    /// invariants evaluated). `dropped` and `duplicated` are *schedule
    /// positions*; the returned violations include both the fault
    /// invariants and the base trace invariants.
    ///
    /// # Errors
    ///
    /// Propagates sequencer rejections — a malformed model, not an
    /// invariant violation.
    pub fn replay_faulty(
        &self,
        schedule: &[usize],
        dropped: &[usize],
        duplicated: &[usize],
        spec: &FaultSpec,
    ) -> Result<(RunTrace, Vec<InvariantViolation>), CoreError> {
        let config = self
            .config
            .with_liveness(LivenessConfig::enabled(spec.staleness_deadline));
        let mut seq = OnlineSequencer::new(config);
        for (client, dist) in &self.offsets {
            seq.register_client(*client, dist.clone());
        }

        // Per-client send order (truth order) assigns dense sequence
        // numbers; each stream closes with a fin one past its last data
        // frame.
        let mut by_truth: Vec<usize> = (0..self.messages.len()).collect();
        by_truth.sort_by(|&a, &b| {
            truth_of(&self.messages[a])
                .partial_cmp(&truth_of(&self.messages[b]))
                .expect("finite true times")
        });
        let mut frames: BTreeMap<ClientId, Vec<Option<usize>>> =
            self.offsets.iter().map(|(c, _)| (*c, Vec::new())).collect();
        let mut seq_no: Vec<u64> = vec![0; self.messages.len()];
        for &idx in &by_truth {
            let history = frames
                .get_mut(&self.messages[idx].client)
                .expect("message from unregistered client");
            seq_no[idx] = history.len() as u64;
            history.push(Some(idx));
        }
        for history in frames.values_mut() {
            history.push(None); // fin
        }

        let mut unreleased: HashMap<ClientId, Vec<f64>> = HashMap::new();
        for m in &self.messages {
            unreleased.entry(m.client).or_default().push(truth_of(m));
        }
        let mut st = FaultReplay {
            seq,
            validators: self
                .offsets
                .iter()
                .map(|(c, _)| (*c, SequenceValidator::new(spec.policy)))
                .collect(),
            frames,
            clock: 0.0,
            floors: HashMap::new(),
            unreleased,
            submitted: Vec::new(),
            pending: Vec::new(),
            violations: Vec::new(),
        };

        for (p, &idx) in schedule.iter().enumerate() {
            let client = self.messages[idx].client;
            let t = truth_of(&self.messages[idx]);
            st.clock = st.clock.max(t + self.network_delay);
            if !dropped.contains(&p) {
                let copies = if duplicated.contains(&p) { 2 } else { 1 };
                for _ in 0..copies {
                    let released = st
                        .validators
                        .get_mut(&client)
                        .expect("validator per client")
                        .accept(seq_no[idx], Some(idx), st.clock);
                    for ridx in released.into_iter().flatten() {
                        self.deliver_released(&mut st, ridx)?;
                    }
                }
            }
            self.pump_recovery(&mut st)?;

            // Ordered channels: a client may heartbeat at this round's true
            // time only once everything it sent up to t has been released.
            for (hb_client, _) in &self.offsets {
                if *hb_client == client {
                    continue;
                }
                let blocked = st
                    .unreleased
                    .get(hb_client)
                    .is_some_and(|v| v.iter().any(|&u| u <= t));
                if blocked {
                    continue;
                }
                let floor = st
                    .floors
                    .get(hb_client)
                    .copied()
                    .unwrap_or(f64::NEG_INFINITY);
                let hb = t.max(floor);
                st.floors.insert(*hb_client, hb);
                let batches = st.seq.heartbeat(*hb_client, hb, st.clock)?;
                self.account(&st.seq, &batches, &mut st.pending, &mut st.violations)?;
            }
        }

        // Close: advance well past every horizon so pending skip timeouts
        // and retransmit give-ups fire, then land each stream's fin.
        let max_ts = st.floors.values().fold(0.0_f64, |a, &b| a.max(b));
        let max_sd = self
            .offsets
            .iter()
            .map(|(_, d)| d.std_dev())
            .fold(0.0_f64, f64::max);
        let horizon = max_ts + 1000.0 * max_sd.max(1.0);
        st.clock = st.clock.max(horizon + self.network_delay);
        self.pump_recovery(&mut st)?;
        for (client, _) in &self.offsets {
            let fin_seq = (self.fin_sequence(&st, *client)) as u64;
            let released = st
                .validators
                .get_mut(client)
                .expect("validator per client")
                .accept(fin_seq, None, st.clock);
            for ridx in released.into_iter().flatten() {
                self.deliver_released(&mut st, ridx)?;
            }
        }
        self.pump_recovery(&mut st)?;

        // A client whose stream fully released closes with a horizon
        // heartbeat; a stream still blocked on a hole keeps its owner
        // silent — its heartbeat is sequenced behind the hole.
        for (client, _) in &self.offsets {
            let fin_seq = self.fin_sequence(&st, *client) as u64;
            if st.validators[client].next_expected() > fin_seq {
                let batches = st.seq.heartbeat(*client, horizon, st.clock)?;
                self.account(&st.seq, &batches, &mut st.pending, &mut st.violations)?;
            }
        }
        let batches = st.seq.tick(st.clock);
        self.account(&st.seq, &batches, &mut st.pending, &mut st.violations)?;
        // The liveness horizon: one more tick past the staleness deadline
        // must evict silent clients and let the watermark advance. No flush
        // — liveness has to come from eviction, not a forced drain.
        let final_clock = st.clock + spec.staleness_deadline + 1.0;
        let batches = st.seq.tick(final_clock);
        self.account(&st.seq, &batches, &mut st.pending, &mut st.violations)?;

        let mut session_total = SessionCounters::default();
        for v in st.validators.values() {
            session_total.absorb(v.counters());
        }
        st.seq.record_session_counters(session_total);

        // Fault invariants: every hole detected, policy guarantees met.
        let mut drops_per_client: HashMap<ClientId, u64> = HashMap::new();
        let mut dropped_ids: Vec<MessageId> = Vec::new();
        for &p in dropped {
            let idx = schedule[p];
            *drops_per_client
                .entry(self.messages[idx].client)
                .or_insert(0) += 1;
            dropped_ids.push(self.messages[idx].id);
        }
        let mut violations = std::mem::take(&mut st.violations);
        for (client, v) in &st.validators {
            let holes = drops_per_client.get(client).copied().unwrap_or(0);
            if v.counters().gaps_detected < holes {
                violations.push(InvariantViolation::UndetectedGap { client: *client });
            }
        }
        let submitted_ids: HashSet<MessageId> = st.submitted.iter().map(|m| m.id).collect();
        match spec.policy {
            RecoveryPolicy::RequestRetransmit { .. } => {
                // Retransmission must recover every drop: zero loss.
                for m in &self.messages {
                    if !submitted_ids.contains(&m.id) {
                        violations.push(InvariantViolation::MessageLost { id: m.id });
                    }
                }
            }
            RecoveryPolicy::SkipAfterTimeout { .. } => {
                // Skips sacrifice the dropped frames only.
                for m in &self.messages {
                    if !dropped_ids.contains(&m.id) && !submitted_ids.contains(&m.id) {
                        violations.push(InvariantViolation::MessageLost { id: m.id });
                    }
                }
            }
            RecoveryPolicy::Halt => {
                // No recovery path exists, so nothing dropped may surface.
                // (Released prefixes are covered by the base invariants.)
            }
        }

        let stats = st.seq.stats();
        let mut quarantined: Vec<ClientId> = self
            .offsets
            .iter()
            .map(|(c, _)| *c)
            .filter(|c| {
                st.seq
                    .registry()
                    .trust_state(*c)
                    .is_some_and(|s| s.level() == TrustLevel::Quarantined)
            })
            .collect();
        quarantined.sort();
        let trace = RunTrace {
            submitted: st.submitted,
            emitted: st.seq.take_emitted(),
            stats,
            quarantined,
        };
        // Base invariants; an accepted-but-never-emitted message here means
        // the watermark stalled (there was no flush), which is the liveness
        // failure — report it as such rather than as N losses.
        let mut found = check_trace(&trace, self.max_violation_rate);
        let stalled = found
            .iter()
            .filter(|v| matches!(v, InvariantViolation::MessageLost { .. }))
            .count();
        if stalled > 0 {
            found.retain(|v| !matches!(v, InvariantViolation::MessageLost { .. }));
            found.push(InvariantViolation::WatermarkStalled { pending: stalled });
        }
        violations.extend(found);
        Ok((trace, violations))
    }

    /// The fin sequence number of a client's stream (one past its last data
    /// frame).
    fn fin_sequence(&self, st: &FaultReplay, client: ClientId) -> usize {
        st.frames[&client].len() - 1
    }

    /// Release one session-layer payload into the sequencer: clamp the
    /// timestamp to the client's floor, record it as submitted, and check
    /// boundary consistency on anything emitted.
    fn deliver_released(&self, st: &mut FaultReplay, idx: usize) -> Result<(), CoreError> {
        let m = &self.messages[idx];
        let t = truth_of(m);
        let floor = st
            .floors
            .get(&m.client)
            .copied()
            .unwrap_or(f64::NEG_INFINITY);
        let ts = m.timestamp.max(floor);
        st.floors.insert(m.client, ts);
        if let Some(v) = st.unreleased.get_mut(&m.client) {
            if let Some(pos) = v.iter().position(|&u| u == t) {
                v.remove(pos);
            }
        }
        let msg = Message {
            id: m.id,
            client: m.client,
            timestamp: ts,
            true_time: m.true_time,
        };
        st.submitted.push(msg.clone());
        st.pending.push(msg.clone());
        let batches = st.seq.submit(msg, st.clock)?;
        self.account(&st.seq, &batches, &mut st.pending, &mut st.violations)
    }

    /// Run every stream's recovery policy to quiescence at the current
    /// clock: skip timeouts release buffered frames, retransmit requests
    /// are answered immediately from the sender's history.
    fn pump_recovery(&self, st: &mut FaultReplay) -> Result<(), CoreError> {
        loop {
            let clock = st.clock;
            let mut released_payloads: Vec<usize> = Vec::new();
            let mut progressed = false;
            for (client, v) in st.validators.iter_mut() {
                let polled = v.poll(clock);
                let mut released = polled.released;
                for action in polled.actions {
                    let SessionAction::RequestRetransmit { sequence } = action;
                    progressed = true;
                    // Retransmission modeled as an immediate, successful
                    // redelivery answered from the sender's history.
                    let payload = st.frames[client]
                        .get(usize::try_from(sequence).expect("small model"))
                        .copied()
                        .flatten();
                    released.extend(v.accept(sequence, payload, clock));
                }
                released_payloads.extend(released.into_iter().flatten());
            }
            progressed |= !released_payloads.is_empty();
            for idx in released_payloads {
                self.deliver_released(st, idx)?;
            }
            if !progressed {
                break;
            }
        }
        Ok(())
    }

    /// Replay a FIFO schedule in which `crashed` falls permanently silent
    /// after sending `crash_after` messages: its remaining messages are
    /// never sent, it never heartbeats again, and the stream closes
    /// *without* it (no closing heartbeat, no flush). With `liveness`
    /// enabled the staleness detector must evict it so everything actually
    /// accepted still emits; with `liveness: None` the run demonstrates the
    /// stall the paper warns about.
    ///
    /// # Errors
    ///
    /// Propagates sequencer rejections — a malformed model.
    pub fn check_crash_liveness(
        &self,
        crashed: ClientId,
        crash_after: usize,
        liveness: Option<f64>,
    ) -> Result<CrashLivenessReport, CoreError> {
        let config = match liveness {
            Some(deadline) => self.config.with_liveness(LivenessConfig::enabled(deadline)),
            None => self.config,
        };
        let mut seq = OnlineSequencer::new(config);
        for (client, dist) in &self.offsets {
            seq.register_client(*client, dist.clone());
        }
        let mut by_truth: Vec<usize> = (0..self.messages.len()).collect();
        by_truth.sort_by(|&a, &b| {
            truth_of(&self.messages[a])
                .partial_cmp(&truth_of(&self.messages[b]))
                .expect("finite true times")
        });

        let mut undelivered: HashMap<ClientId, Vec<f64>> = HashMap::new();
        for m in &self.messages {
            undelivered.entry(m.client).or_default().push(truth_of(m));
        }
        let mut clock = 0.0_f64;
        let mut floors: HashMap<ClientId, f64> = HashMap::new();
        let mut submitted = 0usize;
        let mut sent_by_crashed = 0usize;

        for &idx in &by_truth {
            let m = &self.messages[idx];
            let t = truth_of(m);
            if m.client == crashed {
                if sent_by_crashed >= crash_after {
                    continue; // crashed: this message is never sent
                }
                sent_by_crashed += 1;
            }
            clock = clock.max(t + self.network_delay);
            let floor = floors.get(&m.client).copied().unwrap_or(f64::NEG_INFINITY);
            let ts = m.timestamp.max(floor);
            floors.insert(m.client, ts);
            if let Some(v) = undelivered.get_mut(&m.client) {
                if let Some(pos) = v.iter().position(|&u| u == t) {
                    v.remove(pos);
                }
            }
            submitted += 1;
            seq.submit(
                Message {
                    id: m.id,
                    client: m.client,
                    timestamp: ts,
                    true_time: m.true_time,
                },
                clock,
            )?;
            for (hb_client, _) in &self.offsets {
                if *hb_client == m.client {
                    continue;
                }
                // The crashed client's unsent messages stay "undelivered"
                // forever, which silences its heartbeats from the crash
                // point on — exactly the failure mode under test.
                let blocked = undelivered
                    .get(hb_client)
                    .is_some_and(|v| v.iter().any(|&u| u <= t));
                if blocked {
                    continue;
                }
                let floor = floors.get(hb_client).copied().unwrap_or(f64::NEG_INFINITY);
                let hb = t.max(floor);
                floors.insert(*hb_client, hb);
                seq.heartbeat(*hb_client, hb, clock)?;
            }
        }

        // Close without the crashed client and without a flush.
        let max_ts = floors.values().fold(0.0_f64, |a, &b| a.max(b));
        let max_sd = self
            .offsets
            .iter()
            .map(|(_, d)| d.std_dev())
            .fold(0.0_f64, f64::max);
        let horizon = max_ts + 1000.0 * max_sd.max(1.0);
        clock = clock.max(horizon + self.network_delay);
        for (client, _) in &self.offsets {
            if *client == crashed {
                continue;
            }
            seq.heartbeat(*client, horizon, clock)?;
        }
        seq.tick(clock);
        let deadline = liveness.unwrap_or(0.0);
        seq.tick(clock + deadline + 1.0);

        let stats = seq.stats();
        let emitted: usize = seq
            .take_emitted()
            .iter()
            .map(|b| b.messages.len())
            .sum();
        Ok(CrashLivenessReport {
            submitted,
            emitted,
            stalled: submitted.saturating_sub(emitted),
            evictions: stats.evictions,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defense::{DefenseConfig, ExpectedDelay};

    fn tiny_offsets() -> Vec<(ClientId, OffsetDistribution)> {
        (0..3)
            .map(|c| (ClientId(c), OffsetDistribution::gaussian(0.0, 2.0)))
            .collect()
    }

    fn tiny_messages() -> Vec<Message> {
        // Two messages per client, spread enough to emit in several batches.
        let mut v = Vec::new();
        let mut id = 0;
        for round in 0..2 {
            for c in 0..3u32 {
                let t = 10.0 + round as f64 * 40.0 + c as f64 * 2.0;
                v.push(Message::with_true_time(MessageId(id), ClientId(c), t, t));
                id += 1;
            }
        }
        v
    }

    #[test]
    fn fifo_model_has_one_schedule_and_passes() {
        let spec = ModelSpec::new(tiny_offsets(), tiny_messages()).with_max_in_flight(1);
        let report = spec.check().unwrap();
        assert_eq!(report.schedules, 1);
        assert!(!report.truncated);
        assert!(report.ok(), "{:?}", report.violations);
    }

    #[test]
    fn reordered_model_enumerates_many_schedules_and_passes() {
        let spec = ModelSpec::new(tiny_offsets(), tiny_messages()).with_max_in_flight(3);
        let report = spec.check().unwrap();
        assert!(report.schedules > 50, "only {} schedules", report.schedules);
        assert!(!report.truncated);
        assert!(report.ok(), "{:?}", report.violations);
    }

    #[test]
    fn schedule_cap_truncates() {
        let spec = ModelSpec::new(tiny_offsets(), tiny_messages())
            .with_max_in_flight(3)
            .with_max_schedules(5);
        let report = spec.check().unwrap();
        assert!(report.truncated);
        assert_eq!(report.schedules, 5);
    }

    #[test]
    fn corrupted_trace_loss_and_duplication_fire() {
        let spec = ModelSpec::new(tiny_offsets(), tiny_messages()).with_max_in_flight(1);
        let schedule: Vec<usize> = (0..spec.messages.len()).collect();
        let (mut trace, boundary) = spec.replay(&schedule).unwrap();
        assert!(boundary.is_empty(), "{boundary:?}");
        assert!(check_trace(&trace, 1.0).is_empty());

        // Corrupt the trace: drop one emitted message (loss) and double
        // another (duplication).
        let dropped = trace.emitted[0].messages.remove(0);
        let last = trace.emitted.last_mut().unwrap();
        let dup = last.messages[0].clone();
        last.messages.push(dup.clone());

        let found = check_trace(&trace, 1.0);
        assert!(found.contains(&InvariantViolation::MessageLost { id: dropped.id }));
        assert!(found.contains(&InvariantViolation::MessageDuplicated { id: dup.id }));
    }

    #[test]
    fn corrupted_trace_non_monotone_emission_fires() {
        let spec = ModelSpec::new(tiny_offsets(), tiny_messages()).with_max_in_flight(1);
        let schedule: Vec<usize> = (0..spec.messages.len()).collect();
        let (mut trace, _) = spec.replay(&schedule).unwrap();
        // Rewind one client's last emission behind its earlier one.
        let client = trace.emitted[0].messages[0].client;
        let m = trace
            .emitted
            .iter_mut()
            .rev()
            .flat_map(|b| b.messages.iter_mut())
            .find(|m| m.client == client)
            .unwrap();
        m.timestamp = -1e9;
        let found = check_trace(&trace, 1.0);
        assert!(found
            .iter()
            .any(|v| matches!(v, InvariantViolation::NonMonotoneEmission { .. })));
    }

    #[test]
    fn violation_rate_bound_fires_on_inflated_stats() {
        let spec = ModelSpec::new(tiny_offsets(), tiny_messages()).with_max_in_flight(1);
        let schedule: Vec<usize> = (0..spec.messages.len()).collect();
        let (mut trace, _) = spec.replay(&schedule).unwrap();
        trace.stats.fairness_violations = trace.submitted.len();
        let found = check_trace(&trace, 0.5);
        assert!(found
            .iter()
            .any(|v| matches!(v, InvariantViolation::ViolationRateExceeded { .. })));
    }

    #[test]
    fn faulty_fifo_model_retransmit_recovers_every_drop() {
        let spec = ModelSpec::new(tiny_offsets(), tiny_messages()).with_max_in_flight(1);
        let fault = FaultSpec::new(RecoveryPolicy::RequestRetransmit {
            max_retries: 4,
            base_backoff: 5.0,
        });
        let report = spec.check_faulty(&fault).unwrap();
        assert_eq!(report.schedules, 1);
        assert!(report.cases > 6, "only {} cases", report.cases);
        assert!(report.ok(), "{:?}", report.violations.first());
    }

    #[test]
    fn faulty_model_skip_policy_loses_only_the_dropped() {
        let spec = ModelSpec::new(tiny_offsets(), tiny_messages()).with_max_in_flight(1);
        let fault = FaultSpec::new(RecoveryPolicy::SkipAfterTimeout { timeout: 5.0 });
        let report = spec.check_faulty(&fault).unwrap();
        assert!(report.ok(), "{:?}", report.violations.first());
    }

    #[test]
    fn faulty_model_halt_policy_detects_gaps_and_stays_live() {
        let spec = ModelSpec::new(tiny_offsets(), tiny_messages()).with_max_in_flight(1);
        let fault = FaultSpec::new(RecoveryPolicy::Halt).with_max_duplicated(0);
        let report = spec.check_faulty(&fault).unwrap();
        assert!(report.ok(), "{:?}", report.violations.first());
    }

    #[test]
    fn faulty_replay_counts_session_events() {
        let spec = ModelSpec::new(tiny_offsets(), tiny_messages()).with_max_in_flight(1);
        let fault = FaultSpec::new(RecoveryPolicy::RequestRetransmit {
            max_retries: 4,
            base_backoff: 5.0,
        });
        let schedule: Vec<usize> = (0..spec.messages.len()).collect();
        // Drop position 0 and duplicate position 3.
        let (trace, violations) = spec
            .replay_faulty(&schedule, &[0], &[3], &fault)
            .unwrap();
        assert!(violations.is_empty(), "{violations:?}");
        assert!(trace.stats.gaps_detected >= 1);
        assert!(trace.stats.retransmit_requests >= 1);
        assert_eq!(trace.stats.dupes_dropped, 1);
        assert_eq!(trace.submitted.len(), spec.messages.len(), "zero loss");
    }

    #[test]
    fn crash_liveness_evicts_and_emits_without_flush() {
        let spec = ModelSpec::new(tiny_offsets(), tiny_messages()).with_max_in_flight(1);
        let report = spec
            .check_crash_liveness(ClientId(2), 1, Some(30.0))
            .unwrap();
        assert!(report.evictions >= 1, "{report:?}");
        assert_eq!(report.stalled, 0, "{report:?}");
        assert_eq!(report.emitted, report.submitted);
    }

    #[test]
    fn crash_without_liveness_stalls_the_watermark() {
        let spec = ModelSpec::new(tiny_offsets(), tiny_messages()).with_max_in_flight(1);
        let report = spec.check_crash_liveness(ClientId(2), 1, None).unwrap();
        assert_eq!(report.evictions, 0);
        assert!(report.stalled > 0, "{report:?}");
    }

    #[test]
    fn subsets_enumerate_up_to_the_bound() {
        assert_eq!(subsets_up_to(3, 0), vec![Vec::<usize>::new()]);
        let s = subsets_up_to(3, 1);
        assert_eq!(s.len(), 4); // {}, {0}, {1}, {2}
        let s = subsets_up_to(3, 2);
        assert_eq!(s.len(), 7); // + {0,1}, {0,2}, {1,2}
        assert!(s.contains(&vec![0, 2]));
    }

    /// Claimed distributions for the collusive model: every client claims
    /// the same honest Gaussian.
    fn collusive_offsets() -> Vec<(ClientId, OffsetDistribution)> {
        (0..4)
            .map(|c| (ClientId(c), OffsetDistribution::gaussian(0.0, 2.0)))
            .collect()
    }

    /// Clients 0 and 1 collude: a shared monotone ramp pushes their
    /// timestamps ever further ahead of true time, in lockstep (their
    /// residuals are bit-identical round by round, so the pair correlation
    /// is exactly 1). Clients 2 and 3 are honest but submit only one early
    /// message each — too few paired residuals to ever be scored.
    fn collusive_messages(rounds: u32) -> Vec<Message> {
        let mut v = Vec::new();
        let mut id = 0;
        for c in 2..4u32 {
            v.push(Message::with_true_time(MessageId(id), ClientId(c), 5.0, 5.0));
            id += 1;
        }
        for r in 0..rounds {
            let truth = 10.0 + 4.0 * r as f64;
            let ts = truth + 3.0 * r as f64;
            for c in 0..2u32 {
                v.push(Message::with_true_time(MessageId(id), ClientId(c), ts, truth));
                id += 1;
            }
        }
        v
    }

    /// Defense tuned so only the correlation detector can fire: the
    /// marginal KS/z checks never reach their sample quorum, while pairs
    /// are scored on every observation once nine residuals align.
    fn collusive_defense() -> DefenseConfig {
        DefenseConfig::enabled()
            .with_window(64)
            .with_min_samples(50)
            .with_check_interval(1)
            .with_ks_threshold(0.95)
            .with_drift_zscore(1e6)
            .with_expected_delay(ExpectedDelay::Fixed(1.0))
            .with_collusion_threshold(0.6)
            .with_collusion_min_pairs(9)
            .with_collusion_confirmations(1)
    }

    fn collusive_spec(rounds: u32) -> ModelSpec {
        let config = SequencerConfig::new().with_defense(collusive_defense());
        ModelSpec::new(collusive_offsets(), collusive_messages(rounds))
            .with_config(config)
            .with_max_in_flight(1)
            .with_max_violation_rate(1.0)
    }

    #[test]
    fn symmetric_clients_collapse_the_schedule_space() {
        // Clients 0 and 1 are exchangeable (identical claims, identical
        // message lists); client 2 is distinct.
        let make = || {
            let mut messages = Vec::new();
            let mut id = 0;
            for round in 0..2 {
                let t = 10.0 + round as f64 * 40.0;
                for c in 0..2u32 {
                    messages.push(Message::with_true_time(MessageId(id), ClientId(c), t, t));
                    id += 1;
                }
                messages.push(Message::with_true_time(
                    MessageId(id),
                    ClientId(2),
                    t + 5.0,
                    t + 5.0,
                ));
                id += 1;
            }
            ModelSpec::new(tiny_offsets(), messages)
                .with_max_in_flight(3)
                .with_max_violation_rate(1.0)
        };
        let reduced = make().check().unwrap();
        let full = make().with_reductions(false).check().unwrap();
        assert!(reduced.ok(), "{:?}", reduced.violations.first());
        assert!(full.ok(), "{:?}", full.violations.first());
        assert_eq!(full.symmetry_pruned, 0);
        assert!(reduced.symmetry_pruned > 0, "{reduced:?}");
        assert!(
            reduced.schedules < full.schedules,
            "reduced {} vs full {}",
            reduced.schedules,
            full.schedules
        );
    }

    #[test]
    fn heartbeat_elision_is_behavior_preserving() {
        // Distinct per-client timestamps: singleton orbits, so any schedule
        // shrink here could only come from (unsound) symmetry pruning.
        let make = || ModelSpec::new(tiny_offsets(), tiny_messages()).with_max_in_flight(3);
        let reduced = make().check().unwrap();
        let full = make().with_reductions(false).check().unwrap();
        assert!(reduced.ok(), "{:?}", reduced.violations.first());
        assert!(full.ok(), "{:?}", full.violations.first());
        assert_eq!(reduced.schedules, full.schedules);
        assert_eq!(reduced.symmetry_pruned, 0);
        assert!(reduced.heartbeats_elided > 0, "{reduced:?}");
        assert_eq!(full.heartbeats_elided, 0);

        // One schedule replayed both ways must agree on everything except
        // the stall-tick counter (elided heartbeats skip its sampling).
        let schedule: Vec<usize> = (0..make().messages.len()).collect();
        let (mut a, va) = make().replay(&schedule).unwrap();
        let (mut b, vb) = make().with_reductions(false).replay(&schedule).unwrap();
        assert!(va.is_empty(), "{va:?}");
        assert!(vb.is_empty(), "{vb:?}");
        a.stats.watermark_stall_ticks = 0;
        b.stats.watermark_stall_ticks = 0;
        assert_eq!(a.submitted, b.submitted);
        assert_eq!(a.emitted, b.emitted);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.quarantined, b.quarantined);
    }

    #[test]
    fn collusive_fifo_model_flags_both_colluders() {
        let spec = collusive_spec(10);
        let schedule: Vec<usize> = (0..spec.messages.len()).collect();
        let (trace, violations) = spec.replay(&schedule).unwrap();
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(trace.quarantined, vec![ClientId(0), ClientId(1)]);
        assert_eq!(trace.stats.collusion_quarantines, 2, "{:?}", trace.stats);
        assert!(trace.stats.collusion_checks > 0);
        assert!(trace.stats.peak_collusion_score > 0.9);

        let report = spec.check_collusive(&[ClientId(0), ClientId(1)]).unwrap();
        assert_eq!(report.schedules, 1);
        assert!(report.ok(), "{:?}", report.violations.first());
    }

    #[test]
    fn collusive_check_reports_missed_and_honest_violations() {
        // Mislabel the colluders: the real colluders trip
        // HonestQuarantined and the claimed one trips ColluderMissed.
        let report = collusive_spec(10).check_collusive(&[ClientId(2)]).unwrap();
        assert!(!report.ok());
        assert!(report.violations.iter().any(|sv| matches!(
            sv.violation,
            InvariantViolation::ColluderMissed { client } if client == ClientId(2)
        )));
        assert!(report.violations.iter().any(|sv| matches!(
            sv.violation,
            InvariantViolation::HonestQuarantined { client } if client == ClientId(0)
        )));
    }

    #[test]
    fn violation_display_is_readable() {
        let v = InvariantViolation::ViolationRateExceeded {
            violations: 2,
            messages: 10,
            bound: 0.1,
        };
        assert_eq!(
            v.to_string(),
            "2/10 fairness violations exceeds the 0.1 rate bound"
        );
        let v = InvariantViolation::MessageLost { id: MessageId(7) };
        assert_eq!(v.to_string(), "msg7 was never emitted");
    }
}
