//! # tommy-core
//!
//! The core of the Tommy probabilistic fair ordering system — a from-scratch
//! reproduction of *"Beyond Lamport, Towards Probabilistic Fair Ordering"*
//! (HotNets '25).
//!
//! ## What the paper proposes
//!
//! A *fair sequencer* must order messages by when they were generated, not by
//! when they happen to arrive. Perfect clock synchronization is impossible, so
//! Tommy embraces the error instead: every client learns the distribution of
//! its clock offset relative to the sequencer and shares it; the sequencer
//! compares two noisy timestamps *probabilistically*, producing the
//! `likely-happened-before` relation `i --p--> j` (§3.2/§3.3). Pairwise
//! probabilities are assembled into a tournament graph, a linear order is
//! extracted (unique for transitive probabilities, heuristic otherwise), and
//! adjacent messages whose ordering confidence is below a threshold are fused
//! into the same *batch* (§3.4). Batches are emitted in rank order; an online
//! variant (§3.5) additionally waits for a safe-emission time and per-client
//! watermarks before releasing a batch.
//!
//! ## Crate layout
//!
//! * [`message`] — message, client and timestamp types.
//! * [`config`] — sequencer configuration (threshold, `p_safe`, …).
//! * [`registry`] — per-client offset distributions with cached
//!   discretizations, pairwise difference distributions, and the
//!   [`PairKernel`] probability engine (a client pair
//!   resolved once into a lock-free, `dt`-only evaluator).
//! * [`relation`] — the preceding probability and the
//!   [`LikelyHappenedBefore`] relation.
//! * [`precedence`] — the pairwise probability matrix for a set of messages.
//! * [`tournament`] — the directed tournament induced by the matrix:
//!   transitivity checks, and the incremental FAS engine that maintains the
//!   linear order across arrivals as per-SCC condensation blocks (a cyclic
//!   arrival re-solves only the component it touches).
//! * [`graph`] — topological sort, Tarjan SCC, feedback-arc-set heuristics
//!   (the exhaustive greedy pass plus the SCC-scoped local-repair entry
//!   point, both counter-instrumented).
//! * [`batching`] — threshold batching of a linear order into ranked
//!   batches: the static [`FairOrder`] types plus the incremental
//!   batch-boundary engine the online sequencer maintains across arrivals.
//! * [`sequencer`] — the shared sequencing core (linear order → fair order,
//!   one code path for both modes), the offline sequencer (§3.4) and the
//!   online sequencer with safe emission and watermarks (§3.5), including
//!   the sub-quadratic sparse fast path for all-closed-form streams
//!   (order-statistics treap + lazy probability evaluation; see
//!   `ARCHITECTURE.md`, "Sparse fast path").
//! * [`baselines`] — FIFO, WaitsForOne and TrueTime-style sequencers used in
//!   the paper's evaluation (§2, §4).
//! * [`tiebreak`] — randomized tie-breaking to extend the fair partial order
//!   to a fair total order (§5 "Extension to Fair Total Order").
//! * [`defense`] — untrusted-distribution hardening (§5 "Byzantine
//!   Clients"): per-client [`defense::TrustState`] cross-checking observed
//!   residuals against the claimed distribution, quarantine onto fallback
//!   margins, and drift-triggered re-estimation.
//! * [`session`] — sequenced-session recovery: the payload-generic
//!   [`SequenceValidator`] reassembling per-`(client, stream)` frames in
//!   order, detecting gaps/duplicates/reorders and recovering per a
//!   [`RecoveryPolicy`] (halt, skip-after-timeout, or bounded retransmit
//!   requests with exponential backoff).
//! * [`checker`] — a small-model exhaustive checker that replays every
//!   delivery schedule of a tiny workload through the online sequencer and
//!   asserts TLA-style ordering invariants — including lossy, duplicating
//!   and crash-faulted delivery schedules replayed through the session
//!   layer (see `ARCHITECTURE.md`, "Threat model & degradation" and
//!   "Failure model & recovery").
//!
//! The repository-level `ARCHITECTURE.md` documents how these pieces
//! compose into the full arrival → emission pipeline (PairKernel column
//! fill → incremental tournament → incremental batch boundaries →
//! sequencing core), the incremental-vs-rebuild invariants each counter
//! guards, and the ten-crate workspace map.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod batching;
pub mod checker;
pub mod config;
pub mod defense;
pub mod error;
pub mod graph;
pub(crate) mod grid;
pub mod message;
pub mod precedence;
pub mod registry;
pub mod relation;
pub mod sequencer;
pub mod session;
pub mod tiebreak;
pub mod tournament;

pub use batching::{Batch, FairOrder, FairOrderCounters, IncrementalFairOrder};
pub use checker::{
    CheckReport, CrashLivenessReport, FaultCheckReport, FaultSpec, InvariantViolation, ModelSpec,
    RunTrace, ShardedCheckReport,
};
pub use config::{FasFallbackReason, FastPathMode, LivenessConfig, SequencerConfig};
pub use defense::{
    CollusionReport, CollusionTracker, DefenseConfig, ExpectedDelay, TrustEvent, TrustLevel,
    TrustState,
};
pub use error::CoreError;
pub use message::{ClientId, Message, MessageId};
pub use precedence::PrecedenceMatrix;
pub use registry::{DistributionRegistry, PairKernel};
pub use relation::LikelyHappenedBefore;
pub use sequencer::offline::TommySequencer;
pub use sequencer::online::{CandidateStatus, OnlineSequencer, OnlineStats};
pub use sequencer::{SequencingCore, SequencingOutcome};
pub use session::{RecoveryPolicy, SequenceValidator, SessionAction, SessionCounters};
pub use tournament::{IncrementalTournament, Tournament};

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::baselines::{FifoSequencer, TrueTimeSequencer, WfoSequencer};
    pub use crate::batching::{Batch, FairOrder};
    pub use crate::config::{FastPathMode, SequencerConfig};
    pub use crate::message::{ClientId, Message, MessageId};
    pub use crate::registry::DistributionRegistry;
    pub use crate::sequencer::offline::TommySequencer;
    pub use crate::sequencer::online::OnlineSequencer;
    pub use crate::sequencer::sharded::ShardedSequencer;
    pub use tommy_stats::distribution::OffsetDistribution;
    pub use tommy_stats::gaussian::Gaussian;
}
