//! Sequenced-session recovery: gap / duplicate / reorder detection.
//!
//! The paper's watermark rule (§3.5) is sound only over per-client ordered
//! channels. This module supplies the ordering layer for transports that are
//! *not* ordered: every frame of a `(client, stream)` session carries a
//! monotone sequence number, and a [`SequenceValidator`] reassembles the
//! stream on the receiver, detecting gaps, duplicates and reorders and
//! acting on a configurable [`RecoveryPolicy`] — the dashflow
//! `StreamMessageOrdering` TLA spec's `expectedNext` machinery.
//!
//! The validator is payload-generic so the same state machine backs both the
//! wire layer (`tommy-wire`'s `StreamReceiver`, payload = a decoded frame)
//! and the exhaustive model checker (`crate::checker`, payload = a message
//! index), letting the checker verify exactly the code that runs in
//! production.
//!
//! Invariant, shared by every policy: payloads are **released in strict
//! sequence order with no duplicates**. The policies differ only in what
//! happens at a hole:
//!
//! * [`RecoveryPolicy::Halt`] — never skip, never request: the stream blocks
//!   until the hole heals on its own (a pure reorder) or forever (a true
//!   loss). Nothing after an unhealed hole is ever released, so delivered
//!   prefixes are always loss-free (`NoDataLoss` in the TLA spec).
//! * [`RecoveryPolicy::SkipAfterTimeout`] — a hole older than `timeout` is
//!   skipped and the stream moves on (bounded staleness, explicit loss).
//! * [`RecoveryPolicy::RequestRetransmit`] — emit
//!   [`SessionAction::RequestRetransmit`] with exponential backoff; after
//!   `max_retries` unanswered requests the hole is skipped so a dead sender
//!   cannot wedge the stream.

use std::collections::BTreeMap;

/// What a receiver does about a detected sequence gap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecoveryPolicy {
    /// Block the stream at the hole until it heals on its own. Safe (no
    /// skipped data, no requests) but a true loss stalls the stream forever;
    /// pair with watermark eviction for liveness.
    Halt,
    /// Skip a hole once it has been open for `timeout` time units.
    SkipAfterTimeout {
        /// How long a hole may stay open before it is skipped.
        timeout: f64,
    },
    /// Request retransmission of each hole with exponential backoff; give up
    /// (skip) after `max_retries` unanswered requests.
    RequestRetransmit {
        /// Retransmit requests sent per hole before giving up.
        max_retries: u32,
        /// Delay before the first re-request; doubles per retry.
        base_backoff: f64,
    },
}

impl RecoveryPolicy {
    /// Validate the policy's parameters.
    ///
    /// # Panics
    ///
    /// Panics on non-finite or non-positive timeouts/backoffs and on
    /// `max_retries == 0`.
    pub fn validate(&self) {
        match *self {
            RecoveryPolicy::Halt => {}
            RecoveryPolicy::SkipAfterTimeout { timeout } => {
                assert!(
                    timeout.is_finite() && timeout > 0.0,
                    "skip timeout must be positive and finite, got {timeout}"
                );
            }
            RecoveryPolicy::RequestRetransmit {
                max_retries,
                base_backoff,
            } => {
                assert!(max_retries > 0, "retransmit policy needs at least one retry");
                assert!(
                    base_backoff.is_finite() && base_backoff > 0.0,
                    "retransmit backoff must be positive and finite, got {base_backoff}"
                );
            }
        }
    }
}

/// Recovery counters of one validator (or, summed, of a whole receiver).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionCounters {
    /// Missing sequence numbers detected (one per hole, when first seen).
    pub gaps_detected: u64,
    /// Frames dropped because their sequence was already released/buffered.
    pub dupes_dropped: u64,
    /// Out-of-order frames parked in the reassembly buffer.
    pub reorders_buffered: u64,
    /// Retransmit requests emitted ([`RecoveryPolicy::RequestRetransmit`]).
    pub retransmit_requests: u64,
    /// Holes given up on and skipped (timeout expiry or retries exhausted).
    pub sequences_skipped: u64,
}

impl SessionCounters {
    /// Accumulate another counter set into this one.
    pub fn absorb(&mut self, other: SessionCounters) {
        self.gaps_detected += other.gaps_detected;
        self.dupes_dropped += other.dupes_dropped;
        self.reorders_buffered += other.reorders_buffered;
        self.retransmit_requests += other.retransmit_requests;
        self.sequences_skipped += other.sequences_skipped;
    }
}

/// A recovery action the session layer asks its host to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionAction {
    /// Ask the sender to retransmit the frame with this sequence number.
    RequestRetransmit {
        /// The missing sequence number.
        sequence: u64,
    },
}

/// The outcome of a [`SequenceValidator::poll`] call.
#[derive(Debug)]
pub struct SessionPoll<T> {
    /// Payloads released in sequence order by skip-driven advances.
    pub released: Vec<T>,
    /// Recovery actions for the host to carry out.
    pub actions: Vec<SessionAction>,
}

impl<T> Default for SessionPoll<T> {
    fn default() -> Self {
        SessionPoll {
            released: Vec::new(),
            actions: Vec::new(),
        }
    }
}

/// Book-keeping for one open hole.
#[derive(Debug, Clone, Copy)]
struct MissingState {
    /// When the hole was first detected.
    detected_at: f64,
    /// Retransmit requests sent so far.
    retries: u32,
    /// When the next request (or the give-up skip) becomes due.
    next_action_at: f64,
}

/// Per-stream reassembly state machine: strict in-order release with
/// gap/duplicate/reorder detection under a [`RecoveryPolicy`].
///
/// Sequence numbers start at 0 and are dense: the sender assigns them
/// monotonically with no holes, so every hole observed by the receiver is a
/// delivery fault.
#[derive(Debug)]
pub struct SequenceValidator<T> {
    policy: RecoveryPolicy,
    /// The next sequence number to release.
    next_expected: u64,
    /// Highest sequence number ever accepted (released or buffered).
    highest_seen: Option<u64>,
    /// Out-of-order payloads parked until their hole fills.
    buffer: BTreeMap<u64, T>,
    /// Open holes in `[next_expected, highest_seen]`.
    missing: BTreeMap<u64, MissingState>,
    counters: SessionCounters,
}

impl<T> SequenceValidator<T> {
    /// A fresh validator expecting sequence 0.
    pub fn new(policy: RecoveryPolicy) -> Self {
        policy.validate();
        SequenceValidator {
            policy,
            next_expected: 0,
            highest_seen: None,
            buffer: BTreeMap::new(),
            missing: BTreeMap::new(),
            counters: SessionCounters::default(),
        }
    }

    /// The policy this validator recovers under.
    pub fn policy(&self) -> RecoveryPolicy {
        self.policy
    }

    /// The next sequence number that would be released.
    pub fn next_expected(&self) -> u64 {
        self.next_expected
    }

    /// Number of out-of-order payloads parked in the reassembly buffer.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Open holes, in ascending sequence order.
    pub fn missing(&self) -> Vec<u64> {
        self.missing.keys().copied().collect()
    }

    /// Whether the stream is currently blocked on a hole.
    pub fn blocked(&self) -> bool {
        !self.missing.is_empty()
    }

    /// Whether nothing is buffered or missing (safe to discard the state).
    pub fn is_quiescent(&self) -> bool {
        self.buffer.is_empty() && self.missing.is_empty()
    }

    /// Recovery counters accumulated so far.
    pub fn counters(&self) -> SessionCounters {
        self.counters
    }

    /// Accept a frame observed at time `now`; returns the payloads this
    /// frame unblocks, in strict sequence order (empty on duplicates and on
    /// out-of-order arrivals that still leave a hole open).
    pub fn accept(&mut self, sequence: u64, payload: T, now: f64) -> Vec<T> {
        // Anything below the release cursor, or already parked, is a dup.
        if sequence < self.next_expected || self.buffer.contains_key(&sequence) {
            self.counters.dupes_dropped += 1;
            return Vec::new();
        }
        let healed_hole = self.missing.remove(&sequence).is_some();
        let frontier = self
            .highest_seen
            .map_or(self.next_expected, |h| (h + 1).max(self.next_expected));
        if sequence >= frontier {
            // Every sequence between the old frontier and this frame is a
            // freshly discovered hole.
            for hole in frontier..sequence {
                self.missing.insert(
                    hole,
                    MissingState {
                        detected_at: now,
                        retries: 0,
                        next_action_at: now,
                    },
                );
                self.counters.gaps_detected += 1;
            }
            self.highest_seen = Some(sequence);
        }

        if sequence == self.next_expected {
            let mut released = vec![payload];
            self.next_expected += 1;
            self.drain_buffer(&mut released);
            released
        } else {
            // Invariant: between next_expected and highest_seen every
            // sequence is released (none), buffered, or missing — so a
            // non-dup out-of-order frame either healed a known hole or
            // extended the frontier above.
            debug_assert!(healed_hole || sequence >= frontier);
            if !healed_hole {
                self.counters.reorders_buffered += 1;
            }
            self.buffer.insert(sequence, payload);
            Vec::new()
        }
    }

    /// Advance recovery timers to `now`: emit due retransmit requests, skip
    /// expired holes, and release whatever those skips unblock.
    pub fn poll(&mut self, now: f64) -> SessionPoll<T> {
        let mut out = SessionPoll::default();
        match self.policy {
            RecoveryPolicy::Halt => {}
            RecoveryPolicy::SkipAfterTimeout { timeout } => loop {
                match self.missing.first_key_value() {
                    Some((&seq, state))
                        if seq == self.next_expected && now >= state.detected_at + timeout =>
                    {
                        self.skip_head(seq, &mut out.released);
                    }
                    _ => break,
                }
            },
            RecoveryPolicy::RequestRetransmit {
                max_retries,
                base_backoff,
            } => {
                // Give up on head-of-line holes whose retries are exhausted
                // and whose final backoff window has passed.
                loop {
                    match self.missing.first_key_value() {
                        Some((&seq, state))
                            if seq == self.next_expected
                                && state.retries >= max_retries
                                && now >= state.next_action_at =>
                        {
                            self.skip_head(seq, &mut out.released);
                        }
                        _ => break,
                    }
                }
                for (&seq, state) in self.missing.iter_mut() {
                    if state.retries < max_retries && now >= state.next_action_at {
                        out.actions.push(SessionAction::RequestRetransmit { sequence: seq });
                        state.retries += 1;
                        let exponent = (state.retries - 1).min(32);
                        state.next_action_at = now + base_backoff * (1u64 << exponent) as f64;
                        self.counters.retransmit_requests += 1;
                    }
                }
            }
        }
        out
    }

    /// Give up on the head-of-line hole `sequence` and release the run it
    /// was blocking.
    fn skip_head(&mut self, sequence: u64, released: &mut Vec<T>) {
        debug_assert_eq!(sequence, self.next_expected);
        self.missing.remove(&sequence);
        self.counters.sequences_skipped += 1;
        self.next_expected = sequence + 1;
        self.drain_buffer(released);
    }

    /// Release the contiguous buffered run starting at `next_expected`.
    fn drain_buffer(&mut self, released: &mut Vec<T>) {
        while let Some(payload) = self.buffer.remove(&self.next_expected) {
            released.push(payload);
            self.next_expected += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn retransmit() -> RecoveryPolicy {
        RecoveryPolicy::RequestRetransmit {
            max_retries: 3,
            base_backoff: 1.0,
        }
    }

    #[test]
    fn in_order_stream_releases_immediately() {
        let mut v = SequenceValidator::new(RecoveryPolicy::Halt);
        for seq in 0..10u64 {
            assert_eq!(v.accept(seq, seq, seq as f64), vec![seq]);
        }
        assert_eq!(v.counters(), SessionCounters::default());
        assert!(v.is_quiescent());
    }

    #[test]
    fn reorder_buffers_then_releases_in_order() {
        let mut v = SequenceValidator::new(RecoveryPolicy::Halt);
        assert_eq!(v.accept(0, 'a', 0.0), vec!['a']);
        assert!(v.accept(2, 'c', 1.0).is_empty());
        assert!(v.blocked());
        assert_eq!(v.accept(1, 'b', 2.0), vec!['b', 'c']);
        assert!(v.is_quiescent());
        let c = v.counters();
        assert_eq!(c.gaps_detected, 1);
        assert_eq!(c.reorders_buffered, 1);
        assert_eq!(c.dupes_dropped, 0);
        assert_eq!(c.sequences_skipped, 0);
    }

    #[test]
    fn duplicates_are_dropped_everywhere() {
        let mut v = SequenceValidator::new(RecoveryPolicy::Halt);
        v.accept(0, 'a', 0.0);
        assert!(v.accept(0, 'a', 1.0).is_empty(), "released dup");
        v.accept(2, 'c', 2.0);
        assert!(v.accept(2, 'c', 3.0).is_empty(), "buffered dup");
        assert_eq!(v.counters().dupes_dropped, 2);
    }

    #[test]
    fn halt_blocks_forever_on_a_true_loss() {
        let mut v = SequenceValidator::new(RecoveryPolicy::Halt);
        v.accept(0, 0u64, 0.0);
        v.accept(2, 2u64, 1.0); // seq 1 lost
        for t in 0..100 {
            let poll = v.poll(t as f64 * 1000.0);
            assert!(poll.released.is_empty());
            assert!(poll.actions.is_empty());
        }
        assert!(v.blocked());
        assert_eq!(v.next_expected(), 1);
    }

    #[test]
    fn skip_after_timeout_releases_the_tail() {
        let mut v = SequenceValidator::new(RecoveryPolicy::SkipAfterTimeout { timeout: 5.0 });
        v.accept(0, 'a', 0.0);
        v.accept(2, 'c', 1.0); // hole at 1, detected at t=1
        assert!(v.poll(5.9).released.is_empty(), "before the deadline");
        let poll = v.poll(6.0);
        assert_eq!(poll.released, vec!['c']);
        assert_eq!(v.counters().sequences_skipped, 1);
        assert_eq!(v.next_expected(), 3);
        assert!(v.is_quiescent());
    }

    #[test]
    fn retransmit_requests_back_off_exponentially() {
        let mut v = SequenceValidator::new(retransmit());
        v.accept(0, 'a', 0.0);
        v.accept(2, 'c', 10.0); // hole at 1
        let first = v.poll(10.0);
        assert_eq!(
            first.actions,
            vec![SessionAction::RequestRetransmit { sequence: 1 }]
        );
        // Backoff 1.0 after the first request: nothing due before t=11.
        assert!(v.poll(10.5).actions.is_empty());
        assert_eq!(v.poll(11.0).actions.len(), 1);
        // Backoff doubles to 2.0: nothing due before t=13.
        assert!(v.poll(12.5).actions.is_empty());
        assert_eq!(v.poll(13.0).actions.len(), 1);
        assert_eq!(v.counters().retransmit_requests, 3);
        // Retries exhausted: the final backoff (4.0) expires at t=17 and the
        // hole is skipped, releasing the tail.
        assert!(v.poll(16.9).released.is_empty());
        let gave_up = v.poll(17.0);
        assert_eq!(gave_up.released, vec!['c']);
        assert_eq!(v.counters().sequences_skipped, 1);
    }

    #[test]
    fn retransmitted_frame_heals_the_hole() {
        let mut v = SequenceValidator::new(retransmit());
        v.accept(0, 'a', 0.0);
        v.accept(2, 'c', 1.0);
        assert_eq!(v.poll(1.0).actions.len(), 1);
        // The retransmission arrives: released in order, no skip.
        assert_eq!(v.accept(1, 'b', 2.0), vec!['b', 'c']);
        assert!(v.is_quiescent());
        assert_eq!(v.counters().sequences_skipped, 0);
        // A retransmission of a healed hole is just a dup.
        assert!(v.accept(1, 'b', 3.0).is_empty());
        assert_eq!(v.counters().dupes_dropped, 1);
    }

    #[test]
    fn multiple_holes_fill_in_any_order() {
        let mut v = SequenceValidator::new(retransmit());
        v.accept(5, 'f', 0.0); // holes 0..=4
        assert_eq!(v.counters().gaps_detected, 5);
        assert_eq!(v.poll(0.0).actions.len(), 5);
        // A middle hole fills while earlier ones stay open: buffered, not a
        // new gap, not a reorder.
        assert!(v.accept(3, 'd', 1.0).is_empty());
        assert_eq!(v.counters().gaps_detected, 5);
        assert!(v.accept(1, 'b', 2.0).is_empty());
        assert_eq!(v.accept(0, 'a', 3.0), vec!['a', 'b']);
        assert_eq!(v.accept(2, 'c', 4.0), vec!['c', 'd']);
        assert_eq!(v.accept(4, 'e', 5.0), vec!['e', 'f']);
        assert!(v.is_quiescent());
    }

    #[test]
    fn counters_absorb_sums_fields() {
        let mut a = SessionCounters {
            gaps_detected: 1,
            dupes_dropped: 2,
            reorders_buffered: 3,
            retransmit_requests: 4,
            sequences_skipped: 5,
        };
        a.absorb(a);
        assert_eq!(a.gaps_detected, 2);
        assert_eq!(a.sequences_skipped, 10);
    }

    #[test]
    #[should_panic(expected = "at least one retry")]
    fn zero_retries_rejected() {
        SequenceValidator::<u8>::new(RecoveryPolicy::RequestRetransmit {
            max_retries: 0,
            base_backoff: 1.0,
        });
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn non_finite_timeout_rejected() {
        SequenceValidator::<u8>::new(RecoveryPolicy::SkipAfterTimeout {
            timeout: f64::INFINITY,
        });
    }
}
