//! Sequencer configuration.

use tommy_stats::convolution::ConvolutionMethod;

use crate::defense::DefenseConfig;

/// Why the incremental FAS engine is not in effect for a configuration,
/// even though outputs are unchanged either way (the incremental and
/// full-recompute paths are property-tested bit-identical).
///
/// Historically [`SequencerConfig::incremental_fas`] was silently treated
/// as `false` under stochastic cycle breaking; the reason is now explicit
/// so results can report *why* a run took the full-recompute path. Query it
/// with [`SequencerConfig::fas_fallback_reason`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FasFallbackReason {
    /// The caller set [`SequencerConfig::incremental_fas`] to `false`
    /// (baseline measurement, correctness anchoring).
    DisabledByConfig,
    /// [`SequencerConfig::stochastic_cycle_breaking`] is on: stochastic
    /// repairs resample edge removals per solve, so per-component results
    /// cannot be cached and the incremental engine would change the
    /// sampling stream. The engine is therefore bypassed.
    StochasticCycleBreaking,
}

impl std::fmt::Display for FasFallbackReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FasFallbackReason::DisabledByConfig => write!(f, "disabled by config"),
            FasFallbackReason::StochasticCycleBreaking => {
                write!(f, "stochastic cycle breaking is incompatible")
            }
        }
    }
}

/// Which precedence engine the online sequencer runs over its pending set.
///
/// For closed-form (Gaussian) kernels, `p(i ≺ j) ≥ ½` reduces to a
/// per-client timestamp-margin comparison, so the tournament order is a
/// sort by margin-adjusted timestamp and the dense
/// [`PrecedenceMatrix`](crate::precedence::PrecedenceMatrix) column an
/// arrival would fill is never needed — the *sparse fast path* maintains
/// the order in an order-statistics tree and evaluates probabilities
/// lazily, only for the boundary-adjacent pairs the batch threshold
/// actually inspects (see `ARCHITECTURE.md`, "Sparse fast path").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FastPathMode {
    /// Decide automatically (the default): the sparse path runs whenever
    /// *every* registered client has a closed-form (Gaussian) offset
    /// distribution, and the sequencer falls back to the dense matrix the
    /// moment a non-closed-form client is registered — re-evaluated on
    /// every registration, with pending messages migrated across the
    /// switch (bit-identical emitted batches either way, property-tested).
    #[default]
    Auto,
    /// Never use the sparse path: every arrival fills a dense matrix
    /// column, exactly the historical engine. Exists for baseline
    /// measurement (`sparse_path` bench), for the exact-query-count
    /// regression tests, and as a correctness anchor — the fast-path
    /// counters (`lazy_evals`, `dense_columns_avoided`, `mode_switches`)
    /// stay zero under it.
    ForceDense,
}

/// Watermark-liveness configuration: heartbeat-timeout detection for the
/// online sequencer (§3.5 degradation under client failure).
///
/// The watermark completeness rule blocks a batch until *every* active
/// client's watermark passes the batch horizon, so one silent client stalls
/// emission forever. With liveness enabled, a client not heard from for
/// `staleness_deadline` sequencer-clock units while the watermark is
/// blocking is *suspended* — excluded from the watermark (an eviction,
/// counted on [`OnlineStats`](crate::sequencer::online::OnlineStats)) —
/// and *resumed* the moment it speaks again (a rejoin). A suspended
/// client's late messages may land below already-emitted horizons; they
/// are then counted as fairness violations by the existing machinery —
/// bounded staleness traded for liveness, never silent reordering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LivenessConfig {
    /// Whether heartbeat-timeout eviction is active.
    pub enabled: bool,
    /// How long (sequencer-clock units) a client may stay silent while
    /// blocking the watermark before it is suspended.
    pub staleness_deadline: f64,
}

impl LivenessConfig {
    /// Liveness off: a silent client blocks emission forever (the
    /// historical behaviour, and the default).
    pub fn disabled() -> Self {
        LivenessConfig {
            enabled: false,
            staleness_deadline: f64::INFINITY,
        }
    }

    /// Liveness on with the given staleness deadline.
    ///
    /// # Panics
    ///
    /// Panics unless the deadline is positive and finite.
    pub fn enabled(staleness_deadline: f64) -> Self {
        assert!(
            staleness_deadline.is_finite() && staleness_deadline > 0.0,
            "staleness deadline must be positive and finite, got {staleness_deadline}"
        );
        LivenessConfig {
            enabled: true,
            staleness_deadline,
        }
    }
}

impl Default for LivenessConfig {
    fn default() -> Self {
        LivenessConfig::disabled()
    }
}

/// Configuration shared by the offline and online Tommy sequencers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SequencerConfig {
    /// Batch-boundary confidence threshold of §3.4 (the paper uses 0.75):
    /// adjacent messages `i → j` in the extracted linear order are split into
    /// different batches only when `p(i → j) > threshold`.
    pub threshold: f64,
    /// Safe-emission confidence of §3.5 (the paper suggests 0.999): a batch
    /// is only emitted once, for every member `i`, the sequencer's clock has
    /// passed a time `T^F_i` with `P(T*_i < T^F_i) > p_safe`.
    pub p_safe: f64,
    /// Convolution implementation used when building difference distributions
    /// for non-Gaussian offset pairs.
    pub convolution: ConvolutionMethod,
    /// Number of grid points used when discretizing non-Gaussian offset
    /// distributions.
    pub grid_points: usize,
    /// When `true`, intransitive tournaments are repaired with the
    /// *stochastic* feedback-arc-set heuristic (random, probability-weighted
    /// edge removals) instead of the deterministic greedy one, trading
    /// per-decision determinism for long-run stochastic fairness (§3.4).
    pub stochastic_cycle_breaking: bool,
    /// When `true` (the default), intransitivity cycles are handled by the
    /// *incremental FAS engine*: the maintained linear order tracks the
    /// tournament's condensation as a sequence of per-SCC blocks, a cyclic
    /// arrival re-solves only the one component it strongly connects
    /// (`graph::fas::repair_component`), and an emission re-solves only the
    /// components it partially removed — so a cyclic arrival is no longer an
    /// automatic full rebuild. Set to `false` to force the historical
    /// fallback (every intransitivity event invalidates the whole maintained
    /// order, recomputed one-shot on the next read): the two paths produce
    /// bit-identical orders and emitted batches (property-tested), so the
    /// flag exists for baseline measurement (`fas_stress` bench) and as a
    /// correctness anchor, not because outputs differ. Ignored (treated as
    /// `false`) when [`stochastic_cycle_breaking`](Self::stochastic_cycle_breaking)
    /// is set, since stochastic repairs are not cacheable per component —
    /// that override is surfaced (not silent) as
    /// [`FasFallbackReason::StochasticCycleBreaking`] by
    /// [`fas_fallback_reason`](Self::fas_fallback_reason) and echoed on
    /// [`SequencingOutcome`](crate::sequencer::SequencingOutcome).
    pub incremental_fas: bool,
    /// When `true` (the default), the online sequencer keeps its full
    /// emission history: the cumulative
    /// [`FairOrder`](crate::batching::FairOrder) and the set of every message
    /// id ever seen. Set to `false` for long-running streams so sequencer
    /// memory stays proportional to the *pending* set: callers then drain
    /// batches with `OnlineSequencer::take_emitted`, and duplicate detection
    /// only covers messages not yet emitted. A duplicate of an *emitted*
    /// message is usually still rejected by the per-client watermark
    /// monotonicity rule, but an exact retransmission (same timestamp) can
    /// slip back in when the batch was emitted without the client's own
    /// watermark passing it (a retired client, or a final `flush()`) —
    /// accept that trade-off, or deduplicate upstream, before disabling
    /// history.
    pub retain_history: bool,
    /// Worker-thread count for the offline (batch-mode) pairwise
    /// [`PrecedenceMatrix`](crate::precedence::PrecedenceMatrix) build.
    ///
    /// * `1` (the default) — fully serial, exactly the historical behaviour.
    /// * `0` — auto-detect via `std::thread::available_parallelism()`.
    /// * any other value — that many worker threads.
    ///
    /// The tiled build partitions the upper triangle of the query grid into
    /// row blocks balanced by pair count and is **bit-identical** to the
    /// serial build: every pair is evaluated in the same orientation through
    /// the same [`PairKernel`](crate::registry::PairKernel) formulas, so the
    /// resulting matrix (and therefore every downstream tournament, linear
    /// order, and batch boundary) is exactly the one the serial build
    /// produces. Only wall-clock time changes. Each worker resolves its own
    /// kernel cache — O(C²) registry lock touches per tile (C = distinct
    /// clients) instead of O(pairs) — and then runs lock-free, so worker
    /// scaling is not capped by shared-lock traffic.
    ///
    /// The registry's query counter keeps its per-evaluation semantics under
    /// both builds: kernel-based fills record their evaluations in bulk
    /// (one atomic add per column/build rather than per query), so on
    /// success the count equals what per-call querying would have produced.
    /// The online sequencer's incremental arrival path never builds
    /// a full matrix and is unaffected by this knob.
    pub parallelism: usize,
    /// The untrusted-distribution defense ([`crate::defense`]): when
    /// enabled, the online sequencer cross-checks each client's observed
    /// residuals against its claimed distribution, quarantines misreporters
    /// onto conservative fallback margins, and re-estimates drifted clients
    /// online. Disabled by default — the pipeline is then bit-for-bit the
    /// historical one.
    pub defense: DefenseConfig,
    /// Watermark liveness under client failure (see [`LivenessConfig`]):
    /// when enabled, the online sequencer suspends clients that stay silent
    /// past the staleness deadline while blocking the watermark, and resumes
    /// them when they speak again. Disabled by default.
    pub liveness: LivenessConfig,
    /// Online precedence-engine selection (see [`FastPathMode`]):
    /// [`FastPathMode::Auto`] (the default) runs the sub-quadratic sparse
    /// fast path on all-closed-form client populations and the dense matrix
    /// otherwise; [`FastPathMode::ForceDense`] pins the historical dense
    /// engine unconditionally.
    pub fast_path: FastPathMode,
    /// Shard count for the sharded online sequencer
    /// ([`ShardedSequencer`](crate::sequencer::sharded::ShardedSequencer)):
    /// registered clients are partitioned round-robin across this many
    /// per-shard engines whose locally-fair orders are merged by the
    /// cross-shard combiner.
    ///
    /// * `1` (the default) — a single shard: the combiner is a passthrough
    ///   and the emitted batches are bit-identical to a plain
    ///   [`OnlineSequencer`](crate::sequencer::online::OnlineSequencer) fed
    ///   the same calls, by construction.
    /// * `0` — auto-detect via `std::thread::available_parallelism()`.
    /// * any other value — that many shards.
    ///
    /// The plain `OnlineSequencer` ignores this knob; it only selects how
    /// many per-shard engines a `ShardedSequencer` constructs.
    pub shards: usize,
}

impl Default for SequencerConfig {
    fn default() -> Self {
        SequencerConfig {
            threshold: 0.75,
            p_safe: 0.999,
            convolution: ConvolutionMethod::Auto,
            grid_points: 1024,
            stochastic_cycle_breaking: false,
            incremental_fas: true,
            retain_history: true,
            parallelism: 1,
            defense: DefenseConfig::disabled(),
            liveness: LivenessConfig::disabled(),
            fast_path: FastPathMode::Auto,
            shards: 1,
        }
    }
}

/// Resolve a [`SequencerConfig::parallelism`] knob value to a concrete
/// worker-thread count: `0` auto-detects the hardware parallelism (falling
/// back to 1 when detection fails), anything else is used as-is.
pub fn resolve_parallelism(parallelism: usize) -> usize {
    if parallelism == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        parallelism
    }
}

/// Resolve a [`SequencerConfig::shards`] knob value to a concrete shard
/// count: `0` auto-detects the hardware parallelism (falling back to 1 when
/// detection fails), anything else is used as-is.
pub fn resolve_shards(shards: usize) -> usize {
    resolve_parallelism(shards)
}

impl SequencerConfig {
    /// Create a configuration with the paper's defaults.
    pub fn new() -> Self {
        SequencerConfig::default()
    }

    /// Set the batch-boundary threshold.
    ///
    /// # Panics
    ///
    /// Panics unless `0.5 < threshold < 1.0`: at or below 0.5 every adjacent
    /// pair would be split (the relation itself is only defined for the
    /// higher-probability direction), and at 1.0 nothing ever would be.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        assert!(
            threshold > 0.5 && threshold < 1.0,
            "threshold must be in (0.5, 1.0), got {threshold}"
        );
        self.threshold = threshold;
        self
    }

    /// Set the safe-emission confidence.
    ///
    /// # Panics
    ///
    /// Panics unless `0.5 < p_safe < 1.0`.
    pub fn with_p_safe(mut self, p_safe: f64) -> Self {
        assert!(
            p_safe > 0.5 && p_safe < 1.0,
            "p_safe must be in (0.5, 1.0), got {p_safe}"
        );
        self.p_safe = p_safe;
        self
    }

    /// Select the convolution implementation.
    pub fn with_convolution(mut self, method: ConvolutionMethod) -> Self {
        self.convolution = method;
        self
    }

    /// Set the discretization grid resolution.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 16 points are requested.
    pub fn with_grid_points(mut self, points: usize) -> Self {
        assert!(points >= 16, "need at least 16 grid points, got {points}");
        self.grid_points = points;
        self
    }

    /// Enable or disable stochastic cycle breaking.
    pub fn with_stochastic_cycle_breaking(mut self, enabled: bool) -> Self {
        self.stochastic_cycle_breaking = enabled;
        self
    }

    /// Enable or disable the incremental FAS engine (see
    /// [`SequencerConfig::incremental_fas`]); disabling forces the
    /// historical full-recompute fallback on every intransitivity event.
    pub fn with_incremental_fas(mut self, enabled: bool) -> Self {
        self.incremental_fas = enabled;
        self
    }

    /// Enable or disable unbounded emission-history retention (see
    /// [`SequencerConfig::retain_history`]).
    pub fn with_retain_history(mut self, enabled: bool) -> Self {
        self.retain_history = enabled;
        self
    }

    /// Set the offline matrix-build worker count (see
    /// [`SequencerConfig::parallelism`]): `1` serial, `0` auto-detect.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The concrete worker-thread count this configuration resolves to
    /// (auto-detecting when [`parallelism`](Self::parallelism) is `0`).
    pub fn resolved_parallelism(&self) -> usize {
        resolve_parallelism(self.parallelism)
    }

    /// Set the untrusted-distribution defense configuration (see
    /// [`SequencerConfig::defense`]).
    pub fn with_defense(mut self, defense: DefenseConfig) -> Self {
        self.defense = defense;
        self
    }

    /// Set the watermark-liveness configuration (see
    /// [`SequencerConfig::liveness`]).
    pub fn with_liveness(mut self, liveness: LivenessConfig) -> Self {
        self.liveness = liveness;
        self
    }

    /// Select the online precedence engine (see
    /// [`SequencerConfig::fast_path`] and [`FastPathMode`]).
    pub fn with_fast_path(mut self, mode: FastPathMode) -> Self {
        self.fast_path = mode;
        self
    }

    /// Set the sharded-sequencer shard count (see
    /// [`SequencerConfig::shards`]): `1` single shard, `0` auto-detect.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// The concrete shard count this configuration resolves to
    /// (auto-detecting when [`shards`](Self::shards) is `0`).
    pub fn resolved_shards(&self) -> usize {
        resolve_shards(self.shards)
    }

    /// Why the incremental FAS engine will *not* run for this
    /// configuration, or `None` when it will. This is the single source of
    /// truth consulted by [`SequencingCore`](crate::sequencer::SequencingCore)
    /// — the historical silent `incremental_fas && !stochastic` flag flip,
    /// made explicit.
    pub fn fas_fallback_reason(&self) -> Option<FasFallbackReason> {
        if !self.incremental_fas {
            Some(FasFallbackReason::DisabledByConfig)
        } else if self.stochastic_cycle_breaking {
            Some(FasFallbackReason::StochasticCycleBreaking)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SequencerConfig::default();
        assert_eq!(c.threshold, 0.75);
        assert_eq!(c.p_safe, 0.999);
        assert_eq!(c.grid_points, 1024);
        assert!(!c.stochastic_cycle_breaking);
        assert!(c.incremental_fas);
        assert!(c.retain_history);
        assert_eq!(c.parallelism, 1);
        assert_eq!(c.fast_path, FastPathMode::Auto);
    }

    #[test]
    fn fast_path_builder() {
        let c = SequencerConfig::new().with_fast_path(FastPathMode::ForceDense);
        assert_eq!(c.fast_path, FastPathMode::ForceDense);
        assert_eq!(FastPathMode::default(), FastPathMode::Auto);
    }

    #[test]
    fn parallelism_builder_and_resolution() {
        let c = SequencerConfig::new().with_parallelism(4);
        assert_eq!(c.parallelism, 4);
        assert_eq!(c.resolved_parallelism(), 4);
        let auto = SequencerConfig::new().with_parallelism(0);
        assert!(auto.resolved_parallelism() >= 1);
        assert_eq!(resolve_parallelism(3), 3);
    }

    #[test]
    fn shards_builder_and_resolution() {
        assert_eq!(SequencerConfig::default().shards, 1);
        let c = SequencerConfig::new().with_shards(4);
        assert_eq!(c.shards, 4);
        assert_eq!(c.resolved_shards(), 4);
        let auto = SequencerConfig::new().with_shards(0);
        assert!(auto.resolved_shards() >= 1);
        assert_eq!(resolve_shards(3), 3);
    }

    #[test]
    fn retain_history_builder() {
        let c = SequencerConfig::new().with_retain_history(false);
        assert!(!c.retain_history);
    }

    #[test]
    fn fas_fallback_reason_is_explicit() {
        assert_eq!(SequencerConfig::new().fas_fallback_reason(), None);
        assert_eq!(
            SequencerConfig::new()
                .with_incremental_fas(false)
                .fas_fallback_reason(),
            Some(FasFallbackReason::DisabledByConfig)
        );
        assert_eq!(
            SequencerConfig::new()
                .with_stochastic_cycle_breaking(true)
                .fas_fallback_reason(),
            Some(FasFallbackReason::StochasticCycleBreaking)
        );
        // Explicit disable wins over the stochastic override in the report.
        assert_eq!(
            SequencerConfig::new()
                .with_incremental_fas(false)
                .with_stochastic_cycle_breaking(true)
                .fas_fallback_reason(),
            Some(FasFallbackReason::DisabledByConfig)
        );
        assert_eq!(
            FasFallbackReason::StochasticCycleBreaking.to_string(),
            "stochastic cycle breaking is incompatible"
        );
    }

    #[test]
    fn defense_defaults_off_and_builder_attaches() {
        assert!(!SequencerConfig::default().defense.enabled);
        let c = SequencerConfig::new().with_defense(DefenseConfig::enabled());
        assert!(c.defense.enabled);
    }

    #[test]
    fn liveness_defaults_off_and_builder_attaches() {
        let c = SequencerConfig::default();
        assert!(!c.liveness.enabled);
        assert_eq!(c.liveness.staleness_deadline, f64::INFINITY);
        let on = SequencerConfig::new().with_liveness(LivenessConfig::enabled(25.0));
        assert!(on.liveness.enabled);
        assert_eq!(on.liveness.staleness_deadline, 25.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn infinite_staleness_deadline_rejected() {
        LivenessConfig::enabled(f64::INFINITY);
    }

    #[test]
    fn builder_chain() {
        let c = SequencerConfig::new()
            .with_threshold(0.9)
            .with_p_safe(0.99)
            .with_grid_points(256)
            .with_convolution(ConvolutionMethod::Fft)
            .with_stochastic_cycle_breaking(true)
            .with_incremental_fas(false);
        assert_eq!(c.threshold, 0.9);
        assert_eq!(c.p_safe, 0.99);
        assert_eq!(c.grid_points, 256);
        assert_eq!(c.convolution, ConvolutionMethod::Fft);
        assert!(c.stochastic_cycle_breaking);
        assert!(!c.incremental_fas);
    }

    #[test]
    #[should_panic(expected = "threshold must be in (0.5, 1.0)")]
    fn threshold_at_half_rejected() {
        SequencerConfig::new().with_threshold(0.5);
    }

    #[test]
    #[should_panic(expected = "threshold must be in (0.5, 1.0)")]
    fn threshold_of_one_rejected() {
        SequencerConfig::new().with_threshold(1.0);
    }

    #[test]
    #[should_panic(expected = "p_safe must be in (0.5, 1.0)")]
    fn psafe_of_one_rejected() {
        SequencerConfig::new().with_p_safe(1.0);
    }

    #[test]
    #[should_panic(expected = "at least 16 grid points")]
    fn tiny_grid_rejected() {
        SequencerConfig::new().with_grid_points(4);
    }
}
