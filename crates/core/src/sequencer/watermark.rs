//! Per-client watermarks for completeness.
//!
//! §3.5 / Appendix C (Q2) of the paper: assuming a *known, fixed set of
//! clients* and an ordered delivery channel per client, the sequencer can
//! conclude that every message with timestamp `≤ t` has arrived once it has
//! received a message *or heartbeat* with timestamp greater than `t` from
//! every client. [`WatermarkTracker`] maintains the per-client high-water
//! marks and exposes the global watermark (the minimum across clients).
//!
//! The paper also notes the liveness cost of this design: "a failed client
//! may halt the sequencer from emitting any messages". The tracker therefore
//! supports explicitly retiring a client, which is how a deployment would
//! plug in a failure detector — and, for the built-in heartbeat-timeout
//! detector ([`LivenessConfig`](crate::config::LivenessConfig)), a
//! *reversible* suspension: a suspended client stops constraining the
//! watermark exactly like a retired one, but can be resumed when it is heard
//! from again (crash/restart rejoin).

use crate::error::CoreError;
use crate::message::ClientId;
use std::collections::HashMap;
use std::collections::HashSet;

/// Tracks the largest timestamp observed from every known client.
#[derive(Debug, Clone)]
pub struct WatermarkTracker {
    latest: HashMap<ClientId, Option<f64>>,
    retired: HashMap<ClientId, bool>,
    suspended: HashSet<ClientId>,
}

impl WatermarkTracker {
    /// Create a tracker for a fixed, known set of clients.
    pub fn new(clients: &[ClientId]) -> Self {
        WatermarkTracker {
            latest: clients.iter().map(|&c| (c, None)).collect(),
            retired: clients.iter().map(|&c| (c, false)).collect(),
            suspended: HashSet::new(),
        }
    }

    /// Add a client after construction (e.g. late registration).
    pub fn add_client(&mut self, client: ClientId) {
        self.latest.entry(client).or_insert(None);
        self.retired.entry(client).or_insert(false);
    }

    /// Mark a client as failed/left; it no longer constrains the watermark.
    pub fn retire(&mut self, client: ClientId) {
        if let Some(flag) = self.retired.get_mut(&client) {
            *flag = true;
        }
    }

    /// Temporarily exclude a client from the watermark (failure suspected:
    /// it has been silent past the staleness deadline). Unlike
    /// [`retire`](Self::retire) this is reversible via
    /// [`resume`](Self::resume). No-op for unknown clients.
    pub fn suspend(&mut self, client: ClientId) {
        if self.knows(client) {
            self.suspended.insert(client);
        }
    }

    /// Re-admit a suspended client to the watermark (it has been heard from
    /// again). No-op if the client was not suspended.
    pub fn resume(&mut self, client: ClientId) {
        self.suspended.remove(&client);
    }

    /// Whether the client is currently suspended.
    pub fn is_suspended(&self, client: ClientId) -> bool {
        self.suspended.contains(&client)
    }

    /// Whether the client is known to the tracker.
    pub fn knows(&self, client: ClientId) -> bool {
        self.latest.contains_key(&client)
    }

    /// Number of known clients that still constrain the watermark (neither
    /// retired nor suspended).
    pub fn active_clients(&self) -> usize {
        self.retired
            .iter()
            .filter(|(c, &r)| !r && !self.suspended.contains(c))
            .count()
    }

    /// Observe a message or heartbeat timestamp from a client.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownClient`] for unknown clients and
    /// [`CoreError::NonMonotoneTimestamp`] if the client's timestamps move
    /// backwards (which would break the completeness argument — timestamps on
    /// an ordered channel must be non-decreasing).
    pub fn observe(&mut self, client: ClientId, timestamp: f64) -> Result<(), CoreError> {
        let entry = self
            .latest
            .get_mut(&client)
            .ok_or(CoreError::UnknownClient(client))?;
        if let Some(previous) = *entry {
            if timestamp < previous {
                return Err(CoreError::NonMonotoneTimestamp {
                    client,
                    previous,
                    observed: timestamp,
                });
            }
        }
        *entry = Some(timestamp);
        Ok(())
    }

    /// The latest timestamp observed from a client, if any.
    pub fn latest(&self, client: ClientId) -> Option<f64> {
        self.latest.get(&client).copied().flatten()
    }

    /// The global watermark: the minimum of the per-client latest timestamps
    /// over all non-retired, non-suspended clients. `None` until every
    /// active client has been heard from at least once.
    pub fn watermark(&self) -> Option<f64> {
        let mut min: Option<f64> = None;
        for (client, latest) in &self.latest {
            if self.retired.get(client).copied().unwrap_or(false)
                || self.suspended.contains(client)
            {
                continue;
            }
            match latest {
                None => return None,
                Some(t) => {
                    min = Some(match min {
                        None => *t,
                        Some(m) => m.min(*t),
                    });
                }
            }
        }
        min
    }

    /// Whether the sequencer can be sure every message with timestamp `<= t`
    /// has arrived (Q2 of §3.5): true iff the watermark is strictly greater
    /// than `t`.
    pub fn is_complete_up_to(&self, t: f64) -> bool {
        match self.watermark() {
            Some(w) => w > t,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clients(n: u32) -> Vec<ClientId> {
        (0..n).map(ClientId).collect()
    }

    #[test]
    fn watermark_requires_all_clients() {
        let mut w = WatermarkTracker::new(&clients(3));
        assert_eq!(w.watermark(), None);
        w.observe(ClientId(0), 10.0).unwrap();
        w.observe(ClientId(1), 20.0).unwrap();
        assert_eq!(w.watermark(), None);
        w.observe(ClientId(2), 5.0).unwrap();
        assert_eq!(w.watermark(), Some(5.0));
    }

    #[test]
    fn watermark_is_minimum_of_latest() {
        let mut w = WatermarkTracker::new(&clients(2));
        w.observe(ClientId(0), 10.0).unwrap();
        w.observe(ClientId(1), 3.0).unwrap();
        assert_eq!(w.watermark(), Some(3.0));
        w.observe(ClientId(1), 30.0).unwrap();
        assert_eq!(w.watermark(), Some(10.0));
    }

    #[test]
    fn completeness_is_strict() {
        let mut w = WatermarkTracker::new(&clients(1));
        w.observe(ClientId(0), 10.0).unwrap();
        assert!(w.is_complete_up_to(9.999));
        assert!(!w.is_complete_up_to(10.0));
        assert!(!w.is_complete_up_to(11.0));
    }

    #[test]
    fn non_monotone_timestamps_rejected() {
        let mut w = WatermarkTracker::new(&clients(1));
        w.observe(ClientId(0), 10.0).unwrap();
        let err = w.observe(ClientId(0), 9.0).unwrap_err();
        assert!(matches!(err, CoreError::NonMonotoneTimestamp { .. }));
        // Equal timestamps are allowed (heartbeat repeats).
        w.observe(ClientId(0), 10.0).unwrap();
    }

    #[test]
    fn unknown_client_rejected() {
        let mut w = WatermarkTracker::new(&clients(1));
        assert_eq!(
            w.observe(ClientId(9), 1.0),
            Err(CoreError::UnknownClient(ClientId(9)))
        );
        assert!(!w.knows(ClientId(9)));
    }

    #[test]
    fn retiring_a_silent_client_restores_liveness() {
        let mut w = WatermarkTracker::new(&clients(3));
        w.observe(ClientId(0), 100.0).unwrap();
        w.observe(ClientId(1), 200.0).unwrap();
        // Client 2 never speaks: watermark blocked — the liveness hazard the
        // paper describes.
        assert_eq!(w.watermark(), None);
        w.retire(ClientId(2));
        assert_eq!(w.watermark(), Some(100.0));
        assert_eq!(w.active_clients(), 2);
    }

    #[test]
    fn suspension_is_reversible_retirement() {
        let mut w = WatermarkTracker::new(&clients(3));
        w.observe(ClientId(0), 100.0).unwrap();
        w.observe(ClientId(1), 200.0).unwrap();
        assert_eq!(w.watermark(), None);
        // Suspension unblocks the watermark like retirement…
        w.suspend(ClientId(2));
        assert!(w.is_suspended(ClientId(2)));
        assert_eq!(w.watermark(), Some(100.0));
        assert_eq!(w.active_clients(), 2);
        // …but the client can come back.
        w.resume(ClientId(2));
        assert!(!w.is_suspended(ClientId(2)));
        assert_eq!(w.watermark(), None);
        w.observe(ClientId(2), 50.0).unwrap();
        assert_eq!(w.watermark(), Some(50.0));
        assert_eq!(w.active_clients(), 3);
        // Suspending an unknown client is a no-op.
        w.suspend(ClientId(99));
        assert!(!w.is_suspended(ClientId(99)));
    }

    #[test]
    fn late_client_addition() {
        let mut w = WatermarkTracker::new(&clients(1));
        w.observe(ClientId(0), 50.0).unwrap();
        assert_eq!(w.watermark(), Some(50.0));
        w.add_client(ClientId(1));
        assert_eq!(w.watermark(), None);
        w.observe(ClientId(1), 60.0).unwrap();
        assert_eq!(w.watermark(), Some(50.0));
        assert_eq!(w.latest(ClientId(1)), Some(60.0));
    }
}
