//! The online (streaming) Tommy sequencer.
//!
//! §3.5 of the paper: messages arrive as a stream and the sequencer must
//! guarantee that "once a batch of messages is emitted … no new message
//! should arrive that either belongs in the same batch or demands a lower
//! rank". Two mechanisms provide that guarantee:
//!
//! * **Safe emission time** (Q1): for every message in the candidate batch a
//!   future time `T^F_i` with `P(T*_i < T^F_i) > p_safe` is computed; the
//!   batch may only be emitted after `T_b = max_k T^F_k` on the sequencer's
//!   clock, and only if no message that belongs in (or before) the batch has
//!   arrived in the meantime.
//! * **Watermarks** (Q2): with a known client set and ordered per-client
//!   channels, a batch containing timestamps up to `t` is only emitted once
//!   every client has been heard from (message or heartbeat) with a
//!   timestamp greater than `t`.
//!
//! ## Incremental precedence engine
//!
//! The sequencer does work proportional to *what changed*, not to the whole
//! pending set:
//!
//! * The pairwise [`PrecedenceMatrix`] is maintained incrementally: each
//!   arrival adds one row/column (O(n) new probability queries via
//!   [`PrecedenceMatrix::insert`]) and each emission removes the batch's
//!   rows/columns ([`PrecedenceMatrix::remove_batch`]) — never a from-scratch
//!   O(n²) rebuild. The arrival column itself is filled through per-client
//!   [`PairKernel`](crate::registry::PairKernel)s: the registry (locks,
//!   hash lookups, dispatch) is consulted once per *distinct pending
//!   client*, and each kernel then evaluates that client's contiguous
//!   timestamp slice in one tight loop.
//! * The tournament and its linear order are maintained *incrementally* too
//!   ([`IncrementalTournament`]): an arrival orients its n new edges and one
//!   scan over the maintained condensation blocks places it in the order;
//!   an emission drops the batch's rows in place. Intransitivity cycles —
//!   never produced by Gaussian offsets (Appendix A) — are absorbed by the
//!   incremental FAS engine: only the one SCC the arrival strongly connects
//!   is re-solved, so the whole arrival path is O(n) plus repairs bounded
//!   by the touched component: n probability queries, n edge orientations,
//!   zero `Tournament::from_matrix` rebuilds.
//! * The §3.4 batch boundaries are maintained *incrementally* as well
//!   ([`IncrementalFairOrder`](crate::batching::IncrementalFairOrder), via
//!   the shared [`SequencingCore`]): an arrival re-evaluates only the two
//!   adjacencies at its insertion point and an emission one seam per removed
//!   run, so a candidate recomputation reads the lowest-rank batch straight
//!   off the maintained boundary set — no per-arrival
//!   `FairOrder::from_linear_order` walk and no rank-index hashing.
//! * The lowest-rank candidate batch (maintained boundaries → Appendix C
//!   closure rule) is cached and only recomputed when the pending set
//!   actually changes. Heartbeats and pure clock ticks reuse the cache,
//!   so `tick()` with an unchanged pending set performs **zero** probability
//!   queries — it only compares `now` against the cached safe emission time
//!   and re-checks watermark completeness.
//! * The per-arrival fairness-violation check against the last emitted batch
//!   uses cached per-client-pair margins
//!   ([`DistributionRegistry::violation_margin`]) instead of one probability
//!   query per emitted message, and the candidate batch's safe emission time
//!   uses cached per-client margins ([`DistributionRegistry::safe_margin`])
//!   instead of one quantile inversion per batch member.
//! * The Appendix C closure rule runs as a worklist: each candidate
//!   recomputation compares outsiders only against batch members added since
//!   they were last checked — O(n × batch) comparisons total, not
//!   O(rounds × n × batch).
//!
//! A late high-uncertainty message still merges into the open batch exactly
//! as in the Appendix C worked example: its arrival invalidates the cache and
//! the next recomputation sees the full pending set.
//!
//! ## Sparse fast path
//!
//! When every registered client has a closed-form (Gaussian) distribution
//! and [`SequencerConfig::fast_path`] is
//! [`Auto`](crate::config::FastPathMode::Auto), the sequencer bypasses the
//! dense engine entirely: arrivals go into the private sparse engine
//! (`sequencer::sparse`), which keeps the tournament order in an
//! order-statistics treap keyed by margin-adjusted timestamps — O(log n)
//! insert/remove — and evaluates probabilities lazily, only for the
//! boundary-adjacent and closure-window pairs the batch threshold actually
//! inspects. No dense matrix column is ever materialized
//! (`dense_columns_avoided` counts the arrivals that skipped one). The mode
//! is decided by a *census*: it is re-evaluated only at
//! [`register_client`](OnlineSequencer::register_client) — the only event
//! that can change the census, since submission rejects unknown clients —
//! and any non-closed-form registration switches the pending set to the
//! dense path (cyclic pairs thus keep flowing through the existing FAS
//! block machinery, which only dense mode can need: Gaussian tournaments
//! are transitive by Appendix A). Emitted batches, boundary sets and
//! counters are bit-identical between the two modes; see `ARCHITECTURE.md`
//! ("Sparse fast path") for the decision rule and the lazy-evaluation
//! invariant.

use crate::batching::{FairOrder, FairOrderCounters};
use crate::config::{FastPathMode, SequencerConfig};
use crate::defense::{ExpectedDelay, TrustEvent, TrustLevel};
use crate::error::CoreError;
use crate::message::{ClientId, Message, MessageId};
use crate::precedence::PrecedenceMatrix;
use crate::registry::DistributionRegistry;
use crate::sequencer::core::SequencingCore;
use crate::sequencer::emission::batch_emission_time_over;
use crate::sequencer::sparse::SparseEngine;
use crate::sequencer::watermark::WatermarkTracker;
use crate::session::SessionCounters;
use crate::tournament::IncrementalTournament;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, HashMap, HashSet};
use tommy_clock::DelayEstimator;
use tommy_stats::distribution::{Distribution, OffsetDistribution};

/// One batch emitted by the online sequencer, with emission metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct EmittedBatch {
    /// Rank of the batch (0 is first).
    pub rank: usize,
    /// The messages in the batch.
    pub messages: Vec<Message>,
    /// Sequencer-clock time at which the batch was emitted.
    pub emitted_at: f64,
    /// The safe-emission time `T_b` that gated the batch.
    pub safe_after: f64,
}

impl EmittedBatch {
    /// The message ids of the batch.
    pub fn message_ids(&self) -> Vec<MessageId> {
        self.messages.iter().map(|m| m.id).collect()
    }
}

/// Counters describing an online sequencing run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    /// Batches emitted so far.
    pub batches_emitted: usize,
    /// Messages emitted so far.
    pub messages_emitted: usize,
    /// Messages that arrived *after* a batch they confidently belonged in (or
    /// before) had already been emitted — fairness violations the paper's
    /// `p_safe` mechanism is designed to make rare.
    pub fairness_violations: usize,
    /// Largest number of simultaneously pending messages observed.
    pub max_pending: usize,
    /// Sum over emitted messages of (emission time − arrival time); divide by
    /// `messages_emitted` for the mean emission latency.
    pub total_emission_latency: f64,
    /// Clients quarantined by the untrusted-distribution defense
    /// ([`crate::defense`]): their first residual cross-check already
    /// rejected the claimed distribution, and they were pinned to a
    /// conservative fallback. Zero when the defense is disabled.
    pub quarantines: usize,
    /// Online re-estimations triggered by the defense: a previously
    /// validated client's residuals stopped matching its claim (clock
    /// drift), and its distribution was re-learned from the residual window.
    pub reestimations: usize,
    /// Messages accepted from currently quarantined clients — each was
    /// sequenced under the conservative fallback margins rather than the
    /// claimed distribution.
    pub margin_fallbacks: usize,
    /// Sequence gaps detected by the delivery/session layer feeding this
    /// sequencer (recorded via
    /// [`OnlineSequencer::record_session_counters`]; zero when no session
    /// layer is attached).
    pub gaps_detected: u64,
    /// Duplicate frames dropped by the delivery/session layer.
    pub dupes_dropped: u64,
    /// Out-of-order frames the delivery/session layer buffered for
    /// reassembly.
    pub reorders_buffered: u64,
    /// Retransmit requests the delivery/session layer emitted.
    pub retransmit_requests: u64,
    /// Sequence numbers the delivery/session layer gave up on and skipped.
    pub sequences_skipped: u64,
    /// Clients suspended from the watermark after staying silent past the
    /// staleness deadline ([`LivenessConfig`](crate::config::LivenessConfig)).
    pub evictions: usize,
    /// Suspended clients re-admitted to the watermark after being heard
    /// from again (crash/restart recovery).
    pub rejoins: usize,
    /// Emission attempts where the candidate batch was already time-safe
    /// but a client watermark still blocked it (condition (ii) of §3.5) —
    /// a count of blocked checks, not of distinct stalls.
    pub watermark_stall_ticks: u64,
    /// Pairwise correlation evaluations performed by the cross-client
    /// collusion detector ([`crate::defense::CollusionTracker`]) — one per
    /// observation that actually scored at least one pair (i.e. a check was
    /// due and enough aligned residual pairs existed). Zero when the defense
    /// is disabled.
    pub collusion_checks: u64,
    /// Clients quarantined by the *collusion* detector specifically: their
    /// per-client marginals passed every KS/z-score check, but their
    /// residuals co-moved with another client's past the correlation
    /// threshold for the configured confirmation streak. Each is also
    /// counted in `quarantines`.
    pub collusion_quarantines: usize,
    /// Largest pairwise correlation score the collusion detector has
    /// observed across the run (0 when no pair was ever scored). A run-level
    /// "how close did honest traffic get to the threshold" diagnostic.
    pub peak_collusion_score: f64,
    /// Probability evaluations performed lazily by the sparse fast path —
    /// boundary bits plus closure-window checks, the only pairs the batch
    /// threshold actually inspects. Zero on forced-dense runs. (These are
    /// also counted in the registry's query counter, exactly like dense
    /// column fills.)
    pub lazy_evals: u64,
    /// Arrivals handled by the sparse fast path, each of which skipped the
    /// O(n) dense [`PrecedenceMatrix`] column fill (and its share of the
    /// O(n²) probability grid). Zero on forced-dense runs.
    pub dense_columns_avoided: u64,
    /// Census-driven engine flips (sparse → dense or back), each triggered
    /// by a [`register_client`](OnlineSequencer::register_client) call that
    /// changed whether *every* registered client is closed-form. Zero on
    /// forced-dense runs.
    pub mode_switches: u64,
    /// Largest number of bytes the dense probability grid ever had reserved
    /// (O(n²) in the dense pending set; stays 0 on a pure fast-path run).
    pub peak_matrix_bytes: usize,
    /// Largest number of bytes the sparse order-statistics arena ever had
    /// reserved (O(n) in the fast-path pending set).
    pub peak_index_bytes: usize,
    /// Per-shard candidate batches released through the cross-shard
    /// combiner's watermark-driven merge
    /// ([`ShardedSequencer`](crate::sequencer::sharded::ShardedSequencer)).
    /// Fused releases count every member batch. Zero on a plain
    /// single-engine run and on a single-shard (`shards = 1`) run, whose
    /// combiner is a passthrough.
    pub shard_merges: u64,
    /// Frontier-versus-horizon comparisons the combiner performed while
    /// deciding releases — the merge's unit of work, analogous to
    /// `lazy_evals` for the sparse engine. Zero on single-engine and
    /// single-shard runs.
    pub cross_shard_evals: u64,
    /// Peak difference between the most- and least-loaded shards' cumulative
    /// routed message counts — how far the round-robin client partition
    /// drifted from perfect balance under the actual traffic mix. Zero on
    /// single-engine and single-shard runs.
    pub shard_imbalance: usize,
}

impl OnlineStats {
    /// Mean per-message emission latency (0 when nothing was emitted).
    pub fn mean_emission_latency(&self) -> f64 {
        if self.messages_emitted == 0 {
            0.0
        } else {
            self.total_emission_latency / self.messages_emitted as f64
        }
    }
}

/// The cached lowest-rank candidate batch of the current pending set.
///
/// Holds matrix indices, not cloned messages: the candidate is recomputed
/// on every pending-set change but only *emitted* once, so the message
/// clone is deferred to emission time.
#[derive(Debug, Clone)]
struct Candidate {
    /// Matrix indices of the batch members, ascending.
    indices: Vec<usize>,
    safe_after: f64,
    /// Largest timestamp in the batch: the watermark horizon.
    horizon: f64,
}

/// A zero-allocation snapshot of the current candidate batch — what a
/// monitoring tick needs (is a batch forming, how large, when does it
/// become emittable) without cloning a single message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateStatus {
    /// Number of messages in the candidate batch.
    pub size: usize,
    /// The batch's safe-emission time `T_b` (§3.5 condition (i)).
    pub safe_after: f64,
    /// The batch's watermark horizon — its largest timestamp (§3.5
    /// condition (ii)).
    pub horizon: f64,
}

/// Which precedence engine currently owns the pending set (see the module
/// docs, "Sparse fast path").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EngineMode {
    /// Every registered client is closed-form: order-statistics treap,
    /// lazy probability evaluation, no dense matrix.
    Sparse,
    /// At least one registered client is non-closed-form (or the fast path
    /// is disabled): dense matrix + incremental tournament/FAS machinery.
    Dense,
}

/// The online Tommy sequencer.
///
/// # Example
///
/// A submitted message is held until *both* emission conditions of §3.5
/// hold — the sequencer's clock has passed the batch's safe-emission time,
/// and every registered client has been heard from past the batch horizon:
///
/// ```
/// use tommy_core::prelude::*;
///
/// let mut sequencer = OnlineSequencer::new(SequencerConfig::default());
/// sequencer.register_client(ClientId(0), OffsetDistribution::gaussian(0.0, 1.0));
/// sequencer.register_client(ClientId(1), OffsetDistribution::gaussian(0.0, 1.0));
///
/// // Client 0 submits at local time 100.0 (arrival 100.5): nothing can
/// // emit yet — client 1 has not been heard from.
/// let message = Message::new(MessageId(0), ClientId(0), 100.0);
/// assert!(sequencer.submit(message, 100.5).unwrap().is_empty());
///
/// // Once both clients heartbeat past the horizon and the clock passes the
/// // safe-emission time, the batch comes out.
/// sequencer.heartbeat(ClientId(0), 150.0, 150.0).unwrap();
/// let batches = sequencer.heartbeat(ClientId(1), 150.0, 150.0).unwrap();
/// assert_eq!(batches.len(), 1);
/// assert_eq!(batches[0].messages[0].id, MessageId(0));
/// assert!(batches[0].safe_after > 100.0);
/// ```
#[derive(Debug)]
pub struct OnlineSequencer {
    registry: DistributionRegistry,
    watermarks: WatermarkTracker,
    /// Incrementally maintained precedence matrix over the pending set; its
    /// message list *is* the pending set, in arrival order.
    matrix: PrecedenceMatrix,
    /// The shared pipeline tail — incrementally maintained tournament,
    /// linear order, and batch boundaries over `matrix` (updated in
    /// lockstep with every matrix insert/removal).
    core: SequencingCore,
    /// The sub-quadratic closed-form engine; holds the pending set instead
    /// of `matrix`/`core` while `mode` is [`EngineMode::Sparse`].
    sparse: SparseEngine,
    /// Which engine owns the pending set (census-driven, see module docs).
    mode: EngineMode,
    /// Registered clients whose distribution has no closed form — the
    /// census: the sparse fast path requires this set to be empty.
    non_gaussian: HashSet<ClientId>,
    /// Arrival time per pending message (for emission-latency accounting).
    arrivals: HashMap<MessageId, f64>,
    /// Cached candidate batch; `None` means the pending set changed since the
    /// last computation (or is empty).
    candidate: Option<Candidate>,
    /// Cached fairness-violation margins per (arriving, emitted) client pair;
    /// `None` records a pair whose margin could not be computed.
    violation_margins: HashMap<(ClientId, ClientId), Option<f64>>,
    seen_ids: HashSet<MessageId>,
    /// Output buffer: batches emitted and not yet drained via
    /// [`take_emitted`](Self::take_emitted).
    emitted: Vec<EmittedBatch>,
    emitted_order: FairOrder,
    /// `(client, timestamp)` of each message in the most recently emitted
    /// batch — all the margin-based violation check needs, so emission does
    /// not clone the batch's message vector for it.
    last_emitted: Vec<(ClientId, f64)>,
    /// Sequencer-clock time each client was last heard from (message or
    /// heartbeat); `NEG_INFINITY` means "registered but never measured
    /// against the staleness deadline yet". Drives watermark eviction when
    /// [`LivenessConfig`](crate::config::LivenessConfig) is enabled.
    last_heard: HashMap<ClientId, f64>,
    /// Per-client online delay estimators over `arrival − timestamp` gaps
    /// ([`tommy_clock::DelayEstimator`]), fed by every accepted message —
    /// whether or not the defense is enabled, so undefended runs can still
    /// report the estimate. A `BTreeMap` so pooled means sum in a
    /// deterministic order (seed-stability tests compare whole stat structs
    /// bit-for-bit).
    delays: BTreeMap<ClientId, DelayEstimator>,
    stats: OnlineStats,
    rng: StdRng,
    now: f64,
}

impl OnlineSequencer {
    /// Create an online sequencer with no registered clients.
    pub fn new(config: SequencerConfig) -> Self {
        let mode = match config.fast_path {
            FastPathMode::Auto => EngineMode::Sparse,
            FastPathMode::ForceDense => EngineMode::Dense,
        };
        OnlineSequencer {
            registry: DistributionRegistry::from_config(&config),
            watermarks: WatermarkTracker::new(&[]),
            matrix: PrecedenceMatrix::empty(),
            core: SequencingCore::new(config),
            sparse: SparseEngine::new(),
            mode,
            non_gaussian: HashSet::new(),
            arrivals: HashMap::new(),
            candidate: None,
            violation_margins: HashMap::new(),
            seen_ids: HashSet::new(),
            emitted: Vec::new(),
            emitted_order: FairOrder::default(),
            last_emitted: Vec::new(),
            last_heard: HashMap::new(),
            delays: BTreeMap::new(),
            stats: OnlineStats::default(),
            rng: StdRng::seed_from_u64(0),
            now: f64::NEG_INFINITY,
        }
    }

    /// The configuration in use (owned by the shared [`SequencingCore`]).
    pub fn config(&self) -> &SequencerConfig {
        self.core.config()
    }

    /// Register a client and its offset distribution. All participating
    /// clients must be registered before they submit (known-client-set
    /// assumption of §3.5).
    ///
    /// Re-registering a client invalidates every cached quantity derived
    /// from its old distribution: the violation margins, the candidate
    /// batch, and — since pairwise probabilities involving the client may
    /// have changed — the pending precedence state is re-derived.
    ///
    /// Registration is also the only point where the engine mode can flip
    /// (see module docs, "Sparse fast path"): the census of closed-form
    /// clients is re-taken, and the pending set migrates between the sparse
    /// and dense engines when the census verdict changes.
    pub fn register_client(&mut self, client: ClientId, distribution: OffsetDistribution) {
        match distribution.as_gaussian() {
            Some(gaussian) => {
                self.sparse.observe_sigma(gaussian.std_dev());
                self.non_gaussian.remove(&client);
            }
            None => {
                self.non_gaussian.insert(client);
            }
        }
        self.registry.register(client, distribution);
        self.watermarks.add_client(client);
        self.last_heard.entry(client).or_insert(f64::NEG_INFINITY);
        self.violation_margins
            .retain(|(a, b), _| *a != client && *b != client);
        self.candidate = None;
        self.sparse.invalidate_candidate();

        let want_sparse = self.core.config().fast_path == FastPathMode::Auto
            && self.non_gaussian.is_empty();
        match (self.mode, want_sparse) {
            (EngineMode::Sparse, false) => self.switch_to_dense(),
            (EngineMode::Dense, true) => self.switch_to_sparse(),
            (EngineMode::Sparse, true) => {
                // Same mode: the client's margins (hence keys and lazy
                // probabilities) may have changed — re-key iff it has
                // pending messages, exactly as the dense path re-derives.
                if self.sparse.contains_client(client) {
                    let pending = self.sparse.messages_in_arrival_order();
                    let threshold = self.core.config().threshold;
                    self.sparse.rebuild_from(&pending, &self.registry, threshold);
                }
            }
            (EngineMode::Dense, false) => {
                // Pairwise probabilities only change if the client has
                // pending messages; a re-derivation over an unaffected
                // pending set would be O(n²) queries of pure waste.
                if self.matrix.messages().iter().any(|m| m.client == client) {
                    let pending = self.matrix.messages().to_vec();
                    self.matrix = PrecedenceMatrix::compute_parallel(
                        &pending,
                        &self.registry,
                        self.core.config().parallelism,
                    )
                    .expect("pending messages come from registered clients");
                    self.core.load(&self.matrix);
                }
            }
        }
        self.record_memory_peaks();
    }

    /// Migrate the pending set sparse → dense: materialize the matrix the
    /// fast path avoided (the one O(n²) payment a census change costs) and
    /// load it into the shared core. With nothing pending the engines are
    /// both empty and only the mode flips.
    fn switch_to_dense(&mut self) {
        debug_assert!(self.matrix.is_empty(), "dense state leaked into sparse mode");
        let pending = self.sparse.messages_in_arrival_order();
        self.sparse.clear_pending();
        if !pending.is_empty() {
            self.matrix = PrecedenceMatrix::compute_parallel(
                &pending,
                &self.registry,
                self.core.config().parallelism,
            )
            .expect("pending messages come from registered clients");
            self.core.load(&self.matrix);
        }
        self.mode = EngineMode::Dense;
        self.stats.mode_switches += 1;
    }

    /// Migrate the pending set dense → sparse: re-key the pending messages
    /// into the order-statistics treap (in arrival order, so sequence
    /// numbers keep matching dense slot order) and retire the dense state.
    fn switch_to_sparse(&mut self) {
        let pending = std::mem::replace(&mut self.matrix, PrecedenceMatrix::empty());
        if !pending.is_empty() {
            let threshold = self.core.config().threshold;
            self.sparse
                .rebuild_from(pending.messages(), &self.registry, threshold);
            self.core.load(&self.matrix);
        }
        self.mode = EngineMode::Sparse;
        self.stats.mode_switches += 1;
    }

    /// Sample both engines' reserved bytes into the run's high-water marks.
    fn record_memory_peaks(&mut self) {
        let matrix_bytes = self.matrix.prob_bytes();
        if matrix_bytes > self.stats.peak_matrix_bytes {
            self.stats.peak_matrix_bytes = matrix_bytes;
        }
        let index_bytes = self.sparse.index_bytes();
        if index_bytes > self.stats.peak_index_bytes {
            self.stats.peak_index_bytes = index_bytes;
        }
    }

    /// Mark a client as failed: it stops constraining watermarks so the
    /// sequencer stays live (the trade-off §3.5 discusses). The candidate
    /// batch is unaffected — only the emission condition changes.
    pub fn retire_client(&mut self, client: ClientId) {
        self.watermarks.retire(client);
    }

    /// The sequencer's current clock (the largest time passed to any
    /// submit/heartbeat/tick call so far).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of messages waiting to be emitted.
    pub fn pending_len(&self) -> usize {
        match self.mode {
            EngineMode::Sparse => self.sparse.len(),
            EngineMode::Dense => self.matrix.len(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> OnlineStats {
        let mut stats = self.stats;
        stats.lazy_evals = self.sparse.lazy_evals();
        stats
    }

    /// Batches emitted and not yet drained. Callers that never call
    /// [`take_emitted`](Self::take_emitted) see every batch of the run here,
    /// as before the drain API existed.
    pub fn emitted(&self) -> &[EmittedBatch] {
        &self.emitted
    }

    /// Drain the emitted-batch buffer, transferring ownership of every
    /// not-yet-drained batch to the caller. Long-running callers should call
    /// this regularly (and construct the sequencer with
    /// [`SequencerConfig::with_retain_history`]`(false)`) so sequencer
    /// memory stays bounded by the pending set instead of growing with the
    /// whole stream.
    pub fn take_emitted(&mut self) -> Vec<EmittedBatch> {
        std::mem::take(&mut self.emitted)
    }

    /// The emitted batches as a [`FairOrder`] (for metric computation).
    /// Empty when the sequencer was configured with
    /// [`SequencerConfig::with_retain_history`]`(false)`.
    pub fn emitted_order(&self) -> &FairOrder {
        &self.emitted_order
    }

    /// Number of message ids currently tracked for duplicate detection.
    /// With [`SequencerConfig::retain_history`] unset this stays bounded by
    /// the pending set; with it set (the default) it grows with the stream.
    pub fn tracked_ids(&self) -> usize {
        self.seen_ids.len()
    }

    /// The sequencer's distribution registry (read-only). Exposes the
    /// probability-query counter, which tests use to assert that pure clock
    /// ticks perform zero queries.
    pub fn registry(&self) -> &DistributionRegistry {
        &self.registry
    }

    /// The incrementally maintained tournament (read-only). Exposes the
    /// edge-comparison and full-rebuild counters, which tests use to assert
    /// that the arrival path stays O(n) and never rebuilds on acyclic
    /// (Gaussian) workloads.
    pub fn tournament(&self) -> &IncrementalTournament {
        self.core.tournament()
    }

    /// The maintained tournament order of the pending set as
    /// `(message id, starts_batch)` pairs — the boundary-bit surface the
    /// sparse/dense equivalence property tests compare. Position 0 is
    /// normalized to `true` (the head of the order always starts a batch).
    ///
    /// Dense mode refreshes the maintained order first (a no-op on a clean
    /// incremental state); sparse mode reads the treap in key order.
    pub fn pending_order(&mut self) -> Vec<(MessageId, bool)> {
        match self.mode {
            EngineMode::Sparse => self.sparse.pending_order(),
            EngineMode::Dense => {
                if self.matrix.is_empty() {
                    return Vec::new();
                }
                let rng: Option<&mut dyn rand::RngCore> =
                    if self.core.config().stochastic_cycle_breaking {
                        Some(&mut self.rng)
                    } else {
                        None
                    };
                let order = self.core.linear_order(&self.matrix, rng);
                let boundaries: HashSet<usize> =
                    self.core.fair().boundary_positions().into_iter().collect();
                order
                    .iter()
                    .enumerate()
                    .map(|(pos, &idx)| {
                        (
                            self.matrix.message(idx).id,
                            pos == 0 || boundaries.contains(&pos),
                        )
                    })
                    .collect()
            }
        }
    }

    /// Counters of the incremental batch-boundary engine: adjacent-pair
    /// re-evaluations (at most two per arrival, one per removed run on
    /// emission), the local batch splits/merges they caused, and the
    /// cycle-induced full rebuilds (zero on Gaussian workloads). Both
    /// engines obey the same contract, so the sparse fast path's boundary
    /// work is summed in — the invariants hold across mode switches.
    pub fn fair_order_counters(&self) -> FairOrderCounters {
        let dense = self.core.fair().counters();
        let sparse = self.sparse.counters();
        FairOrderCounters {
            boundary_evals: dense.boundary_evals + sparse.boundary_evals,
            batch_splits: dense.batch_splits + sparse.batch_splits,
            batch_merges: dense.batch_merges + sparse.batch_merges,
            full_rebuilds: dense.full_rebuilds + sparse.full_rebuilds,
        }
    }

    fn advance_clock(&mut self, now: f64) {
        if now > self.now {
            self.now = now;
        }
    }

    /// Record that a client was heard from (message or heartbeat) at the
    /// current clock, resuming it if it had been suspended by the liveness
    /// detector.
    fn note_heard(&mut self, client: ClientId) {
        let entry = self.last_heard.entry(client).or_insert(f64::NEG_INFINITY);
        *entry = entry.max(self.now);
        if self.watermarks.is_suspended(client) {
            self.watermarks.resume(client);
            self.stats.rejoins += 1;
        }
    }

    /// Suspend every client that is blocking the batch horizon *and* has
    /// been silent past the staleness deadline (no-op unless
    /// [`LivenessConfig`](crate::config::LivenessConfig) is enabled).
    /// Returns whether any client was newly suspended.
    ///
    /// Only blocking clients (watermark at or below the horizon, or never
    /// heard from) are candidates: suspending a client whose watermark is
    /// already past the batch would not unblock anything, and would only
    /// degrade fairness for its future messages. A blocking client that has
    /// never been measured before starts its staleness clock at the first
    /// blocked emission instead of being evicted immediately, so a
    /// quiet-but-alive client gets a full deadline's grace.
    fn evict_stale_clients(&mut self, horizon: f64) -> bool {
        let liveness = self.core.config().liveness;
        if !liveness.enabled {
            return false;
        }
        let now = self.now;
        let mut any = false;
        for (&client, heard) in self.last_heard.iter_mut() {
            if self.watermarks.is_suspended(client) {
                continue;
            }
            let blocking = match self.watermarks.latest(client) {
                None => true,
                Some(t) => t <= horizon,
            };
            if !blocking {
                continue;
            }
            if !heard.is_finite() {
                *heard = now;
                continue;
            }
            if now - *heard > liveness.staleness_deadline {
                self.watermarks.suspend(client);
                self.stats.evictions += 1;
                any = true;
            }
        }
        any
    }

    /// Record delivery-layer session counters (gap/duplicate/reorder
    /// detection and retransmit recovery, maintained by the wire/session
    /// layer *outside* the sequencer) onto this run's [`OnlineStats`], so a
    /// run's statistics describe the whole delivery path. Pass cumulative
    /// counters: the corresponding stats fields are overwritten, not summed.
    pub fn record_session_counters(&mut self, counters: SessionCounters) {
        self.stats.gaps_detected = counters.gaps_detected;
        self.stats.dupes_dropped = counters.dupes_dropped;
        self.stats.reorders_buffered = counters.reorders_buffered;
        self.stats.retransmit_requests = counters.retransmit_requests;
        self.stats.sequences_skipped = counters.sequences_skipped;
    }

    /// Cached fairness-violation margin for an (arriving, emitted) client
    /// pair; computed once per pair.
    fn violation_margin(&mut self, arriving: ClientId, emitted: ClientId) -> Option<f64> {
        let key = (arriving, emitted);
        if let Some(&cached) = self.violation_margins.get(&key) {
            return cached;
        }
        let margin = self
            .registry
            .violation_margin(arriving, emitted, self.core.config().threshold)
            .ok();
        self.violation_margins.insert(key, margin);
        margin
    }

    /// Submit a message that arrived at sequencer-clock time `arrival_time`.
    /// Returns any batches that became safe to emit as a result.
    pub fn submit(
        &mut self,
        message: Message,
        arrival_time: f64,
    ) -> Result<Vec<EmittedBatch>, CoreError> {
        if !self.registry.contains(message.client) {
            return Err(CoreError::UnknownClient(message.client));
        }
        if !self.seen_ids.insert(message.id) {
            return Err(CoreError::DuplicateMessage(message.id));
        }
        self.advance_clock(arrival_time);
        self.watermarks.observe(message.client, message.timestamp)?;
        self.note_heard(message.client);

        if self.core.config().defense.enabled {
            self.observe_defense(message.client, message.timestamp, arrival_time);
        }
        // Delay estimation *after* the defense check: the estimate used for
        // residual formation must exclude the current sample, or the first
        // residual of every client would be identically zero and early
        // windows would be variance-shrunk.
        let gap = arrival_time - message.timestamp;
        if gap.is_finite() {
            self.delays.entry(message.client).or_default().record(gap);
        }

        // Fairness-violation detection: the message confidently precedes (or
        // cannot be separated from) something already emitted in the most
        // recent batch. The per-client-pair margin turns each check into a
        // timestamp comparison instead of a probability query.
        if !self.last_emitted.is_empty() {
            let mut violates = false;
            for k in 0..self.last_emitted.len() {
                let (emitted_client, emitted_ts) = self.last_emitted[k];
                if let Some(margin) = self.violation_margin(message.client, emitted_client) {
                    if message.timestamp - emitted_ts <= margin {
                        violates = true;
                        break;
                    }
                }
            }
            if violates {
                self.stats.fairness_violations += 1;
            }
        }

        self.arrivals.insert(message.id, arrival_time);
        match self.mode {
            EngineMode::Sparse => {
                let threshold = self.core.config().threshold;
                let p_safe = self.core.config().p_safe;
                self.sparse
                    .insert(message, &self.registry, threshold, p_safe)?;
                self.stats.dense_columns_avoided += 1;
            }
            EngineMode::Dense => {
                self.matrix.insert(message, &self.registry)?;
                self.core.insert_last(&self.matrix);
                self.candidate = None;
            }
        }
        self.stats.max_pending = self.stats.max_pending.max(self.pending_len());
        self.record_memory_peaks();
        Ok(self.try_emit())
    }

    /// Feed one message's residual into the untrusted-distribution defense
    /// and act on the verdict (see [`crate::defense`]).
    ///
    /// The residual `timestamp − arrival + expected_delay` estimates the
    /// client's clock offset δ from the sequencer's chair, the observable
    /// the claimed distribution describes. Only *messages* feed the defense
    /// — heartbeats carry coordination timestamps, not clock-noise samples,
    /// and would poison the window with degenerate residuals. Under
    /// [`ExpectedDelay::Online`] the delay term is the client's learned
    /// `mean(arrival − timestamp) + claimed mean offset` (see
    /// [`tommy_clock::DelayEstimator`]); no residual is formed until the
    /// estimator has seen `delay_warmup` gaps, so early variance-shrunk
    /// windows never reach the KS check.
    ///
    /// On [`TrustEvent::Quarantined`] the client is re-registered onto a
    /// conservative fallback (empirical mean, inflated σ) so the sequencer
    /// stops believing the lie; on [`TrustEvent::DriftSuspected`] its
    /// distribution is re-learned from the residual window through
    /// [`tommy_clock::DistributionLearner`] — the §3.3 re-estimation loop,
    /// run sequencer-side. Both paths go through
    /// [`register_client`](Self::register_client), so every cached quantity
    /// derived from the stale distribution is invalidated.
    ///
    /// The same residual then feeds the cross-client collusion detector:
    /// clients whose residuals persistently co-move past the correlation
    /// threshold are force-quarantined even though their marginals pass
    /// every per-client check.
    fn observe_defense(&mut self, client: ClientId, timestamp: f64, arrival_time: f64) {
        let cfg = self.core.config().defense;
        let expected_delay = match cfg.expected_delay {
            ExpectedDelay::Fixed(delay) => delay,
            ExpectedDelay::Online => {
                let Some(est) = self.delays.get(&client) else {
                    return;
                };
                if est.count() < cfg.delay_warmup as u64 {
                    return;
                }
                let raw = est.mean().expect("count >= warmup >= 1");
                let claimed_mean = self.registry.get(client).map(|d| d.mean()).unwrap_or(0.0);
                raw + claimed_mean
            }
        };
        let residual = timestamp - arrival_time + expected_delay;
        if !residual.is_finite() {
            return;
        }
        if self
            .registry
            .trust_state(client)
            .is_some_and(|s| s.level() == TrustLevel::Quarantined)
        {
            self.stats.margin_fallbacks += 1;
        }
        let event = match self.registry.observe_residual(client, residual, &cfg) {
            Ok(event) => event,
            Err(_) => return,
        };
        match event {
            TrustEvent::Ok => {}
            TrustEvent::Quarantined => {
                let state = self.registry.trust_state(client).expect("just observed");
                let (emp_mean, emp_sd) = (state.empirical_mean(), state.empirical_std_dev());
                let claimed_sd = self
                    .registry
                    .get(client)
                    .map(|d| d.std_dev())
                    .unwrap_or(0.0);
                let fallback_sd = emp_sd.max(claimed_sd).max(1e-9) * cfg.sigma_inflation;
                self.register_client(
                    client,
                    OffsetDistribution::gaussian(emp_mean, fallback_sd),
                );
                self.stats.quarantines += 1;
            }
            TrustEvent::DriftSuspected => {
                let residuals: Vec<f64> = self
                    .registry
                    .trust_state(client)
                    .expect("just observed")
                    .residuals()
                    .collect();
                let mut learner = tommy_clock::DistributionLearner::with_window(
                    tommy_clock::LearnedModel::GaussianFit,
                    cfg.window.max(2),
                );
                learner.record_all(&residuals);
                if let Some(learned) = learner.learned() {
                    self.register_client(client, learned);
                    self.registry.acknowledge_reestimate(client);
                    self.stats.reestimations += 1;
                }
            }
        }

        // Cross-client correlation: the marginal checks above are blind to
        // colluders who forge *in-distribution* timestamps toward shared
        // values, so the same residual also updates the pairwise co-moment
        // windows. Quarantined clients are excluded inside the registry.
        let report = self.registry.observe_collusion(client, residual, &cfg);
        if report.checked {
            self.stats.collusion_checks += 1;
            if report.peak_score > self.stats.peak_collusion_score {
                self.stats.peak_collusion_score = report.peak_score;
            }
        }
        for flagged in report.flagged {
            self.quarantine_collusive(flagged);
        }
    }

    /// Escalate one collusion-flagged client into the sticky quarantine,
    /// re-registering it onto the same conservative fallback the marginal
    /// quarantine path uses (empirical mean, inflated σ) so its co-moving
    /// timestamps stop steering the order with tight claimed margins.
    fn quarantine_collusive(&mut self, client: ClientId) {
        if self
            .registry
            .trust_state(client)
            .is_some_and(|s| s.level() == TrustLevel::Quarantined)
        {
            return;
        }
        let cfg = self.core.config().defense;
        self.registry.quarantine(client);
        let (emp_mean, emp_sd) = self
            .registry
            .trust_state(client)
            .map(|s| (s.empirical_mean(), s.empirical_std_dev()))
            .unwrap_or((0.0, 0.0));
        let claimed_sd = self
            .registry
            .get(client)
            .map(|d| d.std_dev())
            .unwrap_or(0.0);
        let fallback_sd = emp_sd.max(claimed_sd).max(1e-9) * cfg.sigma_inflation;
        self.register_client(client, OffsetDistribution::gaussian(emp_mean, fallback_sd));
        self.stats.quarantines += 1;
        self.stats.collusion_quarantines += 1;
    }

    /// The corrected online delay estimate for one client — the learned
    /// mean `arrival − timestamp` gap plus the client's *claimed* mean
    /// offset, which converges to the true one-way delay for honest claims
    /// (see [`tommy_clock::DelayEstimator`]). `None` before the client's
    /// first accepted message.
    pub fn delay_estimate(&self, client: ClientId) -> Option<f64> {
        let raw = self.delays.get(&client)?.mean()?;
        let claimed_mean = self.registry.get(client).map(|d| d.mean()).unwrap_or(0.0);
        Some(raw + claimed_mean)
    }

    /// The corrected delay estimate pooled over every client, weighted by
    /// observation count (deterministic: clients are summed in `ClientId`
    /// order). `None` before the first accepted message.
    pub fn mean_delay_estimate(&self) -> Option<f64> {
        let mut sum = 0.0;
        let mut count = 0u64;
        for (&client, est) in &self.delays {
            let Some(raw) = est.mean() else { continue };
            let claimed_mean = self.registry.get(client).map(|d| d.mean()).unwrap_or(0.0);
            sum += (raw + claimed_mean) * est.count() as f64;
            count += est.count();
        }
        (count > 0).then(|| sum / count as f64)
    }

    /// Record a heartbeat (a timestamp-only liveness message) from a client.
    /// Heartbeats advance watermarks but do not change the pending set, so
    /// the cached candidate batch stays valid.
    pub fn heartbeat(
        &mut self,
        client: ClientId,
        timestamp: f64,
        arrival_time: f64,
    ) -> Result<Vec<EmittedBatch>, CoreError> {
        if !self.registry.contains(client) {
            return Err(CoreError::UnknownClient(client));
        }
        self.advance_clock(arrival_time);
        self.watermarks.observe(client, timestamp)?;
        self.note_heard(client);
        Ok(self.try_emit())
    }

    /// Advance the sequencer clock to `now` without new input, emitting any
    /// batches whose safe-emission time has passed. With an unchanged
    /// pending set this is O(1): the cached candidate's `safe_after` and the
    /// watermark frontier are compared against the clock, with zero
    /// probability queries.
    pub fn tick(&mut self, now: f64) -> Vec<EmittedBatch> {
        self.advance_clock(now);
        self.try_emit()
    }

    /// Drain every remaining pending message unconditionally (used at the end
    /// of an experiment to flush messages whose watermarks will never advance
    /// because the workload has ended).
    pub fn flush(&mut self) -> Vec<EmittedBatch> {
        let mut emitted = Vec::new();
        while let Some((batch_msgs, safe_after)) = self.take_candidate_messages() {
            emitted.push(self.emit_batch(batch_msgs, safe_after));
        }
        emitted
    }

    /// The candidate batch for the current pending set, recomputing it only
    /// if an arrival or emission invalidated the cache (dense mode only —
    /// the sparse engine caches its own candidate).
    fn ensure_candidate(&mut self) -> Option<&Candidate> {
        if self.matrix.is_empty() {
            return None;
        }
        if self.candidate.is_none() {
            let rng: Option<&mut dyn rand::RngCore> = if self.core.config().stochastic_cycle_breaking {
                Some(&mut self.rng)
            } else {
                None
            };
            self.candidate =
                compute_candidate(&self.matrix, &mut self.core, &self.registry, rng);
        }
        self.candidate.as_ref()
    }

    /// The current candidate batch's `(size, safe_after, horizon)` from
    /// whichever engine owns the pending set, using (or filling) its cache.
    fn candidate_gate(&mut self) -> Option<CandidateStatus> {
        match self.mode {
            EngineMode::Sparse => {
                let threshold = self.core.config().threshold;
                let p_safe = self.core.config().p_safe;
                self.sparse
                    .candidate_meta(&self.registry, threshold, p_safe)
                    .map(|(size, safe_after, horizon)| CandidateStatus {
                        size,
                        safe_after,
                        horizon,
                    })
            }
            EngineMode::Dense => self.ensure_candidate().map(|c| CandidateStatus {
                size: c.indices.len(),
                safe_after: c.safe_after,
                horizon: c.horizon,
            }),
        }
    }

    /// Inspect the candidate batch the sequencer is currently forming
    /// without cloning it: size, safe-emission time and watermark horizon,
    /// straight off the (possibly recomputed) candidate cache. Exactly like
    /// [`tick`](Self::tick), an unchanged pending set answers with **zero**
    /// probability queries and zero allocations.
    pub fn candidate_status(&mut self) -> Option<CandidateStatus> {
        self.candidate_gate()
    }

    /// Take the current candidate out of whichever engine's cache
    /// (recomputing it first if needed), returning its messages in arrival
    /// order together with its safe-emission time, and leaving the cache
    /// dirty for the next pending-set state.
    fn take_candidate_messages(&mut self) -> Option<(Vec<Message>, f64)> {
        match self.mode {
            EngineMode::Sparse => {
                let threshold = self.core.config().threshold;
                let p_safe = self.core.config().p_safe;
                self.sparse.take_candidate(&self.registry, threshold, p_safe)
            }
            EngineMode::Dense => {
                self.ensure_candidate()?;
                let candidate = self.candidate.take().expect("candidate just ensured");
                let batch_msgs = candidate
                    .indices
                    .iter()
                    .map(|&i| self.matrix.message(i).clone())
                    .collect();
                Some((batch_msgs, candidate.safe_after))
            }
        }
    }

    fn emit_batch(&mut self, batch_msgs: Vec<Message>, safe_after: f64) -> EmittedBatch {
        let ids: Vec<MessageId> = batch_msgs.iter().map(|m| m.id).collect();
        // Account emission latency and drop from the pending set.
        for id in &ids {
            if let Some(arrived_at) = self.arrivals.remove(id) {
                self.stats.total_emission_latency += (self.now - arrived_at).max(0.0);
            }
        }
        match self.mode {
            EngineMode::Sparse => {
                let threshold = self.core.config().threshold;
                self.sparse.commit_removal(&self.registry, threshold);
            }
            EngineMode::Dense => {
                let removed_indices: Vec<usize> =
                    ids.iter().filter_map(|id| self.matrix.index_of(*id)).collect();
                self.matrix.remove_batch(&ids);
                self.core.remove_indices(&removed_indices, &self.matrix);
                self.candidate = None;
            }
        }

        let rank = self.stats.batches_emitted;
        if self.core.config().retain_history {
            self.emitted_order.push_batch(ids);
        } else {
            // Bounded-memory mode: stop tracking emitted ids; duplicates of
            // old messages are rejected by watermark monotonicity instead.
            for id in &ids {
                self.seen_ids.remove(id);
            }
        }
        self.stats.batches_emitted += 1;
        self.stats.messages_emitted += batch_msgs.len();
        // The violation check only needs (client, timestamp) pairs; the one
        // remaining clone of the message vector is the copy handed to the
        // output buffer, whose original the caller receives.
        self.last_emitted = batch_msgs.iter().map(|m| (m.client, m.timestamp)).collect();
        let emitted = EmittedBatch {
            rank,
            messages: batch_msgs,
            emitted_at: self.now,
            safe_after,
        };
        self.emitted.push(emitted.clone());
        emitted
    }

    /// Emit every batch that currently satisfies both safety conditions.
    fn try_emit(&mut self) -> Vec<EmittedBatch> {
        let mut out = Vec::new();
        while let Some(gate) = self.candidate_gate() {
            let (safe_after, horizon) = (gate.safe_after, gate.horizon);
            // Condition (i): the sequencer clock reached T_b.
            if self.now < safe_after {
                break;
            }
            // Condition (ii): watermark completeness up to the batch horizon.
            if !self.watermarks.is_complete_up_to(horizon) {
                // The batch is time-safe but a watermark still blocks it: a
                // stall (usually transient). With liveness enabled, clients
                // silent past the staleness deadline are suspended; if that
                // unblocks the watermark, emission proceeds this very tick.
                self.stats.watermark_stall_ticks += 1;
                if !self.evict_stale_clients(horizon) {
                    break;
                }
                // Emission proceeds if the watermark is now complete — or if
                // no active client is left at all (everyone presumed failed:
                // there is no one whose messages could still be in flight).
                if !self.watermarks.is_complete_up_to(horizon)
                    && self.watermarks.active_clients() > 0
                {
                    break;
                }
            }
            let (batch_msgs, safe_after) = self
                .take_candidate_messages()
                .expect("candidate just ensured");
            out.push(self.emit_batch(batch_msgs, safe_after));
        }
        out
    }
}

/// Compute the lowest-rank candidate batch of the pending set together with
/// its safe emission time and watermark horizon.
///
/// This reads the incrementally maintained [`SequencingCore`] state: the
/// batch of lowest rank (closed under the Appendix C rule) comes straight
/// off the maintained boundary set — no linear-order clone, no `FairOrder`
/// construction, no rank hashing, and no probability queries at all (the
/// safe-emission sweep reads cached per-client margins). A full recompute
/// happens only when the incremental tournament hit an intransitivity cycle.
fn compute_candidate(
    matrix: &PrecedenceMatrix,
    core: &mut SequencingCore,
    registry: &DistributionRegistry,
    rng: Option<&mut dyn rand::RngCore>,
) -> Option<Candidate> {
    let indices = core.candidate_indices(matrix, rng)?;
    let safe_after = batch_emission_time_over(
        registry,
        indices.iter().map(|&i| {
            let m = matrix.message(i);
            (m.client, m.timestamp)
        }),
        core.config().p_safe,
    );
    let horizon = indices
        .iter()
        .map(|&i| matrix.message(i).timestamp)
        .fold(f64::NEG_INFINITY, f64::max);
    Some(Candidate {
        indices,
        safe_after,
        horizon,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(id: u64, client: u32, ts: f64) -> Message {
        Message::new(MessageId(id), ClientId(client), ts)
    }

    fn sequencer(clients: &[(u32, f64)]) -> OnlineSequencer {
        let mut seq = OnlineSequencer::new(SequencerConfig::default());
        for &(c, sigma) in clients {
            seq.register_client(ClientId(c), OffsetDistribution::gaussian(0.0, sigma));
        }
        seq
    }

    fn dense_sequencer(clients: &[(u32, f64)]) -> OnlineSequencer {
        let mut seq = OnlineSequencer::new(
            SequencerConfig::default().with_fast_path(FastPathMode::ForceDense),
        );
        for &(c, sigma) in clients {
            seq.register_client(ClientId(c), OffsetDistribution::gaussian(0.0, sigma));
        }
        seq
    }

    #[test]
    fn stale_client_is_evicted_and_rejoins() {
        use crate::config::LivenessConfig;
        let mut seq = OnlineSequencer::new(
            SequencerConfig::default().with_liveness(LivenessConfig::enabled(50.0)),
        );
        for c in 0..3 {
            seq.register_client(ClientId(c), OffsetDistribution::gaussian(0.0, 1.0));
        }
        // Client 2 never speaks: the watermark blocks even though the batch
        // is long past its safe-emission time.
        assert!(seq.submit(msg(0, 0, 0.0), 0.5).unwrap().is_empty());
        assert!(seq.heartbeat(ClientId(0), 100.0, 100.0).unwrap().is_empty());
        assert!(seq.heartbeat(ClientId(1), 100.0, 100.0).unwrap().is_empty());
        assert!(seq.stats().watermark_stall_ticks > 0);
        // The first blocked emission started client 2's staleness clock at
        // t = 100; within the deadline nothing is evicted…
        assert!(seq.tick(140.0).is_empty());
        assert_eq!(seq.stats().evictions, 0);
        // …past it, client 2 is suspended and the batch comes out.
        let emitted = seq.tick(151.0);
        assert_eq!(emitted.len(), 1);
        assert_eq!(emitted[0].messages[0].id, MessageId(0));
        assert_eq!(seq.stats().evictions, 1);
        assert_eq!(seq.stats().rejoins, 0);
        // Keep clients 0 and 1 fresh so only client 2's fate is in play.
        seq.heartbeat(ClientId(0), 152.0, 152.0).unwrap();
        seq.heartbeat(ClientId(1), 152.0, 152.0).unwrap();
        // Client 2 recovers: hearing from it again re-admits it to the
        // watermark, and it constrains emission once more.
        seq.heartbeat(ClientId(2), 160.0, 160.0).unwrap();
        assert_eq!(seq.stats().rejoins, 1);
        assert!(seq.submit(msg(1, 0, 161.0), 161.5).unwrap().is_empty());
        seq.heartbeat(ClientId(0), 165.0, 165.0).unwrap();
        assert!(
            seq.heartbeat(ClientId(1), 165.0, 165.0).unwrap().is_empty(),
            "rejoined client 2 must block the watermark again"
        );
        let emitted = seq.heartbeat(ClientId(2), 170.0, 170.0).unwrap();
        assert_eq!(emitted.len(), 1);
        assert_eq!(seq.stats().evictions, 1, "no further evictions");
    }

    #[test]
    fn liveness_disabled_never_evicts() {
        let mut seq = sequencer(&[(0, 1.0), (1, 1.0), (2, 1.0)]);
        seq.submit(msg(0, 0, 0.0), 0.5).unwrap();
        seq.heartbeat(ClientId(0), 100.0, 100.0).unwrap();
        seq.heartbeat(ClientId(1), 100.0, 100.0).unwrap();
        assert!(seq.tick(1.0e7).is_empty(), "silent client blocks forever");
        assert_eq!(seq.stats().evictions, 0);
        assert!(seq.stats().watermark_stall_ticks > 0);
        assert_eq!(seq.pending_len(), 1);
    }

    #[test]
    fn session_counters_are_recorded_onto_stats() {
        let mut seq = sequencer(&[(0, 1.0)]);
        seq.record_session_counters(SessionCounters {
            gaps_detected: 3,
            dupes_dropped: 2,
            reorders_buffered: 4,
            retransmit_requests: 5,
            sequences_skipped: 1,
        });
        let stats = seq.stats();
        assert_eq!(stats.gaps_detected, 3);
        assert_eq!(stats.dupes_dropped, 2);
        assert_eq!(stats.reorders_buffered, 4);
        assert_eq!(stats.retransmit_requests, 5);
        assert_eq!(stats.sequences_skipped, 1);
    }

    #[test]
    fn nothing_emits_before_safe_time_and_watermark() {
        let mut seq = sequencer(&[(0, 1.0), (1, 1.0)]);
        // Client 0 submits; client 1 silent — watermark blocks emission.
        let emitted = seq.submit(msg(0, 0, 100.0), 101.0).unwrap();
        assert!(emitted.is_empty());
        assert_eq!(seq.pending_len(), 1);

        // Client 1 heartbeats past the horizon — not enough: the submitting
        // client itself must also be heard from past the horizon (its own
        // message at exactly 100.0 does not prove nothing ≤ 100.0 is in
        // flight).
        let emitted = seq.heartbeat(ClientId(1), 120.0, 120.0).unwrap();
        assert!(emitted.is_empty());
        let emitted = seq.heartbeat(ClientId(0), 121.0, 121.0).unwrap();
        assert_eq!(emitted.len(), 1);
        assert_eq!(emitted[0].messages.len(), 1);
        assert_eq!(seq.pending_len(), 0);
        assert!(emitted[0].safe_after > 100.0);
    }

    #[test]
    fn safe_time_blocks_until_clock_advances() {
        let mut seq = sequencer(&[(0, 10.0), (1, 10.0)]);
        seq.submit(msg(0, 0, 100.0), 100.0).unwrap();
        // Watermarks satisfied immediately by far-future heartbeats from
        // both clients.
        seq.heartbeat(ClientId(1), 200.0, 100.4).unwrap();
        let emitted = seq.heartbeat(ClientId(0), 200.0, 100.5).unwrap();
        // T_b ≈ 100 + 3.09 × 10 ≈ 131: not yet.
        assert!(emitted.is_empty());
        let emitted = seq.tick(140.0);
        assert_eq!(emitted.len(), 1);
        assert!(emitted[0].safe_after > 125.0 && emitted[0].safe_after < 135.0);
        assert!((seq.stats().mean_emission_latency() - 40.0).abs() < 1.0);
    }

    #[test]
    fn well_separated_stream_preserves_order_and_ranks() {
        let mut seq = sequencer(&[(0, 1.0), (1, 1.0)]);
        let mut all_emitted = Vec::new();
        for i in 0..10u64 {
            let client = (i % 2) as u32;
            let ts = i as f64 * 100.0;
            all_emitted.extend(seq.submit(msg(i, client, ts), ts + 1.0).unwrap());
            // Both clients heartbeat regularly so watermarks advance.
            all_emitted.extend(seq.heartbeat(ClientId(0), ts + 50.0, ts + 50.0).unwrap());
            all_emitted.extend(seq.heartbeat(ClientId(1), ts + 50.0, ts + 50.0).unwrap());
        }
        all_emitted.extend(seq.tick(10_000.0));
        all_emitted.extend(seq.heartbeat(ClientId(0), 20_000.0, 20_000.0).unwrap());
        all_emitted.extend(seq.heartbeat(ClientId(1), 20_000.0, 20_000.0).unwrap());

        let order = seq.emitted_order();
        assert_eq!(order.num_messages(), 10);
        // Ranks must follow generation order for well separated messages.
        for i in 0..9u64 {
            assert!(
                order.rank_of(MessageId(i)).unwrap() < order.rank_of(MessageId(i + 1)).unwrap()
            );
        }
        // Ranks of emitted batches are strictly increasing.
        for (i, b) in seq.emitted().iter().enumerate() {
            assert_eq!(b.rank, i);
        }
        assert_eq!(seq.stats().fairness_violations, 0);
    }

    #[test]
    fn appendix_c_high_uncertainty_message_merges_batches() {
        // Two clients: C1 precise (σ = 0.05), C2 very noisy (σ = 1.0).
        // True times: 1a at 100.0, 2 at 100.2, 1b at 100.3 (timestamps per the
        // appendix: 100.0, 100.6, 100.3), arrivals in that order.
        let mut seq = sequencer(&[(1, 0.05), (2, 1.0)]);
        assert!(seq.submit(msg(0, 1, 100.0), 100.05).unwrap().is_empty());
        assert!(seq.submit(msg(1, 2, 100.6), 100.25).unwrap().is_empty());
        assert!(seq.submit(msg(2, 1, 100.3), 100.35).unwrap().is_empty());

        // Let both clients heartbeat far past the horizon and the clock pass
        // every safe-emission time.
        seq.heartbeat(ClientId(1), 200.0, 200.0).unwrap();
        let emitted = seq.heartbeat(ClientId(2), 200.0, 200.0).unwrap();

        // All three messages end up in a single batch: C2's uncertainty makes
        // it inseparable from both of C1's messages, and batches are
        // contiguous in the linear order.
        let total: usize = emitted.iter().map(|b| b.messages.len()).sum();
        assert_eq!(total, 3);
        assert_eq!(emitted.len(), 1, "expected one merged batch");
        assert_eq!(seq.emitted_order().num_batches(), 1);
    }

    #[test]
    fn duplicate_and_unknown_submissions_rejected() {
        let mut seq = sequencer(&[(0, 1.0)]);
        seq.submit(msg(0, 0, 1.0), 1.0).unwrap();
        assert_eq!(
            seq.submit(msg(0, 0, 2.0), 2.0),
            Err(CoreError::DuplicateMessage(MessageId(0)))
        );
        assert_eq!(
            seq.submit(msg(1, 9, 2.0), 2.0),
            Err(CoreError::UnknownClient(ClientId(9)))
        );
    }

    #[test]
    fn non_monotone_client_timestamps_rejected() {
        let mut seq = sequencer(&[(0, 1.0)]);
        seq.submit(msg(0, 0, 10.0), 10.0).unwrap();
        let err = seq.submit(msg(1, 0, 5.0), 11.0).unwrap_err();
        assert!(matches!(err, CoreError::NonMonotoneTimestamp { .. }));
    }

    #[test]
    fn retiring_a_silent_client_restores_liveness() {
        let mut seq = sequencer(&[(0, 1.0), (1, 1.0)]);
        seq.submit(msg(0, 0, 100.0), 100.0).unwrap();
        seq.heartbeat(ClientId(0), 500.0, 500.0).unwrap();
        // Client 1 never speaks; even far in the future nothing emits.
        assert!(seq.tick(1_000.0).is_empty());
        seq.retire_client(ClientId(1));
        let emitted = seq.tick(1_001.0);
        assert_eq!(emitted.len(), 1);
    }

    #[test]
    fn flush_drains_everything() {
        let mut seq = sequencer(&[(0, 5.0), (1, 5.0)]);
        for i in 0..6u64 {
            seq.submit(msg(i, (i % 2) as u32, 100.0 + i as f64), 100.0 + i as f64)
                .unwrap();
        }
        assert!(seq.pending_len() > 0);
        let emitted = seq.flush();
        assert!(!emitted.is_empty());
        assert_eq!(seq.pending_len(), 0);
        assert_eq!(seq.emitted_order().num_messages(), 6);
    }

    #[test]
    fn late_message_counts_as_fairness_violation() {
        let mut seq = sequencer(&[(0, 1.0), (1, 1.0)]);
        seq.submit(msg(0, 0, 100.0), 100.0).unwrap();
        let mut emitted = seq.heartbeat(ClientId(1), 150.0, 150.0).unwrap();
        emitted.extend(seq.heartbeat(ClientId(0), 150.0, 151.0).unwrap());
        emitted.extend(seq.tick(200.0));
        assert_eq!(emitted.len(), 1);
        // A message that clearly should have preceded the emitted one arrives
        // late (client 1's first *message*, timestamp far in the past is not
        // allowed because its heartbeat already advanced to 150; use a
        // timestamp just above 150 but overlapping the emitted message? No —
        // use a different client). Register a third client late.
        seq.register_client(ClientId(2), OffsetDistribution::gaussian(0.0, 1.0));
        let before = seq.stats().fairness_violations;
        seq.submit(msg(1, 2, 99.0), 201.0).unwrap();
        assert_eq!(seq.stats().fairness_violations, before + 1);
    }

    #[test]
    fn stats_track_pending_and_counts() {
        let mut seq = sequencer(&[(0, 1.0), (1, 1.0)]);
        seq.submit(msg(0, 0, 10.0), 10.0).unwrap();
        seq.submit(msg(1, 1, 1000.0), 1000.0).unwrap();
        assert!(seq.stats().max_pending >= 2);
        seq.tick(5_000.0);
        seq.heartbeat(ClientId(0), 5_000.0, 5_000.0).unwrap();
        seq.heartbeat(ClientId(1), 5_000.0, 5_000.0).unwrap();
        let stats = seq.stats();
        assert_eq!(stats.messages_emitted, 2);
        assert_eq!(stats.batches_emitted, 2);
    }

    /// Acceptance criterion of the incremental engine: a clock tick with an
    /// unchanged pending set performs zero precedence-probability queries.
    #[test]
    fn tick_with_unchanged_pending_set_queries_nothing() {
        let mut seq = sequencer(&[(0, 10.0), (1, 10.0)]);
        // Build up a pending set that cannot emit (client 1 stays silent, so
        // watermarks block).
        for i in 0..8u64 {
            seq.submit(msg(i, 0, 100.0 + i as f64), 100.0 + i as f64).unwrap();
        }
        // Force the candidate to be computed (and cached) once.
        seq.tick(101.0);
        let baseline = seq.registry().query_count();
        for step in 0..50 {
            seq.tick(102.0 + step as f64);
        }
        assert_eq!(
            seq.registry().query_count(),
            baseline,
            "pure clock ticks must not issue probability queries"
        );
        // Heartbeats that do not emit reuse the cache too.
        seq.heartbeat(ClientId(0), 160.0, 160.0).unwrap();
        assert_eq!(seq.registry().query_count(), baseline);
    }

    /// Each arrival adds exactly O(n) probability queries (one per existing
    /// pending message), not the O(n²) a from-scratch rebuild would.
    /// (Forced dense: the sparse fast path would do strictly fewer, lazy
    /// queries — this pins the dense engine's exact per-arrival count.)
    #[test]
    fn arrivals_query_linearly_in_pending_size() {
        let mut seq = dense_sequencer(&[(0, 10.0), (1, 10.0)]);
        let mut previous = seq.registry().query_count();
        for i in 0..20u64 {
            seq.submit(msg(i, 0, 100.0 + i as f64), 100.0 + i as f64).unwrap();
            let now = seq.registry().query_count();
            // i existing messages → exactly i new pairwise queries (the
            // violation check is margin-based and queries nothing).
            assert_eq!(now - previous, i, "arrival {i}");
            previous = now;
        }
    }

    /// Acceptance criterion of the incremental ordering pipeline: on a
    /// Gaussian (hence transitive, Appendix A) workload the arrival path
    /// performs **zero** full tournament/linear-order rebuilds — arrivals are
    /// slotted into the maintained order and emissions restrict it —
    /// no matter how many submits, heartbeats, ticks and emissions happen.
    #[test]
    fn gaussian_arrival_path_never_rebuilds_tournament() {
        let mut seq = sequencer(&[(0, 2.0), (1, 2.0), (2, 2.0)]);
        for i in 0..40u64 {
            let ts = 10.0 * (i + 1) as f64;
            seq.submit(msg(i, (i % 3) as u32, ts), ts).unwrap();
            for c in 0..3u32 {
                seq.heartbeat(ClientId(c), ts + 5.0, ts + 5.0).unwrap();
            }
            seq.tick(ts + 9.0);
        }
        seq.flush();
        assert!(seq.stats().messages_emitted > 0, "workload must emit");
        assert_eq!(
            seq.tournament().full_rebuilds(),
            0,
            "acyclic workloads must never recompute the tournament order"
        );
    }

    /// Each arrival decides exactly O(n) tournament edges (one per existing
    /// pending message) — together with `arrivals_query_linearly_in_pending_size`
    /// this pins the arrival path to zero O(n²) components.
    #[test]
    fn arrivals_compare_linearly_in_pending_size() {
        let mut seq = dense_sequencer(&[(0, 10.0), (1, 10.0)]);
        let mut previous = seq.tournament().comparisons();
        for i in 0..20u64 {
            seq.submit(msg(i, 0, 100.0 + i as f64), 100.0 + i as f64).unwrap();
            let now = seq.tournament().comparisons();
            assert_eq!(now - previous, i, "arrival {i}");
            previous = now;
        }
        assert_eq!(seq.tournament().full_rebuilds(), 0);
    }

    #[test]
    fn take_emitted_drains_the_buffer() {
        let mut seq = sequencer(&[(0, 1.0), (1, 1.0)]);
        seq.submit(msg(0, 0, 100.0), 100.0).unwrap();
        seq.heartbeat(ClientId(1), 150.0, 150.0).unwrap();
        seq.heartbeat(ClientId(0), 150.0, 151.0).unwrap();
        seq.tick(200.0);
        assert_eq!(seq.emitted().len(), 1);
        let drained = seq.take_emitted();
        assert_eq!(drained.len(), 1);
        assert!(seq.emitted().is_empty());
        // Stats and order are unaffected by draining.
        assert_eq!(seq.stats().batches_emitted, 1);
        assert_eq!(seq.emitted_order().num_messages(), 1);

        // Ranks keep increasing across drains.
        seq.submit(msg(1, 0, 300.0), 300.0).unwrap();
        seq.heartbeat(ClientId(1), 400.0, 400.0).unwrap();
        seq.heartbeat(ClientId(0), 400.0, 400.0).unwrap();
        seq.tick(500.0);
        let drained = seq.take_emitted();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].rank, 1);
    }

    #[test]
    fn unretained_history_keeps_memory_bounded() {
        let config = SequencerConfig::default().with_retain_history(false);
        let mut seq = OnlineSequencer::new(config);
        seq.register_client(ClientId(0), OffsetDistribution::gaussian(0.0, 1.0));
        seq.register_client(ClientId(1), OffsetDistribution::gaussian(0.0, 1.0));
        for i in 0..20u64 {
            let ts = 100.0 * (i + 1) as f64;
            seq.submit(msg(i, (i % 2) as u32, ts), ts).unwrap();
            seq.heartbeat(ClientId(0), ts + 50.0, ts + 50.0).unwrap();
            seq.heartbeat(ClientId(1), ts + 50.0, ts + 50.0).unwrap();
            seq.tick(ts + 99.0);
            seq.take_emitted();
            // Everything emitted so far was dropped from every internal
            // container: ids, order, output buffer.
            assert!(seq.tracked_ids() <= seq.pending_len() + 1);
            assert!(seq.emitted().is_empty());
            assert_eq!(seq.emitted_order().num_messages(), 0);
        }
        assert_eq!(seq.stats().messages_emitted, 20);
    }

    /// Re-registering a client with a different distribution must be
    /// reflected in the candidate batch even though the matrix is maintained
    /// incrementally.
    #[test]
    fn reregistration_recomputes_pending_probabilities() {
        let mut seq = sequencer(&[(0, 0.1), (1, 0.1)]);
        // Two messages 10 apart with tight clocks: confidently separable,
        // so the first candidate batch holds exactly one message.
        seq.submit(msg(0, 0, 100.0), 100.0).unwrap();
        seq.submit(msg(1, 1, 110.0), 110.0).unwrap();

        // Make client 1 enormously noisy; the pair becomes inseparable and
        // the candidate batch must merge both messages.
        seq.register_client(ClientId(1), OffsetDistribution::gaussian(0.0, 500.0));
        seq.heartbeat(ClientId(0), 5_000.0, 5_000.0).unwrap();
        let emitted = seq.heartbeat(ClientId(1), 5_000.0, 5_000.0).unwrap();
        let emitted: Vec<_> = if emitted.is_empty() {
            seq.tick(10_000.0)
        } else {
            emitted
        };
        assert_eq!(emitted.len(), 1, "expected one merged batch");
        assert_eq!(emitted[0].messages.len(), 2);
    }

    /// An all-Gaussian stream under the default `Auto` mode never fills a
    /// dense matrix column: every arrival is counted as avoided, the dense
    /// grid stays at zero bytes, and the lazy evaluations show up on stats.
    #[test]
    fn sparse_mode_avoids_dense_columns() {
        let mut seq = sequencer(&[(0, 2.0), (1, 2.0)]);
        // Unit spacing with σ = 2: adjacent messages are inseparable, so the
        // pending set builds up and every arrival pays its boundary bits.
        for i in 0..20u64 {
            let ts = 100.0 + i as f64;
            seq.submit(msg(i, (i % 2) as u32, ts), ts).unwrap();
        }
        seq.heartbeat(ClientId(0), 1_000.0, 1_000.0).unwrap();
        seq.heartbeat(ClientId(1), 1_000.0, 1_000.0).unwrap();
        seq.tick(2_000.0);
        seq.flush();
        let stats = seq.stats();
        assert_eq!(stats.messages_emitted, 20);
        assert_eq!(stats.dense_columns_avoided, 20);
        assert_eq!(stats.peak_matrix_bytes, 0, "no dense grid on the fast path");
        assert!(stats.peak_index_bytes > 0);
        assert!(stats.lazy_evals > 0);
        assert_eq!(stats.mode_switches, 0);
        let counters = seq.fair_order_counters();
        assert!(counters.boundary_evals > 0);
        assert_eq!(counters.full_rebuilds, 0);
    }

    /// `ForceDense` pins the sequencer to the dense engine: all fast-path
    /// counters stay zero no matter how Gaussian the census is (the
    /// forced-dense acceptance criterion).
    #[test]
    fn forced_dense_keeps_fast_path_counters_zero() {
        let mut seq = dense_sequencer(&[(0, 2.0), (1, 2.0)]);
        for i in 0..10u64 {
            let ts = 10.0 * (i + 1) as f64;
            seq.submit(msg(i, (i % 2) as u32, ts), ts).unwrap();
            seq.heartbeat(ClientId(0), ts + 5.0, ts + 5.0).unwrap();
            seq.heartbeat(ClientId(1), ts + 5.0, ts + 5.0).unwrap();
            seq.tick(ts + 9.9);
        }
        seq.flush();
        let stats = seq.stats();
        assert!(stats.messages_emitted > 0);
        assert_eq!(stats.lazy_evals, 0);
        assert_eq!(stats.dense_columns_avoided, 0);
        assert_eq!(stats.mode_switches, 0);
        assert_eq!(stats.peak_index_bytes, 0);
        assert!(stats.peak_matrix_bytes > 0);
    }

    /// Registering a non-closed-form client mid-stream migrates the pending
    /// set sparse → dense without losing a message, and re-registering it as
    /// Gaussian migrates back — two counted mode switches.
    #[test]
    fn census_change_switches_modes_and_preserves_pending() {
        let mut seq = sequencer(&[(0, 1.0), (1, 1.0)]);
        seq.submit(msg(0, 0, 100.0), 100.0).unwrap();
        seq.submit(msg(1, 1, 100.4), 100.4).unwrap();
        assert_eq!(seq.stats().dense_columns_avoided, 2);

        // Client 1 turns out to be Laplace: the census fails and the
        // pending set materializes into the dense engine.
        seq.register_client(ClientId(1), OffsetDistribution::laplace(0.0, 1.0));
        assert_eq!(seq.stats().mode_switches, 1);
        assert_eq!(seq.pending_len(), 2);
        assert!(seq.stats().peak_matrix_bytes > 0);
        seq.submit(msg(2, 1, 100.8), 100.8).unwrap();
        assert_eq!(seq.stats().dense_columns_avoided, 2, "dense mode fills columns");

        // Re-registered as Gaussian, the census passes again and the
        // pending set migrates back into the treap.
        seq.register_client(ClientId(1), OffsetDistribution::gaussian(0.0, 1.0));
        assert_eq!(seq.stats().mode_switches, 2);
        assert_eq!(seq.pending_len(), 3);

        let mut emitted = seq.heartbeat(ClientId(0), 200.0, 200.0).unwrap();
        emitted.extend(seq.heartbeat(ClientId(1), 200.0, 200.0).unwrap());
        emitted.extend(seq.tick(300.0));
        let total: usize = emitted.iter().map(|b| b.messages.len()).sum();
        assert_eq!(total, 3, "no message lost across two mode switches");
        assert_eq!(seq.pending_len(), 0);
    }

    /// The borrow-style candidate inspection is query-free and stable on an
    /// unchanged pending set (the zero-allocation tick path).
    #[test]
    fn candidate_status_is_query_free_when_cached() {
        let mut seq = sequencer(&[(0, 10.0), (1, 10.0)]);
        for i in 0..8u64 {
            seq.submit(msg(i, 0, 100.0 + i as f64), 100.0 + i as f64).unwrap();
        }
        let first = seq.candidate_status().expect("pending set non-empty");
        assert!(first.size >= 1);
        assert!(first.horizon >= 100.0);
        let baseline = seq.registry().query_count();
        for _ in 0..50 {
            assert_eq!(seq.candidate_status(), Some(first));
        }
        assert_eq!(
            seq.registry().query_count(),
            baseline,
            "cached candidate inspection must not issue probability queries"
        );
    }
}
