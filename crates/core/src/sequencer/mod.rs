//! The Tommy sequencers.
//!
//! * [`core`] — [`SequencingCore`], the pipeline tail both sequencers share:
//!   linear order ([`crate::tournament::IncrementalTournament`]) → fair
//!   order (threshold batching, maintained incrementally by
//!   [`crate::batching::IncrementalFairOrder`]) → the candidate/outcome
//!   accessors the emission schedule is derived from. The online sequencer
//!   maintains one core incrementally across arrivals and emissions; the
//!   offline sequencer loads a prebuilt matrix into the same core one-shot,
//!   so both produce their fair order through one code path.
//! * [`offline`] — the batch-mode sequencer of §3.4: all messages are present
//!   before sequencing begins (this is the mode the paper evaluates in §4).
//! * [`online`] — the streaming sequencer of §3.5: messages arrive over time,
//!   and a batch is emitted only once its safe-emission time has passed and
//!   per-client watermarks prove that no message that belongs in (or before)
//!   the batch can still be in flight.
//! * [`emission`] — safe-emission time computation (`T^F_i`, `T_b`).
//! * [`watermark`] — per-client completeness tracking via messages and
//!   heartbeats over ordered channels.
//! * `sparse` (private) — the sub-quadratic Gaussian fast path: when every
//!   registered client has a closed-form kernel, the online sequencer keeps
//!   its order in an order-statistics treap keyed by margin-adjusted
//!   timestamps and evaluates probabilities lazily, never materializing a
//!   dense matrix column (see `ARCHITECTURE.md`, "Sparse fast path").

pub mod core;
pub mod emission;
pub mod offline;
pub mod online;
pub mod sharded;
mod sparse;
pub mod watermark;

pub use self::core::{SequencingCore, SequencingOutcome};
pub use emission::{batch_emission_time, batch_emission_time_over, safe_emission_time};
pub use offline::TommySequencer;
pub use online::{CandidateStatus, EmittedBatch, OnlineSequencer, OnlineStats};
pub use sharded::ShardedSequencer;
pub use watermark::WatermarkTracker;
