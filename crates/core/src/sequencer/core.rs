//! The shared sequencing core: the §3.4 pipeline tail both sequencers run.
//!
//! Offline and online sequencing share the same tail — linear order
//! ([`IncrementalTournament`]) → fair order (threshold batching) → the
//! candidate/emission schedule derived from it. [`SequencingCore`] owns that
//! tail once, replacing the duplicated stage sequences the two sequencers
//! used to carry:
//!
//! * the **online** path maintains the core incrementally —
//!   [`insert_last`](SequencingCore::insert_last) per arrival (one scan
//!   over the maintained condensation blocks places the arrival, or
//!   repairs only the SCC it strongly connects, plus two local
//!   batch-boundary re-evaluations),
//!   [`remove_indices`](SequencingCore::remove_indices) per emission
//!   (in-place restriction + one boundary seam per removed run) — so a
//!   candidate recomputation builds nothing from scratch;
//! * the **offline** path [`load`](SequencingCore::load)s a prebuilt matrix
//!   (a wholesale rebuild) and materializes the one-shot
//!   [`SequencingOutcome`] through the identical
//!   [`outcome`](SequencingCore::outcome) accessor.
//!
//! Both directions resolve cycle fallbacks the same way: when the
//! tournament's maintained order is invalidated, the batch-boundary engine
//! is rebuilt from the recomputed linear order, and the randomized property
//! tests below pin the maintained state equal to
//! [`FairOrder::from_linear_order`] — batches, ranks, and boundary set —
//! across arbitrary insert/remove/threshold sequences.

use crate::batching::{FairOrder, IncrementalFairOrder};
use crate::config::{FasFallbackReason, SequencerConfig};
use crate::precedence::PrecedenceMatrix;
use crate::tournament::IncrementalTournament;
use rand::RngCore;

/// Detailed output of one sequencing run.
#[derive(Debug, Clone)]
pub struct SequencingOutcome {
    /// The fair partial order (totally ordered batches).
    pub order: FairOrder,
    /// Whether the tournament was transitive (always true for Gaussian
    /// offsets, Appendix A of the paper).
    pub transitive: bool,
    /// Number of strongly connected components with more than one message —
    /// i.e. the number of intransitivity cycles that had to be broken.
    pub cyclic_components: usize,
    /// Fraction of message pairs the sequencer could order with confidence
    /// above the threshold.
    pub confident_pair_fraction: f64,
    /// Why the incremental FAS engine was bypassed for this run (`None`
    /// when it ran) — [`SequencerConfig::fas_fallback_reason`] echoed onto
    /// the result so consumers need not re-derive the historical silent
    /// override.
    pub fas_fallback_reason: Option<FasFallbackReason>,
}

/// The shared linear-order → fair-order pipeline tail (see module docs).
///
/// The core tracks an externally maintained [`PrecedenceMatrix`]: every
/// matrix mutation must be mirrored here in lockstep ([`insert_last`]
/// after `PrecedenceMatrix::insert`, [`remove_indices`] after
/// `PrecedenceMatrix::remove_batch`, [`load`] after a wholesale recompute).
///
/// [`insert_last`]: SequencingCore::insert_last
/// [`remove_indices`]: SequencingCore::remove_indices
/// [`load`]: SequencingCore::load
#[derive(Debug)]
pub struct SequencingCore {
    config: SequencerConfig,
    tournament: IncrementalTournament,
    fair: IncrementalFairOrder,
}

impl SequencingCore {
    /// An empty core for the given configuration. The tournament's
    /// incremental FAS engine runs iff
    /// [`SequencerConfig::fas_fallback_reason`] is `None`: disabled
    /// explicitly, or bypassed under stochastic cycle breaking (whose
    /// randomized per-component orders cannot be cached) — the reason is
    /// echoed on [`SequencingOutcome::fas_fallback_reason`].
    pub fn new(config: SequencerConfig) -> Self {
        let mut tournament = IncrementalTournament::new();
        tournament.set_incremental_fas(config.fas_fallback_reason().is_none());
        SequencingCore {
            tournament,
            fair: IncrementalFairOrder::new(config.threshold),
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SequencerConfig {
        &self.config
    }

    /// The incrementally maintained tournament (read-only; exposes the
    /// edge-comparison and full-rebuild counters).
    pub fn tournament(&self) -> &IncrementalTournament {
        &self.tournament
    }

    /// The incremental batch-boundary engine (read-only; exposes the
    /// boundary-re-evaluation and split/merge counters).
    pub fn fair(&self) -> &IncrementalFairOrder {
        &self.fair
    }

    /// Incorporate the message `matrix` just gained (its last index): the
    /// tournament orients the new edges and places the arrival in its
    /// maintained order (a singleton insertion, or an SCC-scoped local
    /// repair when the arrival closes a cycle); on a clean insertion the
    /// batch-boundary engine re-evaluates only the two new adjacencies at
    /// the insertion point, and on a repair (or a fallback-mode cycle
    /// event) the boundary set is rebuilt from the new order at the next
    /// read.
    pub fn insert_last(&mut self, matrix: &PrecedenceMatrix) {
        match self.tournament.insert_last(matrix) {
            Some(position) if !self.fair.is_dirty() => self.fair.insert_at(position, matrix),
            _ => self.fair.mark_dirty(),
        }
    }

    /// Drop the messages at (pre-removal) indices `removed`. `matrix` is the
    /// *post-removal* matrix — call `PrecedenceMatrix::remove_batch` first.
    /// Surviving batch boundaries keep their bits; only one seam per removed
    /// run is re-evaluated.
    pub fn remove_indices(&mut self, removed: &[usize], matrix: &PrecedenceMatrix) {
        if self.tournament.remove_indices(removed, matrix) && !self.fair.is_dirty() {
            self.fair.remove_slots(removed, matrix);
        } else {
            self.fair.mark_dirty();
        }
    }

    /// Track `matrix` wholesale (the offline one-shot entry point, and the
    /// online re-registration path): every tournament edge is re-derived and
    /// the fair order awaits a one-shot rebuild.
    pub fn load(&mut self, matrix: &PrecedenceMatrix) {
        self.tournament.rebuild(matrix);
        self.fair.mark_dirty();
    }

    /// Make the maintained order and boundary set valid (recomputing only
    /// after a cycle or a [`load`](Self::load)). On a clean incremental
    /// state this is a no-op: zero comparisons, zero boundary evaluations.
    fn refresh(&mut self, matrix: &PrecedenceMatrix, rng: Option<&mut dyn RngCore>) {
        self.tournament.ensure_order(matrix, &self.config, rng);
        if self.fair.is_dirty() {
            self.fair.rebuild_from(self.tournament.order(), matrix);
        }
        debug_assert_eq!(
            self.fair.order(),
            self.tournament.order(),
            "fair order out of lockstep with the tournament"
        );
    }

    /// The complete linear order (§3.4), identical to what the one-shot
    /// `Tournament::from_matrix(..).linear_order(..)` would produce.
    pub fn linear_order(
        &mut self,
        matrix: &PrecedenceMatrix,
        rng: Option<&mut dyn RngCore>,
    ) -> Vec<usize> {
        self.refresh(matrix, rng);
        self.tournament.order().to_vec()
    }

    /// The fair partial order over the tracked messages, materialized as a
    /// [`FairOrder`] — identical to
    /// [`FairOrder::from_linear_order`] over the same matrix and order.
    pub fn fair_order(
        &mut self,
        matrix: &PrecedenceMatrix,
        rng: Option<&mut dyn RngCore>,
    ) -> FairOrder {
        self.refresh(matrix, rng);
        self.fair.to_fair_order(matrix)
    }

    /// The matrix indices of the online candidate batch: the lowest-rank
    /// batch of the maintained fair order, closed under the Appendix C rule
    /// (the batch absorbs every pending message that cannot be confidently
    /// separated from some member, transitively), sorted ascending.
    ///
    /// On a clean incremental state this reads the maintained boundary set
    /// directly — no linear-order clone, no `FairOrder` construction, no
    /// rank hashing — leaving the closure's `O(n × batch)` probability
    /// *reads* as the only per-candidate scan.
    ///
    /// The worklist form is identical to re-scanning every round: a message
    /// already checked against a batch member never needs re-checking, so
    /// each round compares the remaining outsiders only against the members
    /// added last round.
    pub fn candidate_indices(
        &mut self,
        matrix: &PrecedenceMatrix,
        rng: Option<&mut dyn RngCore>,
    ) -> Option<Vec<usize>> {
        if matrix.is_empty() {
            return None;
        }
        self.refresh(matrix, rng);
        let mut in_batch: Vec<usize> = self.fair.first_batch().to_vec();
        let mut outside: Vec<usize> = {
            let mut member = vec![false; matrix.len()];
            for &i in &in_batch {
                member[i] = true;
            }
            (0..matrix.len()).filter(|&i| !member[i]).collect()
        };
        let threshold = self.config.threshold;
        let mut frontier: Vec<usize> = in_batch.clone();
        while !frontier.is_empty() && !outside.is_empty() {
            let mut absorbed: Vec<usize> = Vec::new();
            outside.retain(|&cand| {
                let inseparable = frontier.iter().any(|&b| {
                    let p = matrix.prob(b, cand).max(matrix.prob(cand, b));
                    p <= threshold
                });
                if inseparable {
                    absorbed.push(cand);
                }
                !inseparable
            });
            in_batch.extend_from_slice(&absorbed);
            frontier = absorbed;
        }
        in_batch.sort_unstable();
        Some(in_batch)
    }

    /// The one-shot sequencing outcome (fair order + diagnostics) over the
    /// tracked matrix — the accessor the offline sequencer returns from
    /// `sequence_detailed`.
    pub fn outcome(
        &mut self,
        matrix: &PrecedenceMatrix,
        rng: Option<&mut dyn RngCore>,
    ) -> SequencingOutcome {
        self.refresh(matrix, rng);
        let transitive = self.tournament.is_transitive();
        let cyclic_components = if transitive {
            0
        } else {
            self.tournament.cyclic_component_count()
        };
        SequencingOutcome {
            order: self.fair.to_fair_order(matrix),
            transitive,
            cyclic_components,
            confident_pair_fraction: matrix.confident_pair_fraction(self.config.threshold),
            fas_fallback_reason: self.config.fas_fallback_reason(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{ClientId, Message, MessageId};
    use crate::registry::DistributionRegistry;
    use crate::tournament::Tournament;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tommy_stats::distribution::OffsetDistribution;

    fn msgs(n: usize) -> Vec<Message> {
        (0..n)
            .map(|i| Message::new(MessageId(i as u64), ClientId(i as u32), 0.0))
            .collect()
    }

    /// The maintained core must be bit-identical to the one-shot pipeline:
    /// same linear order, and a fair order equal in batches, ranks, and
    /// boundary set to `FairOrder::from_linear_order` over it.
    fn assert_core_matches_one_shot(core: &mut SequencingCore, matrix: &PrecedenceMatrix) {
        let config = *core.config();
        let scratch = Tournament::from_matrix(matrix);
        let scratch_order = scratch.linear_order(matrix, &config, None);
        assert_eq!(
            core.linear_order(matrix, None),
            scratch_order,
            "linear order diverged"
        );
        let reference = FairOrder::from_linear_order(matrix, &scratch_order, config.threshold);
        let maintained = core.fair_order(matrix, None);
        assert_eq!(maintained, reference, "fair order diverged");
        assert_eq!(
            core.fair().boundary_positions(),
            reference.boundary_positions(),
            "boundary set diverged"
        );
        // The candidate batch equals the closure over the reference's batch 0.
        let candidate = core.candidate_indices(matrix, None).unwrap();
        assert!(!candidate.is_empty());
        for id in &reference.batches()[0].messages {
            let slot = matrix.index_of(*id).unwrap();
            assert!(candidate.contains(&slot), "candidate lost a batch-0 member");
        }
    }

    /// Mirror of the tournament's randomized insert/remove property test,
    /// extended to the batch-boundary engine: Gaussian + Laplace clients
    /// (always transitive ⇒ zero rebuilds), random thresholds per seed.
    #[test]
    fn random_insert_remove_sequences_match_one_shot() {
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut reg = DistributionRegistry::new();
            for c in 0..4u32 {
                let dist = if c % 2 == 0 {
                    OffsetDistribution::gaussian(0.0, 1.0 + c as f64)
                } else {
                    OffsetDistribution::laplace(0.0, 1.0 + c as f64)
                };
                reg.register(ClientId(c), dist);
            }
            let threshold = rng.random_range(0.55..0.95f64);
            let config = SequencerConfig::default().with_threshold(threshold);
            let mut matrix = PrecedenceMatrix::empty();
            let mut core = SequencingCore::new(config);
            let mut next_id = 0u64;
            for _ in 0..30 {
                let remove = !matrix.is_empty() && rng.random_range(0u32..4) == 0;
                if remove {
                    let count = rng.random_range(1usize..=matrix.len());
                    let mut indices: Vec<usize> = (0..matrix.len()).collect();
                    for _ in 0..(matrix.len() - count) {
                        let k = rng.random_range(0usize..indices.len());
                        indices.remove(k);
                    }
                    let ids: Vec<MessageId> =
                        indices.iter().map(|&i| matrix.message(i).id).collect();
                    matrix.remove_batch(&ids);
                    core.remove_indices(&indices, &matrix);
                } else {
                    let m = Message::new(
                        MessageId(next_id),
                        ClientId(rng.random_range(0u32..4)),
                        rng.random_range(-100.0..100.0f64),
                    );
                    next_id += 1;
                    matrix.insert(m, &reg).unwrap();
                    core.insert_last(&matrix);
                }
                if matrix.is_empty() {
                    assert!(core.fair().is_empty());
                } else {
                    assert_core_matches_one_shot(&mut core, &matrix);
                }
            }
            assert_eq!(
                core.tournament().full_rebuilds(),
                0,
                "seed {seed}: transitive workload must never rebuild"
            );
            assert_eq!(
                core.fair().counters().full_rebuilds,
                0,
                "seed {seed}: transitive workload must never rebuild the boundaries"
            );
        }
    }

    /// Same property over explicit random probability matrices, which —
    /// unlike Gaussian offsets — produce intransitive triples, exercising
    /// the cycle-induced rebuild fallbacks of both the tournament and the
    /// batch-boundary engine.
    #[test]
    #[allow(clippy::needless_range_loop)] // symmetric (i, j) matrix fill
    fn random_probability_matrices_match_one_shot_including_cycles() {
        const POOL: usize = 20;
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(5_000 + seed);
            let mut pairwise = vec![vec![0.5; POOL]; POOL];
            for i in 0..POOL {
                for j in (i + 1)..POOL {
                    let p = rng.random_range(0.05..0.95f64);
                    pairwise[i][j] = p;
                    pairwise[j][i] = 1.0 - p;
                }
            }
            let pool_msgs = msgs(POOL);
            let rebuild_matrix = |pending: &[usize]| -> PrecedenceMatrix {
                let messages: Vec<Message> =
                    pending.iter().map(|&g| pool_msgs[g].clone()).collect();
                let probs: Vec<Vec<f64>> = pending
                    .iter()
                    .map(|&gi| pending.iter().map(|&gj| pairwise[gi][gj]).collect())
                    .collect();
                PrecedenceMatrix::from_probabilities(&messages, &probs)
            };

            let threshold = rng.random_range(0.55..0.95f64);
            let config = SequencerConfig::default().with_threshold(threshold);
            let mut pending: Vec<usize> = Vec::new();
            let mut core = SequencingCore::new(config);
            let mut next = 0usize;
            let mut saw_cycle = false;
            for _ in 0..40 {
                let remove = !pending.is_empty() && rng.random_range(0u32..3) == 0;
                if remove {
                    let count = rng.random_range(1usize..=pending.len());
                    let mut positions: Vec<usize> = (0..pending.len()).collect();
                    for _ in 0..(pending.len() - count) {
                        let k = rng.random_range(0usize..positions.len());
                        positions.remove(k);
                    }
                    for &p in positions.iter().rev() {
                        pending.remove(p);
                    }
                    if pending.is_empty() {
                        // The core still tracks the removal; compare against
                        // an empty state below.
                        core.remove_indices(&positions, &PrecedenceMatrix::empty());
                    } else {
                        core.remove_indices(&positions, &rebuild_matrix(&pending));
                    }
                } else if next < POOL {
                    pending.push(next);
                    next += 1;
                    core.insert_last(&rebuild_matrix(&pending));
                } else {
                    continue;
                }
                if pending.is_empty() {
                    assert!(core.tournament().is_empty());
                } else {
                    let matrix = rebuild_matrix(&pending);
                    assert_core_matches_one_shot(&mut core, &matrix);
                    saw_cycle |= !core.tournament().is_transitive();
                }
            }
            assert!(saw_cycle, "seed {seed}: random relation never cycled");
        }
    }

    /// `load` + `outcome` is the offline pipeline: diagnostics and order
    /// must match the historical `Tournament::from_matrix` path exactly.
    #[test]
    fn loaded_outcome_matches_one_shot_pipeline() {
        let matrix = PrecedenceMatrix::from_probabilities(
            &msgs(4),
            &[
                vec![0.5, 0.85, 0.65, 0.92],
                vec![0.15, 0.5, 0.72, 0.68],
                vec![0.35, 0.28, 0.5, 0.80],
                vec![0.08, 0.32, 0.20, 0.5],
            ],
        );
        let config = SequencerConfig::default();
        let mut core = SequencingCore::new(config);
        core.load(&matrix);
        let outcome = core.outcome(&matrix, None);
        assert!(outcome.transitive);
        assert_eq!(outcome.cyclic_components, 0);
        assert_eq!(outcome.order.num_batches(), 3);
        assert_eq!(outcome.order.batches()[1].messages, vec![MessageId(1), MessageId(2)]);

        // A cyclic matrix reports its component count like the one-shot path.
        let cyclic = PrecedenceMatrix::from_probabilities(
            &msgs(3),
            &[
                vec![0.5, 0.8, 0.3],
                vec![0.2, 0.5, 0.8],
                vec![0.7, 0.2, 0.5],
            ],
        );
        core.load(&cyclic);
        let outcome = core.outcome(&cyclic, None);
        assert!(!outcome.transitive);
        assert_eq!(outcome.cyclic_components, 1);
        assert_eq!(outcome.order.num_messages(), 3);
    }
}
