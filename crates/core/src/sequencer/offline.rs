//! The offline (batch-mode) Tommy sequencer.
//!
//! §3 of the paper, assuming "all messages are present at the sequencer
//! before it starts sequencing" (the assumption §3.5 later lifts — see
//! [`crate::sequencer::online`]). The pipeline is:
//!
//! 1. compute the pairwise preceding probabilities ([`PrecedenceMatrix`]) —
//!    filled through per-client-pair
//!    [`PairKernel`](crate::registry::PairKernel)s, so the registry's
//!    lookups and locks are amortized over whole rows (O(C²) touches per
//!    build tile, C = distinct clients, instead of O(pairs)) and the
//!    per-pair arithmetic runs as tight loops over contiguous timestamps,
//! 2. build the tournament, extract a linear order, and batch adjacent
//!    messages whose ordering confidence is below the threshold — the
//!    pipeline tail shared with the online sequencer through
//!    [`SequencingCore`] (the offline path drives it one-shot via
//!    [`SequencingCore::load`]).

use crate::batching::FairOrder;
use crate::config::SequencerConfig;
use crate::error::CoreError;
use crate::message::{ClientId, Message};
use crate::precedence::PrecedenceMatrix;
use crate::registry::DistributionRegistry;
use crate::sequencer::core::SequencingCore;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tommy_stats::distribution::OffsetDistribution;

pub use crate::sequencer::core::SequencingOutcome;

/// The offline Tommy sequencer.
#[derive(Debug)]
pub struct TommySequencer {
    core: SequencingCore,
    registry: DistributionRegistry,
    rng: StdRng,
}

impl TommySequencer {
    /// Create a sequencer with the given configuration and an empty client
    /// registry.
    pub fn new(config: SequencerConfig) -> Self {
        TommySequencer::with_seed(config, 0)
    }

    /// Create a sequencer with an explicit RNG seed (only used when
    /// stochastic cycle breaking is enabled).
    pub fn with_seed(config: SequencerConfig, seed: u64) -> Self {
        TommySequencer {
            registry: DistributionRegistry::from_config(&config),
            core: SequencingCore::new(config),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SequencerConfig {
        self.core.config()
    }

    /// Register a client's (learned or seeded) offset distribution.
    pub fn register_client(&mut self, client: ClientId, distribution: OffsetDistribution) {
        self.registry.register(client, distribution);
    }

    /// Read access to the registry (e.g. for computing emission times).
    pub fn registry(&self) -> &DistributionRegistry {
        &self.registry
    }

    /// Number of registered clients.
    pub fn client_count(&self) -> usize {
        self.registry.len()
    }

    /// Sequence a set of messages into a fair partial order.
    pub fn sequence(&mut self, messages: &[Message]) -> Result<FairOrder, CoreError> {
        Ok(self.sequence_detailed(messages)?.order)
    }

    /// Sequence a set of messages, returning diagnostics alongside the order.
    ///
    /// The pairwise matrix is built with
    /// [`PrecedenceMatrix::compute_parallel`] using
    /// [`SequencerConfig::parallelism`] worker threads — bit-identical to the
    /// serial build, so the configured parallelism changes wall-clock time
    /// only, never the output.
    pub fn sequence_detailed(
        &mut self,
        messages: &[Message],
    ) -> Result<SequencingOutcome, CoreError> {
        let matrix = PrecedenceMatrix::compute_parallel(
            messages,
            &self.registry,
            self.core.config().parallelism,
        )?;
        Ok(self.sequence_matrix(&matrix))
    }

    /// Sequence an already-computed precedence matrix (used by the Appendix B
    /// worked example, where the paper supplies the matrix directly). Loads
    /// the matrix into the shared [`SequencingCore`] and materializes the
    /// one-shot outcome through the same pipeline tail the online sequencer
    /// maintains incrementally.
    pub fn sequence_matrix(&mut self, matrix: &PrecedenceMatrix) -> SequencingOutcome {
        self.core.load(matrix);
        let rng: Option<&mut dyn rand::RngCore> = if self.core.config().stochastic_cycle_breaking
        {
            Some(&mut self.rng)
        } else {
            None
        };
        self.core.outcome(matrix, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageId;

    fn msg(id: u64, client: u32, ts: f64) -> Message {
        Message::new(MessageId(id), ClientId(client), ts)
    }

    fn gaussian_sequencer(sigma: f64, clients: u32) -> TommySequencer {
        let mut seq = TommySequencer::new(SequencerConfig::default());
        for c in 0..clients {
            seq.register_client(ClientId(c), OffsetDistribution::gaussian(0.0, sigma));
        }
        seq
    }

    #[test]
    fn well_separated_messages_get_distinct_ranks() {
        let mut seq = gaussian_sequencer(1.0, 4);
        let msgs: Vec<Message> = (0..4).map(|i| msg(i, i as u32, i as f64 * 100.0)).collect();
        let outcome = seq.sequence_detailed(&msgs).unwrap();
        assert!(outcome.transitive);
        assert_eq!(outcome.cyclic_components, 0);
        assert_eq!(outcome.order.num_batches(), 4);
        for (i, m) in msgs.iter().enumerate() {
            assert_eq!(outcome.order.rank_of(m.id), Some(i));
        }
        assert!((outcome.confident_pair_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn indistinguishable_messages_share_a_batch() {
        let mut seq = gaussian_sequencer(100.0, 3);
        let msgs = vec![msg(0, 0, 10.0), msg(1, 1, 10.5), msg(2, 2, 11.0)];
        let order = seq.sequence(&msgs).unwrap();
        assert_eq!(order.num_batches(), 1);
        assert_eq!(order.batches()[0].len(), 3);
    }

    #[test]
    fn gaussian_offsets_are_always_transitive() {
        // Appendix A: Gaussian preferences are transitive, so no cycles ever.
        let mut seq = TommySequencer::new(SequencerConfig::default());
        for c in 0..20u32 {
            seq.register_client(
                ClientId(c),
                OffsetDistribution::gaussian(c as f64 - 10.0, 1.0 + c as f64),
            );
        }
        let msgs: Vec<Message> = (0..20).map(|i| msg(i, i as u32, (i % 7) as f64 * 3.0)).collect();
        let outcome = seq.sequence_detailed(&msgs).unwrap();
        assert!(outcome.transitive);
        assert_eq!(outcome.cyclic_components, 0);
    }

    #[test]
    fn ranks_respect_timestamp_order_for_identical_clients() {
        // With identical symmetric clocks, the extracted linear order must
        // follow the raw timestamps (the probability of the earlier-stamped
        // message preceding is always > 0.5).
        let mut seq = gaussian_sequencer(5.0, 6);
        let msgs: Vec<Message> = (0..6).map(|i| msg(i, i as u32, i as f64 * 2.0)).collect();
        let order = seq.sequence(&msgs).unwrap();
        let mut last_rank = 0;
        for m in &msgs {
            let r = order.rank_of(m.id).unwrap();
            assert!(r >= last_rank);
            last_rank = r;
        }
    }

    #[test]
    fn empty_input_is_an_error() {
        let mut seq = gaussian_sequencer(1.0, 1);
        assert_eq!(seq.sequence(&[]), Err(CoreError::EmptyInput));
    }

    #[test]
    fn unknown_client_is_an_error() {
        let mut seq = gaussian_sequencer(1.0, 1);
        let msgs = vec![msg(0, 0, 1.0), msg(1, 5, 2.0)];
        assert_eq!(
            seq.sequence(&msgs),
            Err(CoreError::UnknownClient(ClientId(5)))
        );
    }

    #[test]
    fn appendix_b_example_end_to_end() {
        // Feed the Appendix B probability matrix through the same pipeline the
        // sequencer uses and check the published batching falls out.
        let msgs: Vec<Message> = (0..4).map(|i| msg(i, i as u32, 0.0)).collect();
        let matrix = PrecedenceMatrix::from_probabilities(
            &msgs,
            &[
                vec![0.5, 0.85, 0.65, 0.92],
                vec![0.15, 0.5, 0.72, 0.68],
                vec![0.35, 0.28, 0.5, 0.80],
                vec![0.08, 0.32, 0.20, 0.5],
            ],
        );
        let mut seq = TommySequencer::new(SequencerConfig::default());
        let outcome = seq.sequence_matrix(&matrix);
        assert!(outcome.transitive);
        let batches = outcome.order.batches();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].messages, vec![MessageId(0)]);
        assert_eq!(batches[1].messages, vec![MessageId(1), MessageId(2)]);
        assert_eq!(batches[2].messages, vec![MessageId(3)]);
    }

    /// The parallel matrix build behind `SequencerConfig::parallelism` is
    /// bit-identical to the serial one: identical batches, ranks and
    /// diagnostics for any thread count.
    #[test]
    fn parallel_sequencing_is_bit_identical_to_serial() {
        let msgs: Vec<Message> = (0..120)
            .map(|i| msg(i, (i % 6) as u32, (i % 17) as f64 * 2.5))
            .collect();
        let mut serial = TommySequencer::new(SequencerConfig::default().with_parallelism(1));
        for c in 0..6u32 {
            serial.register_client(ClientId(c), OffsetDistribution::gaussian(0.0, 10.0));
        }
        let serial_outcome = serial.sequence_detailed(&msgs).unwrap();

        for threads in [0usize, 2, 4, 7] {
            let mut parallel =
                TommySequencer::new(SequencerConfig::default().with_parallelism(threads));
            for c in 0..6u32 {
                parallel.register_client(ClientId(c), OffsetDistribution::gaussian(0.0, 10.0));
            }
            let outcome = parallel.sequence_detailed(&msgs).unwrap();
            assert_eq!(outcome.transitive, serial_outcome.transitive);
            assert_eq!(outcome.cyclic_components, serial_outcome.cyclic_components);
            assert_eq!(
                outcome.confident_pair_fraction,
                serial_outcome.confident_pair_fraction,
                "threads {threads}"
            );
            assert_eq!(
                outcome.order.batches().len(),
                serial_outcome.order.batches().len()
            );
            for (a, b) in outcome
                .order
                .batches()
                .iter()
                .zip(serial_outcome.order.batches())
            {
                assert_eq!(a.messages, b.messages, "threads {threads}");
            }
        }
    }

    #[test]
    fn stochastic_cycle_breaking_still_sequences_everything() {
        let config = SequencerConfig::default().with_stochastic_cycle_breaking(true);
        let mut seq = TommySequencer::with_seed(config, 7);
        // A cyclic matrix (rock–paper–scissors).
        let msgs: Vec<Message> = (0..3).map(|i| msg(i, i as u32, 0.0)).collect();
        let matrix = PrecedenceMatrix::from_probabilities(
            &msgs,
            &[
                vec![0.5, 0.8, 0.3],
                vec![0.2, 0.5, 0.8],
                vec![0.7, 0.2, 0.5],
            ],
        );
        let outcome = seq.sequence_matrix(&matrix);
        assert!(!outcome.transitive);
        assert_eq!(outcome.cyclic_components, 1);
        assert_eq!(outcome.order.num_messages(), 3);
    }
}
