//! Safe batch emission times.
//!
//! §3.5 of the paper: "A safe way to emit a batch is to calculate a future
//! time `T^F_i` for each message `i` in the batch such that
//! `P(T*_i < T^F_i) > p_safe` … The safe emission time for the entire batch
//! becomes `T_b = max_k T^F_k`."
//!
//! With the offset convention used throughout this workspace
//! (`T_i = T*_i + δ_i`, so `T*_i = T_i − δ_i`):
//!
//! ```text
//! P(T*_i < T^F) = P(δ_i > T_i − T^F) = 1 − F_{δ_i}(T_i − T^F) > p_safe
//!   ⇔ T^F > T_i − Q_{δ_i}(1 − p_safe)
//! ```
//!
//! so the smallest safe time is `T_i − Q_{δ_i}(1 − p_safe)`, where `Q` is the
//! quantile function of the client's offset distribution. The paper suggests
//! finding `T^F_i` "by a binary search on the future timestamps";
//! [`safe_emission_time_bisect`] implements that formulation and the tests
//! check the two agree.

use crate::message::{ClientId, Message};
use crate::registry::DistributionRegistry;
use tommy_stats::distribution::{Distribution, OffsetDistribution};
use tommy_stats::quantile::bisect_increasing;

/// The smallest sequencer-clock time `T^F` such that
/// `P(T* < T^F) >= p_safe` for a message with local timestamp `timestamp`
/// whose client has offset distribution `dist`.
pub fn safe_emission_time(dist: &OffsetDistribution, timestamp: f64, p_safe: f64) -> f64 {
    assert!(
        p_safe > 0.5 && p_safe < 1.0,
        "p_safe must be in (0.5, 1.0), got {p_safe}"
    );
    timestamp - dist.quantile(1.0 - p_safe)
}

/// The same quantity computed by the paper's binary-search formulation:
/// search for the smallest `T^F` in `[timestamp + lo_margin, timestamp +
/// hi_margin]` with `P(T* < T^F) >= p_safe`.
pub fn safe_emission_time_bisect(
    dist: &OffsetDistribution,
    timestamp: f64,
    p_safe: f64,
) -> f64 {
    assert!(
        p_safe > 0.5 && p_safe < 1.0,
        "p_safe must be in (0.5, 1.0), got {p_safe}"
    );
    let (support_lo, support_hi) = dist.support();
    // T* = T − δ ranges over [T − support_hi, T − support_lo].
    let lo = timestamp - support_hi;
    let hi = timestamp - support_lo;
    let prob = |tf: f64| 1.0 - dist.cdf(timestamp - tf);
    bisect_increasing(prob, lo, hi, p_safe, (hi - lo).max(1e-9) * 1e-9).unwrap_or(hi)
}

/// The safe emission time for a whole batch: `T_b = max_k T^F_k`.
///
/// Per member this is `T_k − Q_{δ_k}(1 − p_safe)`; the quantile depends
/// only on the member's *client* (and `p_safe`), so the registry's cached
/// per-client margin ([`DistributionRegistry::safe_margin`]) is fetched
/// once per distinct client and the sweep itself costs one local lookup and
/// subtraction per member. The result is bit-identical to folding
/// [`safe_emission_time`] over the batch.
///
/// # Panics
///
/// Panics if any message's client is missing from the registry (callers
/// validate clients at submission time) or if the batch is empty.
pub fn batch_emission_time(
    registry: &DistributionRegistry,
    batch: &[Message],
    p_safe: f64,
) -> f64 {
    assert!(!batch.is_empty(), "cannot compute emission time of an empty batch");
    batch_emission_time_over(registry, batch.iter().map(|m| (m.client, m.timestamp)), p_safe)
}

/// [`batch_emission_time`] over `(client, timestamp)` pairs — the form the
/// online sequencer feeds straight from its precedence matrix, so a
/// candidate recomputation never clones the batch's messages just to price
/// it.
///
/// The per-client margin cache is a linear-scanned vector rather than a
/// hash map: the distinct-client count is small, and the online sequencer
/// runs this sweep for every candidate-batch member on every pending-set
/// change — per-member hashing was the last hash cost on that path.
///
/// # Panics
///
/// Same contract as [`batch_emission_time`].
pub fn batch_emission_time_over(
    registry: &DistributionRegistry,
    members: impl Iterator<Item = (ClientId, f64)>,
    p_safe: f64,
) -> f64 {
    let mut margins: Vec<(ClientId, f64)> = Vec::new();
    let mut latest = f64::NEG_INFINITY;
    let mut any = false;
    for (client, timestamp) in members {
        any = true;
        let margin = match margins.iter().find(|&&(c, _)| c == client) {
            Some(&(_, m)) => m,
            None => {
                let m = registry
                    .safe_margin(client, p_safe)
                    .unwrap_or_else(|_| panic!("no distribution for {client}"));
                margins.push((client, m));
                m
            }
        };
        latest = latest.max(timestamp - margin);
    }
    assert!(any, "cannot compute emission time of an empty batch");
    latest
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{ClientId, MessageId};
    use tommy_stats::erf::std_normal_inv_cdf;

    #[test]
    fn gaussian_safe_time_matches_analytic_form() {
        // δ ~ N(0, σ²): T^F = T + σ·z_{p_safe}.
        let sigma = 10.0;
        let dist = OffsetDistribution::gaussian(0.0, sigma);
        let p_safe = 0.999;
        let tf = safe_emission_time(&dist, 100.0, p_safe);
        let expected = 100.0 + sigma * std_normal_inv_cdf(p_safe);
        assert!((tf - expected).abs() < 1e-6, "tf = {tf}, expected {expected}");
    }

    #[test]
    fn higher_p_safe_waits_longer() {
        let dist = OffsetDistribution::gaussian(0.0, 5.0);
        let t90 = safe_emission_time(&dist, 0.0, 0.9);
        let t99 = safe_emission_time(&dist, 0.0, 0.99);
        let t999 = safe_emission_time(&dist, 0.0, 0.999);
        assert!(t90 < t99 && t99 < t999);
    }

    #[test]
    fn mean_offset_shifts_safe_time() {
        // A clock that runs ahead (positive mean offset) means the true time
        // is earlier than the timestamp, so the sequencer needs to wait less.
        let ahead = OffsetDistribution::gaussian(20.0, 1.0);
        let behind = OffsetDistribution::gaussian(-20.0, 1.0);
        let t_ahead = safe_emission_time(&ahead, 100.0, 0.99);
        let t_behind = safe_emission_time(&behind, 100.0, 0.99);
        assert!(t_ahead < t_behind);
        assert!(t_ahead < 100.0); // can even be before the raw timestamp
        assert!(t_behind > 100.0);
    }

    #[test]
    fn bisect_agrees_with_quantile_form() {
        for dist in [
            OffsetDistribution::gaussian(2.0, 7.0),
            OffsetDistribution::laplace(-1.0, 4.0),
            OffsetDistribution::shifted_log_normal(-2.0, 1.0, 0.5),
            OffsetDistribution::uniform(-10.0, 30.0),
        ] {
            for p_safe in [0.9, 0.99, 0.999] {
                let a = safe_emission_time(&dist, 50.0, p_safe);
                let b = safe_emission_time_bisect(&dist, 50.0, p_safe);
                assert!(
                    (a - b).abs() < 1e-3,
                    "{dist:?} p_safe {p_safe}: quantile {a} vs bisect {b}"
                );
            }
        }
    }

    #[test]
    fn safe_time_actually_achieves_the_confidence() {
        let dist = OffsetDistribution::laplace(3.0, 6.0);
        let p_safe = 0.995;
        let tf = safe_emission_time(&dist, 200.0, p_safe);
        // P(T* < tf) = P(δ > 200 − tf) = 1 − F(200 − tf)
        use tommy_stats::distribution::Distribution as _;
        let achieved = 1.0 - dist.cdf(200.0 - tf);
        assert!(achieved >= p_safe - 1e-6, "achieved {achieved}");
    }

    #[test]
    fn batch_emission_time_is_max_of_members() {
        let mut registry = DistributionRegistry::new();
        registry.register(ClientId(0), OffsetDistribution::gaussian(0.0, 1.0));
        registry.register(ClientId(1), OffsetDistribution::gaussian(0.0, 50.0));
        let batch = vec![
            Message::new(MessageId(0), ClientId(0), 100.0),
            Message::new(MessageId(1), ClientId(1), 100.0),
        ];
        let tb = batch_emission_time(&registry, &batch, 0.999);
        let tf_narrow = safe_emission_time(&OffsetDistribution::gaussian(0.0, 1.0), 100.0, 0.999);
        let tf_wide = safe_emission_time(&OffsetDistribution::gaussian(0.0, 50.0), 100.0, 0.999);
        assert!((tb - tf_wide).abs() < 1e-9);
        assert!(tb > tf_narrow);
    }

    #[test]
    fn batch_emission_time_is_bit_identical_to_per_member_form() {
        let mut registry = DistributionRegistry::new();
        registry.register(ClientId(0), OffsetDistribution::gaussian(1.0, 3.0));
        registry.register(ClientId(1), OffsetDistribution::laplace(-0.5, 2.0));
        let batch: Vec<Message> = (0..10)
            .map(|i| Message::new(MessageId(i), ClientId((i % 2) as u32), 50.0 + i as f64 * 0.3))
            .collect();
        for p_safe in [0.9, 0.99, 0.999] {
            let fast = batch_emission_time(&registry, &batch, p_safe);
            let reference = batch
                .iter()
                .map(|m| {
                    safe_emission_time(registry.get(m.client).unwrap(), m.timestamp, p_safe)
                })
                .fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(fast.to_bits(), reference.to_bits(), "p_safe {p_safe}");
        }
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_rejected() {
        let registry = DistributionRegistry::new();
        batch_emission_time(&registry, &[], 0.999);
    }

    #[test]
    #[should_panic(expected = "p_safe must be in (0.5, 1.0)")]
    fn invalid_p_safe_rejected() {
        safe_emission_time(&OffsetDistribution::gaussian(0.0, 1.0), 0.0, 1.0);
    }
}
