//! Sharded, multi-core online sequencing.
//!
//! The single-engine [`OnlineSequencer`] is one core's worth of throughput.
//! This module partitions registered clients round-robin across `K`
//! per-shard engines (each a full [`OnlineSequencer`] — the shared
//! [`SequencingCore`](crate::sequencer::SequencingCore) tail plus the
//! sparse fast path), runs their event queues on a scoped thread pool, and
//! merges their locally-fair candidate batches into one global emission
//! order through a **watermark-driven k-way merge** on margin-adjusted
//! keys.
//!
//! ## Partition rule
//!
//! Clients are assigned to shards round-robin in registration order —
//! deterministic and balanced for a uniform census. Every event (submit,
//! heartbeat) routes to its client's owner shard; shards never share
//! pending state, so queue processing is embarrassingly parallel and the
//! emitted output is bit-identical regardless of thread interleaving.
//!
//! ## Merge watermark invariant
//!
//! Each message gets a *margin-adjusted key* `key(m) = timestamp −
//! μ_client` — the same quantity the sparse engine's treap orders by. For
//! each shard the combiner maintains a **frontier**: the minimum over (a)
//! the keys of the shard's still-pending messages, (b) the keys of its
//! staged (emitted-but-unreleased) batches, and (c) per client,
//! `latest observed timestamp − μ` (`−∞` until the client is first heard
//! from — the cross-shard restatement of §3.5's completeness rule). Since
//! per-client timestamps are monotone *by enforcement* (non-monotone
//! submissions are rejected), every future message a shard can still
//! produce has a key at or above its frontier.
//!
//! A staged batch is **released** only once every other shard's frontier
//! has passed `max_key − w`, where `w = z_θ · √2 · σ_min` mirrors the
//! sparse engine's pruning window with the *smallest* registered standard
//! deviation (and collapses to `0` the moment any non-closed-form client
//! registers). For Gaussian censuses this makes cross-shard confident
//! inversions impossible by construction: any message released later from
//! another shard has `key_j ≥ key_i − w`, and
//! `w ≤ z_θ·√(σ_i² + σ_j²)` for every pair, so
//! `p(j ≺ i) = Φ((key_i − key_j)/√(σ_i² + σ_j²)) ≤ Φ(z_θ) = θ` — never
//! out of margin. For mixed censuses the bound is conservative (`w = 0`)
//! within the key model; the residual fairness gap is *measured* via the
//! cross-shard RAS (`tommy-metrics`), not assumed.
//!
//! Two staged heads whose key ranges overlap within `w` would block each
//! other forever under a naive rule; the combiner instead **fuses** them
//! into one global batch (rank-equal, an indifference in RAS terms) — the
//! batch-level analogue of the Appendix C closure rule. With `shards = 1`
//! the combiner is a passthrough and the output is bit-identical to a
//! plain [`OnlineSequencer`] fed the same calls, by construction.
//!
//! ## Counters
//!
//! The combiner's work rides the three [`OnlineStats`] fields added for
//! it: `shard_merges` (per-shard batches released through the merge, fused
//! releases counting every member), `cross_shard_evals`
//! (frontier-versus-horizon comparisons — the merge's unit of work), and
//! `shard_imbalance` (peak spread between the most- and least-loaded
//! shards' routed message counts).

use crate::batching::FairOrder;
use crate::config::{resolve_shards, SequencerConfig};
use crate::error::CoreError;
use crate::message::{ClientId, Message, MessageId};
use crate::sequencer::online::{EmittedBatch, OnlineSequencer, OnlineStats};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use tommy_stats::distribution::{Distribution, OffsetDistribution};
use tommy_stats::erf::std_normal_inv_cdf;

/// Spawn scoped worker threads only when at least this many events are
/// queued across shards — below it, per-drive thread setup costs more than
/// the work it parallelizes. Output is bit-identical either way.
const SPAWN_THRESHOLD: usize = 32;

/// Map a finite `f64` to bits whose unsigned order matches
/// [`f64::total_cmp`] — the deterministic key order the merge sorts by.
fn key_bits(x: f64) -> u64 {
    let b = x.to_bits();
    if b & (1 << 63) != 0 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// One queued, not-yet-processed event for a shard.
#[derive(Debug, Clone)]
enum ShardEvent {
    /// `(message, arrival_time)`.
    Submit(Message, f64),
    /// `(client, timestamp, arrival_time)`.
    Heartbeat(ClientId, f64, f64),
    /// Clock advance.
    Tick(f64),
}

/// What the wrapper knows about one registered client.
#[derive(Debug, Clone, Copy)]
struct ClientInfo {
    /// Mean of the client's offset distribution (the key adjustment).
    mean: f64,
    /// Largest accepted timestamp (message or heartbeat); `−∞` until the
    /// client is first heard from.
    floor: f64,
    /// Retired clients stop constraining the frontier, mirroring
    /// [`OnlineSequencer::retire_client`].
    retired: bool,
}

/// A batch a shard has emitted that the combiner has not yet released.
#[derive(Debug, Clone)]
struct StagedBatch {
    batch: EmittedBatch,
    /// Margin-adjusted key of each batch member (parallel to
    /// `batch.messages`).
    keys: Vec<f64>,
    min_key: f64,
    max_key: f64,
}

/// One shard: a full single-engine sequencer plus the bookkeeping the
/// combiner's frontier needs. Queue processing touches only `&mut self`,
/// so shards run on independent scoped threads.
#[derive(Debug)]
struct Shard {
    seq: OnlineSequencer,
    queue: VecDeque<ShardEvent>,
    /// Emitted-but-unreleased batches, in shard emission (FIFO) order.
    out: VecDeque<StagedBatch>,
    clients: HashMap<ClientId, ClientInfo>,
    /// Multiset of pending-message keys: total-order bits → `(key, count)`.
    pending_keys: BTreeMap<u64, (f64, usize)>,
    /// Submit-time key per pending message (consumed at emission).
    key_of: HashMap<MessageId, f64>,
    /// Cumulative accepted messages (the imbalance numerator).
    routed: usize,
    /// Events the inner sequencer rejected (drained by the wrapper).
    rejections: Vec<CoreError>,
}

impl Shard {
    fn new(config: SequencerConfig) -> Self {
        Shard {
            seq: OnlineSequencer::new(config),
            queue: VecDeque::new(),
            out: VecDeque::new(),
            clients: HashMap::new(),
            pending_keys: BTreeMap::new(),
            key_of: HashMap::new(),
            routed: 0,
            rejections: Vec::new(),
        }
    }

    fn add_pending_key(&mut self, key: f64) {
        let entry = self.pending_keys.entry(key_bits(key)).or_insert((key, 0));
        entry.1 += 1;
    }

    fn remove_pending_key(&mut self, key: f64) {
        let bits = key_bits(key);
        if let Some(entry) = self.pending_keys.get_mut(&bits) {
            entry.1 -= 1;
            if entry.1 == 0 {
                self.pending_keys.remove(&bits);
            }
        }
    }

    /// Drain everything the inner sequencer emitted since the last drain
    /// into the staged-output FIFO, consuming the members' pending keys.
    fn stage_emissions(&mut self) {
        for batch in self.seq.take_emitted() {
            let mut keys = Vec::with_capacity(batch.messages.len());
            let mut min_key = f64::INFINITY;
            let mut max_key = f64::NEG_INFINITY;
            for m in &batch.messages {
                let key = self.key_of.remove(&m.id).unwrap_or_else(|| {
                    let mean = self.clients.get(&m.client).map_or(0.0, |c| c.mean);
                    m.timestamp - mean
                });
                self.remove_pending_key(key);
                min_key = min_key.min(key);
                max_key = max_key.max(key);
                keys.push(key);
            }
            self.out.push_back(StagedBatch {
                batch,
                keys,
                min_key,
                max_key,
            });
        }
    }

    /// Apply every queued event, in order, staging any emissions.
    fn process(&mut self) {
        while let Some(event) = self.queue.pop_front() {
            match event {
                ShardEvent::Submit(message, arrival) => {
                    let key = message.timestamp
                        - self.clients.get(&message.client).map_or(0.0, |c| c.mean);
                    match self.seq.submit(message.clone(), arrival) {
                        Ok(_) => {
                            if let Some(info) = self.clients.get_mut(&message.client) {
                                info.floor = info.floor.max(message.timestamp);
                            }
                            self.key_of.insert(message.id, key);
                            self.add_pending_key(key);
                            self.routed += 1;
                            self.stage_emissions();
                        }
                        Err(e) => self.rejections.push(e),
                    }
                }
                ShardEvent::Heartbeat(client, timestamp, arrival) => {
                    match self.seq.heartbeat(client, timestamp, arrival) {
                        Ok(_) => {
                            if let Some(info) = self.clients.get_mut(&client) {
                                info.floor = info.floor.max(timestamp);
                            }
                            self.stage_emissions();
                        }
                        Err(e) => self.rejections.push(e),
                    }
                }
                ShardEvent::Tick(now) => {
                    self.seq.tick(now);
                    self.stage_emissions();
                }
            }
        }
    }

    /// The least key any future (or still-held) message of this shard can
    /// carry, skipping the first `skip_staged` staged batches (the ones a
    /// release under evaluation would take with it). `+∞` for a shard that
    /// can produce nothing, `−∞` while any active client is unheard.
    fn frontier(&self, skip_staged: usize) -> f64 {
        let mut f = f64::INFINITY;
        for info in self.clients.values() {
            if info.retired {
                continue;
            }
            f = f.min(info.floor - info.mean);
        }
        if let Some((_, &(key, _))) = self.pending_keys.iter().next() {
            f = f.min(key);
        }
        for staged in self.out.iter().skip(skip_staged) {
            f = f.min(staged.min_key);
        }
        f
    }
}

/// The sharded online sequencer: `K` per-shard [`OnlineSequencer`]s behind
/// one combiner (see the module docs for the partition rule and the merge
/// watermark invariant).
///
/// Events are *enqueued* by [`submit`](Self::submit) /
/// [`heartbeat`](Self::heartbeat) and *applied* by
/// [`drive`](Self::drive) (or [`tick`](Self::tick)), which processes every
/// shard's queue — on scoped worker threads when there is enough queued
/// work — and then runs the single-threaded merge. Because shards share no
/// state, the released output is a pure function of the event sequence and
/// the drive cadence, independent of thread scheduling (the
/// seed-stability property `tests/sharded_equivalence.rs` pins).
///
/// # Example
///
/// ```
/// use tommy_core::prelude::*;
///
/// let mut seq = ShardedSequencer::new(SequencerConfig::default().with_shards(2));
/// seq.register_client(ClientId(0), OffsetDistribution::gaussian(0.0, 1.0));
/// seq.register_client(ClientId(1), OffsetDistribution::gaussian(0.0, 1.0));
/// seq.submit(Message::new(MessageId(0), ClientId(0), 100.0), 100.5).unwrap();
/// assert!(seq.drive(100.5).is_empty()); // client 1 unheard: frontier −∞
/// seq.heartbeat(ClientId(0), 150.0, 150.0).unwrap();
/// seq.heartbeat(ClientId(1), 150.0, 150.0).unwrap();
/// let released = seq.drive(150.0);
/// assert_eq!(released.len(), 1);
/// assert_eq!(released[0].messages[0].id, MessageId(0));
/// ```
#[derive(Debug)]
pub struct ShardedSequencer {
    config: SequencerConfig,
    shards: Vec<Shard>,
    assignment: HashMap<ClientId, usize>,
    next_shard: usize,
    /// Global duplicate detection — shards only see their own ids, so the
    /// wrapper rejects cross-shard duplicates synchronously, exactly where
    /// the single engine would.
    seen_ids: HashSet<MessageId>,
    /// Smallest Gaussian σ registered so far (the merge-window scale).
    min_sigma: Option<f64>,
    /// Any non-closed-form registration collapses the merge window to 0.
    has_non_gaussian: bool,
    /// Released batches not yet drained via [`take_emitted`](Self::take_emitted).
    released: Vec<EmittedBatch>,
    /// Released batch groups (for [`emitted_order`](Self::emitted_order));
    /// only kept under [`SequencerConfig::retain_history`].
    released_groups: Vec<Vec<MessageId>>,
    global_rank: usize,
    released_messages: usize,
    max_pending: usize,
    shard_merges: u64,
    cross_shard_evals: u64,
    shard_imbalance: usize,
    now: f64,
}

impl ShardedSequencer {
    /// Create a sharded sequencer with the shard count
    /// [`SequencerConfig::shards`] resolves to (`0` = auto-detect).
    pub fn new(config: SequencerConfig) -> Self {
        let k = resolve_shards(config.shards).max(1);
        ShardedSequencer {
            config,
            shards: (0..k).map(|_| Shard::new(config)).collect(),
            assignment: HashMap::new(),
            next_shard: 0,
            seen_ids: HashSet::new(),
            min_sigma: None,
            has_non_gaussian: false,
            released: Vec::new(),
            released_groups: Vec::new(),
            global_rank: 0,
            released_messages: 0,
            max_pending: 0,
            shard_merges: 0,
            cross_shard_evals: 0,
            shard_imbalance: 0,
            now: f64::NEG_INFINITY,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SequencerConfig {
        &self.config
    }

    /// The resolved shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a client is assigned to, if registered.
    pub fn shard_of(&self, client: ClientId) -> Option<usize> {
        self.assignment.get(&client).copied()
    }

    /// Register a client, assigning it round-robin to a shard (first
    /// registration) and registering it on that shard's engine.
    /// Registration is order-sensitive (it can re-key a shard's pending
    /// set), so the owner shard's queue is applied first.
    pub fn register_client(&mut self, client: ClientId, distribution: OffsetDistribution) {
        let k = self.shards.len();
        let shard_idx = *self.assignment.entry(client).or_insert_with(|| {
            let i = self.next_shard;
            self.next_shard = (self.next_shard + 1) % k;
            i
        });
        match distribution.as_gaussian() {
            Some(g) => {
                let sigma = g.std_dev();
                self.min_sigma = Some(self.min_sigma.map_or(sigma, |s| s.min(sigma)));
            }
            None => self.has_non_gaussian = true,
        }
        let shard = &mut self.shards[shard_idx];
        shard.process();
        let mean = distribution.mean();
        shard
            .clients
            .entry(client)
            .and_modify(|info| info.mean = mean)
            .or_insert(ClientInfo {
                mean,
                floor: f64::NEG_INFINITY,
                retired: false,
            });
        shard.seq.register_client(client, distribution);
    }

    /// Mark a client as failed: it stops constraining both its shard's
    /// watermark and the cross-shard frontier (the same liveness trade-off
    /// as [`OnlineSequencer::retire_client`]).
    pub fn retire_client(&mut self, client: ClientId) {
        let Some(&shard_idx) = self.assignment.get(&client) else {
            return;
        };
        let shard = &mut self.shards[shard_idx];
        shard.process();
        if let Some(info) = shard.clients.get_mut(&client) {
            info.retired = true;
        }
        shard.seq.retire_client(client);
    }

    /// Enqueue a message to its owner shard. Unknown clients and duplicate
    /// ids are rejected synchronously (mirroring the single engine); other
    /// rejections (e.g. a non-monotone timestamp) surface at
    /// [`drive`](Self::drive) via [`take_rejections`](Self::take_rejections).
    pub fn submit(&mut self, message: Message, arrival_time: f64) -> Result<(), CoreError> {
        let Some(&shard_idx) = self.assignment.get(&message.client) else {
            return Err(CoreError::UnknownClient(message.client));
        };
        if !self.seen_ids.insert(message.id) {
            return Err(CoreError::DuplicateMessage(message.id));
        }
        self.shards[shard_idx]
            .queue
            .push_back(ShardEvent::Submit(message, arrival_time));
        Ok(())
    }

    /// Enqueue a heartbeat to its client's owner shard.
    pub fn heartbeat(
        &mut self,
        client: ClientId,
        timestamp: f64,
        arrival_time: f64,
    ) -> Result<(), CoreError> {
        let Some(&shard_idx) = self.assignment.get(&client) else {
            return Err(CoreError::UnknownClient(client));
        };
        self.shards[shard_idx]
            .queue
            .push_back(ShardEvent::Heartbeat(client, timestamp, arrival_time));
        Ok(())
    }

    /// Enqueue a clock advance to every shard, then drive.
    pub fn tick(&mut self, now: f64) -> Vec<EmittedBatch> {
        for shard in &mut self.shards {
            shard.queue.push_back(ShardEvent::Tick(now));
        }
        self.drive(now)
    }

    /// Apply every queued event — on scoped worker threads when more than
    /// one shard has enough queued work — then merge, returning the newly
    /// released batches (also buffered for [`take_emitted`](Self::take_emitted)).
    pub fn drive(&mut self, now: f64) -> Vec<EmittedBatch> {
        if now > self.now {
            self.now = now;
        }
        let busy = self.shards.iter().filter(|s| !s.queue.is_empty()).count();
        let queued: usize = self.shards.iter().map(|s| s.queue.len()).sum();
        if busy > 1 && queued >= SPAWN_THRESHOLD {
            std::thread::scope(|scope| {
                for shard in self.shards.iter_mut() {
                    if !shard.queue.is_empty() {
                        scope.spawn(move || shard.process());
                    }
                }
            });
        } else {
            for shard in &mut self.shards {
                shard.process();
            }
        }
        self.finish_drive()
    }

    /// [`drive`](Self::drive) with the shards applied *serially* in the
    /// given order — the schedule-permutation surface
    /// `tests/sharded_equivalence.rs` uses to pin that the combiner's
    /// watermark handoff is insensitive to shard scheduling.
    ///
    /// # Panics
    ///
    /// Panics unless `order` is a permutation of `0..shard_count()`.
    pub fn drive_with_shard_order(&mut self, now: f64, order: &[usize]) -> Vec<EmittedBatch> {
        let mut seen = vec![false; self.shards.len()];
        assert_eq!(order.len(), self.shards.len(), "not a shard permutation");
        for &i in order {
            assert!(
                i < self.shards.len() && !seen[i],
                "not a shard permutation"
            );
            seen[i] = true;
        }
        if now > self.now {
            self.now = now;
        }
        for &i in order {
            self.shards[i].process();
        }
        self.finish_drive()
    }

    /// Post-processing shared by every drive variant: sample the global
    /// counters, run the merge, buffer and return what it released.
    fn finish_drive(&mut self) -> Vec<EmittedBatch> {
        let pending: usize = self.shards.iter().map(|s| s.seq.pending_len()).sum();
        self.max_pending = self.max_pending.max(pending);
        if self.shards.len() > 1 {
            let routed_max = self.shards.iter().map(|s| s.routed).max().unwrap_or(0);
            let routed_min = self.shards.iter().map(|s| s.routed).min().unwrap_or(0);
            self.shard_imbalance = self.shard_imbalance.max(routed_max - routed_min);
        }
        let released = self.merge();
        self.record_released(&released);
        released
    }

    /// Record released batches into the drain buffer and the run counters.
    fn record_released(&mut self, released: &[EmittedBatch]) {
        for batch in released {
            self.released_messages += batch.messages.len();
            if self.config.retain_history {
                self.released_groups.push(batch.message_ids());
            }
        }
        self.released.extend_from_slice(released);
    }

    /// The cross-shard release margin `w = z_θ · √2 · σ_min` (0 for mixed
    /// censuses) — see the module docs, "Merge watermark invariant".
    fn merge_window(&self) -> f64 {
        if self.has_non_gaussian {
            return 0.0;
        }
        let Some(sigma) = self.min_sigma else {
            return 0.0;
        };
        std_normal_inv_cdf(self.config.threshold) * std::f64::consts::SQRT_2 * sigma
    }

    /// The watermark-driven k-way merge: release staged batches whose key
    /// horizon every other shard's frontier has passed, fusing heads whose
    /// key ranges overlap within the margin (see the module docs).
    fn merge(&mut self) -> Vec<EmittedBatch> {
        let mut released = Vec::new();
        if self.shards.len() == 1 {
            // Single shard: a passthrough — every staged batch releases in
            // shard order, bit-identical to the single-engine output.
            while let Some(staged) = self.shards[0].out.pop_front() {
                let mut batch = staged.batch;
                batch.rank = self.global_rank;
                self.global_rank += 1;
                released.push(batch);
            }
            return released;
        }
        let w = self.merge_window();
        // Seed each round with the staged head carrying the globally
        // smallest min key.
        while let Some(seed) = self
            .shards
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.out.is_empty())
            .min_by(|(a, sa), (b, sb)| {
                sa.out[0]
                    .min_key
                    .total_cmp(&sb.out[0].min_key)
                    .then(a.cmp(b))
            })
            .map(|(i, _)| i)
        {
            // Closure: grow the release group over staged batches whose
            // range overlaps the group horizon within the margin. `take[i]`
            // is the FIFO prefix of shard i's staged batches in the group.
            let mut take = vec![0usize; self.shards.len()];
            take[seed] = 1;
            let mut group_max = self.shards[seed].out[0].max_key;
            loop {
                let mut changed = false;
                for (i, shard) in self.shards.iter().enumerate() {
                    let Some(next) = shard.out.get(take[i]) else {
                        continue;
                    };
                    self.cross_shard_evals += 1;
                    if next.min_key < group_max - w {
                        take[i] += 1;
                        group_max = group_max.max(next.max_key);
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            // Release condition: every shard's *remaining* frontier (after
            // the group leaves) must have passed the group horizon.
            let mut ok = true;
            for (i, shard) in self.shards.iter().enumerate() {
                self.cross_shard_evals += 1;
                if shard.frontier(take[i]) < group_max - w {
                    ok = false;
                    break;
                }
            }
            if !ok {
                break;
            }
            released.push(self.release_group(&take));
        }
        released
    }

    /// Pop the group's staged batches and fuse them into one released
    /// batch: a single-member group keeps its shard batch verbatim (rank
    /// aside); a fused group concatenates members ordered by
    /// `(key, shard, position)` with the latest emission metadata.
    fn release_group(&mut self, take: &[usize]) -> EmittedBatch {
        let mut parts: Vec<(usize, StagedBatch)> = Vec::new();
        for (i, &count) in take.iter().enumerate() {
            for _ in 0..count {
                let staged = self.shards[i].out.pop_front().expect("take within bounds");
                parts.push((i, staged));
            }
        }
        self.shard_merges += parts.len() as u64;
        let rank = self.global_rank;
        self.global_rank += 1;
        if parts.len() == 1 {
            let (_, staged) = parts.pop().expect("one part");
            let mut batch = staged.batch;
            batch.rank = rank;
            return batch;
        }
        let mut members: Vec<(u64, usize, usize, Message)> = Vec::new();
        let mut emitted_at = f64::NEG_INFINITY;
        let mut safe_after = f64::NEG_INFINITY;
        for (shard, staged) in parts {
            emitted_at = emitted_at.max(staged.batch.emitted_at);
            safe_after = safe_after.max(staged.batch.safe_after);
            for (pos, (message, &key)) in staged
                .batch
                .messages
                .into_iter()
                .zip(staged.keys.iter())
                .enumerate()
            {
                members.push((key_bits(key), shard, pos, message));
            }
        }
        members.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        EmittedBatch {
            rank,
            messages: members.into_iter().map(|(_, _, _, m)| m).collect(),
            emitted_at,
            safe_after,
        }
    }

    /// Drain every shard (queued events, then the inner `flush`), release
    /// what the watermark rule allows, then force-release the rest in
    /// `(min_key, shard)` order — the sharded analogue of
    /// [`OnlineSequencer::flush`].
    pub fn flush(&mut self) -> Vec<EmittedBatch> {
        for shard in &mut self.shards {
            shard.process();
            shard.seq.flush();
            shard.stage_emissions();
        }
        let mut released = self.merge();
        while let Some(best) = self
            .shards
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.out.is_empty())
            .min_by(|(a, sa), (b, sb)| {
                sa.out[0]
                    .min_key
                    .total_cmp(&sb.out[0].min_key)
                    .then(a.cmp(b))
            })
            .map(|(i, _)| i)
        {
            let staged = self.shards[best].out.pop_front().expect("non-empty");
            let mut batch = staged.batch;
            batch.rank = self.global_rank;
            self.global_rank += 1;
            released.push(batch);
        }
        let pending: usize = self.shards.iter().map(|s| s.seq.pending_len()).sum();
        self.max_pending = self.max_pending.max(pending);
        self.record_released(&released);
        released
    }

    /// Total messages pending across every shard.
    pub fn pending_len(&self) -> usize {
        self.shards.iter().map(|s| s.seq.pending_len()).sum()
    }

    /// The wrapper's clock: the largest time passed to any drive/tick.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Batches released and not yet drained.
    pub fn emitted(&self) -> &[EmittedBatch] {
        &self.released
    }

    /// Drain the released-batch buffer.
    pub fn take_emitted(&mut self) -> Vec<EmittedBatch> {
        std::mem::take(&mut self.released)
    }

    /// The global released order as a [`FairOrder`] (for RAS computation).
    /// Empty under [`SequencerConfig::with_retain_history`]`(false)`.
    /// Unlike [`OnlineSequencer::emitted_order`] this is built on demand —
    /// the combiner does not maintain a rank index on the hot path.
    pub fn emitted_order(&self) -> FairOrder {
        FairOrder::from_groups(self.released_groups.clone())
    }

    /// Inner-sequencer rejections surfaced by queue processing (unknown
    /// client and duplicate ids are instead rejected synchronously at
    /// [`submit`](Self::submit)). Drains the buffer.
    pub fn take_rejections(&mut self) -> Vec<CoreError> {
        let mut all = Vec::new();
        for shard in &mut self.shards {
            all.append(&mut shard.rejections);
        }
        all
    }

    /// One shard's own counters (shard-local view; the combiner fields are
    /// zero here — they live on the aggregate).
    pub fn shard_stats(&self, shard: usize) -> OnlineStats {
        self.shards[shard].seq.stats()
    }

    /// Aggregated counters. With one shard this is exactly the inner
    /// engine's stats (bit-identical to a single-engine run). With more,
    /// summable counters are summed, `peak_collusion_score` is the max,
    /// `batches_emitted` / `messages_emitted` count *released* output,
    /// `max_pending` is the peak global pending total sampled at drive
    /// boundaries, and the three combiner counters are the wrapper's own.
    pub fn stats(&self) -> OnlineStats {
        if self.shards.len() == 1 {
            return self.shards[0].seq.stats();
        }
        let mut agg = OnlineStats::default();
        for shard in &self.shards {
            let s = shard.seq.stats();
            agg.fairness_violations += s.fairness_violations;
            agg.total_emission_latency += s.total_emission_latency;
            agg.quarantines += s.quarantines;
            agg.reestimations += s.reestimations;
            agg.margin_fallbacks += s.margin_fallbacks;
            agg.gaps_detected += s.gaps_detected;
            agg.dupes_dropped += s.dupes_dropped;
            agg.reorders_buffered += s.reorders_buffered;
            agg.retransmit_requests += s.retransmit_requests;
            agg.sequences_skipped += s.sequences_skipped;
            agg.evictions += s.evictions;
            agg.rejoins += s.rejoins;
            agg.watermark_stall_ticks += s.watermark_stall_ticks;
            agg.collusion_checks += s.collusion_checks;
            agg.collusion_quarantines += s.collusion_quarantines;
            agg.peak_collusion_score = agg.peak_collusion_score.max(s.peak_collusion_score);
            agg.lazy_evals += s.lazy_evals;
            agg.dense_columns_avoided += s.dense_columns_avoided;
            agg.mode_switches += s.mode_switches;
            agg.peak_matrix_bytes += s.peak_matrix_bytes;
            agg.peak_index_bytes += s.peak_index_bytes;
        }
        agg.batches_emitted = self.global_rank;
        agg.messages_emitted = self.released_messages;
        agg.max_pending = self.max_pending;
        agg.shard_merges = self.shard_merges;
        agg.cross_shard_evals = self.cross_shard_evals;
        agg.shard_imbalance = self.shard_imbalance;
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_clients(n: u32, sigma: f64) -> Vec<(ClientId, OffsetDistribution)> {
        (0..n)
            .map(|c| (ClientId(c), OffsetDistribution::gaussian(0.0, sigma)))
            .collect()
    }

    /// A well-separated stream: client `i mod n` speaks at `t = 10·i`, all
    /// other clients heartbeat right after, so batches flow continuously.
    fn run_stream(seq: &mut ShardedSequencer, clients: u32, messages: u64) -> Vec<EmittedBatch> {
        for (c, d) in gaussian_clients(clients, 2.0) {
            seq.register_client(c, d);
        }
        let mut out = Vec::new();
        for i in 0..messages {
            let t = 10.0 * i as f64;
            let client = ClientId((i % clients as u64) as u32);
            seq.submit(Message::new(MessageId(i), client, t), t + 1.0)
                .unwrap();
            out.extend(seq.drive(t + 1.0));
            for c in 0..clients {
                if c != client.0 {
                    seq.heartbeat(ClientId(c), t, t + 1.0).unwrap();
                }
            }
            out.extend(seq.drive(t + 1.0));
        }
        let horizon = 10.0 * messages as f64 + 1e4;
        for c in 0..clients {
            seq.heartbeat(ClientId(c), horizon, horizon).unwrap();
        }
        out.extend(seq.drive(horizon));
        out.extend(seq.tick(horizon + 1.0));
        out.extend(seq.flush());
        assert!(seq.take_rejections().is_empty());
        out
    }

    fn reference_stream(clients: u32, messages: u64) -> Vec<EmittedBatch> {
        let mut seq = OnlineSequencer::new(SequencerConfig::default());
        for (c, d) in gaussian_clients(clients, 2.0) {
            seq.register_client(c, d);
        }
        let mut out = Vec::new();
        for i in 0..messages {
            let t = 10.0 * i as f64;
            let client = ClientId((i % clients as u64) as u32);
            out.extend(
                seq.submit(Message::new(MessageId(i), client, t), t + 1.0)
                    .unwrap(),
            );
            for c in 0..clients {
                if c != client.0 {
                    out.extend(seq.heartbeat(ClientId(c), t, t + 1.0).unwrap());
                }
            }
        }
        let horizon = 10.0 * messages as f64 + 1e4;
        for c in 0..clients {
            out.extend(seq.heartbeat(ClientId(c), horizon, horizon).unwrap());
        }
        out.extend(seq.tick(horizon + 1.0));
        out.extend(seq.flush());
        out
    }

    #[test]
    fn round_robin_assignment() {
        let mut seq = ShardedSequencer::new(SequencerConfig::default().with_shards(3));
        for (c, d) in gaussian_clients(7, 1.0) {
            seq.register_client(c, d);
        }
        for c in 0..7 {
            assert_eq!(seq.shard_of(ClientId(c)), Some(c as usize % 3));
        }
        // Re-registration keeps the assignment.
        seq.register_client(ClientId(1), OffsetDistribution::gaussian(0.0, 3.0));
        assert_eq!(seq.shard_of(ClientId(1)), Some(1));
        assert_eq!(seq.shard_count(), 3);
    }

    #[test]
    fn single_shard_is_bit_identical_to_single_engine() {
        let mut sharded = ShardedSequencer::new(SequencerConfig::default().with_shards(1));
        let got = run_stream(&mut sharded, 4, 40);
        let want = reference_stream(4, 40);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.rank, w.rank);
            assert_eq!(g.messages, w.messages);
            assert_eq!(g.emitted_at.to_bits(), w.emitted_at.to_bits());
            assert_eq!(g.safe_after.to_bits(), w.safe_after.to_bits());
        }
        // Stats are the inner engine's verbatim; combiner counters stay 0.
        let stats = sharded.stats();
        assert_eq!(stats.shard_merges, 0);
        assert_eq!(stats.cross_shard_evals, 0);
        assert_eq!(stats.shard_imbalance, 0);
    }

    #[test]
    fn multi_shard_emits_same_message_set_in_key_order() {
        for shards in [2usize, 4] {
            let mut sharded =
                ShardedSequencer::new(SequencerConfig::default().with_shards(shards));
            let released = run_stream(&mut sharded, 4, 40);
            let mut ids: Vec<u64> = released
                .iter()
                .flat_map(|b| b.messages.iter().map(|m| m.id.0))
                .collect();
            assert_eq!(ids.len(), 40, "no loss, no duplication at K={shards}");
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 40);
            // Ranks are dense and ascending.
            for (i, b) in released.iter().enumerate() {
                assert_eq!(b.rank, i);
            }
            // Per-client emission order follows per-client timestamps.
            let mut last_ts: HashMap<ClientId, f64> = HashMap::new();
            for b in &released {
                for m in &b.messages {
                    let floor = last_ts.entry(m.client).or_insert(f64::NEG_INFINITY);
                    assert!(m.timestamp >= *floor, "client emission monotonicity");
                    *floor = m.timestamp;
                }
            }
            let stats = sharded.stats();
            assert_eq!(stats.messages_emitted, 40);
            assert!(stats.shard_merges > 0);
            assert!(stats.cross_shard_evals > 0);
        }
    }

    #[test]
    fn unheard_client_on_another_shard_blocks_release() {
        let mut seq = ShardedSequencer::new(SequencerConfig::default().with_shards(2));
        for (c, d) in gaussian_clients(2, 1.0) {
            seq.register_client(c, d);
        }
        seq.submit(Message::new(MessageId(0), ClientId(0), 100.0), 100.5)
            .unwrap();
        assert!(seq.drive(100.5).is_empty());
        seq.heartbeat(ClientId(0), 200.0, 200.0).unwrap();
        // Shard 0's engine has emitted (its local watermark is complete),
        // but client 1 — on the other shard — has never been heard from.
        assert!(seq.drive(200.0).is_empty());
        seq.heartbeat(ClientId(1), 200.0, 200.0).unwrap();
        let released = seq.drive(200.0);
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].messages[0].id, MessageId(0));
    }

    #[test]
    fn retired_client_stops_constraining_the_frontier() {
        let mut seq = ShardedSequencer::new(SequencerConfig::default().with_shards(2));
        for (c, d) in gaussian_clients(2, 1.0) {
            seq.register_client(c, d);
        }
        seq.submit(Message::new(MessageId(0), ClientId(0), 100.0), 100.5)
            .unwrap();
        seq.heartbeat(ClientId(0), 200.0, 200.0).unwrap();
        assert!(seq.drive(200.0).is_empty());
        seq.retire_client(ClientId(1));
        assert_eq!(seq.drive(200.0).len(), 1);
    }

    #[test]
    fn duplicates_and_unknown_clients_rejected_synchronously() {
        let mut seq = ShardedSequencer::new(SequencerConfig::default().with_shards(2));
        for (c, d) in gaussian_clients(2, 1.0) {
            seq.register_client(c, d);
        }
        assert!(matches!(
            seq.submit(Message::new(MessageId(0), ClientId(9), 1.0), 1.0),
            Err(CoreError::UnknownClient(ClientId(9)))
        ));
        assert!(matches!(
            seq.heartbeat(ClientId(9), 1.0, 1.0),
            Err(CoreError::UnknownClient(ClientId(9)))
        ));
        seq.submit(Message::new(MessageId(0), ClientId(0), 1.0), 1.0)
            .unwrap();
        // A cross-shard duplicate: same id, different client (hence a
        // different shard) — the per-shard engines alone would accept it.
        assert!(matches!(
            seq.submit(Message::new(MessageId(0), ClientId(1), 2.0), 2.0),
            Err(CoreError::DuplicateMessage(MessageId(0)))
        ));
    }

    #[test]
    fn non_monotone_timestamp_surfaces_as_rejection() {
        let mut seq = ShardedSequencer::new(SequencerConfig::default().with_shards(2));
        for (c, d) in gaussian_clients(2, 1.0) {
            seq.register_client(c, d);
        }
        seq.submit(Message::new(MessageId(0), ClientId(0), 100.0), 100.0)
            .unwrap();
        seq.submit(Message::new(MessageId(1), ClientId(0), 50.0), 101.0)
            .unwrap();
        seq.drive(101.0);
        let rejections = seq.take_rejections();
        assert_eq!(rejections.len(), 1);
        assert!(matches!(
            rejections[0],
            CoreError::NonMonotoneTimestamp { .. }
        ));
        assert_eq!(seq.pending_len(), 1);
    }

    #[test]
    fn drive_order_does_not_change_output() {
        let orders: [[usize; 2]; 2] = [[0, 1], [1, 0]];
        let mut outputs = Vec::new();
        for order in orders {
            let mut seq = ShardedSequencer::new(SequencerConfig::default().with_shards(2));
            for (c, d) in gaussian_clients(4, 2.0) {
                seq.register_client(c, d);
            }
            let mut out = Vec::new();
            for i in 0..30u64 {
                let t = 5.0 * i as f64;
                let client = ClientId((i % 4) as u32);
                seq.submit(Message::new(MessageId(i), client, t), t + 1.0)
                    .unwrap();
                for c in 0..4 {
                    if c != client.0 {
                        seq.heartbeat(ClientId(c), t, t + 1.0).unwrap();
                    }
                }
                out.extend(seq.drive_with_shard_order(t + 1.0, &order));
            }
            for c in 0..4 {
                seq.heartbeat(ClientId(c), 1e6, 1e6).unwrap();
            }
            out.extend(seq.drive_with_shard_order(1e6, &order));
            out.extend(seq.flush());
            outputs.push(out);
        }
        assert_eq!(outputs[0], outputs[1]);
    }

    #[test]
    fn merge_window_matches_margin_formula() {
        let mut seq = ShardedSequencer::new(SequencerConfig::default().with_shards(2));
        seq.register_client(ClientId(0), OffsetDistribution::gaussian(0.0, 4.0));
        seq.register_client(ClientId(1), OffsetDistribution::gaussian(0.0, 2.0));
        let w = seq.merge_window();
        let z = std_normal_inv_cdf(seq.config().threshold);
        assert!((w - z * std::f64::consts::SQRT_2 * 2.0).abs() < 1e-12);
        // A non-closed-form registration collapses the window.
        seq.register_client(ClientId(2), OffsetDistribution::uniform(-1.0, 1.0));
        assert_eq!(seq.merge_window(), 0.0);
    }
}
