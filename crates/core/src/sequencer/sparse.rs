//! The sub-quadratic sparse fast path for closed-form (Gaussian) streams.
//!
//! For closed-form kernels the tournament orientation `p(i ≺ j) ≥ ½`
//! reduces to a per-client timestamp-margin comparison: with Gaussian
//! offsets `δ ~ N(μ, σ²)`, `P(T*_i < T*_j) = Φ((T_j − μ_j − (T_i − μ_i)) /
//! √(σ_i² + σ_j²)) ≥ ½ ⇔ T_i − μ_i ≤ T_j − μ_j`. The Gaussian tournament
//! order is therefore a *sort by the margin-adjusted timestamp*
//! `key = T − μ` — no dense [`PrecedenceMatrix`] column is needed to place
//! an arrival, and Gaussian tournaments are always transitive (Appendix A),
//! so no FAS machinery is needed either.
//!
//! [`SparseEngine`] maintains that order in an order-statistics treap
//! (arena-allocated, deterministic priorities, subtree sizes): O(log n)
//! insert/remove at any pending-set size. Probabilities are evaluated
//! *lazily*, only where the batch threshold actually inspects them:
//!
//! * **Boundary bits** — each arrival evaluates exactly its two in-order
//!   adjacencies (mirroring
//!   [`IncrementalFairOrder::insert_at`](crate::batching::IncrementalFairOrder)),
//!   each emission one seam per removed run.
//! * **Closure checks** — the Appendix C candidate closure only ever needs
//!   pairs inside a *pruning window*: a pair is inseparable
//!   (`max(p, 1−p) ≤ θ`) only if its kernel argument satisfies
//!   `|Δkey| ≤ z(θ)·√(σ_i²+σ_j²)`, so any pair whose adjusted keys differ
//!   by more than `w = z(θ)·√2·σ_max` (plus a floating-point slack that
//!   dominates every rounding term, with `z` inflated past the erf/quantile
//!   approximation error) is *guaranteed separable* and never evaluated.
//!
//! Every probability the engine does evaluate goes through the exact same
//! [`PairKernel`](crate::registry::PairKernel) the dense column fill uses,
//! oriented by arrival sequence exactly as the matrix stores it (direct
//! value for the older message, `1.0 − p` for the newer), so boundary bits,
//! closure decisions, safe-emission folds and emitted batches are
//! bit-identical to the dense path. The one caveat: the erf polynomial's
//! `Φ(0) ≈ 0.5 + 1.5e-8` leaves a ≈4e-8-wide kernel-argument band where the
//! dense orientation rule (`p ≥ ½`) and the key-sort orientation can
//! disagree on *placement* of two nearly-coincident messages; boundary and
//! closure evaluations are kernel-exact in either placement, and any
//! `θ > 0.5 + 3.2e-8` decides such pairs identically (both directions sit
//! at `0.5 ± 2e-8`, far below the threshold), so batches agree for every
//! realistic threshold.
//!
//! The candidate batch is cached *and maintained incrementally*: an arrival
//! with `key > batch_max_key + w` provably cannot join (or alter) the
//! cached candidate and leaves it untouched; an arrival inside the window
//! is closure-checked against the in-window members and, if absorbed,
//! expands the closure transitively from itself; only an arrival *below*
//! the cached batch's key range invalidates the cache. Emission always
//! invalidates. This keeps steady-state time-ordered arrivals at O(log n)
//! plus O(window) lazy evaluations.
//!
//! The engine is private to the [`OnlineSequencer`](super::online): mode
//! selection, counters and the dense fallback are documented on
//! [`FastPathMode`](crate::config::FastPathMode) and in `ARCHITECTURE.md`
//! ("Sparse fast path").

use crate::batching::FairOrderCounters;
use crate::error::CoreError;
use crate::message::{Message, MessageId};
use crate::registry::DistributionRegistry;
use tommy_stats::erf::std_normal_inv_cdf;

/// Arena null index.
const NIL: u32 = u32::MAX;

/// Deterministic treap priority from the arrival sequence number
/// (splitmix64: consecutive sequences map to well-scattered priorities, so
/// the treap stays balanced without any run-time randomness — sparse runs
/// are exactly reproducible).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One pending message in the order-statistics treap. The arena index of a
/// node is its stable *slot* for the lifetime of the message.
#[derive(Debug, Clone)]
struct Node {
    left: u32,
    right: u32,
    /// Subtree size (order statistics / O(1) length).
    size: u32,
    /// Treap priority: `splitmix64(seq)`.
    prio: u64,
    /// Margin-adjusted timestamp `T − μ_client`, the sort key
    /// (`−0.0` normalized to `+0.0`; never NaN).
    key: f64,
    /// Arrival sequence number: the total-order tie-break for equal keys
    /// and the slot-orientation rule for lazy probability evaluation.
    seq: u64,
    /// Whether this node starts a new batch in the maintained order
    /// (position 0 is `true` by convention, exactly as the dense boundary
    /// set treats the head of the order).
    starts_batch: bool,
    /// Scratch membership flag of the cached candidate batch.
    in_candidate: bool,
    message: Message,
}

/// The cached lowest-rank candidate batch (sparse counterpart of the dense
/// `Candidate`): member slots plus the folds emission needs.
#[derive(Debug, Clone)]
struct SparseCandidate {
    /// Member slots, ascending by arrival sequence (the dense matrix-slot
    /// order, so emitted batches list messages identically).
    members: Vec<u32>,
    /// Largest member key: arrivals beyond `batch_max_key + window` cannot
    /// join or perturb the candidate.
    batch_max_key: f64,
    safe_after: f64,
    horizon: f64,
}

/// Sparse precedence engine over an all-closed-form pending set (see the
/// module docs). Owned by the online sequencer and active only while every
/// registered client is Gaussian under [`FastPathMode::Auto`].
///
/// [`FastPathMode::Auto`]: crate::config::FastPathMode::Auto
#[derive(Debug)]
pub(crate) struct SparseEngine {
    nodes: Vec<Node>,
    free: Vec<u32>,
    root: u32,
    next_seq: u64,
    /// Conservative monotone maximum σ over every Gaussian registration the
    /// sequencer has ever seen (never decreased on re-registration, so the
    /// pruning window stays sound).
    max_sigma: f64,
    /// Cached pruning window for the current `(threshold, max_sigma)`.
    window: Option<f64>,
    candidate: Option<SparseCandidate>,
    /// Slots handed out by [`take_candidate`](Self::take_candidate) and not
    /// yet removed by [`commit_removal`](Self::commit_removal).
    pending_removal: Vec<u32>,
    counters: FairOrderCounters,
    lazy_evals: u64,
}

impl SparseEngine {
    pub(crate) fn new() -> Self {
        SparseEngine {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            next_seq: 0,
            max_sigma: 0.0,
            window: None,
            candidate: None,
            pending_removal: Vec::new(),
            counters: FairOrderCounters::default(),
            lazy_evals: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        if self.root == NIL {
            0
        } else {
            self.nodes[self.root as usize].size as usize
        }
    }

    /// Bytes currently reserved for the order-statistics arena — the
    /// sparse counterpart of [`PrecedenceMatrix::prob_bytes`]
    /// (O(n) per pending message instead of O(n²) total).
    ///
    /// [`PrecedenceMatrix::prob_bytes`]: crate::precedence::PrecedenceMatrix::prob_bytes
    pub(crate) fn index_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node>()
            + self.free.capacity() * std::mem::size_of::<u32>()
    }

    /// Boundary-engine-shaped counters of the lazy evaluations (summed with
    /// the dense engine's counters by the sequencer).
    pub(crate) fn counters(&self) -> FairOrderCounters {
        self.counters
    }

    /// Total lazy kernel evaluations (boundary bits + closure checks).
    pub(crate) fn lazy_evals(&self) -> u64 {
        self.lazy_evals
    }

    /// Record a Gaussian registration's σ (monotone max; widening the
    /// pruning window invalidates its cache, never the candidate — the
    /// window only *prunes*, membership is decided by exact evaluations).
    pub(crate) fn observe_sigma(&mut self, sigma: f64) {
        if sigma > self.max_sigma {
            self.max_sigma = sigma;
            self.window = None;
        }
    }

    /// Drop the cached candidate (pending-set-external invalidation, e.g.
    /// a client (re-)registration).
    pub(crate) fn invalidate_candidate(&mut self) {
        if let Some(cand) = self.candidate.take() {
            for &m in &cand.members {
                self.nodes[m as usize].in_candidate = false;
            }
        }
    }

    /// The pending messages in arrival (sequence) order — the dense matrix
    /// slot order, used to replay the pending set into the dense engine on
    /// a sparse → dense mode switch.
    pub(crate) fn messages_in_arrival_order(&self) -> Vec<Message> {
        let mut with_seq: Vec<(u64, Message)> = Vec::with_capacity(self.len());
        self.for_each_in_order(|node| with_seq.push((node.seq, node.message.clone())));
        with_seq.sort_unstable_by_key(|&(seq, _)| seq);
        with_seq.into_iter().map(|(_, m)| m).collect()
    }

    /// Whether any pending message belongs to `client` (drives the
    /// re-registration re-key decision, mirroring the dense scan).
    pub(crate) fn contains_client(&self, client: crate::message::ClientId) -> bool {
        let mut stack: Vec<u32> = Vec::new();
        if self.root != NIL {
            stack.push(self.root);
        }
        while let Some(slot) = stack.pop() {
            let node = &self.nodes[slot as usize];
            if node.message.client == client {
                return true;
            }
            if node.left != NIL {
                stack.push(node.left);
            }
            if node.right != NIL {
                stack.push(node.right);
            }
        }
        false
    }

    /// `(message id, starts_batch)` in maintained (key) order — diagnostic
    /// surface for the bit-identity property tests.
    pub(crate) fn pending_order(&self) -> Vec<(MessageId, bool)> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each_in_order(|node| out.push((node.message.id, node.starts_batch)));
        out
    }

    /// Reset the pending set (counters, σ bound and sequence numbers are
    /// kept — they describe the whole run).
    pub(crate) fn clear_pending(&mut self) {
        debug_assert!(self.pending_removal.is_empty(), "removal in flight");
        self.nodes.clear();
        self.free.clear();
        self.root = NIL;
        self.candidate = None;
    }

    // ------------------------------------------------------------------
    // Lazy probability evaluation
    // ------------------------------------------------------------------

    /// `P(u precedes v)` exactly as the dense matrix would store it: the
    /// kernel is evaluated *directly* for the pair oriented by arrival
    /// sequence (older message first — the direction
    /// [`PrecedenceMatrix::insert`](crate::precedence::PrecedenceMatrix)
    /// evaluates) and the opposite direction is the same single rounding
    /// `1.0 − p` the matrix stores. One kernel evaluation, recorded on the
    /// registry query counter like every dense evaluation.
    fn prob_oriented(&mut self, registry: &DistributionRegistry, u: u32, v: u32) -> f64 {
        let (a, b, flip) = if self.nodes[u as usize].seq < self.nodes[v as usize].seq {
            (u, v, false)
        } else {
            (v, u, true)
        };
        let (na, nb) = (&self.nodes[a as usize], &self.nodes[b as usize]);
        let kernel = registry
            .pair_kernel(na.message.client, nb.message.client)
            .expect("pending messages come from registered clients");
        let p = kernel.preceding(na.message.timestamp - nb.message.timestamp);
        debug_assert!(!p.is_nan(), "finite keys imply finite probabilities");
        registry.record_queries(1);
        self.lazy_evals += 1;
        if flip {
            1.0 - p
        } else {
            p
        }
    }

    /// `max(P(u ≺ v), P(v ≺ u))` with dense rounding (direct value and its
    /// `1.0 − p`) — the Appendix C separability statistic.
    fn pair_max(&mut self, registry: &DistributionRegistry, u: u32, v: u32) -> f64 {
        let p = self.prob_oriented(registry, u, v);
        p.max(1.0 - p)
    }

    /// The pruning window `w = z·√2·σ_max` for the current threshold, with
    /// `z` inflated past both approximation errors: `θ` is widened by 1e-6
    /// (≫ the 1.2e-7 erf forward error) before inversion and the inverse's
    /// own ~1e-9 error is absorbed by a further +1e-6. Pairs whose keys
    /// differ by more than `w` plus the caller's magnitude slack are
    /// guaranteed separable; everything closer is decided by exact kernel
    /// evaluation, so the window only ever *skips* work, never changes a
    /// decision.
    fn window(&mut self, threshold: f64) -> f64 {
        if let Some(w) = self.window {
            return w;
        }
        let q = (threshold + 1e-6).clamp(0.5 + 1e-12, 1.0 - 1e-12);
        let z = std_normal_inv_cdf(q).max(0.0) + 1e-6;
        let w = z * std::f64::consts::SQRT_2 * self.max_sigma;
        self.window = Some(w);
        w
    }

    /// Absolute floating-point slack added to every window comparison —
    /// orders of magnitude above the few-ulp difference between the kernel
    /// argument's numerator and the key difference.
    fn slack(a: f64, b: f64) -> f64 {
        1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    // ------------------------------------------------------------------
    // Arrival
    // ------------------------------------------------------------------

    /// Insert an arrival: O(log n) treap insert, exactly two adjacency
    /// evaluations for the boundary bits (mirroring the dense
    /// `IncrementalFairOrder::insert_at` contract), and an incremental
    /// candidate update (see module docs).
    pub(crate) fn insert(
        &mut self,
        message: Message,
        registry: &DistributionRegistry,
        threshold: f64,
        p_safe: f64,
    ) -> Result<(), CoreError> {
        let gaussian = registry
            .get(message.client)
            .and_then(|d| d.as_gaussian().copied())
            .expect("sparse fast path requires closed-form (Gaussian) clients");
        let raw_key = message.timestamp - gaussian.mean();
        if raw_key.is_nan() {
            return Err(CoreError::InvalidProbability {
                left: message.id,
                right: message.id,
            });
        }
        // Normalize −0.0 so `total_cmp` and arithmetic agree on equality.
        let key = if raw_key == 0.0 { 0.0 } else { raw_key };
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = self.alloc(key, seq, message);
        self.root = self.insert_rec(self.root, slot);

        // Boundary bits: evaluate both adjacencies of the insertion point,
        // with the same split/merge accounting as the dense engine.
        let pred = self.prev_in_order(slot);
        let succ = self.next_in_order(slot);
        let left_start = match pred {
            NIL => true,
            p => {
                self.counters.boundary_evals += 1;
                self.prob_oriented(registry, p, slot) > threshold
            }
        };
        self.nodes[slot as usize].starts_batch = left_start;
        let old_succ_bit = (succ != NIL).then(|| self.nodes[succ as usize].starts_batch);
        if succ != NIL {
            self.counters.boundary_evals += 1;
            let bit = self.prob_oriented(registry, slot, succ) > threshold;
            self.nodes[succ as usize].starts_batch = bit;
        }
        let old_boundary = usize::from(pred != NIL && old_succ_bit == Some(true));
        let new_boundaries = usize::from(pred != NIL && left_start)
            + usize::from(succ != NIL && self.nodes[succ as usize].starts_batch);
        if new_boundaries > old_boundary {
            self.counters.batch_splits += (new_boundaries - old_boundary) as u64;
        } else {
            self.counters.batch_merges += (old_boundary - new_boundaries) as u64;
        }

        self.update_candidate_on_insert(slot, registry, threshold, p_safe);
        Ok(())
    }

    /// Incremental candidate maintenance for an arrival (see module docs
    /// for the case analysis and its soundness argument).
    fn update_candidate_on_insert(
        &mut self,
        slot: u32,
        registry: &DistributionRegistry,
        threshold: f64,
        p_safe: f64,
    ) {
        let Some(mut cand) = self.candidate.take() else {
            return;
        };
        let key = self.nodes[slot as usize].key;
        let w = self.window(threshold);
        if key > cand.batch_max_key + w + Self::slack(key, cand.batch_max_key) {
            // Beyond the window: provably separable from every member, and
            // the bit rewrites sit strictly after the first boundary — the
            // candidate is untouched.
            self.candidate = Some(cand);
            return;
        }
        if key.total_cmp(&cand.batch_max_key) == std::cmp::Ordering::Less {
            // Below the batch's key range: the prefix itself may have
            // changed. Rare for time-ordered streams; recompute lazily.
            for &m in &cand.members {
                self.nodes[m as usize].in_candidate = false;
            }
            return;
        }
        // Inside the window at or above the batch's range: absorbed iff
        // inseparable from some member (all of which sit at keys at or
        // below this one — walk the in-order predecessors in the window).
        let mut absorbed = false;
        let mut cur = self.prev_in_order(slot);
        while cur != NIL {
            let ck = self.nodes[cur as usize].key;
            if key - ck > w + Self::slack(key, ck) {
                break;
            }
            if self.nodes[cur as usize].in_candidate
                && self.pair_max(registry, cur, slot) <= threshold
            {
                absorbed = true;
                break;
            }
            cur = self.prev_in_order(cur);
        }
        if !absorbed {
            self.candidate = Some(cand);
            return;
        }
        let from = cand.members.len();
        self.absorb(&mut cand, slot, registry, p_safe);
        self.expand_closure(&mut cand, from, registry, threshold, p_safe);
        self.candidate = Some(cand);
    }

    /// Add one slot to the candidate: mark it, append it, and fold its
    /// emission quantities — the same `max` folds the dense sweep performs,
    /// so the result is order-independent and bit-identical. `members` is
    /// *not* kept sequence-sorted here (an absorbed arrival's closure can
    /// pull in older neighbours after it); emission sorts by sequence.
    fn absorb(
        &mut self,
        cand: &mut SparseCandidate,
        slot: u32,
        registry: &DistributionRegistry,
        p_safe: f64,
    ) {
        let node = &self.nodes[slot as usize];
        let (client, ts, key) = (node.message.client, node.message.timestamp, node.key);
        let margin = registry
            .safe_margin(client, p_safe)
            .expect("pending messages come from registered clients");
        self.nodes[slot as usize].in_candidate = true;
        cand.members.push(slot);
        cand.safe_after = cand.safe_after.max(ts - margin);
        cand.horizon = cand.horizon.max(ts);
        if key.total_cmp(&cand.batch_max_key) == std::cmp::Ordering::Greater {
            cand.batch_max_key = key;
        }
    }

    /// Transitive Appendix C closure from `members[from..]`: walk the
    /// in-order window around every frontier member and absorb each
    /// non-member the threshold cannot separate from it, until a fixpoint.
    /// Pairs outside the window are separable by construction and never
    /// evaluated — the lazy-evaluation invariant.
    fn expand_closure(
        &mut self,
        cand: &mut SparseCandidate,
        mut from: usize,
        registry: &DistributionRegistry,
        threshold: f64,
        p_safe: f64,
    ) {
        let w = self.window(threshold);
        while from < cand.members.len() {
            let f = cand.members[from];
            from += 1;
            let fk = self.nodes[f as usize].key;
            // Predecessor side.
            let mut cur = self.prev_in_order(f);
            while cur != NIL {
                let ck = self.nodes[cur as usize].key;
                if fk - ck > w + Self::slack(fk, ck) {
                    break;
                }
                if !self.nodes[cur as usize].in_candidate
                    && self.pair_max(registry, cur, f) <= threshold
                {
                    self.absorb(cand, cur, registry, p_safe);
                }
                cur = self.prev_in_order(cur);
            }
            // Successor side.
            let mut cur = self.next_in_order(f);
            while cur != NIL {
                let ck = self.nodes[cur as usize].key;
                if ck - fk > w + Self::slack(fk, ck) {
                    break;
                }
                if !self.nodes[cur as usize].in_candidate
                    && self.pair_max(registry, f, cur) <= threshold
                {
                    self.absorb(cand, cur, registry, p_safe);
                }
                cur = self.next_in_order(cur);
            }
        }
    }

    // ------------------------------------------------------------------
    // Candidate computation and emission
    // ------------------------------------------------------------------

    /// Ensure the candidate cache holds the lowest-rank batch of the
    /// current pending set; returns its `(size, safe_after, horizon)`.
    ///
    /// A full recompute walks the maintained order only as far as the first
    /// boundary bit plus the closure windows — O((batch + window)·log n),
    /// never O(n).
    pub(crate) fn candidate_meta(
        &mut self,
        registry: &DistributionRegistry,
        threshold: f64,
        p_safe: f64,
    ) -> Option<(usize, f64, f64)> {
        if self.root == NIL {
            return None;
        }
        if self.candidate.is_none() {
            self.recompute_candidate(registry, threshold, p_safe);
        }
        self.candidate
            .as_ref()
            .map(|c| (c.members.len(), c.safe_after, c.horizon))
    }

    fn recompute_candidate(
        &mut self,
        registry: &DistributionRegistry,
        threshold: f64,
        p_safe: f64,
    ) {
        debug_assert!(self.root != NIL);
        let mut cand = SparseCandidate {
            members: Vec::new(),
            batch_max_key: f64::NEG_INFINITY,
            safe_after: f64::NEG_INFINITY,
            horizon: f64::NEG_INFINITY,
        };
        // The first batch: the contiguous head of the maintained order up
        // to the first boundary bit.
        let mut cur = self.first();
        loop {
            self.absorb(&mut cand, cur, registry, p_safe);
            let next = self.next_in_order(cur);
            if next == NIL || self.nodes[next as usize].starts_batch {
                break;
            }
            cur = next;
        }
        // Appendix C closure over the whole prefix.
        self.expand_closure(&mut cand, 0, registry, threshold, p_safe);
        self.candidate = Some(cand);
    }

    /// Take the candidate out of the cache (computing it first if needed):
    /// returns its messages in arrival order — identical to the dense
    /// ascending-matrix-slot emission order — plus its safe-emission time,
    /// and stages the member slots for [`commit_removal`](Self::commit_removal).
    pub(crate) fn take_candidate(
        &mut self,
        registry: &DistributionRegistry,
        threshold: f64,
        p_safe: f64,
    ) -> Option<(Vec<Message>, f64)> {
        self.candidate_meta(registry, threshold, p_safe)?;
        let mut cand = self.candidate.take().expect("just ensured");
        // Arrival order = ascending sequence: the closure can absorb older
        // neighbours after a newer arrival, so the member list is sorted
        // here, once, at emission.
        cand.members
            .sort_unstable_by_key(|&s| self.nodes[s as usize].seq);
        let messages = cand
            .members
            .iter()
            .map(|&s| self.nodes[s as usize].message.clone())
            .collect();
        let safe_after = cand.safe_after;
        debug_assert!(self.pending_removal.is_empty(), "removal in flight");
        self.pending_removal = cand.members;
        Some((messages, safe_after))
    }

    /// Remove the slots staged by [`take_candidate`](Self::take_candidate):
    /// one seam evaluation per removed run (the dense
    /// `IncrementalFairOrder::remove_slots` contract), then O(log n) treap
    /// removals.
    pub(crate) fn commit_removal(&mut self, registry: &DistributionRegistry, threshold: f64) {
        let mut removed = std::mem::take(&mut self.pending_removal);
        if removed.is_empty() {
            return;
        }
        // Tree order: runs of in-order-adjacent removed slots are
        // contiguous in this sorted view.
        removed.sort_unstable_by(|&a, &b| {
            let (na, nb) = (&self.nodes[a as usize], &self.nodes[b as usize]);
            na.key
                .total_cmp(&nb.key)
                .then(na.seq.cmp(&nb.seq))
        });
        let mut i = 0;
        while i < removed.len() {
            // Extend the run while the next removed slot is tree-adjacent.
            let mut j = i;
            while j + 1 < removed.len() && self.next_in_order(removed[j]) == removed[j + 1] {
                j += 1;
            }
            let pred = self.prev_in_order(removed[i]);
            let succ = self.next_in_order(removed[j]);
            debug_assert!(
                pred == NIL || !self.nodes[pred as usize].in_candidate,
                "run start has a removed predecessor"
            );
            if succ != NIL {
                let bit = match pred {
                    // The run was the head of the order: the survivor now
                    // heads it, no evaluation needed.
                    NIL => true,
                    p => {
                        self.counters.boundary_evals += 1;
                        self.prob_oriented(registry, p, succ) > threshold
                    }
                };
                self.nodes[succ as usize].starts_batch = bit;
            }
            i = j + 1;
        }
        for &slot in &removed {
            self.root = self.remove_rec(self.root, slot);
            self.nodes[slot as usize].in_candidate = false;
            self.free.push(slot);
        }
    }

    // ------------------------------------------------------------------
    // Wholesale rebuild (mode switches, re-registration)
    // ------------------------------------------------------------------

    /// Rebuild the pending set from scratch (dense → sparse mode switch, or
    /// a re-registration that changed a pending client's μ and hence its
    /// keys): fresh sequence numbers in the given (arrival) order, then all
    /// `n − 1` boundary bits derived in one in-order sweep — the sparse
    /// mirror of the dense `rebuild_from`, counted the same way.
    pub(crate) fn rebuild_from(
        &mut self,
        messages: &[Message],
        registry: &DistributionRegistry,
        threshold: f64,
    ) {
        self.invalidate_candidate();
        debug_assert!(self.pending_removal.is_empty(), "removal in flight");
        self.nodes.clear();
        self.free.clear();
        self.root = NIL;
        for message in messages {
            let gaussian = registry
                .get(message.client)
                .and_then(|d| d.as_gaussian().copied())
                .expect("sparse fast path requires closed-form (Gaussian) clients");
            let raw_key = message.timestamp - gaussian.mean();
            debug_assert!(!raw_key.is_nan(), "pending keys are finite");
            let key = if raw_key == 0.0 { 0.0 } else { raw_key };
            let seq = self.next_seq;
            self.next_seq += 1;
            let slot = self.alloc(key, seq, message.clone());
            self.root = self.insert_rec(self.root, slot);
        }
        if self.root == NIL {
            return;
        }
        let mut prev = self.first();
        self.nodes[prev as usize].starts_batch = true;
        let mut cur = self.next_in_order(prev);
        while cur != NIL {
            self.counters.boundary_evals += 1;
            let bit = self.prob_oriented(registry, prev, cur) > threshold;
            self.nodes[cur as usize].starts_batch = bit;
            prev = cur;
            cur = self.next_in_order(cur);
        }
        self.counters.full_rebuilds += 1;
    }

    // ------------------------------------------------------------------
    // Treap plumbing
    // ------------------------------------------------------------------

    fn alloc(&mut self, key: f64, seq: u64, message: Message) -> u32 {
        let node = Node {
            left: NIL,
            right: NIL,
            size: 1,
            prio: splitmix64(seq),
            key,
            seq,
            starts_batch: true,
            in_candidate: false,
            message,
        };
        match self.free.pop() {
            Some(slot) => {
                self.nodes[slot as usize] = node;
                slot
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    /// Total order over nodes: `(key, seq)` with `total_cmp` on keys (keys
    /// are normalized, so `total_cmp` agrees with `<` wherever both apply).
    fn less(&self, a: u32, b: u32) -> bool {
        let (na, nb) = (&self.nodes[a as usize], &self.nodes[b as usize]);
        match na.key.total_cmp(&nb.key) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => na.seq < nb.seq,
        }
    }

    fn pull(&mut self, slot: u32) {
        let (l, r) = (self.nodes[slot as usize].left, self.nodes[slot as usize].right);
        let mut size = 1;
        if l != NIL {
            size += self.nodes[l as usize].size;
        }
        if r != NIL {
            size += self.nodes[r as usize].size;
        }
        self.nodes[slot as usize].size = size;
    }

    fn insert_rec(&mut self, root: u32, slot: u32) -> u32 {
        if root == NIL {
            return slot;
        }
        if self.nodes[slot as usize].prio > self.nodes[root as usize].prio {
            let (l, r) = self.split_rec(root, slot);
            self.nodes[slot as usize].left = l;
            self.nodes[slot as usize].right = r;
            self.pull(slot);
            slot
        } else if self.less(slot, root) {
            let nl = self.insert_rec(self.nodes[root as usize].left, slot);
            self.nodes[root as usize].left = nl;
            self.pull(root);
            root
        } else {
            let nr = self.insert_rec(self.nodes[root as usize].right, slot);
            self.nodes[root as usize].right = nr;
            self.pull(root);
            root
        }
    }

    /// Split `root` into `(< pivot, > pivot)`; `pivot` itself is not in the
    /// tree being split.
    fn split_rec(&mut self, root: u32, pivot: u32) -> (u32, u32) {
        if root == NIL {
            return (NIL, NIL);
        }
        if self.less(root, pivot) {
            let (l, r) = self.split_rec(self.nodes[root as usize].right, pivot);
            self.nodes[root as usize].right = l;
            self.pull(root);
            (root, r)
        } else {
            let (l, r) = self.split_rec(self.nodes[root as usize].left, pivot);
            self.nodes[root as usize].left = r;
            self.pull(root);
            (l, root)
        }
    }

    fn merge(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.nodes[a as usize].prio > self.nodes[b as usize].prio {
            let m = self.merge(self.nodes[a as usize].right, b);
            self.nodes[a as usize].right = m;
            self.pull(a);
            a
        } else {
            let m = self.merge(a, self.nodes[b as usize].left);
            self.nodes[b as usize].left = m;
            self.pull(b);
            b
        }
    }

    fn remove_rec(&mut self, root: u32, slot: u32) -> u32 {
        debug_assert!(root != NIL, "slot not in tree");
        if root == slot {
            let (l, r) = (self.nodes[root as usize].left, self.nodes[root as usize].right);
            return self.merge(l, r);
        }
        if self.less(slot, root) {
            let nl = self.remove_rec(self.nodes[root as usize].left, slot);
            self.nodes[root as usize].left = nl;
        } else {
            let nr = self.remove_rec(self.nodes[root as usize].right, slot);
            self.nodes[root as usize].right = nr;
        }
        self.pull(root);
        root
    }

    fn first(&self) -> u32 {
        debug_assert!(self.root != NIL);
        let mut cur = self.root;
        while self.nodes[cur as usize].left != NIL {
            cur = self.nodes[cur as usize].left;
        }
        cur
    }

    /// In-order predecessor of a slot (descent by `(key, seq)`): O(log n).
    fn prev_in_order(&self, slot: u32) -> u32 {
        let mut cur = self.root;
        let mut best = NIL;
        while cur != NIL {
            if cur != slot && self.less(cur, slot) {
                best = cur;
                cur = self.nodes[cur as usize].right;
            } else {
                cur = self.nodes[cur as usize].left;
            }
        }
        best
    }

    /// In-order successor of a slot: O(log n).
    fn next_in_order(&self, slot: u32) -> u32 {
        let mut cur = self.root;
        let mut best = NIL;
        while cur != NIL {
            if cur != slot && self.less(slot, cur) {
                best = cur;
                cur = self.nodes[cur as usize].left;
            } else {
                cur = self.nodes[cur as usize].right;
            }
        }
        best
    }

    /// In-order traversal with an explicit stack (full walks are only used
    /// by the mode-switch and diagnostic paths, never per arrival).
    fn for_each_in_order(&self, mut f: impl FnMut(&Node)) {
        let mut stack: Vec<u32> = Vec::new();
        let mut cur = self.root;
        loop {
            while cur != NIL {
                stack.push(cur);
                cur = self.nodes[cur as usize].left;
            }
            let Some(slot) = stack.pop() else {
                break;
            };
            f(&self.nodes[slot as usize]);
            cur = self.nodes[slot as usize].right;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ClientId;
    use tommy_stats::distribution::OffsetDistribution;

    fn registry(clients: &[(u32, f64, f64)]) -> DistributionRegistry {
        let mut reg = DistributionRegistry::new();
        for &(c, mean, sigma) in clients {
            reg.register(ClientId(c), OffsetDistribution::gaussian(mean, sigma));
        }
        reg
    }

    fn msg(id: u64, client: u32, ts: f64) -> Message {
        Message::new(MessageId(id), ClientId(client), ts)
    }

    /// Deterministic pseudo-random stream driver (no external RNG needed).
    fn lcg(state: &mut u64) -> u64 {
        *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *state >> 11
    }

    #[test]
    fn maintains_key_order_under_random_insert_remove() {
        let reg = registry(&[(0, 0.0, 2.0), (1, 1.0, 3.0), (2, -2.0, 1.0)]);
        let mut engine = SparseEngine::new();
        engine.observe_sigma(3.0);
        let mut state = 42u64;
        for id in 0..200u64 {
            let client = (lcg(&mut state) % 3) as u32;
            let ts = (lcg(&mut state) % 1000) as f64 * 0.25;
            engine
                .insert(msg(id, client, ts), &reg, 0.75, 0.999)
                .unwrap();
            if id % 17 == 16 {
                let (_msgs, _safe) = engine.take_candidate(&reg, 0.75, 0.999).unwrap();
                engine.commit_removal(&reg, 0.75);
            }
        }
        let order = engine.pending_order();
        assert_eq!(order.len(), engine.len());
        assert!(engine.len() > 100);
        // Keys ascend along the maintained order.
        let keys: Vec<f64> = {
            let mut ks = Vec::new();
            engine.for_each_in_order(|n| ks.push(n.key));
            ks
        };
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn candidate_cache_survives_far_future_arrivals() {
        let reg = registry(&[(0, 0.0, 1.0), (1, 0.0, 1.0)]);
        let mut engine = SparseEngine::new();
        engine.observe_sigma(1.0);
        engine.insert(msg(0, 0, 100.0), &reg, 0.75, 0.999).unwrap();
        engine.insert(msg(1, 1, 100.5), &reg, 0.75, 0.999).unwrap();
        let meta = engine.candidate_meta(&reg, 0.75, 0.999).unwrap();
        let evals_before = engine.lazy_evals();
        // Far beyond the window: candidate untouched, zero closure evals
        // beyond the two boundary bits.
        engine.insert(msg(2, 0, 500.0), &reg, 0.75, 0.999).unwrap();
        assert_eq!(engine.candidate_meta(&reg, 0.75, 0.999).unwrap(), meta);
        assert_eq!(engine.lazy_evals(), evals_before + 1, "one bit eval only");
    }

    #[test]
    fn near_arrival_is_absorbed_into_cached_candidate() {
        let reg = registry(&[(0, 0.0, 5.0), (1, 0.0, 5.0)]);
        let mut engine = SparseEngine::new();
        engine.observe_sigma(5.0);
        engine.insert(msg(0, 0, 100.0), &reg, 0.75, 0.999).unwrap();
        engine.candidate_meta(&reg, 0.75, 0.999).unwrap();
        // One σ apart with σ = 5: far inside the threshold window.
        engine.insert(msg(1, 1, 101.0), &reg, 0.75, 0.999).unwrap();
        let (msgs, _) = engine.take_candidate(&reg, 0.75, 0.999).unwrap();
        assert_eq!(msgs.len(), 2, "inseparable arrival joins the candidate");
        engine.commit_removal(&reg, 0.75);
        assert_eq!(engine.len(), 0);
    }

    #[test]
    fn rebuild_matches_incremental_bits() {
        let reg = registry(&[(0, 0.5, 2.0), (1, -0.5, 2.5)]);
        let mut incremental = SparseEngine::new();
        incremental.observe_sigma(2.5);
        let mut state = 7u64;
        let mut messages = Vec::new();
        for id in 0..64u64 {
            let client = (lcg(&mut state) % 2) as u32;
            let ts = (lcg(&mut state) % 500) as f64 * 0.5;
            let m = msg(id, client, ts);
            messages.push(m.clone());
            incremental.insert(m, &reg, 0.75, 0.999).unwrap();
        }
        let mut rebuilt = SparseEngine::new();
        rebuilt.observe_sigma(2.5);
        rebuilt.rebuild_from(&messages, &reg, 0.75);
        assert_eq!(incremental.pending_order(), rebuilt.pending_order());
        assert_eq!(rebuilt.counters().full_rebuilds, 1);
    }

    #[test]
    fn arrival_order_roundtrip_preserves_sequence() {
        let reg = registry(&[(0, 0.0, 1.0)]);
        let mut engine = SparseEngine::new();
        engine.observe_sigma(1.0);
        // Arrivals with descending timestamps from distinct clients would be
        // rejected upstream; same client must ascend, so interleave keys by
        // registering a second client.
        let reg2 = registry(&[(0, 0.0, 1.0), (1, 10.0, 1.0)]);
        for id in 0..10u64 {
            let client = (id % 2) as u32;
            engine
                .insert(msg(id, client, id as f64), &reg2, 0.75, 0.999)
                .unwrap();
        }
        let _ = reg;
        let replay = engine.messages_in_arrival_order();
        let ids: Vec<u64> = replay.iter().map(|m| m.id.0).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }
}
