//! Per-client offset distributions and cached derived quantities.
//!
//! The sequencer needs, for every pair of clients, the distribution of the
//! difference of their clock offsets (§3.3). Building those difference
//! distributions involves discretization and convolution, so the registry
//! caches both the per-client discretized PDFs and the per-pair difference
//! PDFs. For Gaussian pairs no grid is ever built — the closed form of §3.2
//! is used directly.
//!
//! ## Sign convention
//!
//! A client's offset distribution describes `δ = local_clock − sequencer_clock`
//! — exactly the noise `ε` the paper's evaluation (§4) adds to the wall-clock
//! time when tagging a message (`T = t + ε`). With that convention the
//! preceding probability is
//!
//! ```text
//! P(T*_i < T*_j | T_i, T_j) = P(δ_i − δ_j > T_i − T_j)
//! ```
//!
//! which for Gaussian offsets reduces to the paper's closed form
//! `Φ((T_j − T_i + μ_i − μ_j)/√(σ_i² + σ_j²))`.
//!
//! ## Pair kernels: dt-only dependence and lock amortization
//!
//! Both formulas above depend on the two *timestamps* only through their
//! difference `dt = T_i − T_j`; everything else — the means, the combined
//! spread, the difference grid — is a property of the client *pair*. A
//! [`PairKernel`] is that pair-level residue, resolved once by
//! [`DistributionRegistry::pair_kernel`]: a self-contained, lock-free value
//! (same-client rule, Gaussian closed-form constants, or an `Arc` to the
//! shared difference grid) whose [`preceding`](PairKernel::preceding) /
//! [`preceding_many`](PairKernel::preceding_many) evaluations touch no
//! registry state at all.
//!
//! The payoff is on the O(n)-query hot paths. A per-call
//! [`preceding_probability`](DistributionRegistry::preceding_probability)
//! pays an atomic counter bump, two distribution `HashMap` lookups, a
//! Gaussian-vs-discretized re-dispatch and — for non-Gaussian pairs — an
//! `RwLock` read plus `Arc` clone on the difference cache, *per query*. A
//! kernel-based column fill pays all of that once per *distinct client* and
//! then runs a tight per-kernel loop over a contiguous `f64` slice: an
//! online arrival resolves ≤ C kernels (C = distinct pending clients) for
//! its n queries, and an offline build tile touches the registry's locks
//! O(C²) times instead of O(pairs). The query counter is maintained in bulk
//! ([`record_queries`](DistributionRegistry::record_queries)) so its
//! semantics — one count per pairwise probability evaluated — are unchanged.

use crate::config::SequencerConfig;
use crate::defense::{
    CollusionReport, CollusionTracker, DefenseConfig, TrustEvent, TrustLevel, TrustState,
};
use crate::error::CoreError;
use crate::message::{ClientId, Message};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tommy_stats::clamp_probability;
use tommy_stats::convolution::{difference_distribution, ConvolutionMethod};
use tommy_stats::discretized::DiscretizedPdf;
use tommy_stats::distribution::{Distribution, OffsetDistribution};
use tommy_stats::gaussian::Gaussian;

/// A client pair's preceding-probability rule, resolved once into a
/// self-contained, lock-free value.
///
/// The preceding probability `P(T*_i < T*_j | T_i, T_j)` depends on the two
/// timestamps only through `dt = T_i − T_j` (§3.2–§3.3 of the paper); the
/// kernel captures everything else — the pair's distribution parameters or
/// shared difference grid — so [`preceding`](Self::preceding) and
/// [`preceding_many`](Self::preceding_many) are pure functions of `dt` that
/// touch no registry state. See the module docs for the lock-amortization
/// argument.
///
/// Evaluation is **bit-identical** to
/// [`DistributionRegistry::preceding_probability`] by construction: each
/// variant runs the same formula, in the same operation order, with the
/// same clamping, as the corresponding per-call branch. The only difference
/// is error signalling — a NaN result (the per-call path's
/// `InvalidProbability` case) is returned as NaN for the caller to check,
/// since a kernel has no message ids to put in an error.
#[derive(Debug, Clone)]
pub enum PairKernel {
    /// Both messages come from the same client: the comparison is
    /// deterministic in the timestamps (the shared offset cancels), yielding
    /// 1, 0, or ½ by the sign of `dt`.
    SameClient,
    /// Both offsets are Gaussian: the closed form of §3.2,
    /// `Φ(((−dt) + μ_i − μ_j)/√(σ_i² + σ_j²))`. The Gaussians are stored
    /// (rather than pre-divided constants) so each evaluation performs
    /// exactly the scalar arithmetic of
    /// [`Gaussian::preceding_probability`] — bit-identity would not survive
    /// a reciprocal-multiply rewrite.
    Gaussian {
        /// Offset distribution of the client that produced `T_i`.
        i: Gaussian,
        /// Offset distribution of the client that produced `T_j`.
        j: Gaussian,
    },
    /// At least one non-Gaussian offset: the shared, cached difference grid
    /// of `δ_i − δ_j` (§3.3), whose tail at `dt` is the probability.
    Discretized(Arc<DiscretizedPdf>),
}

impl PairKernel {
    /// The preceding probability at timestamp delta `dt = T_i − T_j`.
    ///
    /// Returns the same value `preceding_probability` would for messages
    /// with these clients and timestamps; NaN (never produced for finite
    /// inputs) marks the per-call path's `InvalidProbability` error case.
    #[inline]
    pub fn preceding(&self, dt: f64) -> f64 {
        let p = match self {
            PairKernel::SameClient => {
                if dt < 0.0 {
                    1.0
                } else if dt > 0.0 {
                    0.0
                } else {
                    0.5
                }
            }
            PairKernel::Gaussian { i, j } => i.preceding_probability_dt(j, dt),
            PairKernel::Discretized(diff) => diff.tail(dt),
        };
        // NaN-preserving clamp: equals `clamp_probability` for every non-NaN
        // input (the values the per-call path can return), but keeps NaN
        // visible so callers can surface `InvalidProbability`.
        p.clamp(0.0, 1.0)
    }

    /// Batched [`preceding`](Self::preceding): `out[k] = preceding(dts[k])`.
    ///
    /// One dispatch for the whole slice; the Gaussian and discretized arms
    /// run the slice kernels in `tommy-stats`
    /// ([`Gaussian::preceding_probability_dt_many`],
    /// [`DiscretizedPdf::tail_many`]) over contiguous memory. Bit-identical
    /// per element to the scalar form.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn preceding_many(&self, dts: &[f64], out: &mut [f64]) {
        assert_eq!(dts.len(), out.len(), "input/output length mismatch");
        match self {
            PairKernel::SameClient => {
                for (o, &dt) in out.iter_mut().zip(dts) {
                    *o = if dt < 0.0 {
                        1.0
                    } else if dt > 0.0 {
                        0.0
                    } else {
                        0.5
                    };
                }
                return;
            }
            PairKernel::Gaussian { i, j } => i.preceding_probability_dt_many(j, dts, out),
            PairKernel::Discretized(diff) => diff.tail_many(dts, out),
        }
        for o in out.iter_mut() {
            *o = o.clamp(0.0, 1.0);
        }
    }
}

/// Registry of per-client clock-offset distributions with derived caches.
#[derive(Debug)]
pub struct DistributionRegistry {
    distributions: HashMap<ClientId, OffsetDistribution>,
    grid_points: usize,
    convolution: ConvolutionMethod,
    discretized: RwLock<HashMap<ClientId, Arc<DiscretizedPdf>>>,
    differences: RwLock<HashMap<(ClientId, ClientId), Arc<DiscretizedPdf>>>,
    /// Cached safe-emission margins `Q_{δ}(1 − p_safe)` per
    /// `(client, p_safe)` — the client-level constant of the safe-emission
    /// time `T^F = T − Q(1 − p_safe)`, keyed by the exact bits of `p_safe`.
    safe_margins: RwLock<HashMap<(ClientId, u64), f64>>,
    /// Number of pairwise preceding-probability evaluations served so far —
    /// one per [`preceding_probability`](Self::preceding_probability) call
    /// plus every element of a kernel-based column fill (recorded in bulk
    /// via [`record_queries`](Self::record_queries)). The online sequencer's
    /// O(1)-tick and O(n)-arrival guarantees are asserted against this
    /// counter.
    queries: AtomicU64,
    /// Per-client trust tracking for the untrusted-distribution defense
    /// ([`crate::defense`]): residual windows, quarantine flags, and check
    /// statistics. Empty until [`observe_residual`](Self::observe_residual)
    /// is called; deliberately **not** cleared by [`register`](Self::register)
    /// so a quarantine stays sticky through the defense's own fallback
    /// re-registration.
    trust: HashMap<ClientId, TrustState>,
    /// Cross-client correlation detector over the same residual stream
    /// ([`crate::defense::CollusionTracker`]): pairwise co-moment windows,
    /// checked on the marginal cadence, escalating persistently co-moving
    /// pairs through [`quarantine`](Self::quarantine).
    collusion: CollusionTracker,
}

impl Default for DistributionRegistry {
    fn default() -> Self {
        DistributionRegistry::new()
    }
}

impl DistributionRegistry {
    /// An empty registry with default grid resolution and automatic
    /// convolution selection.
    pub fn new() -> Self {
        let cfg = SequencerConfig::default();
        DistributionRegistry::with_numerics(cfg.grid_points, cfg.convolution)
    }

    /// An empty registry with explicit numeric parameters.
    pub fn with_numerics(grid_points: usize, convolution: ConvolutionMethod) -> Self {
        assert!(grid_points >= 16, "need at least 16 grid points");
        DistributionRegistry {
            distributions: HashMap::new(),
            grid_points,
            convolution,
            discretized: RwLock::new(HashMap::new()),
            differences: RwLock::new(HashMap::new()),
            safe_margins: RwLock::new(HashMap::new()),
            queries: AtomicU64::new(0),
            trust: HashMap::new(),
            collusion: CollusionTracker::new(),
        }
    }

    /// Build a registry matching a sequencer configuration.
    pub fn from_config(config: &SequencerConfig) -> Self {
        DistributionRegistry::with_numerics(config.grid_points, config.convolution)
    }

    /// Register (or replace) a client's offset distribution, invalidating any
    /// cached quantities involving that client.
    pub fn register(&mut self, client: ClientId, distribution: OffsetDistribution) {
        self.distributions.insert(client, distribution);
        self.discretized.write().remove(&client);
        self.differences
            .write()
            .retain(|(a, b), _| *a != client && *b != client);
        self.safe_margins.write().retain(|(c, _), _| *c != client);
    }

    /// The distribution registered for `client`, if any.
    pub fn get(&self, client: ClientId) -> Option<&OffsetDistribution> {
        self.distributions.get(&client)
    }

    /// Whether `client` has a registered distribution.
    pub fn contains(&self, client: ClientId) -> bool {
        self.distributions.contains_key(&client)
    }

    /// Number of registered clients.
    pub fn len(&self) -> usize {
        self.distributions.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.distributions.is_empty()
    }

    /// All registered clients, sorted.
    pub fn clients(&self) -> Vec<ClientId> {
        let mut v: Vec<ClientId> = self.distributions.keys().copied().collect();
        v.sort();
        v
    }

    /// Feed one observed residual (the client's apparent clock offset as
    /// seen from the sequencer) into the defense's per-client
    /// [`TrustState`], cross-checking it against whatever distribution is
    /// *currently registered* for the client — the claim under test.
    ///
    /// Returns the resulting [`TrustEvent`]; the caller (the online
    /// sequencer) acts on it — fallback re-registration on
    /// [`TrustEvent::Quarantined`], online re-estimation on
    /// [`TrustEvent::DriftSuspected`]. Errors if the client was never
    /// registered.
    pub fn observe_residual(
        &mut self,
        client: ClientId,
        residual: f64,
        cfg: &DefenseConfig,
    ) -> Result<TrustEvent, CoreError> {
        let claimed = self
            .distributions
            .get(&client)
            .ok_or(CoreError::UnknownClient(client))?;
        let state = self.trust.entry(client).or_default();
        Ok(state.observe(residual, claimed, cfg))
    }

    /// The defense's trust state for `client`, if any residual has been
    /// observed for it.
    pub fn trust_state(&self, client: ClientId) -> Option<&TrustState> {
        self.trust.get(&client)
    }

    /// Clear `client`'s residual window after a re-estimation (see
    /// [`TrustState::acknowledge_reestimate`]); a no-op for untracked
    /// clients. Also resets the client's collusion window: the re-learned
    /// distribution changes the residual baseline, so stale pair evidence
    /// would mix two regimes.
    pub fn acknowledge_reestimate(&mut self, client: ClientId) {
        if let Some(state) = self.trust.get_mut(&client) {
            state.acknowledge_reestimate();
        }
        self.collusion.reset_client(client);
    }

    /// Feed one residual into the cross-client correlation detector (see
    /// [`crate::defense::CollusionTracker`]). Quarantined clients are
    /// excluded: their residuals no longer reflect a live claim, and keeping
    /// them in the pair set would only inflate the O(pairs) check cost.
    ///
    /// Returns the detector's report for this observation; the caller acts
    /// on `report.flagged` by escalating each member through
    /// [`quarantine`](Self::quarantine).
    pub fn observe_collusion(
        &mut self,
        client: ClientId,
        residual: f64,
        cfg: &DefenseConfig,
    ) -> CollusionReport {
        let quarantined = self
            .trust
            .get(&client)
            .is_some_and(|s| s.level() == TrustLevel::Quarantined);
        if quarantined {
            return CollusionReport::default();
        }
        self.collusion.observe(client, residual, cfg)
    }

    /// Force `client` into the sticky [`TrustLevel::Quarantined`] state —
    /// the collusion detector's escalation path, which bypasses the
    /// per-client marginal checks (a colluder's marginal can be perfectly
    /// in-distribution). Drops the client's collusion windows so remaining
    /// pairs stop paying for it.
    pub fn quarantine(&mut self, client: ClientId) {
        self.trust.entry(client).or_default().force_quarantine();
        self.collusion.remove(client);
    }

    fn distribution_or_err(&self, client: ClientId) -> Result<&OffsetDistribution, CoreError> {
        self.distributions
            .get(&client)
            .ok_or(CoreError::UnknownClient(client))
    }

    fn discretized_for(&self, client: ClientId) -> Result<Arc<DiscretizedPdf>, CoreError> {
        if let Some(pdf) = self.discretized.read().get(&client) {
            return Ok(Arc::clone(pdf));
        }
        let dist = self.distribution_or_err(client)?;
        let pdf = Arc::new(DiscretizedPdf::from_distribution(dist, self.grid_points));
        self.discretized.write().insert(client, Arc::clone(&pdf));
        Ok(pdf)
    }

    /// The cached distribution of `δ_i − δ_j` for a pair of clients (built on
    /// demand).
    pub fn difference_for(
        &self,
        client_i: ClientId,
        client_j: ClientId,
    ) -> Result<Arc<DiscretizedPdf>, CoreError> {
        let key = (client_i, client_j);
        if let Some(diff) = self.differences.read().get(&key) {
            return Ok(Arc::clone(diff));
        }
        let f_i = self.discretized_for(client_i)?;
        let f_j = self.discretized_for(client_j)?;
        // difference_distribution(a, b) returns the PDF of (b − a); we want
        // δ_i − δ_j, so pass (f_j, f_i).
        let diff = Arc::new(difference_distribution(&f_j, &f_i, self.convolution));
        self.differences.write().insert(key, Arc::clone(&diff));
        Ok(diff)
    }

    /// The preceding probability `P(T*_i < T*_j | T_i, T_j)` for two messages
    /// (§3.2/§3.3 of the paper).
    ///
    /// Messages from the *same* client are compared deterministically by
    /// their local timestamps (one client's offsets cancel out under the
    /// paper's per-message offset model with a shared clock); ties yield 0.5.
    pub fn preceding_probability(&self, i: &Message, j: &Message) -> Result<f64, CoreError> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        if i.client == j.client {
            return Ok(if i.timestamp < j.timestamp {
                1.0
            } else if i.timestamp > j.timestamp {
                0.0
            } else {
                0.5
            });
        }

        let d_i = self.distribution_or_err(i.client)?;
        let d_j = self.distribution_or_err(j.client)?;

        let p = match (d_i.as_gaussian(), d_j.as_gaussian()) {
            (Some(gi), Some(gj)) => gi.preceding_probability(i.timestamp, gj, j.timestamp),
            _ => {
                let diff = self.difference_for(i.client, j.client)?;
                diff.tail(i.timestamp - j.timestamp)
            }
        };

        if p.is_nan() {
            return Err(CoreError::InvalidProbability {
                left: i.id,
                right: j.id,
            });
        }
        Ok(clamp_probability(p))
    }

    /// Resolve the client pair `(client_i, client_j)` into a self-contained
    /// [`PairKernel`] — the one-time counterpart of
    /// [`preceding_probability`](Self::preceding_probability): all registry
    /// lookups, dispatch and (for non-Gaussian pairs) difference-cache lock
    /// traffic happen here, once, after which the kernel evaluates any
    /// number of timestamp deltas lock-free.
    ///
    /// `kernel.preceding(i.timestamp - j.timestamp)` equals
    /// `preceding_probability(i, j)` bit-for-bit for messages `i`, `j` from
    /// these clients (see [`PairKernel`]); kernel resolution itself does
    /// not advance the query counter — callers account their evaluations
    /// with [`record_queries`](Self::record_queries).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownClient`] if either client of a
    /// *distinct* pair is unregistered. Same-client pairs resolve without a
    /// registration check, exactly as the per-call path short-circuits
    /// before looking up distributions.
    ///
    /// # Example
    ///
    /// ```
    /// use tommy_core::prelude::*;
    ///
    /// let mut registry = DistributionRegistry::new();
    /// registry.register(ClientId(0), OffsetDistribution::gaussian(0.0, 5.0));
    /// registry.register(ClientId(1), OffsetDistribution::gaussian(0.0, 5.0));
    ///
    /// let kernel = registry.pair_kernel(ClientId(0), ClientId(1)).unwrap();
    /// // Equal timestamps between symmetric clients: a coin flip (up to
    /// // the erf approximation's ~1e-8 accuracy).
    /// assert!((kernel.preceding(0.0) - 0.5).abs() < 1e-6);
    /// // A much earlier timestamp almost surely precedes.
    /// assert!(kernel.preceding(-50.0) > 0.999);
    /// // The batched form is bit-identical to the scalar one.
    /// let mut out = [0.0; 3];
    /// kernel.preceding_many(&[-50.0, 0.0, 50.0], &mut out);
    /// assert_eq!(out[1].to_bits(), kernel.preceding(0.0).to_bits());
    /// ```
    pub fn pair_kernel(
        &self,
        client_i: ClientId,
        client_j: ClientId,
    ) -> Result<PairKernel, CoreError> {
        if client_i == client_j {
            return Ok(PairKernel::SameClient);
        }
        let d_i = self.distribution_or_err(client_i)?;
        let d_j = self.distribution_or_err(client_j)?;
        match (d_i.as_gaussian(), d_j.as_gaussian()) {
            (Some(gi), Some(gj)) => Ok(PairKernel::Gaussian { i: *gi, j: *gj }),
            _ => Ok(PairKernel::Discretized(
                self.difference_for(client_i, client_j)?,
            )),
        }
    }

    /// Account `n` pairwise probability evaluations performed through
    /// [`PairKernel`]s. Kernel-based column fills call this once per column
    /// (one atomic add) instead of once per element, keeping the counter's
    /// meaning — total pairwise evaluations — identical to the per-call
    /// path at a fraction of its bookkeeping cost.
    pub fn record_queries(&self, n: u64) {
        self.queries.fetch_add(n, Ordering::Relaxed);
    }

    /// The cached safe-emission margin `Q_{δ}(1 − p_safe)` for a client: the
    /// client-level constant in the safe-emission time of §3.5,
    /// `T^F = T − Q_{δ}(1 − p_safe)`. Like the pair kernels, the margin
    /// depends only on `(client, p_safe)`, so the online sequencer's
    /// per-candidate `T_b = max_k T^F_k` sweep reduces to one subtraction
    /// per member instead of a quantile inversion per member.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownClient`] if the client is unregistered.
    ///
    /// # Panics
    ///
    /// Panics unless `0.5 < p_safe < 1.0`, matching
    /// [`safe_emission_time`](crate::sequencer::emission::safe_emission_time).
    pub fn safe_margin(&self, client: ClientId, p_safe: f64) -> Result<f64, CoreError> {
        assert!(
            p_safe > 0.5 && p_safe < 1.0,
            "p_safe must be in (0.5, 1.0), got {p_safe}"
        );
        let key = (client, p_safe.to_bits());
        if let Some(&margin) = self.safe_margins.read().get(&key) {
            return Ok(margin);
        }
        let margin = self.distribution_or_err(client)?.quantile(1.0 - p_safe);
        self.safe_margins.write().insert(key, margin);
        Ok(margin)
    }

    /// Number of cached pairwise difference distributions (exposed for tests
    /// and benchmarks of the caching behaviour).
    pub fn cached_differences(&self) -> usize {
        self.differences.read().len()
    }

    /// Total number of [`preceding_probability`](Self::preceding_probability)
    /// queries served so far. Exposed so callers (and tests) can verify that
    /// hot paths — e.g. a pure clock tick of the online sequencer — perform
    /// zero probability queries.
    pub fn query_count(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// The largest timestamp difference `d = T_i − T_j` at which a message
    /// from `client_i` still *violates fairness* against an already-emitted
    /// message from `client_j`, i.e. the largest `d` with
    /// `P(i precedes j | T_i − T_j = d) >= 1 − threshold`.
    ///
    /// Because the preceding probability is monotone decreasing in
    /// `T_i − T_j`, a per-client-pair margin converts the per-arrival
    /// violation check from a probability query into a plain timestamp
    /// comparison: `violates ⇔ T_i − T_j <= margin`. The margin depends only
    /// on the two clients' distributions and the threshold, so the online
    /// sequencer caches it per pair.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownClient`] if either client is unregistered.
    pub fn violation_margin(
        &self,
        client_i: ClientId,
        client_j: ClientId,
        threshold: f64,
    ) -> Result<f64, CoreError> {
        assert!(
            threshold > 0.5 && threshold < 1.0,
            "threshold must be in (0.5, 1.0), got {threshold}"
        );
        if client_i == client_j {
            // Same-client comparisons are deterministic: p ∈ {0, 0.5, 1} and
            // p >= 1 − threshold (< 0.5) exactly when T_i <= T_j.
            self.distribution_or_err(client_i)?;
            return Ok(0.0);
        }
        let d_i = self.distribution_or_err(client_i)?;
        let d_j = self.distribution_or_err(client_j)?;
        match (d_i.as_gaussian(), d_j.as_gaussian()) {
            (Some(gi), Some(gj)) => {
                // p(d) = Φ((−d + μ_i − μ_j)/s) >= 1 − θ
                //   ⇔ d <= μ_i − μ_j − s·Φ⁻¹(1 − θ).
                let spread = (gi.variance() + gj.variance()).sqrt();
                Ok(gi.mean() - gj.mean()
                    - spread * tommy_stats::erf::std_normal_inv_cdf(1.0 - threshold))
            }
            _ => {
                // p(d) = tail_Δ(d) >= 1 − θ ⇔ cdf_Δ(d) <= θ ⇔ d <= Q_Δ(θ),
                // where Δ = δ_i − δ_j.
                let diff = self.difference_for(client_i, client_j)?;
                Ok(diff.quantile(threshold))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageId;
    use tommy_stats::gaussian::Gaussian;

    fn msg(id: u64, client: u32, ts: f64) -> Message {
        Message::new(MessageId(id), ClientId(client), ts)
    }

    #[test]
    fn gaussian_pair_matches_closed_form() {
        let mut reg = DistributionRegistry::new();
        reg.register(ClientId(0), OffsetDistribution::gaussian(0.0, 5.0));
        reg.register(ClientId(1), OffsetDistribution::gaussian(2.0, 3.0));
        let a = msg(0, 0, 100.0);
        let b = msg(1, 1, 110.0);
        let p = reg.preceding_probability(&a, &b).unwrap();
        let expected = Gaussian::new(0.0, 5.0).preceding_probability(100.0, &Gaussian::new(2.0, 3.0), 110.0);
        assert!((p - expected).abs() < 1e-12);
        // No grids should have been built for the Gaussian fast path.
        assert_eq!(reg.cached_differences(), 0);
    }

    #[test]
    fn numeric_path_agrees_with_gaussian_closed_form() {
        // Register one Gaussian as an "empirical-like" non-Gaussian wrapper by
        // using a mixture with a single component, forcing the numeric path.
        let g = Gaussian::new(1.0, 4.0);
        let as_mixture = OffsetDistribution::Mixture(vec![(1.0, OffsetDistribution::Gaussian(g))]);
        let mut reg = DistributionRegistry::new();
        reg.register(ClientId(0), as_mixture.clone());
        reg.register(ClientId(1), OffsetDistribution::gaussian(-1.0, 2.0));

        let a = msg(0, 0, 50.0);
        let b = msg(1, 1, 53.0);
        let numeric = reg.preceding_probability(&a, &b).unwrap();
        let closed = g.preceding_probability(50.0, &Gaussian::new(-1.0, 2.0), 53.0);
        assert!(
            (numeric - closed).abs() < tommy_stats::PROBABILITY_TOLERANCE,
            "numeric {numeric} vs closed {closed}"
        );
        assert_eq!(reg.cached_differences(), 1);
    }

    #[test]
    fn same_client_comparison_is_deterministic() {
        let mut reg = DistributionRegistry::new();
        reg.register(ClientId(0), OffsetDistribution::gaussian(0.0, 100.0));
        let a = msg(0, 0, 1.0);
        let b = msg(1, 0, 2.0);
        assert_eq!(reg.preceding_probability(&a, &b).unwrap(), 1.0);
        assert_eq!(reg.preceding_probability(&b, &a).unwrap(), 0.0);
        let c = msg(2, 0, 1.0);
        assert_eq!(reg.preceding_probability(&a, &c).unwrap(), 0.5);
    }

    #[test]
    fn unknown_client_is_an_error() {
        let reg = DistributionRegistry::new();
        let a = msg(0, 0, 1.0);
        let b = msg(1, 1, 2.0);
        assert_eq!(
            reg.preceding_probability(&a, &b),
            Err(CoreError::UnknownClient(ClientId(0)))
        );
    }

    #[test]
    fn probabilities_of_reversed_pairs_sum_to_one() {
        let mut reg = DistributionRegistry::new();
        reg.register(ClientId(0), OffsetDistribution::laplace(0.0, 3.0));
        reg.register(ClientId(1), OffsetDistribution::gaussian(1.0, 2.0));
        let a = msg(0, 0, 10.0);
        let b = msg(1, 1, 12.0);
        let p_ab = reg.preceding_probability(&a, &b).unwrap();
        let p_ba = reg.preceding_probability(&b, &a).unwrap();
        assert!(
            (p_ab + p_ba - 1.0).abs() < 0.02,
            "p_ab = {p_ab}, p_ba = {p_ba}"
        );
    }

    #[test]
    fn registration_invalidates_pair_cache() {
        let mut reg = DistributionRegistry::new();
        reg.register(ClientId(0), OffsetDistribution::laplace(0.0, 1.0));
        reg.register(ClientId(1), OffsetDistribution::laplace(5.0, 1.0));
        let a = msg(0, 0, 0.0);
        let b = msg(1, 1, 0.0);
        // Client 1's clock runs 5 units ahead, so with equal raw timestamps
        // its event actually happened ~5 units earlier: a precedes b is
        // unlikely.
        let p_before = reg.preceding_probability(&a, &b).unwrap();
        assert_eq!(reg.cached_differences(), 1);

        // Flip client 1 to run 5 units behind: the cached difference must not
        // be reused and the probability must flip.
        reg.register(ClientId(1), OffsetDistribution::laplace(-5.0, 1.0));
        assert_eq!(reg.cached_differences(), 0);
        let p_after = reg.preceding_probability(&a, &b).unwrap();
        assert!(p_before < 0.1, "p_before = {p_before}");
        assert!(p_after > 0.9, "p_after = {p_after}");
    }

    #[test]
    fn query_counter_tracks_probability_calls() {
        let mut reg = DistributionRegistry::new();
        reg.register(ClientId(0), OffsetDistribution::gaussian(0.0, 1.0));
        reg.register(ClientId(1), OffsetDistribution::gaussian(0.0, 2.0));
        assert_eq!(reg.query_count(), 0);
        let a = msg(0, 0, 1.0);
        let b = msg(1, 1, 2.0);
        reg.preceding_probability(&a, &b).unwrap();
        reg.preceding_probability(&b, &a).unwrap();
        assert_eq!(reg.query_count(), 2);
        // Same-client (deterministic) comparisons count too: the counter
        // measures calls, not grid work.
        let c = msg(2, 0, 3.0);
        reg.preceding_probability(&a, &c).unwrap();
        assert_eq!(reg.query_count(), 3);
        // violation_margin is not a probability query.
        reg.violation_margin(ClientId(0), ClientId(1), 0.75).unwrap();
        assert_eq!(reg.query_count(), 3);
    }

    #[test]
    fn violation_margin_agrees_with_direct_queries_gaussian() {
        let mut reg = DistributionRegistry::new();
        reg.register(ClientId(0), OffsetDistribution::gaussian(1.0, 3.0));
        reg.register(ClientId(1), OffsetDistribution::gaussian(-2.0, 5.0));
        let threshold = 0.75;
        let margin = reg.violation_margin(ClientId(0), ClientId(1), threshold).unwrap();
        // Just inside the margin: the direct query must report a violation;
        // just outside: it must not.
        for (delta, expect) in [(-0.01, true), (0.01, false)] {
            let t_j = 100.0;
            let t_i = t_j + margin + delta;
            let i = msg(0, 0, t_i);
            let j = msg(1, 1, t_j);
            let p = reg.preceding_probability(&i, &j).unwrap();
            assert_eq!(
                p >= 1.0 - threshold,
                expect,
                "delta {delta}: p = {p}, margin = {margin}"
            );
        }
    }

    #[test]
    fn violation_margin_agrees_with_direct_queries_numeric() {
        let mut reg = DistributionRegistry::new();
        reg.register(ClientId(0), OffsetDistribution::laplace(0.5, 2.0));
        reg.register(ClientId(1), OffsetDistribution::gaussian(-0.5, 1.5));
        let threshold = 0.8;
        let margin = reg.violation_margin(ClientId(0), ClientId(1), threshold).unwrap();
        // The numeric margin inverts the same discretized difference grid
        // the direct query integrates, so agreement holds to grid accuracy.
        for (delta, expect) in [(-0.05, true), (0.05, false)] {
            let i = msg(0, 0, 50.0 + margin + delta);
            let j = msg(1, 1, 50.0);
            let p = reg.preceding_probability(&i, &j).unwrap();
            assert_eq!(
                p >= 1.0 - threshold,
                expect,
                "delta {delta}: p = {p}, margin = {margin}"
            );
        }
    }

    #[test]
    fn violation_margin_same_client_and_unknown_client() {
        let mut reg = DistributionRegistry::new();
        reg.register(ClientId(0), OffsetDistribution::gaussian(0.0, 1.0));
        assert_eq!(reg.violation_margin(ClientId(0), ClientId(0), 0.75).unwrap(), 0.0);
        assert_eq!(
            reg.violation_margin(ClientId(0), ClientId(9), 0.75),
            Err(CoreError::UnknownClient(ClientId(9)))
        );
    }

    #[test]
    fn pair_kernel_is_bit_identical_to_per_call_path() {
        let mut reg = DistributionRegistry::new();
        reg.register(ClientId(0), OffsetDistribution::gaussian(1.0, 3.0));
        reg.register(ClientId(1), OffsetDistribution::gaussian(-2.0, 5.0));
        reg.register(ClientId(2), OffsetDistribution::laplace(0.5, 2.0));

        for (a, b) in [(0u32, 1u32), (1, 0), (0, 2), (2, 1), (1, 1)] {
            let kernel = reg.pair_kernel(ClientId(a), ClientId(b)).unwrap();
            let t_j = 100.0;
            let pairs: Vec<(Message, Message)> = (-40..=40)
                .map(|k| (msg(0, a, t_j + k as f64 * 0.37), msg(1, b, t_j)))
                .collect();
            // The deltas as a column fill would compute them, from the
            // messages' actual timestamps.
            let dts: Vec<f64> = pairs.iter().map(|(i, j)| i.timestamp - j.timestamp).collect();
            let mut batch = vec![0.0; dts.len()];
            kernel.preceding_many(&dts, &mut batch);
            for (k, (i, j)) in pairs.iter().enumerate() {
                let per_call = reg.preceding_probability(i, j).unwrap();
                let scalar = kernel.preceding(dts[k]);
                assert_eq!(scalar.to_bits(), per_call.to_bits(), "({a},{b}) k={k}");
                assert_eq!(batch[k].to_bits(), per_call.to_bits(), "({a},{b}) k={k} batched");
            }
        }
    }

    #[test]
    fn pair_kernel_unknown_client_and_same_client_semantics() {
        let mut reg = DistributionRegistry::new();
        reg.register(ClientId(0), OffsetDistribution::gaussian(0.0, 1.0));
        assert_eq!(
            reg.pair_kernel(ClientId(0), ClientId(9)).unwrap_err(),
            CoreError::UnknownClient(ClientId(9))
        );
        assert_eq!(
            reg.pair_kernel(ClientId(9), ClientId(0)).unwrap_err(),
            CoreError::UnknownClient(ClientId(9))
        );
        // Same-client pairs resolve without a registration check, exactly as
        // preceding_probability short-circuits before any lookup.
        let kernel = reg.pair_kernel(ClientId(9), ClientId(9)).unwrap();
        assert!(matches!(kernel, PairKernel::SameClient));
        assert_eq!(kernel.preceding(-1.0), 1.0);
        assert_eq!(kernel.preceding(1.0), 0.0);
        assert_eq!(kernel.preceding(0.0), 0.5);
    }

    #[test]
    fn pair_kernel_resolution_counts_no_queries() {
        let mut reg = DistributionRegistry::new();
        reg.register(ClientId(0), OffsetDistribution::gaussian(0.0, 1.0));
        reg.register(ClientId(1), OffsetDistribution::laplace(0.0, 2.0));
        let kernel = reg.pair_kernel(ClientId(0), ClientId(1)).unwrap();
        let mut out = [0.0; 4];
        kernel.preceding_many(&[0.0, 1.0, 2.0, 3.0], &mut out);
        assert_eq!(reg.query_count(), 0);
        // Kernel callers account their evaluations in bulk.
        reg.record_queries(4);
        assert_eq!(reg.query_count(), 4);
    }

    #[test]
    fn safe_margin_matches_direct_quantile_and_invalidates() {
        use tommy_stats::distribution::Distribution as _;
        let mut reg = DistributionRegistry::new();
        let dist = OffsetDistribution::laplace(1.0, 4.0);
        reg.register(ClientId(0), dist.clone());
        let p_safe = 0.999;
        let margin = reg.safe_margin(ClientId(0), p_safe).unwrap();
        assert_eq!(margin.to_bits(), dist.quantile(1.0 - p_safe).to_bits());
        // Cached value is reused; re-registration invalidates it.
        assert_eq!(reg.safe_margin(ClientId(0), p_safe).unwrap(), margin);
        let flipped = OffsetDistribution::laplace(-1.0, 4.0);
        reg.register(ClientId(0), flipped.clone());
        let after = reg.safe_margin(ClientId(0), p_safe).unwrap();
        assert_eq!(after.to_bits(), flipped.quantile(1.0 - p_safe).to_bits());
        assert_ne!(after.to_bits(), margin.to_bits());
        assert_eq!(
            reg.safe_margin(ClientId(7), p_safe),
            Err(CoreError::UnknownClient(ClientId(7)))
        );
    }

    #[test]
    fn clients_listing_is_sorted() {
        let mut reg = DistributionRegistry::new();
        for id in [5u32, 1, 3] {
            reg.register(ClientId(id), OffsetDistribution::gaussian(0.0, 1.0));
        }
        assert_eq!(reg.clients(), vec![ClientId(1), ClientId(3), ClientId(5)]);
        assert_eq!(reg.len(), 3);
        assert!(!reg.is_empty());
        assert!(reg.contains(ClientId(3)));
        assert!(!reg.contains(ClientId(2)));
    }
}
