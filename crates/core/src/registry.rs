//! Per-client offset distributions and cached derived quantities.
//!
//! The sequencer needs, for every pair of clients, the distribution of the
//! difference of their clock offsets (§3.3). Building those difference
//! distributions involves discretization and convolution, so the registry
//! caches both the per-client discretized PDFs and the per-pair difference
//! PDFs. For Gaussian pairs no grid is ever built — the closed form of §3.2
//! is used directly.
//!
//! ## Sign convention
//!
//! A client's offset distribution describes `δ = local_clock − sequencer_clock`
//! — exactly the noise `ε` the paper's evaluation (§4) adds to the wall-clock
//! time when tagging a message (`T = t + ε`). With that convention the
//! preceding probability is
//!
//! ```text
//! P(T*_i < T*_j | T_i, T_j) = P(δ_i − δ_j > T_i − T_j)
//! ```
//!
//! which for Gaussian offsets reduces to the paper's closed form
//! `Φ((T_j − T_i + μ_i − μ_j)/√(σ_i² + σ_j²))`.

use crate::config::SequencerConfig;
use crate::error::CoreError;
use crate::message::{ClientId, Message};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tommy_stats::clamp_probability;
use tommy_stats::convolution::{difference_distribution, ConvolutionMethod};
use tommy_stats::discretized::DiscretizedPdf;
use tommy_stats::distribution::OffsetDistribution;

/// Registry of per-client clock-offset distributions with derived caches.
#[derive(Debug)]
pub struct DistributionRegistry {
    distributions: HashMap<ClientId, OffsetDistribution>,
    grid_points: usize,
    convolution: ConvolutionMethod,
    discretized: RwLock<HashMap<ClientId, Arc<DiscretizedPdf>>>,
    differences: RwLock<HashMap<(ClientId, ClientId), Arc<DiscretizedPdf>>>,
    /// Number of `preceding_probability` calls served so far. The online
    /// sequencer's O(1)-tick guarantee is asserted against this counter.
    queries: AtomicU64,
}

impl Default for DistributionRegistry {
    fn default() -> Self {
        DistributionRegistry::new()
    }
}

impl DistributionRegistry {
    /// An empty registry with default grid resolution and automatic
    /// convolution selection.
    pub fn new() -> Self {
        let cfg = SequencerConfig::default();
        DistributionRegistry::with_numerics(cfg.grid_points, cfg.convolution)
    }

    /// An empty registry with explicit numeric parameters.
    pub fn with_numerics(grid_points: usize, convolution: ConvolutionMethod) -> Self {
        assert!(grid_points >= 16, "need at least 16 grid points");
        DistributionRegistry {
            distributions: HashMap::new(),
            grid_points,
            convolution,
            discretized: RwLock::new(HashMap::new()),
            differences: RwLock::new(HashMap::new()),
            queries: AtomicU64::new(0),
        }
    }

    /// Build a registry matching a sequencer configuration.
    pub fn from_config(config: &SequencerConfig) -> Self {
        DistributionRegistry::with_numerics(config.grid_points, config.convolution)
    }

    /// Register (or replace) a client's offset distribution, invalidating any
    /// cached quantities involving that client.
    pub fn register(&mut self, client: ClientId, distribution: OffsetDistribution) {
        self.distributions.insert(client, distribution);
        self.discretized.write().remove(&client);
        self.differences
            .write()
            .retain(|(a, b), _| *a != client && *b != client);
    }

    /// The distribution registered for `client`, if any.
    pub fn get(&self, client: ClientId) -> Option<&OffsetDistribution> {
        self.distributions.get(&client)
    }

    /// Whether `client` has a registered distribution.
    pub fn contains(&self, client: ClientId) -> bool {
        self.distributions.contains_key(&client)
    }

    /// Number of registered clients.
    pub fn len(&self) -> usize {
        self.distributions.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.distributions.is_empty()
    }

    /// All registered clients, sorted.
    pub fn clients(&self) -> Vec<ClientId> {
        let mut v: Vec<ClientId> = self.distributions.keys().copied().collect();
        v.sort();
        v
    }

    fn distribution_or_err(&self, client: ClientId) -> Result<&OffsetDistribution, CoreError> {
        self.distributions
            .get(&client)
            .ok_or(CoreError::UnknownClient(client))
    }

    fn discretized_for(&self, client: ClientId) -> Result<Arc<DiscretizedPdf>, CoreError> {
        if let Some(pdf) = self.discretized.read().get(&client) {
            return Ok(Arc::clone(pdf));
        }
        let dist = self.distribution_or_err(client)?;
        let pdf = Arc::new(DiscretizedPdf::from_distribution(dist, self.grid_points));
        self.discretized.write().insert(client, Arc::clone(&pdf));
        Ok(pdf)
    }

    /// The cached distribution of `δ_i − δ_j` for a pair of clients (built on
    /// demand).
    pub fn difference_for(
        &self,
        client_i: ClientId,
        client_j: ClientId,
    ) -> Result<Arc<DiscretizedPdf>, CoreError> {
        let key = (client_i, client_j);
        if let Some(diff) = self.differences.read().get(&key) {
            return Ok(Arc::clone(diff));
        }
        let f_i = self.discretized_for(client_i)?;
        let f_j = self.discretized_for(client_j)?;
        // difference_distribution(a, b) returns the PDF of (b − a); we want
        // δ_i − δ_j, so pass (f_j, f_i).
        let diff = Arc::new(difference_distribution(&f_j, &f_i, self.convolution));
        self.differences.write().insert(key, Arc::clone(&diff));
        Ok(diff)
    }

    /// The preceding probability `P(T*_i < T*_j | T_i, T_j)` for two messages
    /// (§3.2/§3.3 of the paper).
    ///
    /// Messages from the *same* client are compared deterministically by
    /// their local timestamps (one client's offsets cancel out under the
    /// paper's per-message offset model with a shared clock); ties yield 0.5.
    pub fn preceding_probability(&self, i: &Message, j: &Message) -> Result<f64, CoreError> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        if i.client == j.client {
            return Ok(if i.timestamp < j.timestamp {
                1.0
            } else if i.timestamp > j.timestamp {
                0.0
            } else {
                0.5
            });
        }

        let d_i = self.distribution_or_err(i.client)?;
        let d_j = self.distribution_or_err(j.client)?;

        let p = match (d_i.as_gaussian(), d_j.as_gaussian()) {
            (Some(gi), Some(gj)) => gi.preceding_probability(i.timestamp, gj, j.timestamp),
            _ => {
                let diff = self.difference_for(i.client, j.client)?;
                diff.tail(i.timestamp - j.timestamp)
            }
        };

        if p.is_nan() {
            return Err(CoreError::InvalidProbability {
                left: i.id,
                right: j.id,
            });
        }
        Ok(clamp_probability(p))
    }

    /// Number of cached pairwise difference distributions (exposed for tests
    /// and benchmarks of the caching behaviour).
    pub fn cached_differences(&self) -> usize {
        self.differences.read().len()
    }

    /// Total number of [`preceding_probability`](Self::preceding_probability)
    /// queries served so far. Exposed so callers (and tests) can verify that
    /// hot paths — e.g. a pure clock tick of the online sequencer — perform
    /// zero probability queries.
    pub fn query_count(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// The largest timestamp difference `d = T_i − T_j` at which a message
    /// from `client_i` still *violates fairness* against an already-emitted
    /// message from `client_j`, i.e. the largest `d` with
    /// `P(i precedes j | T_i − T_j = d) >= 1 − threshold`.
    ///
    /// Because the preceding probability is monotone decreasing in
    /// `T_i − T_j`, a per-client-pair margin converts the per-arrival
    /// violation check from a probability query into a plain timestamp
    /// comparison: `violates ⇔ T_i − T_j <= margin`. The margin depends only
    /// on the two clients' distributions and the threshold, so the online
    /// sequencer caches it per pair.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownClient`] if either client is unregistered.
    pub fn violation_margin(
        &self,
        client_i: ClientId,
        client_j: ClientId,
        threshold: f64,
    ) -> Result<f64, CoreError> {
        assert!(
            threshold > 0.5 && threshold < 1.0,
            "threshold must be in (0.5, 1.0), got {threshold}"
        );
        if client_i == client_j {
            // Same-client comparisons are deterministic: p ∈ {0, 0.5, 1} and
            // p >= 1 − threshold (< 0.5) exactly when T_i <= T_j.
            self.distribution_or_err(client_i)?;
            return Ok(0.0);
        }
        let d_i = self.distribution_or_err(client_i)?;
        let d_j = self.distribution_or_err(client_j)?;
        match (d_i.as_gaussian(), d_j.as_gaussian()) {
            (Some(gi), Some(gj)) => {
                // p(d) = Φ((−d + μ_i − μ_j)/s) >= 1 − θ
                //   ⇔ d <= μ_i − μ_j − s·Φ⁻¹(1 − θ).
                let spread = (gi.variance() + gj.variance()).sqrt();
                Ok(gi.mean() - gj.mean()
                    - spread * tommy_stats::erf::std_normal_inv_cdf(1.0 - threshold))
            }
            _ => {
                // p(d) = tail_Δ(d) >= 1 − θ ⇔ cdf_Δ(d) <= θ ⇔ d <= Q_Δ(θ),
                // where Δ = δ_i − δ_j.
                let diff = self.difference_for(client_i, client_j)?;
                Ok(diff.quantile(threshold))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageId;
    use tommy_stats::gaussian::Gaussian;

    fn msg(id: u64, client: u32, ts: f64) -> Message {
        Message::new(MessageId(id), ClientId(client), ts)
    }

    #[test]
    fn gaussian_pair_matches_closed_form() {
        let mut reg = DistributionRegistry::new();
        reg.register(ClientId(0), OffsetDistribution::gaussian(0.0, 5.0));
        reg.register(ClientId(1), OffsetDistribution::gaussian(2.0, 3.0));
        let a = msg(0, 0, 100.0);
        let b = msg(1, 1, 110.0);
        let p = reg.preceding_probability(&a, &b).unwrap();
        let expected = Gaussian::new(0.0, 5.0).preceding_probability(100.0, &Gaussian::new(2.0, 3.0), 110.0);
        assert!((p - expected).abs() < 1e-12);
        // No grids should have been built for the Gaussian fast path.
        assert_eq!(reg.cached_differences(), 0);
    }

    #[test]
    fn numeric_path_agrees_with_gaussian_closed_form() {
        // Register one Gaussian as an "empirical-like" non-Gaussian wrapper by
        // using a mixture with a single component, forcing the numeric path.
        let g = Gaussian::new(1.0, 4.0);
        let as_mixture = OffsetDistribution::Mixture(vec![(1.0, OffsetDistribution::Gaussian(g))]);
        let mut reg = DistributionRegistry::new();
        reg.register(ClientId(0), as_mixture.clone());
        reg.register(ClientId(1), OffsetDistribution::gaussian(-1.0, 2.0));

        let a = msg(0, 0, 50.0);
        let b = msg(1, 1, 53.0);
        let numeric = reg.preceding_probability(&a, &b).unwrap();
        let closed = g.preceding_probability(50.0, &Gaussian::new(-1.0, 2.0), 53.0);
        assert!(
            (numeric - closed).abs() < tommy_stats::PROBABILITY_TOLERANCE,
            "numeric {numeric} vs closed {closed}"
        );
        assert_eq!(reg.cached_differences(), 1);
    }

    #[test]
    fn same_client_comparison_is_deterministic() {
        let mut reg = DistributionRegistry::new();
        reg.register(ClientId(0), OffsetDistribution::gaussian(0.0, 100.0));
        let a = msg(0, 0, 1.0);
        let b = msg(1, 0, 2.0);
        assert_eq!(reg.preceding_probability(&a, &b).unwrap(), 1.0);
        assert_eq!(reg.preceding_probability(&b, &a).unwrap(), 0.0);
        let c = msg(2, 0, 1.0);
        assert_eq!(reg.preceding_probability(&a, &c).unwrap(), 0.5);
    }

    #[test]
    fn unknown_client_is_an_error() {
        let reg = DistributionRegistry::new();
        let a = msg(0, 0, 1.0);
        let b = msg(1, 1, 2.0);
        assert_eq!(
            reg.preceding_probability(&a, &b),
            Err(CoreError::UnknownClient(ClientId(0)))
        );
    }

    #[test]
    fn probabilities_of_reversed_pairs_sum_to_one() {
        let mut reg = DistributionRegistry::new();
        reg.register(ClientId(0), OffsetDistribution::laplace(0.0, 3.0));
        reg.register(ClientId(1), OffsetDistribution::gaussian(1.0, 2.0));
        let a = msg(0, 0, 10.0);
        let b = msg(1, 1, 12.0);
        let p_ab = reg.preceding_probability(&a, &b).unwrap();
        let p_ba = reg.preceding_probability(&b, &a).unwrap();
        assert!(
            (p_ab + p_ba - 1.0).abs() < 0.02,
            "p_ab = {p_ab}, p_ba = {p_ba}"
        );
    }

    #[test]
    fn registration_invalidates_pair_cache() {
        let mut reg = DistributionRegistry::new();
        reg.register(ClientId(0), OffsetDistribution::laplace(0.0, 1.0));
        reg.register(ClientId(1), OffsetDistribution::laplace(5.0, 1.0));
        let a = msg(0, 0, 0.0);
        let b = msg(1, 1, 0.0);
        // Client 1's clock runs 5 units ahead, so with equal raw timestamps
        // its event actually happened ~5 units earlier: a precedes b is
        // unlikely.
        let p_before = reg.preceding_probability(&a, &b).unwrap();
        assert_eq!(reg.cached_differences(), 1);

        // Flip client 1 to run 5 units behind: the cached difference must not
        // be reused and the probability must flip.
        reg.register(ClientId(1), OffsetDistribution::laplace(-5.0, 1.0));
        assert_eq!(reg.cached_differences(), 0);
        let p_after = reg.preceding_probability(&a, &b).unwrap();
        assert!(p_before < 0.1, "p_before = {p_before}");
        assert!(p_after > 0.9, "p_after = {p_after}");
    }

    #[test]
    fn query_counter_tracks_probability_calls() {
        let mut reg = DistributionRegistry::new();
        reg.register(ClientId(0), OffsetDistribution::gaussian(0.0, 1.0));
        reg.register(ClientId(1), OffsetDistribution::gaussian(0.0, 2.0));
        assert_eq!(reg.query_count(), 0);
        let a = msg(0, 0, 1.0);
        let b = msg(1, 1, 2.0);
        reg.preceding_probability(&a, &b).unwrap();
        reg.preceding_probability(&b, &a).unwrap();
        assert_eq!(reg.query_count(), 2);
        // Same-client (deterministic) comparisons count too: the counter
        // measures calls, not grid work.
        let c = msg(2, 0, 3.0);
        reg.preceding_probability(&a, &c).unwrap();
        assert_eq!(reg.query_count(), 3);
        // violation_margin is not a probability query.
        reg.violation_margin(ClientId(0), ClientId(1), 0.75).unwrap();
        assert_eq!(reg.query_count(), 3);
    }

    #[test]
    fn violation_margin_agrees_with_direct_queries_gaussian() {
        let mut reg = DistributionRegistry::new();
        reg.register(ClientId(0), OffsetDistribution::gaussian(1.0, 3.0));
        reg.register(ClientId(1), OffsetDistribution::gaussian(-2.0, 5.0));
        let threshold = 0.75;
        let margin = reg.violation_margin(ClientId(0), ClientId(1), threshold).unwrap();
        // Just inside the margin: the direct query must report a violation;
        // just outside: it must not.
        for (delta, expect) in [(-0.01, true), (0.01, false)] {
            let t_j = 100.0;
            let t_i = t_j + margin + delta;
            let i = msg(0, 0, t_i);
            let j = msg(1, 1, t_j);
            let p = reg.preceding_probability(&i, &j).unwrap();
            assert_eq!(
                p >= 1.0 - threshold,
                expect,
                "delta {delta}: p = {p}, margin = {margin}"
            );
        }
    }

    #[test]
    fn violation_margin_agrees_with_direct_queries_numeric() {
        let mut reg = DistributionRegistry::new();
        reg.register(ClientId(0), OffsetDistribution::laplace(0.5, 2.0));
        reg.register(ClientId(1), OffsetDistribution::gaussian(-0.5, 1.5));
        let threshold = 0.8;
        let margin = reg.violation_margin(ClientId(0), ClientId(1), threshold).unwrap();
        // The numeric margin inverts the same discretized difference grid
        // the direct query integrates, so agreement holds to grid accuracy.
        for (delta, expect) in [(-0.05, true), (0.05, false)] {
            let i = msg(0, 0, 50.0 + margin + delta);
            let j = msg(1, 1, 50.0);
            let p = reg.preceding_probability(&i, &j).unwrap();
            assert_eq!(
                p >= 1.0 - threshold,
                expect,
                "delta {delta}: p = {p}, margin = {margin}"
            );
        }
    }

    #[test]
    fn violation_margin_same_client_and_unknown_client() {
        let mut reg = DistributionRegistry::new();
        reg.register(ClientId(0), OffsetDistribution::gaussian(0.0, 1.0));
        assert_eq!(reg.violation_margin(ClientId(0), ClientId(0), 0.75).unwrap(), 0.0);
        assert_eq!(
            reg.violation_margin(ClientId(0), ClientId(9), 0.75),
            Err(CoreError::UnknownClient(ClientId(9)))
        );
    }

    #[test]
    fn clients_listing_is_sorted() {
        let mut reg = DistributionRegistry::new();
        for id in [5u32, 1, 3] {
            reg.register(ClientId(id), OffsetDistribution::gaussian(0.0, 1.0));
        }
        assert_eq!(reg.clients(), vec![ClientId(1), ClientId(3), ClientId(5)]);
        assert_eq!(reg.len(), 3);
        assert!(!reg.is_empty());
        assert!(reg.contains(ClientId(3)));
        assert!(!reg.contains(ClientId(2)));
    }
}
