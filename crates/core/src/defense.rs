//! Untrusted-distribution hardening: trust tracking, quarantine, and
//! drift-aware re-estimation triggers.
//!
//! §3.3 of the paper has every client *self-report* its offset distribution
//! — an honesty assumption the §5 threat model breaks first. This module is
//! the sequencer-side cross-check: for each client the registry keeps a
//! [`TrustState`] that accumulates observed timestamp residuals (what the
//! client's clock error *looks like* from the sequencer's chair) and
//! periodically compares their empirical distribution against the claimed
//! one with a Kolmogorov–Smirnov discrepancy plus a mean z-score.
//!
//! Two failure modes are distinguished by *when* the check first fails:
//!
//! * a client whose **first** full-window check already disagrees with its
//!   claim most likely misreported — it is quarantined
//!   ([`TrustLevel::Quarantined`]), and the caller re-registers it on a
//!   conservative fallback distribution (empirical mean, inflated σ) so the
//!   sequencer stops trusting the lie without ejecting the client;
//! * a client that **passed** the check before and fails later was honest at
//!   registration time but its clock has since moved (drift, NTP step) —
//!   the caller re-estimates its distribution online through
//!   [`tommy_clock::DistributionLearner`] and resets the window.
//!
//! The degradation counters (`quarantines`, `reestimations`,
//! `margin_fallbacks`) surface through
//! [`OnlineStats`](crate::sequencer::online::OnlineStats) next to the
//! existing rebuild/repair counters; the defenses themselves are wired in
//! [`OnlineSequencer::submit`](crate::sequencer::online::OnlineSequencer::submit).
//! See `ARCHITECTURE.md`, "Threat model & degradation", for the full
//! attack-families × defenses matrix.

use std::collections::VecDeque;

use tommy_stats::distribution::{Distribution, OffsetDistribution};

/// Tuning knobs for the residual cross-check.
///
/// Defaults are conservative: the defense is **off** unless explicitly
/// enabled ([`DefenseConfig::enabled`]), so existing pipelines are
/// bit-for-bit unchanged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefenseConfig {
    /// Master switch; `false` makes every observation a no-op.
    pub enabled: bool,
    /// How many recent residuals each client's window retains.
    pub window: usize,
    /// Minimum residuals before the first check can run.
    pub min_samples: usize,
    /// Run the check every `check_interval` new residuals (once warm).
    pub check_interval: usize,
    /// KS discrepancy above which the claim is rejected. The effective
    /// limit is `max(ks_threshold, 1.63/√n)` — the classical α=0.01
    /// critical value floors the small-window checks (where D is noisy
    /// under H0) while this flat cap governs once the window fills.
    pub ks_threshold: f64,
    /// Reject when the empirical mean sits more than this many standard
    /// errors from the claimed mean (catches pure mean shifts that a small
    /// window's KS may miss).
    pub drift_zscore: f64,
    /// Fallback σ multiplier applied when quarantining: the client is
    /// re-registered with `max(claimed σ, empirical σ) × sigma_inflation`,
    /// buying conservative (wide) margins instead of the lied-about ones.
    pub sigma_inflation: f64,
    /// Expected network delay subtracted from `arrival − timestamp` when the
    /// caller forms residuals; lets the residual center on the clock offset
    /// rather than on transport latency.
    pub expected_delay: f64,
}

impl DefenseConfig {
    /// The defense switched off (the default): no state, no overhead.
    pub fn disabled() -> Self {
        DefenseConfig {
            enabled: false,
            window: 64,
            min_samples: 16,
            check_interval: 8,
            ks_threshold: 0.3,
            drift_zscore: 5.0,
            sigma_inflation: 3.0,
            expected_delay: 0.0,
        }
    }

    /// The defense switched on with default thresholds.
    pub fn enabled() -> Self {
        DefenseConfig {
            enabled: true,
            ..DefenseConfig::disabled()
        }
    }

    /// Set the residual window size (must hold at least `min_samples`).
    pub fn with_window(mut self, window: usize) -> Self {
        assert!(window >= 2, "window must hold at least two residuals");
        self.window = window;
        self
    }

    /// Set the warm-up sample count before the first check.
    pub fn with_min_samples(mut self, min_samples: usize) -> Self {
        assert!(min_samples >= 2, "need at least two samples to test");
        self.min_samples = min_samples;
        self
    }

    /// Set the cadence (in residuals) of the cross-check once warm.
    pub fn with_check_interval(mut self, check_interval: usize) -> Self {
        assert!(check_interval >= 1, "check interval must be positive");
        self.check_interval = check_interval;
        self
    }

    /// Set the KS rejection threshold.
    pub fn with_ks_threshold(mut self, ks_threshold: f64) -> Self {
        assert!(
            ks_threshold > 0.0 && ks_threshold < 1.0,
            "KS threshold must be in (0, 1)"
        );
        self.ks_threshold = ks_threshold;
        self
    }

    /// Set the mean-shift z-score threshold.
    pub fn with_drift_zscore(mut self, drift_zscore: f64) -> Self {
        assert!(drift_zscore > 0.0, "z-score threshold must be positive");
        self.drift_zscore = drift_zscore;
        self
    }

    /// Set the quarantine σ inflation factor.
    pub fn with_sigma_inflation(mut self, sigma_inflation: f64) -> Self {
        assert!(sigma_inflation >= 1.0, "σ inflation must be ≥ 1");
        self.sigma_inflation = sigma_inflation;
        self
    }

    /// Set the expected network delay used when forming residuals.
    pub fn with_expected_delay(mut self, expected_delay: f64) -> Self {
        assert!(expected_delay.is_finite(), "expected delay must be finite");
        self.expected_delay = expected_delay;
        self
    }
}

impl Default for DefenseConfig {
    fn default() -> Self {
        DefenseConfig::disabled()
    }
}

/// How much the sequencer currently trusts a client's claimed distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrustLevel {
    /// Residuals are (so far) consistent with the claim.
    Trusted,
    /// The claim was rejected on its first full check: the client is treated
    /// as a misreporter and pinned to conservative fallback margins.
    /// Quarantine is sticky — a misreporter does not earn trust back by
    /// matching the *fallback* distribution it was forced onto.
    Quarantined,
}

/// Outcome of feeding one residual into [`TrustState::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrustEvent {
    /// Nothing to act on (check not due, or check passed).
    Ok,
    /// The client passed earlier checks but now disagrees with its claim:
    /// its clock has likely drifted. The caller should re-estimate from
    /// [`TrustState::residuals`] and call
    /// [`TrustState::acknowledge_reestimate`].
    DriftSuspected,
    /// The client's first full check already disagrees with its claim: it is
    /// now [`TrustLevel::Quarantined`] and should be pinned to a fallback
    /// distribution.
    Quarantined,
}

/// Per-client residual window and verdict state.
#[derive(Debug, Clone)]
pub struct TrustState {
    residuals: VecDeque<f64>,
    level: TrustLevel,
    /// Whether the claim has ever passed a full check — the discriminator
    /// between "misreported from the start" and "honest then drifted".
    validated: bool,
    since_check: usize,
    checks: u64,
    last_discrepancy: f64,
    last_drift_score: f64,
}

impl Default for TrustState {
    fn default() -> Self {
        TrustState::new()
    }
}

impl TrustState {
    /// A fresh, trusting state with an empty window.
    pub fn new() -> Self {
        TrustState {
            residuals: VecDeque::new(),
            level: TrustLevel::Trusted,
            validated: false,
            since_check: 0,
            checks: 0,
            last_discrepancy: 0.0,
            last_drift_score: 0.0,
        }
    }

    /// Current trust level.
    pub fn level(&self) -> TrustLevel {
        self.level
    }

    /// Whether the claim has passed at least one full check.
    pub fn validated(&self) -> bool {
        self.validated
    }

    /// Number of cross-checks run so far.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// KS discrepancy from the most recent check.
    pub fn last_discrepancy(&self) -> f64 {
        self.last_discrepancy
    }

    /// Mean z-score from the most recent check.
    pub fn last_drift_score(&self) -> f64 {
        self.last_drift_score
    }

    /// The retained residual window, oldest first.
    pub fn residuals(&self) -> impl Iterator<Item = f64> + '_ {
        self.residuals.iter().copied()
    }

    /// Feed one observed residual; runs the cross-check against `claimed`
    /// when due and returns what (if anything) the caller must do.
    pub fn observe(
        &mut self,
        residual: f64,
        claimed: &OffsetDistribution,
        cfg: &DefenseConfig,
    ) -> TrustEvent {
        assert!(residual.is_finite(), "residuals must be finite");
        if self.level == TrustLevel::Quarantined {
            // Still record: the fallback re-registration wants fresh
            // empirical moments, and post-mortems want the evidence.
            self.push(residual, cfg);
            return TrustEvent::Ok;
        }
        self.push(residual, cfg);
        self.since_check += 1;
        if self.residuals.len() < cfg.min_samples || self.since_check < cfg.check_interval {
            return TrustEvent::Ok;
        }
        self.since_check = 0;
        self.checks += 1;
        let (ks, z) = self.discrepancy(claimed);
        self.last_discrepancy = ks;
        self.last_drift_score = z;
        // Small windows produce noisy D even under H0: floor the limit at
        // the classical α=0.01 critical value 1.63/√n.
        let ks_limit = cfg
            .ks_threshold
            .max(1.63 / (self.residuals.len() as f64).sqrt());
        let consistent = ks <= ks_limit && z <= cfg.drift_zscore;
        if consistent {
            self.validated = true;
            TrustEvent::Ok
        } else if self.validated {
            TrustEvent::DriftSuspected
        } else {
            self.level = TrustLevel::Quarantined;
            TrustEvent::Quarantined
        }
    }

    /// The caller re-estimated this client's distribution: clear the window
    /// (old residuals described the *previous* regime) and require the new
    /// claim to validate from scratch.
    pub fn acknowledge_reestimate(&mut self) {
        self.residuals.clear();
        self.validated = false;
        self.since_check = 0;
    }

    /// Empirical mean of the retained window (0 when empty).
    pub fn empirical_mean(&self) -> f64 {
        if self.residuals.is_empty() {
            return 0.0;
        }
        self.residuals.iter().sum::<f64>() / self.residuals.len() as f64
    }

    /// Empirical standard deviation of the retained window (0 with < 2
    /// samples).
    pub fn empirical_std_dev(&self) -> f64 {
        let n = self.residuals.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.empirical_mean();
        let var = self
            .residuals
            .iter()
            .map(|r| (r - mean) * (r - mean))
            .sum::<f64>()
            / (n - 1) as f64;
        var.sqrt()
    }

    fn push(&mut self, residual: f64, cfg: &DefenseConfig) {
        if self.residuals.len() == cfg.window {
            self.residuals.pop_front();
        }
        self.residuals.push_back(residual);
    }

    /// One-sample KS statistic of the window against `claimed`, plus the
    /// mean z-score `|mean_emp − mean_claimed| / (σ_claimed / √n)`.
    fn discrepancy(&self, claimed: &OffsetDistribution) -> (f64, f64) {
        let mut sorted: Vec<f64> = self.residuals.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite residuals"));
        let n = sorted.len();
        let mut d: f64 = 0.0;
        for (i, &x) in sorted.iter().enumerate() {
            let f = claimed.cdf(x);
            let above = (i + 1) as f64 / n as f64 - f;
            let below = f - i as f64 / n as f64;
            d = d.max(above.max(below));
        }
        let se = claimed.std_dev().max(1e-12) / (n as f64).sqrt();
        let z = (self.empirical_mean() - claimed.mean()).abs() / se;
        (d, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn feed(
        state: &mut TrustState,
        truth: &OffsetDistribution,
        claimed: &OffsetDistribution,
        cfg: &DefenseConfig,
        n: usize,
        rng: &mut StdRng,
    ) -> Vec<TrustEvent> {
        (0..n)
            .map(|_| state.observe(truth.sample(rng), claimed, cfg))
            .collect()
    }

    #[test]
    fn honest_client_stays_trusted() {
        let truth = OffsetDistribution::gaussian(2.0, 3.0);
        let cfg = DefenseConfig::enabled();
        let mut state = TrustState::new();
        let mut rng = StdRng::seed_from_u64(7);
        let events = feed(&mut state, &truth, &truth, &cfg, 400, &mut rng);
        assert!(events.iter().all(|e| *e == TrustEvent::Ok));
        assert_eq!(state.level(), TrustLevel::Trusted);
        assert!(state.validated());
        assert!(state.checks() > 10);
    }

    #[test]
    fn misreported_sigma_is_quarantined_on_first_check() {
        let truth = OffsetDistribution::gaussian(0.0, 8.0);
        let claimed = OffsetDistribution::gaussian(0.0, 1.0); // deflated 8×
        let cfg = DefenseConfig::enabled();
        let mut state = TrustState::new();
        let mut rng = StdRng::seed_from_u64(11);
        let events = feed(&mut state, &truth, &claimed, &cfg, 64, &mut rng);
        let quarantines = events
            .iter()
            .filter(|e| **e == TrustEvent::Quarantined)
            .count();
        assert_eq!(quarantines, 1, "exactly one quarantine event: {events:?}");
        assert_eq!(state.level(), TrustLevel::Quarantined);
        assert!(!state.validated());
        // Sticky: further honest-looking residuals never rehabilitate.
        let more = feed(&mut state, &claimed, &claimed, &cfg, 100, &mut rng);
        assert!(more.iter().all(|e| *e == TrustEvent::Ok));
        assert_eq!(state.level(), TrustLevel::Quarantined);
    }

    #[test]
    fn stale_mean_is_caught_by_the_zscore() {
        let truth = OffsetDistribution::gaussian(6.0, 2.0);
        let claimed = OffsetDistribution::gaussian(0.0, 2.0); // 3σ stale mean
        let cfg = DefenseConfig::enabled();
        let mut state = TrustState::new();
        let mut rng = StdRng::seed_from_u64(13);
        let events = feed(&mut state, &truth, &claimed, &cfg, 64, &mut rng);
        assert!(events.contains(&TrustEvent::Quarantined));
        assert!(state.last_drift_score() > cfg.drift_zscore);
    }

    #[test]
    fn validated_then_shifted_reports_drift_not_quarantine() {
        let claimed = OffsetDistribution::gaussian(0.0, 2.0);
        let cfg = DefenseConfig::enabled();
        let mut state = TrustState::new();
        let mut rng = StdRng::seed_from_u64(17);
        // Honest phase: validate the claim.
        let honest = feed(&mut state, &claimed, &claimed, &cfg, 120, &mut rng);
        assert!(honest.iter().all(|e| *e == TrustEvent::Ok));
        assert!(state.validated());
        // Clock steps by 5σ: the same claim now fails, but as drift.
        let drifted = OffsetDistribution::gaussian(10.0, 2.0);
        let events = feed(&mut state, &drifted, &claimed, &cfg, 200, &mut rng);
        assert!(events.contains(&TrustEvent::DriftSuspected), "{events:?}");
        assert!(!events.contains(&TrustEvent::Quarantined));
        assert_eq!(state.level(), TrustLevel::Trusted);
    }

    #[test]
    fn acknowledge_reestimate_resets_the_window() {
        let claimed = OffsetDistribution::gaussian(0.0, 2.0);
        let cfg = DefenseConfig::enabled();
        let mut state = TrustState::new();
        let mut rng = StdRng::seed_from_u64(19);
        feed(&mut state, &claimed, &claimed, &cfg, 100, &mut rng);
        assert!(state.validated());
        state.acknowledge_reestimate();
        assert!(!state.validated());
        assert_eq!(state.residuals().count(), 0);
    }

    #[test]
    fn disabled_config_defaults_and_builders() {
        let cfg = DefenseConfig::default();
        assert!(!cfg.enabled);
        let cfg = DefenseConfig::enabled()
            .with_window(32)
            .with_min_samples(8)
            .with_check_interval(4)
            .with_ks_threshold(0.2)
            .with_drift_zscore(4.0)
            .with_sigma_inflation(2.0)
            .with_expected_delay(1.0);
        assert!(cfg.enabled);
        assert_eq!(cfg.window, 32);
        assert_eq!(cfg.min_samples, 8);
        assert_eq!(cfg.check_interval, 4);
        assert!((cfg.ks_threshold - 0.2).abs() < 1e-12);
        assert!((cfg.expected_delay - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ks_statistic_matches_hand_computation() {
        // Uniform-ish residuals vs a standard Gaussian claim: check the
        // one-sample KS formula on a tiny window by hand.
        let cfg = DefenseConfig::enabled().with_min_samples(4).with_check_interval(1);
        let claimed = OffsetDistribution::gaussian(0.0, 1.0);
        let mut state = TrustState::new();
        for r in [-1.0, -0.5, 0.5, 1.0] {
            state.observe(r, &claimed, &cfg);
        }
        let mut expected: f64 = 0.0;
        let sorted = [-1.0, -0.5, 0.5, 1.0];
        for (i, x) in sorted.iter().enumerate() {
            let f = claimed.cdf(*x);
            expected = expected
                .max((i + 1) as f64 / 4.0 - f)
                .max(f - i as f64 / 4.0);
        }
        assert!((state.last_discrepancy() - expected).abs() < 1e-12);
    }

    #[test]
    fn empirical_moments_track_the_window() {
        let cfg = DefenseConfig::enabled().with_window(4);
        let claimed = OffsetDistribution::gaussian(0.0, 1.0);
        let mut state = TrustState::new();
        for r in [10.0, 10.0, 1.0, 2.0, 3.0, 4.0] {
            state.observe(r, &claimed, &cfg);
        }
        // Window holds the last four: 1, 2, 3, 4.
        assert!((state.empirical_mean() - 2.5).abs() < 1e-12);
        let var = ((1.5f64 * 1.5) * 2.0 + (0.5 * 0.5) * 2.0) / 3.0;
        assert!((state.empirical_std_dev() - var.sqrt()).abs() < 1e-12);
    }
}
