//! Untrusted-distribution hardening: trust tracking, quarantine, and
//! drift-aware re-estimation triggers.
//!
//! §3.3 of the paper has every client *self-report* its offset distribution
//! — an honesty assumption the §5 threat model breaks first. This module is
//! the sequencer-side cross-check: for each client the registry keeps a
//! [`TrustState`] that accumulates observed timestamp residuals (what the
//! client's clock error *looks like* from the sequencer's chair) and
//! periodically compares their empirical distribution against the claimed
//! one with a Kolmogorov–Smirnov discrepancy plus a mean z-score.
//!
//! Two failure modes are distinguished by *when* the check first fails:
//!
//! * a client whose **first** full-window check already disagrees with its
//!   claim most likely misreported — it is quarantined
//!   ([`TrustLevel::Quarantined`]), and the caller re-registers it on a
//!   conservative fallback distribution (empirical mean, inflated σ) so the
//!   sequencer stops trusting the lie without ejecting the client;
//! * a client that **passed** the check before and fails later was honest at
//!   registration time but its clock has since moved (drift, NTP step) —
//!   the caller re-estimates its distribution online through
//!   [`tommy_clock::DistributionLearner`] and resets the window.
//!
//! Marginal checks are blind to **collusion** by construction: a coalition
//! forging offsets that stay inside each member's claimed distribution
//! produces residual windows that are individually unremarkable. What the
//! coalition cannot hide is *co-movement* — forging toward shared values
//! makes colluders' residual sequences correlate, while honest clocks drift
//! independently. The [`CollusionTracker`] maintains pairwise co-moment
//! sums over the same per-client residual windows (aligned by per-client
//! residual index, incrementally updated, O(active clients) per residual)
//! and escalates a persistently correlated pair through the same sticky
//! quarantine path as the marginal checks.
//!
//! The degradation counters (`quarantines`, `reestimations`,
//! `margin_fallbacks`, `collusion_checks`, `collusion_quarantines`) surface
//! through [`OnlineStats`](crate::sequencer::online::OnlineStats) next to
//! the existing rebuild/repair counters; the defenses themselves are wired
//! in [`OnlineSequencer::submit`](crate::sequencer::online::OnlineSequencer::submit).
//! See `ARCHITECTURE.md`, "Threat model & degradation", for the full
//! attack-families × defenses matrix.

use std::collections::{BTreeMap, VecDeque};

use crate::message::ClientId;
use tommy_stats::distribution::{Distribution, OffsetDistribution};

/// Where the expected network delay used to form residuals comes from.
///
/// Residuals are `timestamp − arrival + expected_delay`: with the right
/// delay they center on the client's clock offset, with the wrong one they
/// carry a spurious shift that mis-flags honest clients. Fixed mode is the
/// historical assumption (the caller knows the link delay); online mode
/// learns it per client from the `arrival − timestamp` gaps themselves
/// ([`tommy_clock::DelayEstimator`]), which is what defended runs over
/// topologies with unknown per-link delays need.
///
/// Online mode trades one thing away: a lie about the *mean* offset is
/// indistinguishable from a different link delay, so mean-shift misreports
/// are absorbed into the learned delay. Scale and shape lies (the KS check)
/// and collusive co-movement (the correlation check) remain fully visible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExpectedDelay {
    /// Use this known, fixed one-way delay for every client.
    Fixed(f64),
    /// Learn each client's delay online from its own arrival gaps; the
    /// first [`DefenseConfig::delay_warmup`] observations per client only
    /// feed the estimator (no residual is formed from them).
    Online,
}

impl Default for ExpectedDelay {
    fn default() -> Self {
        ExpectedDelay::Fixed(0.0)
    }
}

/// Tuning knobs for the residual cross-check.
///
/// Defaults are conservative: the defense is **off** unless explicitly
/// enabled ([`DefenseConfig::enabled`]), so existing pipelines are
/// bit-for-bit unchanged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefenseConfig {
    /// Master switch; `false` makes every observation a no-op.
    pub enabled: bool,
    /// How many recent residuals each client's window retains.
    pub window: usize,
    /// Minimum residuals before the first check can run.
    pub min_samples: usize,
    /// Run the check every `check_interval` new residuals (once warm).
    pub check_interval: usize,
    /// KS discrepancy above which the claim is rejected. The effective
    /// limit is `max(ks_threshold, 1.63/√n)` — the classical α=0.01
    /// critical value floors the small-window checks (where D is noisy
    /// under H0) while this flat cap governs once the window fills.
    pub ks_threshold: f64,
    /// Reject when the empirical mean sits more than this many standard
    /// errors from the claimed mean (catches pure mean shifts that a small
    /// window's KS may miss).
    pub drift_zscore: f64,
    /// Fallback σ multiplier applied when quarantining: the client is
    /// re-registered with `max(claimed σ, empirical σ) × sigma_inflation`,
    /// buying conservative (wide) margins instead of the lied-about ones.
    pub sigma_inflation: f64,
    /// Where the expected network delay used when forming residuals comes
    /// from: a known fixed value, or learned online per client.
    pub expected_delay: ExpectedDelay,
    /// In [`ExpectedDelay::Online`] mode, how many arrival gaps per client
    /// feed the delay estimator before residuals start flowing into the
    /// trust window (early estimates are too noisy to test against).
    pub delay_warmup: usize,
    /// Pairwise residual correlation above which a client pair counts as
    /// co-moving. The effective limit is `max(collusion_threshold,
    /// 2.8/√n)` over `n` paired samples — under independence `r·√n` is
    /// approximately standard normal, so the floor keeps small-sample
    /// checks (where honest `r` is noisy) from tripping. The default (0.7)
    /// is calibrated on honest heavy-tailed streams: across the seeded
    /// false-positive suite (`tests/collusion_defense.rs`, Gaussian +
    /// Laplace + shifted log-normal clients over heterogeneous links),
    /// honest pairs reach `r ≈ 0.65` at full windows, while pad-coordinated
    /// colluders at intensity ≥ 0.5 sustain `r ≥ 0.8`.
    pub collusion_threshold: f64,
    /// Minimum paired samples before a pair's correlation is scored.
    pub collusion_min_pairs: usize,
    /// Consecutive over-threshold verdicts (each separated by at least
    /// `check_interval` fresh paired samples) required before a pair is
    /// quarantined — the false-positive guard: an honest correlation spike
    /// decays as fresh independent residuals arrive, collusive co-movement
    /// persists.
    pub collusion_confirmations: u32,
}

impl DefenseConfig {
    /// The defense switched off (the default): no state, no overhead.
    pub fn disabled() -> Self {
        DefenseConfig {
            enabled: false,
            window: 64,
            min_samples: 16,
            check_interval: 8,
            ks_threshold: 0.3,
            drift_zscore: 5.0,
            sigma_inflation: 3.0,
            expected_delay: ExpectedDelay::default(),
            delay_warmup: 8,
            collusion_threshold: 0.7,
            collusion_min_pairs: 12,
            collusion_confirmations: 2,
        }
    }

    /// The defense switched on with default thresholds.
    pub fn enabled() -> Self {
        DefenseConfig {
            enabled: true,
            ..DefenseConfig::disabled()
        }
    }

    /// Set the residual window size (must hold at least `min_samples`).
    pub fn with_window(mut self, window: usize) -> Self {
        assert!(window >= 2, "window must hold at least two residuals");
        self.window = window;
        self
    }

    /// Set the warm-up sample count before the first check.
    pub fn with_min_samples(mut self, min_samples: usize) -> Self {
        assert!(min_samples >= 2, "need at least two samples to test");
        self.min_samples = min_samples;
        self
    }

    /// Set the cadence (in residuals) of the cross-check once warm.
    pub fn with_check_interval(mut self, check_interval: usize) -> Self {
        assert!(check_interval >= 1, "check interval must be positive");
        self.check_interval = check_interval;
        self
    }

    /// Set the KS rejection threshold.
    pub fn with_ks_threshold(mut self, ks_threshold: f64) -> Self {
        assert!(
            ks_threshold > 0.0 && ks_threshold < 1.0,
            "KS threshold must be in (0, 1)"
        );
        self.ks_threshold = ks_threshold;
        self
    }

    /// Set the mean-shift z-score threshold.
    pub fn with_drift_zscore(mut self, drift_zscore: f64) -> Self {
        assert!(drift_zscore > 0.0, "z-score threshold must be positive");
        self.drift_zscore = drift_zscore;
        self
    }

    /// Set the quarantine σ inflation factor.
    pub fn with_sigma_inflation(mut self, sigma_inflation: f64) -> Self {
        assert!(sigma_inflation >= 1.0, "σ inflation must be ≥ 1");
        self.sigma_inflation = sigma_inflation;
        self
    }

    /// Set the expected-delay source used when forming residuals.
    ///
    /// # Panics
    ///
    /// Panics if a fixed delay is not finite.
    pub fn with_expected_delay(mut self, expected_delay: ExpectedDelay) -> Self {
        if let ExpectedDelay::Fixed(d) = expected_delay {
            assert!(d.is_finite(), "expected delay must be finite");
        }
        self.expected_delay = expected_delay;
        self
    }

    /// Set the per-client delay-estimator warm-up (online mode only).
    pub fn with_delay_warmup(mut self, delay_warmup: usize) -> Self {
        assert!(delay_warmup >= 1, "delay warm-up must be positive");
        self.delay_warmup = delay_warmup;
        self
    }

    /// Set the pairwise correlation threshold for the collusion check.
    pub fn with_collusion_threshold(mut self, collusion_threshold: f64) -> Self {
        assert!(
            collusion_threshold > 0.0 && collusion_threshold < 1.0,
            "collusion threshold must be in (0, 1)"
        );
        self.collusion_threshold = collusion_threshold;
        self
    }

    /// Set the minimum paired samples before a pair is scored.
    pub fn with_collusion_min_pairs(mut self, collusion_min_pairs: usize) -> Self {
        assert!(collusion_min_pairs >= 4, "need at least four paired samples");
        self.collusion_min_pairs = collusion_min_pairs;
        self
    }

    /// Set the consecutive-verdict confirmation count for collusion
    /// quarantines.
    pub fn with_collusion_confirmations(mut self, collusion_confirmations: u32) -> Self {
        assert!(collusion_confirmations >= 1, "need at least one confirmation");
        self.collusion_confirmations = collusion_confirmations;
        self
    }
}

impl Default for DefenseConfig {
    fn default() -> Self {
        DefenseConfig::disabled()
    }
}

/// How much the sequencer currently trusts a client's claimed distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrustLevel {
    /// Residuals are (so far) consistent with the claim.
    Trusted,
    /// The claim was rejected on its first full check: the client is treated
    /// as a misreporter and pinned to conservative fallback margins.
    /// Quarantine is sticky — a misreporter does not earn trust back by
    /// matching the *fallback* distribution it was forced onto.
    Quarantined,
}

/// Outcome of feeding one residual into [`TrustState::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrustEvent {
    /// Nothing to act on (check not due, or check passed).
    Ok,
    /// The client passed earlier checks but now disagrees with its claim:
    /// its clock has likely drifted. The caller should re-estimate from
    /// [`TrustState::residuals`] and call
    /// [`TrustState::acknowledge_reestimate`].
    DriftSuspected,
    /// The client's first full check already disagrees with its claim: it is
    /// now [`TrustLevel::Quarantined`] and should be pinned to a fallback
    /// distribution.
    Quarantined,
}

/// Per-client residual window and verdict state.
#[derive(Debug, Clone)]
pub struct TrustState {
    residuals: VecDeque<f64>,
    level: TrustLevel,
    /// Whether the claim has ever passed a full check — the discriminator
    /// between "misreported from the start" and "honest then drifted".
    validated: bool,
    since_check: usize,
    checks: u64,
    last_discrepancy: f64,
    last_drift_score: f64,
}

impl Default for TrustState {
    fn default() -> Self {
        TrustState::new()
    }
}

impl TrustState {
    /// A fresh, trusting state with an empty window.
    pub fn new() -> Self {
        TrustState {
            residuals: VecDeque::new(),
            level: TrustLevel::Trusted,
            validated: false,
            since_check: 0,
            checks: 0,
            last_discrepancy: 0.0,
            last_drift_score: 0.0,
        }
    }

    /// Current trust level.
    pub fn level(&self) -> TrustLevel {
        self.level
    }

    /// Whether the claim has passed at least one full check.
    pub fn validated(&self) -> bool {
        self.validated
    }

    /// Number of cross-checks run so far.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// KS discrepancy from the most recent check.
    pub fn last_discrepancy(&self) -> f64 {
        self.last_discrepancy
    }

    /// Mean z-score from the most recent check.
    pub fn last_drift_score(&self) -> f64 {
        self.last_drift_score
    }

    /// The retained residual window, oldest first.
    pub fn residuals(&self) -> impl Iterator<Item = f64> + '_ {
        self.residuals.iter().copied()
    }

    /// Feed one observed residual; runs the cross-check against `claimed`
    /// when due and returns what (if anything) the caller must do.
    pub fn observe(
        &mut self,
        residual: f64,
        claimed: &OffsetDistribution,
        cfg: &DefenseConfig,
    ) -> TrustEvent {
        assert!(residual.is_finite(), "residuals must be finite");
        if self.level == TrustLevel::Quarantined {
            // Still record: the fallback re-registration wants fresh
            // empirical moments, and post-mortems want the evidence.
            self.push(residual, cfg);
            return TrustEvent::Ok;
        }
        self.push(residual, cfg);
        self.since_check += 1;
        if self.residuals.len() < cfg.min_samples || self.since_check < cfg.check_interval {
            return TrustEvent::Ok;
        }
        self.since_check = 0;
        self.checks += 1;
        let (ks, z) = self.discrepancy(claimed);
        self.last_discrepancy = ks;
        self.last_drift_score = z;
        // Small windows produce noisy D even under H0: floor the limit at
        // the classical α=0.01 critical value 1.63/√n.
        let ks_limit = cfg
            .ks_threshold
            .max(1.63 / (self.residuals.len() as f64).sqrt());
        let consistent = ks <= ks_limit && z <= cfg.drift_zscore;
        if consistent {
            self.validated = true;
            TrustEvent::Ok
        } else if self.validated {
            TrustEvent::DriftSuspected
        } else {
            self.level = TrustLevel::Quarantined;
            TrustEvent::Quarantined
        }
    }

    /// Escalate straight to [`TrustLevel::Quarantined`] on evidence from
    /// outside the marginal check — the collusion detector's path. Sticky,
    /// exactly like a first-check quarantine.
    pub(crate) fn force_quarantine(&mut self) {
        self.level = TrustLevel::Quarantined;
    }

    /// The caller re-estimated this client's distribution: clear the window
    /// (old residuals described the *previous* regime) and require the new
    /// claim to validate from scratch.
    pub fn acknowledge_reestimate(&mut self) {
        self.residuals.clear();
        self.validated = false;
        self.since_check = 0;
    }

    /// Empirical mean of the retained window (0 when empty).
    pub fn empirical_mean(&self) -> f64 {
        if self.residuals.is_empty() {
            return 0.0;
        }
        self.residuals.iter().sum::<f64>() / self.residuals.len() as f64
    }

    /// Empirical standard deviation of the retained window (0 with < 2
    /// samples).
    pub fn empirical_std_dev(&self) -> f64 {
        let n = self.residuals.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.empirical_mean();
        let var = self
            .residuals
            .iter()
            .map(|r| (r - mean) * (r - mean))
            .sum::<f64>()
            / (n - 1) as f64;
        var.sqrt()
    }

    fn push(&mut self, residual: f64, cfg: &DefenseConfig) {
        if self.residuals.len() == cfg.window {
            self.residuals.pop_front();
        }
        self.residuals.push_back(residual);
    }

    /// One-sample KS statistic of the window against `claimed`, plus the
    /// mean z-score `|mean_emp − mean_claimed| / (σ_claimed / √n)`.
    fn discrepancy(&self, claimed: &OffsetDistribution) -> (f64, f64) {
        let mut sorted: Vec<f64> = self.residuals.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite residuals"));
        let n = sorted.len();
        let mut d: f64 = 0.0;
        for (i, &x) in sorted.iter().enumerate() {
            let f = claimed.cdf(x);
            let above = (i + 1) as f64 / n as f64 - f;
            let below = f - i as f64 / n as f64;
            d = d.max(above.max(below));
        }
        let se = claimed.std_dev().max(1e-12) / (n as f64).sqrt();
        let z = (self.empirical_mean() - claimed.mean()).abs() / se;
        (d, z)
    }
}

/// Outcome of feeding one residual into [`CollusionTracker::observe`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CollusionReport {
    /// Whether a correlation check ran on this observation (the client's
    /// check cadence came due).
    pub checked: bool,
    /// Highest pairwise correlation scored during this check (0 when no
    /// pair was scorable). Only positive co-movement counts: colluders
    /// forging toward shared values correlate positively.
    pub peak_score: f64,
    /// Clients whose pair crossed the confirmation bar this check — both
    /// members of a confirmed pair, sorted, deduplicated. The caller
    /// quarantines them and removes them from the tracker.
    pub flagged: Vec<ClientId>,
}

/// One client's aligned residual history inside the tracker.
#[derive(Debug, Clone, Default)]
struct ClientWindow {
    /// Recent residuals, oldest first; `total - window.len()` is the
    /// absolute index of the front element.
    window: VecDeque<f64>,
    /// Residuals ever recorded for this client (monotone across resets, so
    /// per-index pair alignment survives drift re-estimation).
    total: u64,
    since_check: usize,
}

impl ClientWindow {
    fn push(&mut self, residual: f64, cap: usize) {
        if self.window.len() == cap {
            self.window.pop_front();
        }
        self.window.push_back(residual);
        self.total += 1;
    }

    /// The residual with absolute index `k`, if still retained.
    fn value_at(&self, k: u64) -> Option<f64> {
        let start = self.total - self.window.len() as u64;
        if k < start || k >= self.total {
            return None;
        }
        Some(self.window[(k - start) as usize])
    }
}

/// Incremental co-moment sums over one client pair's aligned residuals.
#[derive(Debug, Clone, Default)]
struct PairStats {
    /// Paired samples currently in the window, oldest first.
    samples: VecDeque<(f64, f64)>,
    sx: f64,
    sy: f64,
    sxx: f64,
    syy: f64,
    sxy: f64,
    /// Paired samples ever pushed (freshness clock for streak spacing).
    total: u64,
    /// Pair count at the last scored evaluation.
    last_eval_total: u64,
    /// Consecutive over-threshold verdicts.
    streak: u32,
}

impl PairStats {
    fn push(&mut self, x: f64, y: f64, cap: usize) {
        if self.samples.len() == cap {
            let (ox, oy) = self.samples.pop_front().expect("non-empty at cap");
            self.sx -= ox;
            self.sy -= oy;
            self.sxx -= ox * ox;
            self.syy -= oy * oy;
            self.sxy -= ox * oy;
        }
        self.samples.push_back((x, y));
        self.sx += x;
        self.sy += y;
        self.sxx += x * x;
        self.syy += y * y;
        self.sxy += x * y;
        self.total += 1;
    }

    /// Pearson correlation over the retained pairs (0 when a marginal is
    /// degenerate — a constant residual stream carries no co-movement
    /// evidence the marginal checks would not already see).
    fn correlation(&self) -> f64 {
        let n = self.samples.len() as f64;
        let cov = self.sxy - self.sx * self.sy / n;
        let vx = self.sxx - self.sx * self.sx / n;
        let vy = self.syy - self.sy * self.sy / n;
        if vx <= 1e-18 || vy <= 1e-18 {
            return 0.0;
        }
        cov / (vx * vy).sqrt()
    }
}

fn pair_key(a: ClientId, b: ClientId) -> (ClientId, ClientId) {
    if a.0 <= b.0 {
        (a, b)
    } else {
        (b, a)
    }
}

/// Cross-client correlation detector over the per-client residual windows.
///
/// Each residual a client produces is paired, **by per-client residual
/// index**, with every other tracked client's residual of the same index
/// (round-robin workloads keep indices aligned in true time, so colluders'
/// k-th forged offsets land in the same pair sample). Pairs maintain
/// incrementally updated co-moment sums over a sliding window, so one
/// observation costs O(active clients) updates and a due check costs one
/// O(1) correlation read per active pair — O(active pairs) per check
/// interval across a full round of clients.
///
/// Escalation is guarded three ways against honest false positives: a
/// small-sample floor on the correlation limit (`2.8/√n`), a minimum
/// paired-sample count, and a confirmation streak that only advances when
/// at least `check_interval` fresh pairs arrived since the last verdict —
/// an honest spike decays under fresh independent residuals, collusive
/// co-movement does not. Confirmed pairs are reported for the same sticky
/// quarantine treatment as the marginal KS/z-score checks.
#[derive(Debug, Clone, Default)]
pub struct CollusionTracker {
    clients: BTreeMap<ClientId, ClientWindow>,
    pairs: BTreeMap<(ClientId, ClientId), PairStats>,
}

impl CollusionTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        CollusionTracker::default()
    }

    /// Number of clients currently tracked.
    pub fn tracked_clients(&self) -> usize {
        self.clients.len()
    }

    /// Feed one residual from `client`; runs the pairwise correlation check
    /// when the client's cadence comes due.
    pub fn observe(
        &mut self,
        client: ClientId,
        residual: f64,
        cfg: &DefenseConfig,
    ) -> CollusionReport {
        assert!(residual.is_finite(), "residuals must be finite");
        let entry = self.clients.entry(client).or_default();
        let k = entry.total;
        entry.push(residual, cfg.window);
        entry.since_check += 1;
        let due = entry.since_check >= cfg.check_interval;
        if due {
            entry.since_check = 0;
        }
        // Pair this residual with every partner's residual of the same
        // index (BTreeMap: deterministic order).
        let partners: Vec<ClientId> = self
            .clients
            .keys()
            .copied()
            .filter(|c| *c != client)
            .collect();
        for &d in &partners {
            if let Some(y) = self.clients[&d].value_at(k) {
                self.pairs
                    .entry(pair_key(client, d))
                    .or_default()
                    .push(residual, y, cfg.window);
            }
        }
        if !due {
            return CollusionReport::default();
        }
        let mut report = CollusionReport {
            checked: true,
            ..CollusionReport::default()
        };
        for &d in &partners {
            let Some(pair) = self.pairs.get_mut(&pair_key(client, d)) else {
                continue;
            };
            if pair.samples.len() < cfg.collusion_min_pairs {
                continue;
            }
            // Freshness guard: a verdict needs at least a check interval of
            // new paired evidence since the last one, so both endpoints
            // checking in the same round cannot double-count one window.
            if pair.total - pair.last_eval_total < cfg.check_interval as u64 {
                continue;
            }
            pair.last_eval_total = pair.total;
            let r = pair.correlation();
            report.peak_score = report.peak_score.max(r);
            let limit = cfg
                .collusion_threshold
                .max(2.8 / (pair.samples.len() as f64).sqrt());
            if r > limit {
                pair.streak += 1;
            } else {
                pair.streak = 0;
            }
            if pair.streak >= cfg.collusion_confirmations {
                report.flagged.push(client.min(d));
                report.flagged.push(client.max(d));
            }
        }
        report.flagged.sort();
        report.flagged.dedup();
        report
    }

    /// Drop a client (quarantined: its evidence is settled) along with
    /// every pair it participates in.
    pub fn remove(&mut self, client: ClientId) {
        self.clients.remove(&client);
        self.pairs.retain(|&(a, b), _| a != client && b != client);
    }

    /// Reset a client's window after a drift re-estimation (old residuals
    /// described the previous regime) without losing index alignment, and
    /// restart its pairs from scratch.
    pub fn reset_client(&mut self, client: ClientId) {
        if let Some(entry) = self.clients.get_mut(&client) {
            entry.window.clear();
            entry.since_check = 0;
        }
        self.pairs.retain(|&(a, b), _| a != client && b != client);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn feed(
        state: &mut TrustState,
        truth: &OffsetDistribution,
        claimed: &OffsetDistribution,
        cfg: &DefenseConfig,
        n: usize,
        rng: &mut StdRng,
    ) -> Vec<TrustEvent> {
        (0..n)
            .map(|_| state.observe(truth.sample(rng), claimed, cfg))
            .collect()
    }

    #[test]
    fn honest_client_stays_trusted() {
        let truth = OffsetDistribution::gaussian(2.0, 3.0);
        let cfg = DefenseConfig::enabled();
        let mut state = TrustState::new();
        let mut rng = StdRng::seed_from_u64(7);
        let events = feed(&mut state, &truth, &truth, &cfg, 400, &mut rng);
        assert!(events.iter().all(|e| *e == TrustEvent::Ok));
        assert_eq!(state.level(), TrustLevel::Trusted);
        assert!(state.validated());
        assert!(state.checks() > 10);
    }

    #[test]
    fn misreported_sigma_is_quarantined_on_first_check() {
        let truth = OffsetDistribution::gaussian(0.0, 8.0);
        let claimed = OffsetDistribution::gaussian(0.0, 1.0); // deflated 8×
        let cfg = DefenseConfig::enabled();
        let mut state = TrustState::new();
        let mut rng = StdRng::seed_from_u64(11);
        let events = feed(&mut state, &truth, &claimed, &cfg, 64, &mut rng);
        let quarantines = events
            .iter()
            .filter(|e| **e == TrustEvent::Quarantined)
            .count();
        assert_eq!(quarantines, 1, "exactly one quarantine event: {events:?}");
        assert_eq!(state.level(), TrustLevel::Quarantined);
        assert!(!state.validated());
        // Sticky: further honest-looking residuals never rehabilitate.
        let more = feed(&mut state, &claimed, &claimed, &cfg, 100, &mut rng);
        assert!(more.iter().all(|e| *e == TrustEvent::Ok));
        assert_eq!(state.level(), TrustLevel::Quarantined);
    }

    #[test]
    fn stale_mean_is_caught_by_the_zscore() {
        let truth = OffsetDistribution::gaussian(6.0, 2.0);
        let claimed = OffsetDistribution::gaussian(0.0, 2.0); // 3σ stale mean
        let cfg = DefenseConfig::enabled();
        let mut state = TrustState::new();
        let mut rng = StdRng::seed_from_u64(13);
        let events = feed(&mut state, &truth, &claimed, &cfg, 64, &mut rng);
        assert!(events.contains(&TrustEvent::Quarantined));
        assert!(state.last_drift_score() > cfg.drift_zscore);
    }

    #[test]
    fn validated_then_shifted_reports_drift_not_quarantine() {
        let claimed = OffsetDistribution::gaussian(0.0, 2.0);
        let cfg = DefenseConfig::enabled();
        let mut state = TrustState::new();
        let mut rng = StdRng::seed_from_u64(17);
        // Honest phase: validate the claim.
        let honest = feed(&mut state, &claimed, &claimed, &cfg, 120, &mut rng);
        assert!(honest.iter().all(|e| *e == TrustEvent::Ok));
        assert!(state.validated());
        // Clock steps by 5σ: the same claim now fails, but as drift.
        let drifted = OffsetDistribution::gaussian(10.0, 2.0);
        let events = feed(&mut state, &drifted, &claimed, &cfg, 200, &mut rng);
        assert!(events.contains(&TrustEvent::DriftSuspected), "{events:?}");
        assert!(!events.contains(&TrustEvent::Quarantined));
        assert_eq!(state.level(), TrustLevel::Trusted);
    }

    #[test]
    fn acknowledge_reestimate_resets_the_window() {
        let claimed = OffsetDistribution::gaussian(0.0, 2.0);
        let cfg = DefenseConfig::enabled();
        let mut state = TrustState::new();
        let mut rng = StdRng::seed_from_u64(19);
        feed(&mut state, &claimed, &claimed, &cfg, 100, &mut rng);
        assert!(state.validated());
        state.acknowledge_reestimate();
        assert!(!state.validated());
        assert_eq!(state.residuals().count(), 0);
    }

    #[test]
    fn disabled_config_defaults_and_builders() {
        let cfg = DefenseConfig::default();
        assert!(!cfg.enabled);
        assert_eq!(cfg.expected_delay, ExpectedDelay::Fixed(0.0));
        let cfg = DefenseConfig::enabled()
            .with_window(32)
            .with_min_samples(8)
            .with_check_interval(4)
            .with_ks_threshold(0.2)
            .with_drift_zscore(4.0)
            .with_sigma_inflation(2.0)
            .with_expected_delay(ExpectedDelay::Fixed(1.0))
            .with_delay_warmup(4)
            .with_collusion_threshold(0.5)
            .with_collusion_min_pairs(8)
            .with_collusion_confirmations(3);
        assert!(cfg.enabled);
        assert_eq!(cfg.window, 32);
        assert_eq!(cfg.min_samples, 8);
        assert_eq!(cfg.check_interval, 4);
        assert!((cfg.ks_threshold - 0.2).abs() < 1e-12);
        assert_eq!(cfg.expected_delay, ExpectedDelay::Fixed(1.0));
        assert_eq!(cfg.delay_warmup, 4);
        assert!((cfg.collusion_threshold - 0.5).abs() < 1e-12);
        assert_eq!(cfg.collusion_min_pairs, 8);
        assert_eq!(cfg.collusion_confirmations, 3);
        let online = DefenseConfig::enabled().with_expected_delay(ExpectedDelay::Online);
        assert_eq!(online.expected_delay, ExpectedDelay::Online);
    }

    #[test]
    fn ks_statistic_matches_hand_computation() {
        // Uniform-ish residuals vs a standard Gaussian claim: check the
        // one-sample KS formula on a tiny window by hand.
        let cfg = DefenseConfig::enabled().with_min_samples(4).with_check_interval(1);
        let claimed = OffsetDistribution::gaussian(0.0, 1.0);
        let mut state = TrustState::new();
        for r in [-1.0, -0.5, 0.5, 1.0] {
            state.observe(r, &claimed, &cfg);
        }
        let mut expected: f64 = 0.0;
        let sorted = [-1.0, -0.5, 0.5, 1.0];
        for (i, x) in sorted.iter().enumerate() {
            let f = claimed.cdf(*x);
            expected = expected
                .max((i + 1) as f64 / 4.0 - f)
                .max(f - i as f64 / 4.0);
        }
        assert!((state.last_discrepancy() - expected).abs() < 1e-12);
    }

    #[test]
    fn empirical_moments_track_the_window() {
        let cfg = DefenseConfig::enabled().with_window(4);
        let claimed = OffsetDistribution::gaussian(0.0, 1.0);
        let mut state = TrustState::new();
        for r in [10.0, 10.0, 1.0, 2.0, 3.0, 4.0] {
            state.observe(r, &claimed, &cfg);
        }
        // Window holds the last four: 1, 2, 3, 4.
        assert!((state.empirical_mean() - 2.5).abs() < 1e-12);
        let var = ((1.5f64 * 1.5) * 2.0 + (0.5 * 0.5) * 2.0) / 3.0;
        assert!((state.empirical_std_dev() - var.sqrt()).abs() < 1e-12);
    }

    /// Defense cadence used by the tracker tests: checks every 4 residuals,
    /// scoring pairs once 12 are aligned.
    fn collusion_cfg() -> DefenseConfig {
        DefenseConfig::enabled()
            .with_window(24)
            .with_min_samples(12)
            .with_check_interval(4)
    }

    #[test]
    fn correlated_pair_is_flagged_within_two_checks_of_scorability() {
        let cfg = collusion_cfg();
        let mut tracker = CollusionTracker::new();
        let shared = OffsetDistribution::gaussian(0.0, 3.0);
        let own = OffsetDistribution::gaussian(0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(31);
        let (a, b) = (ClientId(0), ClientId(1));
        let mut first_scorable = None;
        let mut flagged_at = None;
        let mut checks = 0u64;
        for i in 0..200u64 {
            // Strong co-movement: a shared component dominates each
            // client's own noise.
            let s = shared.sample(&mut rng);
            let ra = tracker.observe(a, s + own.sample(&mut rng), &cfg);
            let rb = tracker.observe(b, s + own.sample(&mut rng), &cfg);
            for r in [ra, rb] {
                if r.checked {
                    checks += 1;
                    if r.peak_score > 0.0 && first_scorable.is_none() {
                        first_scorable = Some(checks);
                    }
                    if !r.flagged.is_empty() && flagged_at.is_none() {
                        assert_eq!(r.flagged, vec![a, b]);
                        flagged_at = Some(checks);
                    }
                }
            }
            if flagged_at.is_some() {
                assert!(i < 60, "flag came absurdly late");
                break;
            }
        }
        let (first, at) = (first_scorable.unwrap(), flagged_at.expect("colluders flagged"));
        // The confirmation streak needs exactly the configured number of
        // spaced verdicts: detection lands within 2 check intervals of the
        // pair first becoming scorable.
        assert!(
            at - first < 2 * cfg.collusion_confirmations as u64,
            "first scorable at check {first}, flagged at {at}"
        );
    }

    #[test]
    fn honest_independent_streams_are_never_flagged() {
        let cfg = collusion_cfg();
        let gaussian = OffsetDistribution::gaussian(0.0, 3.0);
        for seed in 0..24 {
            let mut tracker = CollusionTracker::new();
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..150 {
                for c in 0..4 {
                    let report =
                        tracker.observe(ClientId(c), gaussian.sample(&mut rng), &cfg);
                    assert!(
                        report.flagged.is_empty(),
                        "honest flag at seed {seed}: {report:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn removal_and_reset_drop_pair_evidence() {
        let cfg = collusion_cfg().with_check_interval(1).with_collusion_min_pairs(4);
        let mut tracker = CollusionTracker::new();
        let (a, b) = (ClientId(0), ClientId(1));
        for i in 0..6 {
            let v = i as f64;
            tracker.observe(a, v, &cfg);
            tracker.observe(b, v, &cfg);
        }
        assert_eq!(tracker.tracked_clients(), 2);
        tracker.reset_client(a);
        // Pairs restart: the next observation cannot be scored against the
        // dropped evidence.
        let report = tracker.observe(a, 6.0, &cfg);
        assert!(report.flagged.is_empty());
        tracker.remove(b);
        assert_eq!(tracker.tracked_clients(), 1);
    }

    #[test]
    fn degenerate_constant_residuals_score_zero() {
        let cfg = collusion_cfg().with_check_interval(1).with_collusion_min_pairs(4);
        let mut tracker = CollusionTracker::new();
        let mut last = CollusionReport::default();
        for _ in 0..10 {
            tracker.observe(ClientId(0), 1.0, &cfg);
            last = tracker.observe(ClientId(1), 1.0, &cfg);
        }
        assert!(last.checked);
        assert_eq!(last.peak_score, 0.0);
        assert!(last.flagged.is_empty());
    }
}
