//! The pairwise preceding-probability matrix.
//!
//! §3.4 of the paper models each message as a node of a graph whose directed
//! edges carry preceding probabilities. [`PrecedenceMatrix`] is the dense
//! representation of those probabilities for one set of messages, built from
//! the per-client distributions in a [`DistributionRegistry`].
//!
//! ## Kernel-based builds
//!
//! Every probability the matrix stores depends on its pair of messages only
//! through the client pair and the timestamp delta (see
//! [`PairKernel`]), so both the incremental [`insert`](PrecedenceMatrix::insert)
//! and the one-shot [`compute_parallel`](PrecedenceMatrix::compute_parallel)
//! group the messages by client — ascending row indices plus a contiguous
//! timestamp array per client — resolve one kernel per client pair, and fill
//! whole columns/rows with tight per-kernel loops over contiguous `f64`s.
//! An arrival touches the registry ≤ C times (C = distinct pending clients)
//! for its n queries; an offline build tile touches it O(C²) times instead
//! of O(pairs). The stored floats are bit-identical to the per-call path by
//! construction (same formulas, same clamping — see [`PairKernel`]); the
//! rare error cases (unknown client, NaN probability) fall back to the
//! per-call loop so error values, ordering, and query accounting match the
//! pre-kernel implementation exactly.

use crate::error::CoreError;
use crate::message::{ClientId, Message, MessageId};
use crate::registry::{DistributionRegistry, PairKernel};
use std::collections::{HashMap, HashSet};

/// Below this message count the parallel build falls back to the serial
/// loop: thread spawn/join overhead would dominate the pairwise queries.
const PARALLEL_BUILD_MIN_MESSAGES: usize = 64;

/// One worker's rows: for each owned row `i`, the upper-triangle
/// probabilities `p(i, j)` for `j > i`.
type RowBlock = Vec<(usize, Vec<f64>)>;

/// One worker's output: its [`RowBlock`] — or the row-major-first error the
/// worker hit.
type RowBlockResult = Result<RowBlock, CoreError>;

/// Partition the rows `0..n` of the upper-triangle query grid into at most
/// `threads` contiguous blocks with approximately equal *pair* counts (row
/// `i` owns `n - 1 - i` pairs, so equal row counts would badly skew work
/// toward the first block).
fn partition_rows(n: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    let total_pairs = n * (n.saturating_sub(1)) / 2;
    let target = total_pairs.div_ceil(threads.max(1)).max(1);
    let mut blocks = Vec::with_capacity(threads);
    let mut start = 0usize;
    let mut acc = 0usize;
    for i in 0..n {
        acc += n - 1 - i;
        if acc >= target || i + 1 == n {
            blocks.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
    }
    blocks
}

/// One client's rows: ascending row indices plus, in lockstep, their
/// timestamps as a contiguous array — the slice the pair-kernel loops
/// stream over.
#[derive(Debug, Clone)]
struct ClientRows {
    client: ClientId,
    rows: Vec<usize>,
    timestamps: Vec<f64>,
}

/// Group `messages` by client, preserving row order within each client and
/// first-appearance order across clients.
fn build_groups(messages: &[Message]) -> (Vec<ClientRows>, HashMap<ClientId, usize>) {
    let mut groups: Vec<ClientRows> = Vec::new();
    let mut group_of: HashMap<ClientId, usize> = HashMap::new();
    for (row, m) in messages.iter().enumerate() {
        let gi = *group_of.entry(m.client).or_insert_with(|| {
            groups.push(ClientRows {
                client: m.client,
                rows: Vec::new(),
                timestamps: Vec::new(),
            });
            groups.len() - 1
        });
        groups[gi].rows.push(row);
        groups[gi].timestamps.push(m.timestamp);
    }
    (groups, group_of)
}

/// Dense matrix of preceding probabilities for a fixed set of messages.
///
/// `prob(i, j)` is `P(message i truly precedes message j)`; by construction
/// `prob(i, j) + prob(j, i) = 1` (up to numeric noise, which is symmetrized
/// away at build time) and `prob(i, i) = 0.5`.
#[derive(Debug, Clone)]
pub struct PrecedenceMatrix {
    messages: Vec<Message>,
    index: HashMap<MessageId, usize>,
    probs: Vec<f64>,
    /// Row stride of `probs`. At least `messages.len()`; kept larger than the
    /// live dimension (geometric growth) so incremental inserts amortize to
    /// O(n) instead of re-laying-out the whole O(n²) buffer per arrival.
    stride: usize,
    /// Per-client row grouping (see [`ClientRows`]), maintained alongside
    /// the dense storage so kernel column fills stream over contiguous
    /// timestamps.
    groups: Vec<ClientRows>,
    group_of: HashMap<ClientId, usize>,
}

impl PrecedenceMatrix {
    /// An empty matrix, ready for incremental [`insert`](Self::insert) calls.
    ///
    /// Unlike [`compute`](Self::compute), which rejects empty input (a
    /// one-shot matrix over nothing is a caller bug), the incremental
    /// lifecycle legitimately passes through the empty state between
    /// arrivals.
    pub fn empty() -> Self {
        PrecedenceMatrix {
            messages: Vec::new(),
            index: HashMap::new(),
            probs: Vec::new(),
            stride: 0,
            groups: Vec::new(),
            group_of: HashMap::new(),
        }
    }

    /// Grow the backing buffer so it can hold at least `cap` rows/columns,
    /// doubling the stride so growth cost amortizes to O(n) per insert.
    fn grow_to(&mut self, cap: usize) {
        crate::grid::grow_square(&mut self.probs, &mut self.stride, self.messages.len(), cap, 0.5);
    }

    /// The new-arrival column, filled per client group through
    /// [`PairKernel`]s: ≤ C kernel resolutions (C = distinct pending
    /// clients), then one tight loop per kernel over that client's
    /// contiguous timestamps. `column[j] = P(m_j precedes new)` —
    /// bit-identical to querying each pair through
    /// [`DistributionRegistry::preceding_probability`].
    fn kernel_column(
        &self,
        message: &Message,
        registry: &DistributionRegistry,
    ) -> Result<Vec<f64>, CoreError> {
        let n = self.messages.len();
        let mut column = vec![0.0; n];
        let mut dts: Vec<f64> = Vec::new();
        let mut probs: Vec<f64> = Vec::new();
        for group in &self.groups {
            let kernel = registry.pair_kernel(group.client, message.client)?;
            dts.clear();
            dts.extend(group.timestamps.iter().map(|&t| t - message.timestamp));
            probs.clear();
            probs.resize(dts.len(), 0.0);
            kernel.preceding_many(&dts, &mut probs);
            for (k, &row) in group.rows.iter().enumerate() {
                column[row] = probs[k];
            }
        }
        // NaN marks the per-call path's InvalidProbability case; scan in
        // column order so the reported pair is the one the per-call loop
        // would have failed on first.
        for (j, &p) in column.iter().enumerate() {
            if p.is_nan() {
                return Err(CoreError::InvalidProbability {
                    left: self.messages[j].id,
                    right: message.id,
                });
            }
        }
        registry.record_queries(n as u64);
        Ok(column)
    }

    /// Insert one message, growing the matrix by one row and one column.
    ///
    /// Only the `n` probabilities against the existing messages are computed
    /// (each existing message `m_j` in the `(m_j, new)` orientation, exactly
    /// as [`compute`](Self::compute) would with the new message appended) —
    /// O(n) probability queries instead of the O(n²) a from-scratch rebuild
    /// costs, and the column is filled through per-client-pair
    /// [`PairKernel`]s, so the registry is consulted once per distinct
    /// pending client rather than once per query. The dense storage keeps
    /// spare capacity (geometric stride growth), so the per-insert copy cost
    /// is amortized O(n) too: an arrival has no O(n²) component at all.
    ///
    /// Returns the new message's index.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicateMessage`] if the id is already present
    /// and [`CoreError::UnknownClient`] if the message's client has no
    /// registered distribution; the matrix is unchanged on error.
    pub fn insert(
        &mut self,
        message: Message,
        registry: &DistributionRegistry,
    ) -> Result<usize, CoreError> {
        if self.index.contains_key(&message.id) {
            return Err(CoreError::DuplicateMessage(message.id));
        }
        let n = self.messages.len();
        let column = match self.kernel_column(&message, registry) {
            Ok(column) => column,
            Err(_) => {
                // Error path: re-run the per-call loop so the reported error
                // (value, pair ordering) and the query accounting match the
                // pre-kernel implementation exactly.
                let mut column = Vec::with_capacity(n);
                for existing in &self.messages {
                    column.push(registry.preceding_probability(existing, &message)?);
                }
                column
            }
        };

        self.grow_to(n + 1);
        let s = self.stride;
        for (j, &p) in column.iter().enumerate() {
            self.probs[j * s + n] = p;
            self.probs[n * s + j] = 1.0 - p;
        }
        // The new diagonal cell may hold a stale value from a removed row.
        self.probs[n * s + n] = 0.5;
        self.index.insert(message.id, n);
        let gi = *self.group_of.entry(message.client).or_insert_with(|| {
            self.groups.push(ClientRows {
                client: message.client,
                rows: Vec::new(),
                timestamps: Vec::new(),
            });
            self.groups.len() - 1
        });
        self.groups[gi].rows.push(n);
        self.groups[gi].timestamps.push(message.timestamp);
        self.messages.push(message);
        Ok(n)
    }

    /// Remove a set of messages (typically an emitted batch), shrinking the
    /// matrix while preserving the relative order — and the already-computed
    /// probabilities — of the survivors. Ids not present are ignored.
    ///
    /// No probability queries are performed: surviving pairs keep the values
    /// (and query orientation) they had at insertion time, so the result is
    /// element-wise identical to a from-scratch [`compute`](Self::compute)
    /// over the surviving messages.
    pub fn remove_batch(&mut self, ids: &[MessageId]) {
        let remove: HashSet<MessageId> = ids.iter().copied().collect();
        let n = self.messages.len();
        let kept: Vec<usize> = (0..n)
            .filter(|&i| !remove.contains(&self.messages[i].id))
            .collect();
        if kept.len() == n {
            return;
        }
        let m = kept.len();
        crate::grid::compact_square(&mut self.probs, self.stride, &kept);
        let mut messages = Vec::with_capacity(m);
        let mut index = HashMap::with_capacity(m);
        for (a, &i) in kept.iter().enumerate() {
            let message = self.messages[i].clone();
            index.insert(message.id, a);
            messages.push(message);
        }
        self.messages = messages;
        self.index = index;
        let (groups, group_of) = build_groups(&self.messages);
        self.groups = groups;
        self.group_of = group_of;
    }

    /// Compute the full matrix for `messages` using the distributions in
    /// `registry`, serially. Equivalent to
    /// [`compute_parallel`](Self::compute_parallel) with a parallelism of 1.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyInput`] for an empty slice,
    /// [`CoreError::DuplicateMessage`] if a message id repeats, and
    /// [`CoreError::UnknownClient`] if any message's client has no registered
    /// distribution.
    pub fn compute(
        messages: &[Message],
        registry: &DistributionRegistry,
    ) -> Result<Self, CoreError> {
        PrecedenceMatrix::compute_parallel(messages, registry, 1)
    }

    /// Compute the full matrix for `messages` with a tiled, multi-threaded
    /// build of the pairwise query grid.
    ///
    /// `parallelism` follows the
    /// [`SequencerConfig::parallelism`](crate::config::SequencerConfig::parallelism)
    /// convention: `1` is fully serial, `0` auto-detects the available
    /// hardware parallelism, any other value is the worker-thread count. The
    /// upper triangle of the query grid is partitioned into contiguous row
    /// blocks balanced by pair count; each worker fills its rows
    /// independently and a serial assembly pass mirrors the complements.
    ///
    /// The result is **bit-identical** to the serial build: every pair
    /// `(i, j)` with `i < j` is evaluated in exactly the same orientation
    /// through the same formulas (see [`PairKernel`]), so the stored
    /// floats — and, on success, the registry query count — are exactly the
    /// ones the serial per-call build produces.
    ///
    /// # Errors
    ///
    /// Same contract as [`compute`](Self::compute); when several pairs fail,
    /// the error for the row-major-first failing pair is returned, exactly as
    /// the serial scan would (the error path re-runs the per-call build to
    /// guarantee this).
    pub fn compute_parallel(
        messages: &[Message],
        registry: &DistributionRegistry,
        parallelism: usize,
    ) -> Result<Self, CoreError> {
        if messages.is_empty() {
            return Err(CoreError::EmptyInput);
        }
        let n = messages.len();
        let mut index = HashMap::with_capacity(n);
        for (i, m) in messages.iter().enumerate() {
            if index.insert(m.id, i).is_some() {
                return Err(CoreError::DuplicateMessage(m.id));
            }
        }

        let (groups, group_of) = build_groups(messages);
        let threads = crate::config::resolve_parallelism(parallelism).min(n);
        let blocks_result: Result<Vec<RowBlock>, CoreError> =
            if threads <= 1 || n < PARALLEL_BUILD_MIN_MESSAGES {
                Self::kernel_rows(messages, &groups, registry, 0..n).map(|rows| vec![rows])
            } else {
                let blocks = partition_rows(n, threads);
                // Workers share the read-only group structure; each resolves
                // its own kernel cache (≤ C² registry touches per worker) and
                // then runs lock-free. A worker stops at its first row-major
                // error; collecting in ascending block order surfaces the
                // earliest one.
                let results: Vec<RowBlockResult> = std::thread::scope(|scope| {
                    let handles: Vec<_> = blocks
                        .iter()
                        .map(|block| {
                            let block = block.clone();
                            let groups = &groups;
                            scope.spawn(move || {
                                Self::kernel_rows(messages, groups, registry, block)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("matrix build worker panicked"))
                        .collect()
                });
                results.into_iter().collect()
            };
        let row_blocks = match blocks_result {
            Ok(row_blocks) => row_blocks,
            // Error path: re-run the per-call build, which reports exactly
            // the error (and error ordering) the pre-kernel implementation
            // did.
            Err(_) => return Self::compute_parallel_percall(messages, registry, parallelism),
        };

        let mut probs = vec![0.5; n * n];
        for block_rows in row_blocks {
            for (i, row) in block_rows {
                for (offset, p) in row.into_iter().enumerate() {
                    let j = i + 1 + offset;
                    probs[i * n + j] = p;
                    probs[j * n + i] = 1.0 - p;
                }
            }
        }
        registry.record_queries((n * (n - 1) / 2) as u64);
        Ok(PrecedenceMatrix {
            messages: messages.to_vec(),
            index,
            probs,
            stride: n,
            groups,
            group_of,
        })
    }

    /// Fill the upper-triangle rows `block` of the query grid through pair
    /// kernels: for each row `i`, every client group's columns `> i` are
    /// evaluated with one kernel in one contiguous pass. Returns `(i, row)`
    /// pairs where `row[k] = p(i, i + 1 + k)`.
    fn kernel_rows(
        messages: &[Message],
        groups: &[ClientRows],
        registry: &DistributionRegistry,
        block: std::ops::Range<usize>,
    ) -> RowBlockResult {
        let n = messages.len();
        let mut kernels: HashMap<(ClientId, ClientId), PairKernel> = HashMap::new();
        let mut rows = Vec::with_capacity(block.len());
        let mut dts: Vec<f64> = Vec::new();
        let mut probs: Vec<f64> = Vec::new();
        for i in block {
            let mi = &messages[i];
            let mut row = vec![0.0; n - i - 1];
            for group in groups {
                // This client's columns strictly beyond the diagonal.
                let start = group.rows.partition_point(|&r| r <= i);
                if start == group.rows.len() {
                    continue;
                }
                let kernel = match kernels.entry((mi.client, group.client)) {
                    std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(registry.pair_kernel(mi.client, group.client)?)
                    }
                };
                let ts = &group.timestamps[start..];
                dts.clear();
                dts.extend(ts.iter().map(|&t| mi.timestamp - t));
                probs.clear();
                probs.resize(dts.len(), 0.0);
                kernel.preceding_many(&dts, &mut probs);
                for (k, &j) in group.rows[start..].iter().enumerate() {
                    row[j - i - 1] = probs[k];
                }
            }
            // NaN marks the per-call path's InvalidProbability case; scan in
            // column order so the reported pair is the row-major-first one.
            for (k, &p) in row.iter().enumerate() {
                if p.is_nan() {
                    return Err(CoreError::InvalidProbability {
                        left: mi.id,
                        right: messages[i + 1 + k].id,
                    });
                }
            }
            rows.push((i, row));
        }
        Ok(rows)
    }

    /// The pre-kernel per-call build, kept as the error-path fallback: every
    /// pair goes through [`DistributionRegistry::preceding_probability`]
    /// individually, so error values, error ordering, and per-call query
    /// accounting are exactly the historical ones.
    fn compute_parallel_percall(
        messages: &[Message],
        registry: &DistributionRegistry,
        parallelism: usize,
    ) -> Result<Self, CoreError> {
        let n = messages.len();
        let mut index = HashMap::with_capacity(n);
        for (i, m) in messages.iter().enumerate() {
            if index.insert(m.id, i).is_some() {
                return Err(CoreError::DuplicateMessage(m.id));
            }
        }

        let threads = crate::config::resolve_parallelism(parallelism).min(n);
        let mut probs = vec![0.5; n * n];
        if threads <= 1 || n < PARALLEL_BUILD_MIN_MESSAGES {
            for i in 0..n {
                for j in (i + 1)..n {
                    let p = registry.preceding_probability(&messages[i], &messages[j])?;
                    probs[i * n + j] = p;
                    probs[j * n + i] = 1.0 - p;
                }
            }
        } else {
            let blocks = partition_rows(n, threads);
            // Each worker owns a contiguous block of rows and produces, for
            // every row i, the upper-triangle values p(i, j) for j > i. A
            // worker stops at its first error, so the per-block error is its
            // row-major-first one; scanning blocks in ascending row order
            // below therefore surfaces the same error a serial scan would.
            let results: Vec<RowBlockResult> = std::thread::scope(|scope| {
                    let handles: Vec<_> = blocks
                        .iter()
                        .map(|block| {
                            let block = block.clone();
                            scope.spawn(move || {
                                let mut rows = Vec::with_capacity(block.len());
                                for i in block {
                                    let mut row = Vec::with_capacity(n - i - 1);
                                    for j in (i + 1)..n {
                                        row.push(
                                            registry
                                                .preceding_probability(&messages[i], &messages[j])?,
                                        );
                                    }
                                    rows.push((i, row));
                                }
                                Ok(rows)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("matrix build worker panicked"))
                        .collect()
                });
            for block_rows in results {
                for (i, row) in block_rows? {
                    for (offset, p) in row.into_iter().enumerate() {
                        let j = i + 1 + offset;
                        probs[i * n + j] = p;
                        probs[j * n + i] = 1.0 - p;
                    }
                }
            }
        }
        let (groups, group_of) = build_groups(messages);
        Ok(PrecedenceMatrix {
            messages: messages.to_vec(),
            index,
            probs,
            stride: n,
            groups,
            group_of,
        })
    }

    /// Build a matrix directly from explicit pairwise probabilities — used by
    /// tests and by the Appendix B worked example, where the paper gives the
    /// matrix directly instead of deriving it from distributions.
    ///
    /// `pairwise[i][j]` must hold `P(i precedes j)` for `i != j`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are inconsistent or probabilities are outside
    /// `[0, 1]`.
    pub fn from_probabilities(messages: &[Message], pairwise: &[Vec<f64>]) -> Self {
        let n = messages.len();
        assert!(n > 0, "need at least one message");
        assert_eq!(pairwise.len(), n, "matrix row count mismatch");
        let mut index = HashMap::with_capacity(n);
        for (i, m) in messages.iter().enumerate() {
            assert!(
                index.insert(m.id, i).is_none(),
                "duplicate message id {}",
                m.id
            );
        }
        let mut probs = vec![0.5; n * n];
        for i in 0..n {
            assert_eq!(pairwise[i].len(), n, "matrix column count mismatch");
            for j in 0..n {
                if i == j {
                    continue;
                }
                let p = pairwise[i][j];
                assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
                probs[i * n + j] = p;
            }
        }
        let (groups, group_of) = build_groups(messages);
        PrecedenceMatrix {
            messages: messages.to_vec(),
            index,
            probs,
            stride: n,
            groups,
            group_of,
        }
    }

    /// Number of messages.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// Bytes currently reserved for the dense probability grid
    /// (`capacity × 8`). This is the O(n²) term the sparse fast path
    /// avoids; the online sequencer samples it into
    /// `OnlineStats::peak_matrix_bytes` after every mutation.
    pub fn prob_bytes(&self) -> usize {
        self.probs.capacity() * core::mem::size_of::<f64>()
    }

    /// Whether the matrix is empty (possible only for [`empty`](Self::empty)
    /// matrices between incremental insertions).
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// The messages, in index order.
    pub fn messages(&self) -> &[Message] {
        &self.messages
    }

    /// The message at index `i`.
    pub fn message(&self, i: usize) -> &Message {
        &self.messages[i]
    }

    /// Index of a message id, if present.
    pub fn index_of(&self, id: MessageId) -> Option<usize> {
        self.index.get(&id).copied()
    }

    /// `P(message at index i precedes message at index j)`.
    pub fn prob(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.messages.len() && j < self.messages.len());
        self.probs[i * self.stride + j]
    }

    /// `P(a precedes b)` by message id.
    ///
    /// # Panics
    ///
    /// Panics if either id is not in the matrix.
    pub fn prob_by_id(&self, a: MessageId, b: MessageId) -> f64 {
        let i = self.index_of(a).unwrap_or_else(|| panic!("{a} not in matrix"));
        let j = self.index_of(b).unwrap_or_else(|| panic!("{b} not in matrix"));
        self.prob(i, j)
    }

    /// The fraction of unordered pairs whose higher-direction probability
    /// exceeds `threshold` — i.e. the fraction of pairs the sequencer can
    /// confidently order. A direct measure of how much fairness resolution a
    /// given clock-error level permits.
    pub fn confident_pair_fraction(&self, threshold: f64) -> f64 {
        let n = self.messages.len();
        if n < 2 {
            return 1.0;
        }
        let mut confident = 0usize;
        let mut total = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                total += 1;
                let p = self.prob(i, j).max(self.prob(j, i));
                if p > threshold {
                    confident += 1;
                }
            }
        }
        confident as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ClientId;
    use tommy_stats::distribution::OffsetDistribution;

    fn msg(id: u64, client: u32, ts: f64) -> Message {
        Message::new(MessageId(id), ClientId(client), ts)
    }

    fn registry(sigma: f64, clients: u32) -> DistributionRegistry {
        let mut reg = DistributionRegistry::new();
        for c in 0..clients {
            reg.register(ClientId(c), OffsetDistribution::gaussian(0.0, sigma));
        }
        reg
    }

    #[test]
    fn matrix_is_complementary() {
        let reg = registry(5.0, 3);
        let msgs = vec![msg(0, 0, 10.0), msg(1, 1, 12.0), msg(2, 2, 30.0)];
        let m = PrecedenceMatrix::compute(&msgs, &reg).unwrap();
        for i in 0..3 {
            assert!((m.prob(i, i) - 0.5).abs() < 1e-12);
            for j in 0..3 {
                assert!((m.prob(i, j) + m.prob(j, i) - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn widely_separated_messages_are_confidently_ordered() {
        let reg = registry(1.0, 2);
        let msgs = vec![msg(0, 0, 0.0), msg(1, 1, 100.0)];
        let m = PrecedenceMatrix::compute(&msgs, &reg).unwrap();
        assert!(m.prob(0, 1) > 0.999);
        assert_eq!(m.confident_pair_fraction(0.75), 1.0);
    }

    #[test]
    fn close_messages_with_noisy_clocks_are_uncertain() {
        let reg = registry(50.0, 2);
        let msgs = vec![msg(0, 0, 0.0), msg(1, 1, 1.0)];
        let m = PrecedenceMatrix::compute(&msgs, &reg).unwrap();
        assert!(m.prob(0, 1) < 0.6);
        assert_eq!(m.confident_pair_fraction(0.75), 0.0);
    }

    #[test]
    fn duplicate_ids_rejected() {
        let reg = registry(1.0, 2);
        let msgs = vec![msg(0, 0, 0.0), msg(0, 1, 1.0)];
        assert_eq!(
            PrecedenceMatrix::compute(&msgs, &reg).unwrap_err(),
            CoreError::DuplicateMessage(MessageId(0))
        );
    }

    #[test]
    fn empty_input_rejected() {
        let reg = registry(1.0, 1);
        assert_eq!(
            PrecedenceMatrix::compute(&[], &reg).unwrap_err(),
            CoreError::EmptyInput
        );
    }

    #[test]
    fn lookup_by_id() {
        let reg = registry(1.0, 2);
        let msgs = vec![msg(7, 0, 0.0), msg(9, 1, 5.0)];
        let m = PrecedenceMatrix::compute(&msgs, &reg).unwrap();
        assert_eq!(m.index_of(MessageId(9)), Some(1));
        assert_eq!(m.index_of(MessageId(8)), None);
        assert!(m.prob_by_id(MessageId(7), MessageId(9)) > 0.99);
    }

    fn assert_matrices_identical(a: &PrecedenceMatrix, b: &PrecedenceMatrix) {
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.message(i).id, b.message(i).id, "index {i}");
            for j in 0..a.len() {
                // Element-wise *exact* equality: the incremental path must
                // issue the same registry queries as a from-scratch compute.
                assert_eq!(
                    a.prob(i, j),
                    b.prob(i, j),
                    "prob({i},{j}) diverged: {} vs {}",
                    a.prob(i, j),
                    b.prob(i, j)
                );
            }
        }
    }

    #[test]
    fn incremental_insert_matches_compute() {
        let reg = registry(5.0, 4);
        let msgs = [msg(0, 0, 10.0),
            msg(1, 1, 12.0),
            msg(2, 2, 11.0),
            msg(3, 3, 30.0)];
        let mut inc = PrecedenceMatrix::empty();
        assert!(inc.is_empty());
        for (i, m) in msgs.iter().enumerate() {
            assert_eq!(inc.insert(m.clone(), &reg).unwrap(), i);
            let scratch = PrecedenceMatrix::compute(&msgs[..=i], &reg).unwrap();
            assert_matrices_identical(&inc, &scratch);
        }
    }

    #[test]
    fn incremental_insert_rejects_duplicates_and_unknown_clients() {
        let reg = registry(1.0, 2);
        let mut inc = PrecedenceMatrix::empty();
        inc.insert(msg(0, 0, 1.0), &reg).unwrap();
        assert_eq!(
            inc.insert(msg(0, 1, 2.0), &reg).unwrap_err(),
            CoreError::DuplicateMessage(MessageId(0))
        );
        assert_eq!(
            inc.insert(msg(1, 9, 2.0), &reg).unwrap_err(),
            CoreError::UnknownClient(ClientId(9))
        );
        // The failed inserts left the matrix untouched.
        assert_eq!(inc.len(), 1);
        assert_eq!(inc.index_of(MessageId(0)), Some(0));
    }

    #[test]
    fn remove_batch_matches_compute_over_survivors() {
        let reg = registry(8.0, 3);
        let msgs = vec![
            msg(0, 0, 1.0),
            msg(1, 1, 2.0),
            msg(2, 2, 3.0),
            msg(3, 0, 4.0),
            msg(4, 1, 5.0),
        ];
        let mut inc = PrecedenceMatrix::empty();
        for m in &msgs {
            inc.insert(m.clone(), &reg).unwrap();
        }
        inc.remove_batch(&[MessageId(1), MessageId(3), MessageId(99)]);
        let survivors = vec![msgs[0].clone(), msgs[2].clone(), msgs[4].clone()];
        let scratch = PrecedenceMatrix::compute(&survivors, &reg).unwrap();
        assert_matrices_identical(&inc, &scratch);
        assert_eq!(inc.index_of(MessageId(1)), None);

        // Removing everything leaves a usable empty matrix.
        inc.remove_batch(&[MessageId(0), MessageId(2), MessageId(4)]);
        assert!(inc.is_empty());
        inc.insert(msg(7, 0, 9.0), &reg).unwrap();
        assert_eq!(inc.len(), 1);
    }

    /// Seeded randomized arrival/emission sequences: after every operation
    /// the incrementally maintained matrix must be element-wise equal to a
    /// from-scratch `compute` over the same pending set. Exercises both the
    /// Gaussian closed form and the numeric (discretized difference) path.
    #[test]
    fn random_insert_remove_sequences_match_compute() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use tommy_stats::distribution::OffsetDistribution;

        for seed in 0..12u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut reg = DistributionRegistry::new();
            // Mix Gaussian and Laplace clients so some pairs take the
            // numeric path.
            for c in 0..4u32 {
                let dist = if c % 2 == 0 {
                    OffsetDistribution::gaussian(0.0, 1.0 + c as f64)
                } else {
                    OffsetDistribution::laplace(0.0, 1.0 + c as f64)
                };
                reg.register(ClientId(c), dist);
            }

            let mut inc = PrecedenceMatrix::empty();
            let mut pending: Vec<Message> = Vec::new();
            let mut next_id = 0u64;
            for _ in 0..30 {
                let remove = !pending.is_empty() && rng.random_range(0u32..4) == 0;
                if remove {
                    // Emit a random prefix-like batch: between 1 and all
                    // pending messages, chosen at random.
                    let count = rng.random_range(1usize..=pending.len());
                    let mut ids: Vec<MessageId> = Vec::with_capacity(count);
                    for _ in 0..count {
                        let k = rng.random_range(0usize..pending.len());
                        ids.push(pending.remove(k).id);
                    }
                    inc.remove_batch(&ids);
                } else {
                    let m = msg(
                        next_id,
                        rng.random_range(0u32..4),
                        rng.random_range(-100.0..100.0f64),
                    );
                    next_id += 1;
                    pending.push(m.clone());
                    inc.insert(m, &reg).unwrap();
                }
                if pending.is_empty() {
                    assert!(inc.is_empty());
                } else {
                    let scratch = PrecedenceMatrix::compute(&pending, &reg).unwrap();
                    assert_matrices_identical(&inc, &scratch);
                }
            }
        }
    }

    /// Both kernel-based builds — the incremental insert and the one-shot
    /// compute — must be bit-identical to a per-call reference that queries
    /// every pair individually through `preceding_probability`, across the
    /// Gaussian closed form and the numeric (discretized) path.
    #[test]
    fn kernel_builds_match_per_call_reference_bitwise() {
        let mut reg = DistributionRegistry::new();
        for c in 0..5u32 {
            let dist = match c % 3 {
                0 => OffsetDistribution::gaussian(0.5 * c as f64, 1.0 + c as f64),
                1 => OffsetDistribution::laplace(-0.3 * c as f64, 1.5),
                _ => OffsetDistribution::uniform(-3.0 - c as f64, 4.0),
            };
            reg.register(ClientId(c), dist);
        }
        let msgs: Vec<Message> = (0..80)
            .map(|i| msg(i, (i % 5) as u32, (i % 13) as f64 * 1.7))
            .collect();
        let computed = PrecedenceMatrix::compute(&msgs, &reg).unwrap();
        let mut inserted = PrecedenceMatrix::empty();
        for m in &msgs {
            inserted.insert(m.clone(), &reg).unwrap();
        }
        for i in 0..msgs.len() {
            for j in 0..msgs.len() {
                let expect = match i.cmp(&j) {
                    std::cmp::Ordering::Equal => 0.5,
                    std::cmp::Ordering::Less => {
                        reg.preceding_probability(&msgs[i], &msgs[j]).unwrap()
                    }
                    std::cmp::Ordering::Greater => {
                        1.0 - reg.preceding_probability(&msgs[j], &msgs[i]).unwrap()
                    }
                };
                assert_eq!(
                    computed.prob(i, j).to_bits(),
                    expect.to_bits(),
                    "compute ({i},{j})"
                );
                assert_eq!(
                    inserted.prob(i, j).to_bits(),
                    expect.to_bits(),
                    "insert ({i},{j})"
                );
            }
        }
    }

    /// The tiled multi-threaded build must be bit-identical to the serial
    /// one — same floats in every cell, for any thread count, across both
    /// the Gaussian closed form and the numeric (discretized) path.
    #[test]
    fn parallel_compute_is_bit_identical_to_serial() {
        let mut reg = DistributionRegistry::new();
        for c in 0..5u32 {
            let dist = if c % 2 == 0 {
                OffsetDistribution::gaussian(0.0, 1.0 + c as f64)
            } else {
                OffsetDistribution::laplace(0.5, 1.0 + c as f64)
            };
            reg.register(ClientId(c), dist);
        }
        let msgs: Vec<Message> = (0..150)
            .map(|i| msg(i, (i % 5) as u32, (i % 23) as f64 * 1.5))
            .collect();
        let serial = PrecedenceMatrix::compute(&msgs, &reg).unwrap();
        for threads in [0usize, 2, 3, 8, 150] {
            let parallel = PrecedenceMatrix::compute_parallel(&msgs, &reg, threads).unwrap();
            assert_matrices_identical(&parallel, &serial);
        }
    }

    /// On failure the parallel build surfaces the error the serial row-major
    /// scan would have hit first.
    #[test]
    fn parallel_compute_reports_first_error_in_row_order() {
        let reg = registry(1.0, 3);
        let mut msgs: Vec<Message> = (0..100)
            .map(|i| msg(i, (i % 3) as u32, i as f64))
            .collect();
        // Two unregistered clients; the one at the smaller row index is the
        // error a serial scan reports first.
        msgs[10] = msg(10, 7, 10.0);
        msgs[80] = msg(80, 9, 80.0);
        let serial_err = PrecedenceMatrix::compute(&msgs, &reg).unwrap_err();
        assert_eq!(serial_err, CoreError::UnknownClient(ClientId(7)));
        for threads in [2usize, 4, 16] {
            assert_eq!(
                PrecedenceMatrix::compute_parallel(&msgs, &reg, threads).unwrap_err(),
                serial_err,
                "threads {threads}"
            );
        }
    }

    #[test]
    fn partition_rows_covers_every_row_exactly_once() {
        for (n, threads) in [(5usize, 2usize), (64, 4), (101, 8), (200, 3), (16, 32)] {
            let blocks = super::partition_rows(n, threads);
            let mut next = 0usize;
            for block in &blocks {
                assert_eq!(block.start, next, "blocks must be contiguous");
                assert!(block.end > block.start, "blocks must be non-empty");
                next = block.end;
            }
            assert_eq!(next, n, "blocks must cover all rows");
            assert!(blocks.len() <= threads.max(1) + 1);
        }
    }

    #[test]
    fn from_probabilities_appendix_b_matrix() {
        // The Appendix B example matrix (A, B, C, D).
        let msgs = vec![msg(0, 0, 0.0), msg(1, 1, 0.0), msg(2, 2, 0.0), msg(3, 3, 0.0)];
        let pairwise = vec![
            vec![0.5, 0.85, 0.65, 0.92],
            vec![0.15, 0.5, 0.72, 0.68],
            vec![0.35, 0.28, 0.5, 0.80],
            vec![0.08, 0.32, 0.20, 0.5],
        ];
        let m = PrecedenceMatrix::from_probabilities(&msgs, &pairwise);
        assert_eq!(m.prob(0, 1), 0.85);
        assert_eq!(m.prob(2, 3), 0.80);
        assert_eq!(m.prob(3, 0), 0.08);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_probabilities_rejects_bad_values() {
        let msgs = vec![msg(0, 0, 0.0), msg(1, 1, 0.0)];
        let pairwise = vec![vec![0.5, 1.5], vec![-0.5, 0.5]];
        PrecedenceMatrix::from_probabilities(&msgs, &pairwise);
    }
}
