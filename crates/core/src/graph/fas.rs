//! Feedback-arc-set style ordering heuristics for cyclic components.
//!
//! §3.4 of the paper: an intransitive `likely-happened-before` relation can
//! produce cycles; breaking them requires discarding some pairwise evidence,
//! and finding the minimum set of edges to discard is NP-hard. Two heuristics
//! are provided:
//!
//! * [`greedy_order`] — a weighted variant of the Eades–Lin–Smyth greedy
//!   feedback-arc-set heuristic: repeatedly emit the vertex whose outgoing
//!   probability mass most exceeds its incoming mass. Deterministic.
//! * [`stochastic_order`] — emits vertices by weighted random sampling, with
//!   weights proportional to each vertex's outgoing probability mass. Over
//!   many sequencing rounds no message is *systematically* disadvantaged by
//!   the cycle-breaking choice — the "stochastic fairness" direction the
//!   paper sketches.
//!
//! ## The incremental FAS engine
//!
//! The heuristics above are superlinear per cyclic component, so running
//! them over *every* cyclic component on every intransitivity event (the
//! pre-incremental behaviour: each cyclic arrival invalidated the whole
//! maintained order) does not scale. The incremental engine in
//! [`IncrementalTournament`](crate::tournament::IncrementalTournament)
//! instead maintains the condensation of the tournament as a sequence of
//! per-SCC *blocks* and calls [`repair_component`] — a bounded local-repair
//! pass — only on the one SCC a new arrival actually touches, leaving every
//! other block's cached order untouched. The repair itself still runs the
//! exhaustive greedy pass (kept as the correctness anchor: its output is
//! what the one-shot pipeline produces for the same member set), but its
//! input is the touched component, not the whole pending set.
//!
//! Two thread-local counters measure the split:
//!
//! * [`exhaustive_passes`] — how many times the superlinear greedy loop ran
//!   (once per cyclic component ordered, on either path);
//! * [`local_repairs`] — how many of those runs were SCC-scoped repairs
//!   issued by the incremental engine rather than full-order recomputes.
//!
//! Both stay **zero** on Gaussian workloads (Appendix A: no cycles), which
//! the regression tests pin.

use rand::Rng;
use rand::RngCore;
use std::cell::Cell;

thread_local! {
    /// Exhaustive greedy passes run on this thread (see
    /// [`exhaustive_passes`]).
    static EXHAUSTIVE_PASSES: Cell<u64> = const { Cell::new(0) };
    /// SCC-scoped local repairs run on this thread (see [`local_repairs`]).
    static LOCAL_REPAIRS: Cell<u64> = const { Cell::new(0) };
}

/// Number of times [`greedy_order`] fell through to its exhaustive
/// superlinear loop on the current thread — which must happen only for
/// *cyclic* components (acyclic ones take the single-pass transitivity
/// early-exit). Thread-local so concurrent tests cannot race each other's
/// deltas; mirrors the `full_rebuilds` counter pattern of
/// [`IncrementalTournament`](crate::tournament::IncrementalTournament). This
/// is the baseline the incremental FAS engine is measured against: the
/// fallback (full-recompute) path pays one pass per cyclic component per
/// intransitivity event, the incremental path one per *touched* component.
pub fn exhaustive_passes() -> u64 {
    EXHAUSTIVE_PASSES.with(Cell::get)
}

/// Number of [`repair_component`] calls on the current thread: SCC-scoped
/// local repairs issued by the incremental FAS engine (a merge caused by an
/// arrival, or a component split caused by an emission). Stays **zero** on
/// acyclic (Gaussian) workloads and on the fallback full-recompute path.
pub fn local_repairs() -> u64 {
    LOCAL_REPAIRS.with(Cell::get)
}

/// Order the members of a single strongly connected component that the
/// incremental FAS engine has isolated — the *bounded local-repair pass*.
///
/// `members` must be sorted ascending (the canonical member order both the
/// incremental engine and the one-shot pipeline agree on), and `prob` must
/// describe the same pairwise probabilities the one-shot pipeline would
/// read, so the output is exactly what [`greedy_order`] produces for the
/// component inside a full recompute — this is what keeps the maintained
/// order bit-identical to the fallback path while only ever touching the
/// one SCC that changed.
pub fn repair_component(members: &[usize], prob: &dyn Fn(usize, usize) -> f64) -> Vec<usize> {
    debug_assert!(members.windows(2).all(|w| w[0] < w[1]), "members not sorted");
    LOCAL_REPAIRS.with(|c| c.set(c.get() + 1));
    greedy_order(members, prob)
}

/// If the sub-tournament induced on `members` is already transitive
/// (acyclic), return its unique Hamiltonian path; otherwise `None`.
///
/// One O(k²) pass over the pairs (edge orientations follow the tournament
/// convention: ties go to the earlier member), using the score-sequence
/// characterization — a tournament is transitive iff its out-degrees are a
/// permutation of `{0, …, k−1}` — so an acyclic component costs a single
/// pass instead of the greedy loop's repeated exhaustive scans.
fn transitive_path(members: &[usize], prob: &dyn Fn(usize, usize) -> f64) -> Option<Vec<usize>> {
    let k = members.len();
    if k <= 1 {
        return Some(members.to_vec());
    }
    let mut outdeg = vec![0usize; k];
    for a in 0..k {
        for b in (a + 1)..k {
            if prob(members[a], members[b]) >= prob(members[b], members[a]) {
                outdeg[a] += 1;
            } else {
                outdeg[b] += 1;
            }
        }
    }
    let mut seen = vec![false; k];
    for &d in &outdeg {
        if seen[d] {
            return None; // repeated score: at least one 3-cycle exists
        }
        seen[d] = true;
    }
    // Transitive: the vertex beating all others first, then descending.
    let mut by_score: Vec<usize> = (0..k).collect();
    by_score.sort_unstable_by_key(|&a| std::cmp::Reverse(outdeg[a]));
    Some(by_score.into_iter().map(|a| members[a]).collect())
}

/// Order the vertices `members` using the greedy heuristic.
///
/// `prob(a, b)` must return the probability that `a` precedes `b` (only
/// called for distinct members). The returned vector is a permutation of
/// `members`.
///
/// When the induced sub-tournament is already acyclic the exhaustive greedy
/// loop is skipped entirely and the unique Hamiltonian path is returned
/// after a single O(k²) transitivity pass; on cyclic inputs the heuristic
/// output is unchanged.
pub fn greedy_order(members: &[usize], prob: &dyn Fn(usize, usize) -> f64) -> Vec<usize> {
    if let Some(path) = transitive_path(members, prob) {
        return path;
    }
    EXHAUSTIVE_PASSES.with(|c| c.set(c.get() + 1));
    let mut remaining: Vec<usize> = members.to_vec();
    let mut order = Vec::with_capacity(members.len());
    while !remaining.is_empty() {
        // Score = Σ_out p(v, u) − Σ_in p(u, v) over remaining vertices.
        let mut best_idx = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (idx, &v) in remaining.iter().enumerate() {
            let mut score = 0.0;
            for &u in &remaining {
                if u == v {
                    continue;
                }
                score += prob(v, u) - prob(u, v);
            }
            if score > best_score + 1e-15 {
                best_score = score;
                best_idx = idx;
            }
        }
        order.push(remaining.remove(best_idx));
    }
    order
}

/// Order the vertices `members` by weighted random sampling without
/// replacement: at every step vertex `v` is selected with probability
/// proportional to its total outgoing probability mass towards the remaining
/// vertices.
pub fn stochastic_order(
    members: &[usize],
    prob: &dyn Fn(usize, usize) -> f64,
    rng: &mut dyn RngCore,
) -> Vec<usize> {
    let mut remaining: Vec<usize> = members.to_vec();
    let mut order = Vec::with_capacity(members.len());
    while remaining.len() > 1 {
        let weights: Vec<f64> = remaining
            .iter()
            .map(|&v| {
                let w: f64 = remaining
                    .iter()
                    .filter(|&&u| u != v)
                    .map(|&u| prob(v, u))
                    .sum();
                // Every vertex keeps a small floor weight so no message is
                // ever permanently starved by the sampler.
                w.max(1e-6)
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let mut pick = rng.random::<f64>() * total;
        let mut chosen = remaining.len() - 1;
        for (idx, &w) in weights.iter().enumerate() {
            if pick < w {
                chosen = idx;
                break;
            }
            pick -= w;
        }
        order.push(remaining.remove(chosen));
    }
    order.extend(remaining);
    order
}

/// Count how much pairwise probability mass an ordering discards: the sum of
/// `p(b, a)` over pairs ordered `a` before `b` where `p(b, a) > 0.5` (i.e.
/// edges of the tournament pointing backwards in the ordering).
pub fn backward_weight(order: &[usize], prob: &dyn Fn(usize, usize) -> f64) -> f64 {
    let mut total = 0.0;
    for (i, &a) in order.iter().enumerate() {
        for &b in order.iter().skip(i + 1) {
            let p_back = prob(b, a);
            if p_back > 0.5 {
                total += p_back;
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    /// Build a probability closure from a map of directed pair probabilities.
    fn prob_from(pairs: &[((usize, usize), f64)]) -> impl Fn(usize, usize) -> f64 + '_ {
        let map: HashMap<(usize, usize), f64> = pairs.iter().copied().collect();
        move |a, b| {
            if let Some(&p) = map.get(&(a, b)) {
                p
            } else if let Some(&p) = map.get(&(b, a)) {
                1.0 - p
            } else {
                0.5
            }
        }
    }

    #[test]
    fn greedy_recovers_transitive_order() {
        // 0 clearly precedes 1 precedes 2.
        let pairs = [((0, 1), 0.9), ((1, 2), 0.85), ((0, 2), 0.95)];
        let prob = prob_from(&pairs);
        let order = greedy_order(&[2, 0, 1], &prob);
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn greedy_handles_cycle_without_losing_members() {
        // Rock–paper–scissors cycle.
        let pairs = [((0, 1), 0.8), ((1, 2), 0.8), ((2, 0), 0.8)];
        let prob = prob_from(&pairs);
        let order = greedy_order(&[0, 1, 2], &prob);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn greedy_breaks_asymmetric_cycle_at_weakest_edge() {
        // Cycle where 2 -> 0 is the weakest evidence: dropping it costs least,
        // so the order should be 0, 1, 2.
        let pairs = [((0, 1), 0.95), ((1, 2), 0.9), ((2, 0), 0.55)];
        let prob = prob_from(&pairs);
        let order = greedy_order(&[0, 1, 2], &prob);
        assert_eq!(order, vec![0, 1, 2]);
        let bw = backward_weight(&order, &prob);
        assert!((bw - 0.55).abs() < 1e-9);
    }

    #[test]
    fn stochastic_order_is_a_permutation() {
        let pairs = [((0, 1), 0.8), ((1, 2), 0.8), ((2, 0), 0.8)];
        let prob = prob_from(&pairs);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let order = stochastic_order(&[0, 1, 2], &prob, &mut rng);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2]);
        }
    }

    #[test]
    fn stochastic_order_varies_across_runs_on_a_cycle() {
        let pairs = [((0, 1), 0.8), ((1, 2), 0.8), ((2, 0), 0.8)];
        let prob = prob_from(&pairs);
        let mut rng = StdRng::seed_from_u64(7);
        let mut firsts = std::collections::HashSet::new();
        for _ in 0..200 {
            let order = stochastic_order(&[0, 1, 2], &prob, &mut rng);
            firsts.insert(order[0]);
        }
        // In a symmetric cycle every member should get to go first sometimes.
        assert_eq!(firsts.len(), 3, "firsts = {firsts:?}");
    }

    #[test]
    fn stochastic_order_respects_strong_evidence() {
        // 0 precedes 1 with overwhelming probability; the sampler should
        // rarely reverse them.
        let pairs = [((0, 1), 0.999)];
        let prob = prob_from(&pairs);
        let mut rng = StdRng::seed_from_u64(3);
        let mut zero_first = 0;
        let runs = 500;
        for _ in 0..runs {
            let order = stochastic_order(&[0, 1], &prob, &mut rng);
            if order == vec![0, 1] {
                zero_first += 1;
            }
        }
        assert!(zero_first > 450, "zero first {zero_first}/{runs}");
    }

    #[test]
    fn backward_weight_zero_for_consistent_order() {
        let pairs = [((0, 1), 0.9), ((1, 2), 0.8), ((0, 2), 0.7)];
        let prob = prob_from(&pairs);
        assert_eq!(backward_weight(&[0, 1, 2], &prob), 0.0);
        assert!(backward_weight(&[2, 1, 0], &prob) > 0.0);
    }

    /// The pre-early-exit greedy loop, kept verbatim as the regression
    /// reference: on cyclic inputs the optimized `greedy_order` must produce
    /// exactly this output.
    fn reference_greedy(members: &[usize], prob: &dyn Fn(usize, usize) -> f64) -> Vec<usize> {
        let mut remaining: Vec<usize> = members.to_vec();
        let mut order = Vec::with_capacity(members.len());
        while !remaining.is_empty() {
            let mut best_idx = 0usize;
            let mut best_score = f64::NEG_INFINITY;
            for (idx, &v) in remaining.iter().enumerate() {
                let mut score = 0.0;
                for &u in &remaining {
                    if u == v {
                        continue;
                    }
                    score += prob(v, u) - prob(u, v);
                }
                if score > best_score + 1e-15 {
                    best_score = score;
                    best_idx = idx;
                }
            }
            order.push(remaining.remove(best_idx));
        }
        order
    }

    /// Regression for the acyclic early-exit: identical output on cyclic
    /// inputs, and the unique Hamiltonian path (skipping the exhaustive
    /// loop) on transitive ones.
    #[test]
    #[allow(clippy::needless_range_loop)] // symmetric (a, b) matrix fill
    fn early_exit_keeps_cyclic_output_identical() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(23);
        let mut cyclic_seen = 0usize;
        let mut transitive_seen = 0usize;
        for _ in 0..60 {
            let k = rng.random_range(3usize..9);
            let mut p = vec![vec![0.5; k]; k];
            for a in 0..k {
                for b in (a + 1)..k {
                    let q = rng.random_range(0.05..0.95f64);
                    p[a][b] = q;
                    p[b][a] = 1.0 - q;
                }
            }
            let prob = |a: usize, b: usize| p[a][b];
            let members: Vec<usize> = (0..k).collect();
            let order = greedy_order(&members, &prob);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, members, "must be a permutation");
            if transitive_path(&members, &prob).is_some() {
                transitive_seen += 1;
                // The early-exit returns the unique Hamiltonian path: every
                // adjacent pair is ordered along a tournament edge.
                for w in order.windows(2) {
                    assert!(
                        prob(w[0], w[1]) >= prob(w[1], w[0]),
                        "path edge {w:?} points backwards"
                    );
                }
            } else {
                cyclic_seen += 1;
                assert_eq!(
                    order,
                    reference_greedy(&members, &prob),
                    "cyclic output must match the exhaustive greedy exactly"
                );
            }
        }
        assert!(cyclic_seen > 0, "random tournaments should contain cycles");
        assert!(transitive_seen > 0, "and transitive instances");
    }

    #[test]
    fn transitive_component_early_exit_returns_hamiltonian_path() {
        // 3 < 1 < 0 < 2 by strength.
        let pairs = [
            ((0, 1), 0.9),
            ((0, 2), 0.2),
            ((0, 3), 0.8),
            ((1, 2), 0.1),
            ((1, 3), 0.7),
            ((2, 3), 0.95),
        ];
        let prob = prob_from(&pairs);
        assert_eq!(greedy_order(&[0, 1, 2, 3], &prob), vec![2, 0, 1, 3]);
    }

    /// Regression pin for the remaining ROADMAP FAS item: the exhaustive
    /// superlinear greedy pass runs **only** for cyclic components — a
    /// transitive component of any size costs zero passes (the early-exit
    /// path), while a cyclic one costs exactly one per `greedy_order` call.
    #[test]
    fn exhaustive_pass_runs_only_for_cyclic_components() {
        // Transitive chain 0 < 1 < 2 < 3: no exhaustive pass.
        let chain = [
            ((0, 1), 0.9),
            ((0, 2), 0.8),
            ((0, 3), 0.85),
            ((1, 2), 0.7),
            ((1, 3), 0.9),
            ((2, 3), 0.6),
        ];
        let prob = prob_from(&chain);
        let before = exhaustive_passes();
        for _ in 0..5 {
            greedy_order(&[0, 1, 2, 3], &prob);
        }
        assert_eq!(
            exhaustive_passes(),
            before,
            "acyclic components must take the early exit"
        );

        // Rock–paper–scissors cycle: exactly one pass per call.
        let cycle = [((0, 1), 0.8), ((1, 2), 0.8), ((2, 0), 0.8)];
        let prob = prob_from(&cycle);
        let before = exhaustive_passes();
        for _ in 0..3 {
            greedy_order(&[0, 1, 2], &prob);
        }
        assert_eq!(
            exhaustive_passes(),
            before + 3,
            "every cyclic component costs one exhaustive pass"
        );
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let prob = |_: usize, _: usize| 0.5;
        assert!(greedy_order(&[], &prob).is_empty());
        assert_eq!(greedy_order(&[4], &prob), vec![4]);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(stochastic_order(&[], &prob, &mut rng).is_empty());
        assert_eq!(stochastic_order(&[9], &prob, &mut rng), vec![9]);
    }
}
