//! Tarjan's strongly-connected-components algorithm (iterative).
//!
//! Cycles in the preceding-probability tournament (possible when the relation
//! is intransitive, §3.4) are confined to strongly connected components; the
//! condensation of the tournament is always acyclic, so ordering the SCCs and
//! then ordering within each SCC yields a complete linear order.

/// Compute the strongly connected components of a directed graph given as
/// adjacency lists. Components are returned in **reverse topological order**
/// of the condensation (i.e. a component appears before the components that
/// point to it), which is the natural output order of Tarjan's algorithm.
pub fn strongly_connected_components(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut components: Vec<Vec<usize>> = Vec::new();
    let mut next_index = 0usize;

    // Iterative DFS state: (vertex, next child position).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut call_stack: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut child_pos)) = call_stack.last_mut() {
            if *child_pos == 0 {
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *child_pos < adj[v].len() {
                let w = adj[v][*child_pos];
                *child_pos += 1;
                assert!(w < n, "edge target {w} out of range for {n} vertices");
                if index[w] == usize::MAX {
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                // Finished v: pop and propagate lowlink to parent.
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("stack holds the component");
                        on_stack[w] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    component.sort_unstable();
                    components.push(component);
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn component_sets(adj: &[Vec<usize>]) -> HashSet<Vec<usize>> {
        strongly_connected_components(adj).into_iter().collect()
    }

    #[test]
    fn acyclic_graph_has_singleton_components() {
        let adj = vec![vec![1], vec![2], vec![]];
        let comps = strongly_connected_components(&adj);
        assert_eq!(comps.len(), 3);
        assert!(comps.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn simple_cycle_is_one_component() {
        let adj = vec![vec![1], vec![2], vec![0]];
        let comps = strongly_connected_components(&adj);
        assert_eq!(comps, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn mixed_graph() {
        // 0 <-> 1 form a cycle; 2 -> 0; 3 isolated.
        let adj = vec![vec![1], vec![0], vec![0], vec![]];
        let comps = component_sets(&adj);
        assert!(comps.contains(&vec![0, 1]));
        assert!(comps.contains(&vec![2]));
        assert!(comps.contains(&vec![3]));
    }

    #[test]
    fn components_in_reverse_topological_order() {
        // 0 -> 1 -> 2 (all singletons). Reverse topological order: 2, 1, 0.
        let adj = vec![vec![1], vec![2], vec![]];
        let comps = strongly_connected_components(&adj);
        assert_eq!(comps, vec![vec![2], vec![1], vec![0]]);
    }

    #[test]
    fn intransitive_tournament_cycle_detected() {
        // The rock–paper–scissors tournament of three events plus one event
        // that everyone beats: cycle {0,1,2}, then {3}.
        let adj = vec![vec![1, 3], vec![2, 3], vec![0, 3], vec![]];
        let comps = strongly_connected_components(&adj);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![3]);
        assert_eq!(comps[1], vec![0, 1, 2]);
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // 50_000-vertex chain: the iterative implementation must handle it.
        let n = 50_000;
        let adj: Vec<Vec<usize>> = (0..n)
            .map(|i| if i + 1 < n { vec![i + 1] } else { vec![] })
            .collect();
        let comps = strongly_connected_components(&adj);
        assert_eq!(comps.len(), n);
    }

    #[test]
    fn empty_graph() {
        assert!(strongly_connected_components(&[]).is_empty());
    }
}
