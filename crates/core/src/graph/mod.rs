//! Graph algorithms used by the fair-ordering pipeline.
//!
//! The tournament built from pairwise preceding probabilities (§3.4) needs:
//! a topological sort (to extract the linear order when the relation is
//! transitive), strongly-connected-component detection (to localize the
//! cycles an intransitive relation creates), and feedback-arc-set style
//! heuristics (to order the members of a cyclic component while discarding as
//! little probability mass as possible — exactly the trade-off the paper
//! flags as future work).

pub mod fas;
pub mod tarjan;
pub mod toposort;

pub use fas::{greedy_order, repair_component, stochastic_order};
pub use tarjan::strongly_connected_components;
pub use toposort::{topological_sort, TopoResult};
