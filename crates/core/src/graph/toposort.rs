//! Kahn's algorithm with uniqueness detection.

/// Result of a topological sort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopoResult {
    /// The graph is acyclic and has exactly one topological order.
    Unique(Vec<usize>),
    /// The graph is acyclic but admits multiple topological orders; one valid
    /// order is returned (ties broken by smallest vertex index for
    /// determinism).
    Multiple(Vec<usize>),
    /// The graph contains a cycle; no topological order exists.
    Cyclic,
}

impl TopoResult {
    /// The computed order, if the graph was acyclic.
    pub fn order(&self) -> Option<&[usize]> {
        match self {
            TopoResult::Unique(v) | TopoResult::Multiple(v) => Some(v),
            TopoResult::Cyclic => None,
        }
    }

    /// Whether the order is unique — for a tournament this is equivalent to
    /// the graph being a transitive tournament with its unique Hamiltonian
    /// path (§3.4 of the paper).
    pub fn is_unique(&self) -> bool {
        matches!(self, TopoResult::Unique(_))
    }
}

/// Topologically sort a graph given as adjacency lists (`adj[v]` = vertices
/// that `v` has an edge *to*, i.e. that must come after `v`).
pub fn topological_sort(adj: &[Vec<usize>]) -> TopoResult {
    let n = adj.len();
    let mut indegree = vec![0usize; n];
    for targets in adj {
        for &t in targets {
            assert!(t < n, "edge target {t} out of range for {n} vertices");
            indegree[t] += 1;
        }
    }

    // Min-ordered frontier for deterministic tie-breaking.
    let mut frontier: std::collections::BTreeSet<usize> = (0..n)
        .filter(|&v| indegree[v] == 0)
        .collect();

    let mut order = Vec::with_capacity(n);
    let mut unique = true;
    while let Some(&v) = frontier.iter().next() {
        if frontier.len() > 1 {
            unique = false;
        }
        frontier.remove(&v);
        order.push(v);
        for &t in &adj[v] {
            indegree[t] -= 1;
            if indegree[t] == 0 {
                frontier.insert(t);
            }
        }
    }

    if order.len() != n {
        TopoResult::Cyclic
    } else if unique {
        TopoResult::Unique(order)
    } else {
        TopoResult::Multiple(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_has_unique_order() {
        // 0 -> 1 -> 2 -> 3
        let adj = vec![vec![1], vec![2], vec![3], vec![]];
        let result = topological_sort(&adj);
        assert_eq!(result, TopoResult::Unique(vec![0, 1, 2, 3]));
        assert!(result.is_unique());
    }

    #[test]
    fn diamond_has_multiple_orders() {
        // 0 -> {1, 2} -> 3
        let adj = vec![vec![1, 2], vec![3], vec![3], vec![]];
        let result = topological_sort(&adj);
        assert!(!result.is_unique());
        let order = result.order().unwrap();
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], 0);
        assert_eq!(order[3], 3);
    }

    #[test]
    fn cycle_is_detected() {
        let adj = vec![vec![1], vec![2], vec![0]];
        assert_eq!(topological_sort(&adj), TopoResult::Cyclic);
        assert_eq!(TopoResult::Cyclic.order(), None);
    }

    #[test]
    fn transitive_tournament_order_matches_dominance() {
        // Complete tournament on 5 vertices: i -> j for i < j.
        let n = 5;
        let adj: Vec<Vec<usize>> = (0..n).map(|i| ((i + 1)..n).collect()).collect();
        let result = topological_sort(&adj);
        assert_eq!(result, TopoResult::Unique((0..n).collect()));
    }

    #[test]
    fn empty_graph() {
        let result = topological_sort(&[]);
        assert_eq!(result, TopoResult::Unique(vec![]));
    }

    #[test]
    fn isolated_vertices_are_multiple() {
        let adj = vec![vec![], vec![], vec![]];
        let result = topological_sort(&adj);
        assert!(!result.is_unique());
        assert_eq!(result.order().unwrap().len(), 3);
    }

    #[test]
    fn self_loop_is_cyclic() {
        let adj = vec![vec![0]];
        assert_eq!(topological_sort(&adj), TopoResult::Cyclic);
    }
}
