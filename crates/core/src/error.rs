//! Error types for the core sequencing library.

use crate::message::{ClientId, MessageId};

/// Errors surfaced by the sequencers and relation machinery.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A message referenced a client whose offset distribution has not been
    /// registered with the sequencer.
    UnknownClient(ClientId),
    /// A message id was submitted twice to the same sequencer.
    DuplicateMessage(MessageId),
    /// The same client sent timestamps that move backwards, violating the
    /// monotone-local-clock assumption the online watermark logic needs.
    NonMonotoneTimestamp {
        /// The offending client.
        client: ClientId,
        /// The previously observed timestamp.
        previous: f64,
        /// The newly observed (smaller) timestamp.
        observed: f64,
    },
    /// An operation that needs at least one message was invoked on an empty
    /// input.
    EmptyInput,
    /// A computed probability was not a number (typically a degenerate
    /// distribution interacting with an empty grid).
    InvalidProbability {
        /// The message whose comparison produced the invalid value.
        left: MessageId,
        /// The other message in the comparison.
        right: MessageId,
    },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::UnknownClient(c) => {
                write!(f, "no offset distribution registered for {c}")
            }
            CoreError::DuplicateMessage(m) => write!(f, "duplicate message id {m}"),
            CoreError::NonMonotoneTimestamp {
                client,
                previous,
                observed,
            } => write!(
                f,
                "{client} sent a non-monotone timestamp: {observed} after {previous}"
            ),
            CoreError::EmptyInput => write!(f, "operation requires at least one message"),
            CoreError::InvalidProbability { left, right } => {
                write!(f, "comparison of {left} and {right} produced an invalid probability")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CoreError::UnknownClient(ClientId(7));
        assert!(e.to_string().contains("client7"));

        let e = CoreError::DuplicateMessage(MessageId(3));
        assert!(e.to_string().contains("msg3"));

        let e = CoreError::NonMonotoneTimestamp {
            client: ClientId(1),
            previous: 10.0,
            observed: 9.0,
        };
        assert!(e.to_string().contains("non-monotone"));

        assert!(CoreError::EmptyInput.to_string().contains("at least one"));

        let e = CoreError::InvalidProbability {
            left: MessageId(1),
            right: MessageId(2),
        };
        assert!(e.to_string().contains("invalid probability"));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: std::error::Error>(_e: &E) {}
        assert_error(&CoreError::EmptyInput);
    }
}
