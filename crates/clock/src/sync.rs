//! Simulated clock-synchronization sessions.
//!
//! §5 of the paper: "Any clock synchronization protocol gives each client
//! enough information to estimate its offsets distribution." We simulate a
//! periodic NTP-style probe exchange between a client (with a ground-truth
//! [`ClockModel`]) and the sequencer over an asymmetric, jittery path
//! ([`PathModel`]); the resulting [`OffsetSample`]s feed the client-side
//! learner in [`crate::learning`].

use crate::offset::ClockModel;
use crate::probe::{OffsetSample, ProbeExchange};
use rand::RngCore;
use tommy_stats::distribution::{Distribution, OffsetDistribution};

/// Delay model of the client↔sequencer path used by synchronization probes.
#[derive(Debug, Clone)]
pub struct PathModel {
    /// One-way delay distribution client → sequencer.
    pub forward: OffsetDistribution,
    /// One-way delay distribution sequencer → client.
    pub reverse: OffsetDistribution,
    /// Fixed processing time at the sequencer between receive and reply.
    pub processing: f64,
}

impl PathModel {
    /// A symmetric path with the given base one-way delay and jitter
    /// (modelled as a shifted exponential, the classic queueing-delay shape).
    pub fn symmetric(base_delay: f64, jitter_mean: f64) -> Self {
        assert!(base_delay >= 0.0, "delay must be non-negative");
        let d = if jitter_mean > 0.0 {
            OffsetDistribution::shifted_exponential(base_delay, 1.0 / jitter_mean)
        } else {
            OffsetDistribution::uniform(base_delay, base_delay + f64::EPSILON.max(1e-9))
        };
        PathModel {
            forward: d.clone(),
            reverse: d,
            processing: 0.0,
        }
    }

    /// An asymmetric path (different forward and reverse delay models); path
    /// asymmetry is the dominant source of offset-estimation error.
    pub fn asymmetric(forward: OffsetDistribution, reverse: OffsetDistribution) -> Self {
        PathModel {
            forward,
            reverse,
            processing: 0.0,
        }
    }

    /// Set the sequencer processing time.
    pub fn with_processing(mut self, processing: f64) -> Self {
        assert!(processing >= 0.0, "processing time must be non-negative");
        self.processing = processing;
        self
    }

    fn sample_forward(&self, rng: &mut dyn RngCore) -> f64 {
        self.forward.sample(rng).max(0.0)
    }

    fn sample_reverse(&self, rng: &mut dyn RngCore) -> f64 {
        self.reverse.sample(rng).max(0.0)
    }
}

/// A simulated synchronization session between one client and the sequencer.
#[derive(Debug, Clone)]
pub struct SyncSession {
    clock: ClockModel,
    path: PathModel,
    probe_interval: f64,
    next_probe_at: f64,
    samples: Vec<OffsetSample>,
}

impl SyncSession {
    /// Create a session that sends one probe every `probe_interval` time
    /// units of true time, starting at `start_time`.
    pub fn new(clock: ClockModel, path: PathModel, probe_interval: f64, start_time: f64) -> Self {
        assert!(probe_interval > 0.0, "probe interval must be positive");
        SyncSession {
            clock,
            path,
            probe_interval,
            next_probe_at: start_time,
            samples: Vec::new(),
        }
    }

    /// True time at which the next probe will be sent.
    pub fn next_probe_at(&self) -> f64 {
        self.next_probe_at
    }

    /// Execute a single probe exchange at true time `send_time`, returning
    /// the raw exchange and recording the derived offset sample.
    pub fn run_probe(&mut self, send_time: f64, rng: &mut dyn RngCore) -> ProbeExchange {
        // The realized client offset is sampled once per probe: both client
        // timestamps of one exchange see the same instantaneous offset, which
        // is what lets a symmetric path recover it exactly.
        let offset = self.clock.sample_offset(send_time, rng);
        let fwd = self.path.sample_forward(rng);
        let rev = self.path.sample_reverse(rng);

        let t0 = send_time + offset;
        let t1 = send_time + fwd;
        let t2 = t1 + self.path.processing;
        let recv_true = send_time + fwd + self.path.processing + rev;
        let t3 = recv_true + offset;

        let exchange = ProbeExchange { t0, t1, t2, t3 };
        self.samples.push(OffsetSample {
            offset: exchange.offset_estimate(),
            rtt: exchange.round_trip_time(),
            completed_at: recv_true,
        });
        exchange
    }

    /// Run the periodic probe schedule up to (and including) true time
    /// `until`, returning the number of probes executed.
    pub fn run_until(&mut self, until: f64, rng: &mut dyn RngCore) -> usize {
        let mut count = 0;
        while self.next_probe_at <= until {
            let at = self.next_probe_at;
            self.run_probe(at, rng);
            self.next_probe_at += self.probe_interval;
            count += 1;
        }
        count
    }

    /// All offset samples collected so far.
    pub fn samples(&self) -> &[OffsetSample] {
        &self.samples
    }

    /// Just the offset estimates (convenience for feeding the learner).
    pub fn offset_estimates(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.offset).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn symmetric_path_low_jitter_recovers_offset_distribution() {
        let clock = ClockModel::gaussian(25.0, 4.0);
        let path = PathModel::symmetric(5.0, 0.0);
        let mut session = SyncSession::new(clock, path, 1.0, 0.0);
        let mut rng = StdRng::seed_from_u64(42);
        session.run_until(5_000.0, &mut rng);
        let est = session.offset_estimates();
        let n = est.len() as f64;
        let mean = est.iter().sum::<f64>() / n;
        let var = est.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        assert!((mean - 25.0).abs() < 0.3, "mean = {mean}");
        assert!((var - 16.0).abs() < 2.0, "var = {var}");
    }

    #[test]
    fn asymmetric_path_biases_estimates() {
        // Forward path is 10 units slower on average than reverse; the
        // client-offset estimate is biased by about half of that.
        let clock = ClockModel::gaussian(0.0, 0.0);
        let path = PathModel::asymmetric(
            OffsetDistribution::uniform(14.9, 15.1),
            OffsetDistribution::uniform(4.9, 5.1),
        );
        let mut session = SyncSession::new(clock, path, 1.0, 0.0);
        let mut rng = StdRng::seed_from_u64(9);
        session.run_until(1_000.0, &mut rng);
        let est = session.offset_estimates();
        let mean = est.iter().sum::<f64>() / est.len() as f64;
        assert!((mean.abs() - 5.0).abs() < 0.2, "mean = {mean}");
    }

    #[test]
    fn probe_schedule_counts() {
        let clock = ClockModel::perfect();
        let path = PathModel::symmetric(1.0, 0.5);
        let mut session = SyncSession::new(clock, path, 10.0, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let count = session.run_until(99.0, &mut rng);
        assert_eq!(count, 10); // probes at t = 0, 10, ..., 90
        assert_eq!(session.samples().len(), 10);
        assert_eq!(session.next_probe_at(), 100.0);
        // Running again up to the same point does nothing.
        assert_eq!(session.run_until(99.0, &mut rng), 0);
    }

    #[test]
    fn rtt_reflects_both_directions_and_jitter_is_nonnegative() {
        let clock = ClockModel::gaussian(3.0, 1.0);
        let path = PathModel::symmetric(2.0, 1.0).with_processing(0.5);
        let mut session = SyncSession::new(clock, path, 1.0, 0.0);
        let mut rng = StdRng::seed_from_u64(5);
        session.run_until(500.0, &mut rng);
        for s in session.samples() {
            assert!(s.rtt >= 4.0 - 1e-9, "rtt = {}", s.rtt);
            assert!(s.completed_at >= 4.0);
        }
    }

    #[test]
    #[should_panic(expected = "probe interval must be positive")]
    fn zero_interval_rejected() {
        SyncSession::new(ClockModel::perfect(), PathModel::symmetric(1.0, 0.0), 0.0, 0.0);
    }
}
