//! The distribution representation a client shares with the sequencer.
//!
//! §3.3 of the paper contrasts two designs: shipping every raw probe to the
//! sequencer (communication-heavy) versus clients learning their own
//! distribution and "merely send\[ing\] their respective learned distributions
//! to the sequencer". [`SharedDistribution`] is that compact wire-friendly
//! summary; `tommy-wire` serializes it and the sequencer converts it back
//! into an [`OffsetDistribution`] for preceding-probability computation.

use tommy_stats::distribution::OffsetDistribution;
use tommy_stats::gaussian::Gaussian;

/// A compact, serializable description of a client's learned clock-offset
/// distribution.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SharedDistribution {
    /// Gaussian summary: just mean and standard deviation.
    Gaussian {
        /// Mean offset.
        mean: f64,
        /// Offset standard deviation.
        std_dev: f64,
    },
    /// Histogram summary: uniform bins over `[lo, hi)` with raw counts.
    Histogram {
        /// Lower edge of the first bin.
        lo: f64,
        /// Upper edge of the last bin.
        hi: f64,
        /// Per-bin sample counts.
        counts: Vec<u64>,
    },
    /// Raw (possibly subsampled) offset samples; the sequencer builds a KDE.
    Samples(Vec<f64>),
}

impl SharedDistribution {
    /// Summarize an [`OffsetDistribution`] for sharing. Gaussian distributions
    /// are shared exactly; everything else is shared as raw-moment Gaussian
    /// unless the caller opts into a richer representation via
    /// [`SharedDistribution::Samples`] or [`SharedDistribution::Histogram`].
    pub fn from_distribution(dist: &OffsetDistribution) -> Self {
        use tommy_stats::distribution::Distribution as _;
        match dist {
            OffsetDistribution::Gaussian(g) => SharedDistribution::Gaussian {
                mean: g.mean(),
                std_dev: g.std_dev(),
            },
            other => SharedDistribution::Gaussian {
                mean: other.mean(),
                std_dev: other.std_dev(),
            },
        }
    }

    /// Reconstruct an [`OffsetDistribution`] usable by the sequencer.
    ///
    /// # Panics
    ///
    /// Panics if the shared payload is malformed (negative std-dev, empty or
    /// degenerate histogram/samples) — the wire layer validates payloads
    /// before handing them to this function.
    pub fn to_distribution(&self) -> OffsetDistribution {
        match self {
            SharedDistribution::Gaussian { mean, std_dev } => {
                OffsetDistribution::Gaussian(Gaussian::new(*mean, std_dev.max(0.0)))
            }
            SharedDistribution::Histogram { lo, hi, counts } => {
                assert!(hi > lo, "histogram range must be non-empty");
                assert!(!counts.is_empty(), "histogram must have bins");
                let bin_width = (hi - lo) / counts.len() as f64;
                let mut expanded = Vec::new();
                for (i, &c) in counts.iter().enumerate() {
                    let center = lo + (i as f64 + 0.5) * bin_width;
                    let reps = (c as usize).min(64);
                    for _ in 0..reps {
                        expanded.push(center);
                    }
                }
                assert!(
                    expanded.len() >= 2,
                    "histogram must contain at least two samples"
                );
                OffsetDistribution::empirical(&expanded)
            }
            SharedDistribution::Samples(samples) => {
                assert!(
                    samples.len() >= 2,
                    "sample payload must contain at least two samples"
                );
                OffsetDistribution::empirical(samples)
            }
        }
    }

    /// Approximate payload size in bytes when serialized by `tommy-wire`
    /// (used to reason about the communication trade-off of §3.3).
    pub fn payload_bytes(&self) -> usize {
        match self {
            SharedDistribution::Gaussian { .. } => 16,
            SharedDistribution::Histogram { counts, .. } => 16 + 8 * counts.len(),
            SharedDistribution::Samples(samples) => 8 * samples.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tommy_stats::distribution::Distribution;

    #[test]
    fn gaussian_roundtrip_is_exact() {
        let d = OffsetDistribution::gaussian(3.0, 2.0);
        let shared = SharedDistribution::from_distribution(&d);
        let back = shared.to_distribution();
        assert!((back.mean() - 3.0).abs() < 1e-12);
        assert!((back.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn non_gaussian_defaults_to_moment_matched_gaussian() {
        let d = OffsetDistribution::laplace(1.0, 2.0);
        let shared = SharedDistribution::from_distribution(&d);
        let back = shared.to_distribution();
        assert!(back.is_gaussian());
        assert!((back.mean() - 1.0).abs() < 1e-9);
        assert!((back.variance() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_payload_reconstructs_shape() {
        // A histogram concentrated on two modes.
        let shared = SharedDistribution::Histogram {
            lo: 0.0,
            hi: 10.0,
            counts: vec![50, 0, 0, 0, 0, 0, 0, 0, 0, 50],
        };
        let d = shared.to_distribution();
        // Mean should sit between the two modes at ~5.
        assert!((d.mean() - 5.0).abs() < 0.5);
        // Mass near the modes, little in the middle.
        assert!(d.pdf(0.5) > d.pdf(5.0));
        assert!(d.pdf(9.5) > d.pdf(5.0));
    }

    #[test]
    fn samples_payload_builds_kde() {
        let shared = SharedDistribution::Samples(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let d = shared.to_distribution();
        assert!((d.mean() - 3.0).abs() < 0.2);
    }

    #[test]
    fn payload_sizes_reflect_representation() {
        let g = SharedDistribution::Gaussian {
            mean: 0.0,
            std_dev: 1.0,
        };
        let h = SharedDistribution::Histogram {
            lo: 0.0,
            hi: 1.0,
            counts: vec![0; 64],
        };
        let s = SharedDistribution::Samples(vec![0.0; 1000]);
        assert!(g.payload_bytes() < h.payload_bytes());
        assert!(h.payload_bytes() < s.payload_bytes());
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn degenerate_sample_payload_rejected() {
        SharedDistribution::Samples(vec![1.0]).to_distribution();
    }
}
