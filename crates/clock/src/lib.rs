//! # tommy-clock
//!
//! Clock substrate for the Tommy probabilistic fair ordering system.
//!
//! The paper's system model (§3.1) gives every client a local clock whose
//! offset `θ` with respect to the sequencer's clock is a random variable with
//! a per-client distribution `f_θ`. Clients learn their own distribution by
//! accumulating clock-synchronization probes (§5) and share it with the
//! sequencer. This crate provides:
//!
//! * [`offset`] — the ground-truth clock model a simulated client actually
//!   follows (offset distribution, optional deterministic drift);
//! * [`sim_clock`] — a client's readable local clock built on that model:
//!   reading it at true time `t` yields the noisy timestamp `T = t + θ`;
//! * [`probe`] — NTP-style two-way synchronization probes and the offset /
//!   RTT estimates derived from them;
//! * [`sync`] — a simulated probe exchange between a client and the sequencer
//!   over an asymmetric, jittery path, producing a stream of offset samples;
//! * [`learning`] — client-side accumulation of offset samples into a learned
//!   distribution (parametric Gaussian fit, histogram, or KDE);
//! * [`shared`] — the compact representation of a learned distribution that a
//!   client ships to the sequencer ("clients merely send their respective
//!   learned distributions to the sequencer", §3.3);
//! * [`delay`] — sequencer-side online estimation of the per-client one-way
//!   delivery delay from `arrival − timestamp` gaps, feeding the defense
//!   layer's residual formation when link delays are unknown.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delay;
pub mod learning;
pub mod offset;
pub mod probe;
pub mod shared;
pub mod sim_clock;
pub mod sync;

pub use delay::DelayEstimator;
pub use learning::{DistributionLearner, LearnedModel};
pub use offset::ClockModel;
pub use probe::{OffsetSample, ProbeExchange};
pub use shared::SharedDistribution;
pub use sim_clock::SimClock;
pub use sync::{PathModel, SyncSession};
