//! Online one-way delay estimation from timestamped arrivals.
//!
//! §3.1 gives every message two times: the client-claimed timestamp
//! `T = t + θ` and the sequencer-side arrival `t + d` (true time plus the
//! one-way network delay `d`). The defense layer's residual cross-check
//! (`tommy-core::defense`) needs `d` to center residuals on the clock offset
//! rather than on transport latency — but over real topologies the per-link
//! delay is unknown a priori. [`DelayEstimator`] closes that gap with the
//! observable `arrival − timestamp = d − θ`: its running mean converges to
//! `d − E[θ]`, so adding back the *claimed* mean offset recovers `d` exactly
//! for honest claims (and exactly `d` at σ = 0). The estimate is a plain
//! running mean — O(1) per observation, deterministic, no RNG.
//!
//! The unavoidable ambiguity: a lie about the mean offset is
//! indistinguishable from a different link delay when the delay is learned
//! online, so mean-shift lies are absorbed into the delay estimate. Shape
//! and scale lies (the deflated-σ misreports the KS check catches) remain
//! fully visible, and collusive co-movement is caught by the pairwise
//! correlation detector, which is delay-invariant.

/// Running mean of per-message `arrival − timestamp` gaps for one client.
///
/// Exact at σ = 0 after one observation; unbiased for `d − E[θ]` under
/// zero-drift honest clocks.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DelayEstimator {
    sum: f64,
    count: u64,
}

impl DelayEstimator {
    /// A fresh estimator with no observations.
    pub fn new() -> Self {
        DelayEstimator::default()
    }

    /// Record one `arrival − timestamp` gap.
    ///
    /// # Panics
    ///
    /// Panics unless the gap is finite.
    pub fn record(&mut self, gap: f64) {
        assert!(gap.is_finite(), "delay gaps must be finite");
        self.sum += gap;
        self.count += 1;
    }

    /// Number of gaps recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The running mean gap, or `None` before the first observation.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tommy_stats::distribution::{Distribution, OffsetDistribution};

    #[test]
    fn empty_estimator_has_no_mean() {
        let est = DelayEstimator::new();
        assert_eq!(est.mean(), None);
        assert_eq!(est.count(), 0);
    }

    #[test]
    fn exact_at_sigma_zero() {
        let mut est = DelayEstimator::new();
        est.record(1.5);
        assert_eq!(est.mean(), Some(1.5));
        est.record(1.5);
        assert_eq!(est.mean(), Some(1.5));
    }

    #[test]
    fn converges_to_delay_minus_mean_offset() {
        // gap = d − θ with d = 2.0 and θ ~ N(0.5, 3): the mean converges to
        // d − E[θ] = 1.5, and adding the claimed mean back recovers d.
        let theta = OffsetDistribution::gaussian(0.5, 3.0);
        let mut rng = StdRng::seed_from_u64(23);
        let mut est = DelayEstimator::new();
        for _ in 0..20_000 {
            est.record(2.0 - theta.sample(&mut rng));
        }
        let mean = est.mean().unwrap();
        assert!((mean - 1.5).abs() < 0.1, "mean = {mean}");
        assert!((mean + theta.mean() - 2.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_gap_rejected() {
        DelayEstimator::new().record(f64::NAN);
    }
}
