//! Synchronization probes and the offset estimates derived from them.
//!
//! Footnote 1 of the paper: "A synchronization probe is a packet sent by a
//! clock synchronization protocol from one client to the other to find and
//! correct any clock offset." We model the classic NTP-style two-way
//! exchange: the client records its local send time `t0`, the sequencer
//! stamps receive/transmit times `t1`/`t2` with its own clock, and the client
//! records the local receive time `t3`. The standard estimator
//! `((t1 − t0) + (t2 − t3)) / 2` recovers the offset of the *sequencer's*
//! clock relative to the client up to half the path asymmetry; we negate it
//! so the sample estimates the client's offset `θ` w.r.t. the sequencer,
//! matching §3.1.

/// Timestamps of one two-way probe exchange.
///
/// `t0`/`t3` are in the client's clock frame, `t1`/`t2` in the sequencer's.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeExchange {
    /// Client-side transmit time of the request (client clock).
    pub t0: f64,
    /// Sequencer-side receive time of the request (sequencer clock).
    pub t1: f64,
    /// Sequencer-side transmit time of the reply (sequencer clock).
    pub t2: f64,
    /// Client-side receive time of the reply (client clock).
    pub t3: f64,
}

impl ProbeExchange {
    /// The classic NTP offset estimate of the client's clock relative to the
    /// sequencer's clock (positive = client clock runs ahead).
    ///
    /// With symmetric path delays this equals the true offset exactly; path
    /// asymmetry shows up as estimation noise, which is precisely the noise
    /// the learned distribution is meant to capture.
    pub fn offset_estimate(&self) -> f64 {
        // Offset of the *server* relative to the client is
        // ((t1 - t0) + (t2 - t3)) / 2; the client's offset w.r.t. the server
        // is its negation.
        -(((self.t1 - self.t0) + (self.t2 - self.t3)) / 2.0)
    }

    /// Round-trip time excluding sequencer processing time.
    pub fn round_trip_time(&self) -> f64 {
        (self.t3 - self.t0) - (self.t2 - self.t1)
    }
}

/// One learned offset sample: the estimate plus the RTT it was derived from
/// (small-RTT samples are less contaminated by queueing noise and some
/// learning policies weight them more heavily).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OffsetSample {
    /// Estimated client offset w.r.t. the sequencer clock.
    pub offset: f64,
    /// Round-trip time of the probe that produced the estimate.
    pub rtt: f64,
    /// True time (sequencer frame) at which the probe completed.
    pub completed_at: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build an exchange given the true client offset and one-way delays.
    fn exchange(true_offset: f64, fwd_delay: f64, rev_delay: f64, processing: f64) -> ProbeExchange {
        // Ground truth in sequencer time: client sends at true time 100.
        let send_true = 100.0;
        let t0 = send_true + true_offset; // client clock
        let t1 = send_true + fwd_delay; // sequencer clock
        let t2 = t1 + processing; // sequencer clock
        let recv_true = send_true + fwd_delay + processing + rev_delay;
        let t3 = recv_true + true_offset; // client clock
        ProbeExchange { t0, t1, t2, t3 }
    }

    #[test]
    fn symmetric_path_recovers_exact_offset() {
        for offset in [-25.0, -1.0, 0.0, 3.5, 40.0] {
            let e = exchange(offset, 5.0, 5.0, 1.0);
            assert!(
                (e.offset_estimate() - offset).abs() < 1e-9,
                "offset {offset}: estimate {}",
                e.offset_estimate()
            );
        }
    }

    #[test]
    fn asymmetry_biases_estimate_by_half_the_difference() {
        let e = exchange(10.0, 8.0, 2.0, 0.0);
        // Asymmetry (fwd - rev) = 6 ⇒ server-relative estimate biased by +3,
        // so the client estimate is biased by -3... verify directionally.
        let err = e.offset_estimate() - 10.0;
        assert!((err.abs() - 3.0).abs() < 1e-9, "err = {err}");
    }

    #[test]
    fn rtt_excludes_processing_time() {
        let e = exchange(0.0, 4.0, 6.0, 100.0);
        assert!((e.round_trip_time() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn rtt_independent_of_offset() {
        let a = exchange(0.0, 3.0, 7.0, 1.0);
        let b = exchange(500.0, 3.0, 7.0, 1.0);
        assert!((a.round_trip_time() - b.round_trip_time()).abs() < 1e-9);
    }
}
