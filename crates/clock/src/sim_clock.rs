//! A client's readable local clock.
//!
//! §4 of the paper: "At message generation, a client reads the wall-clock
//! time `t`, samples noise `ε` from the distribution, and tags the message
//! with `T = t + ε`." [`SimClock`] implements that read operation and records
//! the ground-truth read times so experiments can compare against the
//! omniscient observer of Definition 1.

use crate::offset::ClockModel;
use rand::RngCore;

/// One clock read: the true (sequencer-frame) time at which the read happened
/// and the noisy local timestamp the client observed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockReading {
    /// Ground-truth time of the read in the sequencer's frame.
    pub true_time: f64,
    /// The timestamp the client's local clock reported (`true_time + θ`).
    pub local_time: f64,
}

impl ClockReading {
    /// The instantaneous offset `θ` realized by this read.
    pub fn offset(&self) -> f64 {
        self.local_time - self.true_time
    }
}

/// A simulated client clock.
///
/// The clock is *stateless* across reads in the same way as the paper's
/// model: each read draws a fresh offset from the client's distribution. A
/// monotonic variant is available through [`SimClock::read_monotonic`], which
/// never lets the local timestamp go backwards — real clients use monotonic
/// clocks, and the online sequencer's per-client watermark logic relies on
/// per-client timestamps being non-decreasing.
#[derive(Debug, Clone)]
pub struct SimClock {
    model: ClockModel,
    last_local: Option<f64>,
    readings: Vec<ClockReading>,
    record: bool,
}

impl SimClock {
    /// Create a clock following the given ground-truth model.
    pub fn new(model: ClockModel) -> Self {
        SimClock {
            model,
            last_local: None,
            readings: Vec::new(),
            record: false,
        }
    }

    /// Enable recording of every reading (for ground-truth evaluation).
    pub fn recording(mut self) -> Self {
        self.record = true;
        self
    }

    /// The underlying ground-truth model.
    pub fn model(&self) -> &ClockModel {
        &self.model
    }

    /// Read the clock at true time `true_time`.
    pub fn read(&mut self, true_time: f64, rng: &mut dyn RngCore) -> ClockReading {
        let local_time = true_time + self.model.sample_offset(true_time, rng);
        let reading = ClockReading {
            true_time,
            local_time,
        };
        if self.record {
            self.readings.push(reading);
        }
        reading
    }

    /// Read the clock but clamp the result so local timestamps never move
    /// backwards (monotonic local clock).
    pub fn read_monotonic(&mut self, true_time: f64, rng: &mut dyn RngCore) -> ClockReading {
        let mut reading = self.read(true_time, rng);
        if let Some(last) = self.last_local {
            if reading.local_time < last {
                reading.local_time = last;
            }
        }
        self.last_local = Some(reading.local_time);
        if self.record {
            // Replace the recorded (non-clamped) value with the clamped one.
            if let Some(r) = self.readings.last_mut() {
                *r = reading;
            }
        }
        reading
    }

    /// All recorded readings (empty unless [`SimClock::recording`] was used).
    pub fn readings(&self) -> &[ClockReading] {
        &self.readings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reading_offset_matches_definition() {
        let mut clock = SimClock::new(ClockModel::gaussian(10.0, 0.0));
        let mut rng = StdRng::seed_from_u64(1);
        let r = clock.read(100.0, &mut rng);
        assert_eq!(r.true_time, 100.0);
        assert_eq!(r.local_time, 110.0);
        assert_eq!(r.offset(), 10.0);
    }

    #[test]
    fn perfect_clock_reads_true_time() {
        let mut clock = SimClock::new(ClockModel::perfect());
        let mut rng = StdRng::seed_from_u64(1);
        for t in [0.0, 5.5, 1234.25] {
            assert_eq!(clock.read(t, &mut rng).local_time, t);
        }
    }

    #[test]
    fn monotonic_reads_never_go_backwards() {
        let mut clock = SimClock::new(ClockModel::gaussian(0.0, 50.0));
        let mut rng = StdRng::seed_from_u64(7);
        let mut last = f64::NEG_INFINITY;
        for i in 0..1000 {
            let r = clock.read_monotonic(i as f64, &mut rng);
            assert!(r.local_time >= last);
            last = r.local_time;
        }
    }

    #[test]
    fn recording_stores_readings() {
        let mut clock = SimClock::new(ClockModel::gaussian(0.0, 1.0)).recording();
        let mut rng = StdRng::seed_from_u64(3);
        for t in 0..10 {
            clock.read(t as f64, &mut rng);
        }
        assert_eq!(clock.readings().len(), 10);
        assert_eq!(clock.readings()[4].true_time, 4.0);
    }

    #[test]
    fn non_recording_clock_stores_nothing() {
        let mut clock = SimClock::new(ClockModel::gaussian(0.0, 1.0));
        let mut rng = StdRng::seed_from_u64(3);
        clock.read(1.0, &mut rng);
        assert!(clock.readings().is_empty());
    }

    #[test]
    fn monotonic_recording_stores_clamped_value() {
        let mut clock = SimClock::new(ClockModel::gaussian(0.0, 100.0)).recording();
        let mut rng = StdRng::seed_from_u64(11);
        for i in 0..200 {
            clock.read_monotonic(i as f64 * 0.01, &mut rng);
        }
        let readings = clock.readings();
        for w in readings.windows(2) {
            assert!(w[1].local_time >= w[0].local_time);
        }
    }
}
