//! Ground-truth clock models.
//!
//! A [`ClockModel`] describes how a simulated client's clock actually deviates
//! from the sequencer's clock: a stochastic offset component drawn from an
//! [`OffsetDistribution`] (the `θ` of §3.1) plus an optional deterministic
//! drift term (the paper's §5 notes that accounting for drift on top of
//! offsets is an open direction — the model supports it so experiments can
//! quantify its effect).

use rand::RngCore;
use tommy_stats::distribution::{Distribution, OffsetDistribution};

/// The ground truth for one client's clock behaviour.
#[derive(Debug, Clone)]
pub struct ClockModel {
    distribution: OffsetDistribution,
    drift_ppm: f64,
}

impl ClockModel {
    /// A clock whose offset is drawn i.i.d. from `distribution` at every read
    /// and that has no deterministic drift. This is exactly the model used by
    /// the paper's evaluation (§4).
    pub fn from_distribution(distribution: OffsetDistribution) -> Self {
        ClockModel {
            distribution,
            drift_ppm: 0.0,
        }
    }

    /// A Gaussian clock `N(mean, std_dev²)` — the common case of §3.2/§4.
    pub fn gaussian(mean: f64, std_dev: f64) -> Self {
        ClockModel::from_distribution(OffsetDistribution::gaussian(mean, std_dev))
    }

    /// A perfectly synchronized clock (zero offset, zero drift); useful as a
    /// control in experiments and for the idealized WFO setting of Figure 2.
    pub fn perfect() -> Self {
        ClockModel::gaussian(0.0, 0.0)
    }

    /// Add a deterministic linear drift in parts-per-million of elapsed true
    /// time: at true time `t` the clock has drifted by `t * drift_ppm * 1e-6`
    /// on top of the stochastic offset.
    pub fn with_drift_ppm(mut self, drift_ppm: f64) -> Self {
        assert!(drift_ppm.is_finite(), "drift must be finite");
        self.drift_ppm = drift_ppm;
        self
    }

    /// The stochastic offset distribution.
    pub fn distribution(&self) -> &OffsetDistribution {
        &self.distribution
    }

    /// The deterministic drift in parts per million.
    pub fn drift_ppm(&self) -> f64 {
        self.drift_ppm
    }

    /// Sample the instantaneous clock offset at true time `t`.
    pub fn sample_offset(&self, true_time: f64, rng: &mut dyn RngCore) -> f64 {
        self.distribution.sample(rng) + self.drift_component(true_time)
    }

    /// The deterministic part of the offset at true time `t`.
    pub fn drift_component(&self, true_time: f64) -> f64 {
        true_time * self.drift_ppm * 1e-6
    }

    /// Mean instantaneous offset at true time `t` (distribution mean plus
    /// drift).
    pub fn expected_offset(&self, true_time: f64) -> f64 {
        self.distribution.mean() + self.drift_component(true_time)
    }

    /// Standard deviation of the stochastic offset component.
    pub fn offset_std_dev(&self) -> f64 {
        self.distribution.std_dev()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn perfect_clock_has_zero_offset() {
        let m = ClockModel::perfect();
        let mut rng = StdRng::seed_from_u64(1);
        for t in [0.0, 10.0, 1e6] {
            assert_eq!(m.sample_offset(t, &mut rng), 0.0);
        }
    }

    #[test]
    fn gaussian_clock_offsets_have_requested_moments() {
        let m = ClockModel::gaussian(5.0, 2.0);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| m.sample_offset(0.0, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05);
        assert!((var - 4.0).abs() < 0.15);
    }

    #[test]
    fn drift_grows_linearly_with_time() {
        let m = ClockModel::perfect().with_drift_ppm(100.0); // 100 ppm
        assert_eq!(m.drift_component(0.0), 0.0);
        assert!((m.drift_component(1_000_000.0) - 100.0).abs() < 1e-9);
        assert!((m.expected_offset(2_000_000.0) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn expected_offset_includes_distribution_mean() {
        let m = ClockModel::gaussian(-3.0, 1.0).with_drift_ppm(10.0);
        assert!((m.expected_offset(1_000_000.0) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn offset_std_dev_exposed() {
        let m = ClockModel::gaussian(0.0, 7.5);
        assert!((m.offset_std_dev() - 7.5).abs() < 1e-12);
    }
}
