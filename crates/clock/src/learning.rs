//! Client-side learning of clock-offset distributions.
//!
//! §3.3 of the paper: "If clients learn their own offset (w.r.t. the
//! sequencer's clock) distributions over several rounds of clock
//! synchronization, they can share their respective distributions with the
//! sequencer." §5 adds that robustness to regime changes (e.g. abrupt
//! temperature shifts) matters; the [`DistributionLearner`] therefore supports
//! both an unbounded accumulation mode and a sliding-window mode that forgets
//! old probes.

use crate::probe::OffsetSample;
use std::collections::VecDeque;
use tommy_stats::distribution::OffsetDistribution;
use tommy_stats::gaussian::Gaussian;
use tommy_stats::histogram::Histogram;
use tommy_stats::moments::Moments;

/// How the learner summarizes the accumulated offset samples into a
/// distribution it can share with the sequencer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LearnedModel {
    /// Fit a Gaussian via sample mean / variance (enables the closed-form
    /// preceding probability and the transitivity guarantee of Appendix A).
    #[default]
    GaussianFit,
    /// Ship a fixed-bin histogram (robust to skew and long tails).
    Histogram {
        /// Number of bins in the shared histogram.
        bins: usize,
    },
    /// Ship the raw samples so the sequencer can build a KDE.
    Kde,
}

impl LearnedModel {
    /// A histogram model with a reasonable default bin count.
    pub fn histogram() -> Self {
        LearnedModel::Histogram { bins: 64 }
    }
}

/// Accumulates offset samples and produces a learned [`OffsetDistribution`].
#[derive(Debug, Clone)]
pub struct DistributionLearner {
    model: LearnedModel,
    window: Option<usize>,
    samples: VecDeque<f64>,
    moments: Moments,
}

impl DistributionLearner {
    /// A learner that keeps every sample it has ever seen.
    pub fn new(model: LearnedModel) -> Self {
        DistributionLearner {
            model,
            window: None,
            samples: VecDeque::new(),
            moments: Moments::new(),
        }
    }

    /// A learner that keeps only the most recent `window` samples, adapting
    /// to synchronization-regime changes at the cost of higher variance.
    pub fn with_window(model: LearnedModel, window: usize) -> Self {
        assert!(window >= 2, "window must hold at least two samples");
        DistributionLearner {
            model,
            window: Some(window),
            samples: VecDeque::with_capacity(window),
            moments: Moments::new(),
        }
    }

    /// The summarization model in use.
    pub fn model(&self) -> LearnedModel {
        self.model
    }

    /// Number of samples currently retained.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been observed yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Record one raw offset estimate.
    pub fn record(&mut self, offset: f64) {
        assert!(offset.is_finite(), "offset estimates must be finite");
        if let Some(w) = self.window {
            if self.samples.len() == w {
                self.samples.pop_front();
            }
        }
        self.samples.push_back(offset);
        // The streaming moments are only exact in unbounded mode; in window
        // mode they are recomputed on demand.
        self.moments.push(offset);
    }

    /// Record an [`OffsetSample`] produced by a probe exchange.
    pub fn record_sample(&mut self, sample: &OffsetSample) {
        self.record(sample.offset);
    }

    /// Record a batch of raw offset estimates.
    pub fn record_all(&mut self, offsets: &[f64]) {
        for &o in offsets {
            self.record(o);
        }
    }

    fn window_moments(&self) -> Moments {
        if self.window.is_some() {
            let v: Vec<f64> = self.samples.iter().copied().collect();
            Moments::from_samples(&v)
        } else {
            self.moments
        }
    }

    /// Current estimate of the mean offset.
    pub fn mean(&self) -> f64 {
        self.window_moments().mean()
    }

    /// Current estimate of the offset standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.window_moments().std_dev()
    }

    /// Produce the learned distribution, or `None` if fewer than two samples
    /// have been recorded (a single probe cannot constrain a distribution).
    pub fn learned(&self) -> Option<OffsetDistribution> {
        if self.samples.len() < 2 {
            return None;
        }
        let samples: Vec<f64> = self.samples.iter().copied().collect();
        Some(match self.model {
            LearnedModel::GaussianFit => {
                let m = self.window_moments();
                // Guard against a degenerate zero-variance fit: a tiny floor
                // keeps downstream preceding probabilities well defined.
                let sd = m.std_dev().max(1e-9);
                OffsetDistribution::Gaussian(Gaussian::new(m.mean(), sd))
            }
            LearnedModel::Histogram { bins } => {
                let hist = Histogram::from_samples(&samples, bins);
                histogram_to_distribution(&hist)
            }
            LearnedModel::Kde => OffsetDistribution::empirical(&samples),
        })
    }
}

/// Convert a histogram into a piecewise-constant empirical distribution by
/// replaying bin centres weighted by counts into a KDE-backed empirical
/// distribution. Bins with zero counts contribute nothing.
fn histogram_to_distribution(hist: &Histogram) -> OffsetDistribution {
    let mut expanded = Vec::new();
    for (i, &c) in hist.counts().iter().enumerate() {
        // Cap the expansion so enormous histograms stay cheap: the shape is
        // what matters, not the absolute count.
        let reps = (c as usize).min(64);
        for _ in 0..reps {
            expanded.push(hist.bin_center(i));
        }
    }
    if expanded.len() < 2 {
        // Degenerate histogram: fall back to a narrow Gaussian at the mean.
        return OffsetDistribution::gaussian(hist.mean(), hist.variance().sqrt().max(1e-9));
    }
    OffsetDistribution::empirical(&expanded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offset::ClockModel;
    use crate::sync::{PathModel, SyncSession};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tommy_stats::distribution::Distribution;

    #[test]
    fn gaussian_fit_recovers_parameters() {
        let mut learner = DistributionLearner::new(LearnedModel::GaussianFit);
        let g = Gaussian::new(12.0, 3.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20_000 {
            learner.record(g.sample(&mut rng));
        }
        let learned = learner.learned().unwrap();
        assert!((learned.mean() - 12.0).abs() < 0.1);
        assert!((learned.std_dev() - 3.0).abs() < 0.1);
        assert!(learned.is_gaussian());
    }

    #[test]
    fn too_few_samples_yield_none() {
        let mut learner = DistributionLearner::new(LearnedModel::GaussianFit);
        assert!(learner.learned().is_none());
        learner.record(1.0);
        assert!(learner.learned().is_none());
        learner.record(2.0);
        assert!(learner.learned().is_some());
    }

    #[test]
    fn window_mode_adapts_to_regime_change() {
        let mut learner = DistributionLearner::with_window(LearnedModel::GaussianFit, 500);
        let mut rng = StdRng::seed_from_u64(2);
        let old = Gaussian::new(0.0, 1.0);
        let new = Gaussian::new(50.0, 1.0);
        for _ in 0..2000 {
            learner.record(old.sample(&mut rng));
        }
        for _ in 0..600 {
            learner.record(new.sample(&mut rng));
        }
        // Only the last 500 samples (all from the new regime) are retained.
        assert_eq!(learner.len(), 500);
        assert!((learner.mean() - 50.0).abs() < 0.5, "mean = {}", learner.mean());
    }

    #[test]
    fn unbounded_mode_blends_regimes() {
        let mut learner = DistributionLearner::new(LearnedModel::GaussianFit);
        for _ in 0..1000 {
            learner.record(0.0);
        }
        for _ in 0..1000 {
            learner.record(10.0);
        }
        assert!((learner.mean() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn kde_model_captures_skew() {
        let mut learner = DistributionLearner::new(LearnedModel::Kde);
        let skewed = OffsetDistribution::shifted_log_normal(0.0, 1.0, 0.75);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..3000 {
            learner.record(skewed.sample(&mut rng));
        }
        let learned = learner.learned().unwrap();
        // The learned median should be well below the learned mean (right skew).
        let median = learned.quantile(0.5);
        assert!(median < learned.mean());
    }

    #[test]
    fn histogram_model_produces_valid_distribution() {
        let mut learner = DistributionLearner::new(LearnedModel::histogram());
        let g = Gaussian::new(-5.0, 2.0);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..5000 {
            learner.record(g.sample(&mut rng));
        }
        let learned = learner.learned().unwrap();
        assert!((learned.mean() - -5.0).abs() < 0.5);
        assert!((learned.cdf(-5.0) - 0.5).abs() < 0.08);
    }

    #[test]
    fn end_to_end_learning_from_sync_session_is_close_to_truth() {
        // The paper notes its seeded-distribution results are an upper bound;
        // this test quantifies that the learned distribution lands close when
        // the path is symmetric.
        let truth = Gaussian::new(30.0, 6.0);
        let clock = ClockModel::from_distribution(OffsetDistribution::Gaussian(truth));
        let path = PathModel::symmetric(10.0, 0.5);
        let mut session = SyncSession::new(clock, path, 1.0, 0.0);
        let mut rng = StdRng::seed_from_u64(5);
        session.run_until(4_000.0, &mut rng);

        let mut learner = DistributionLearner::new(LearnedModel::GaussianFit);
        for s in session.samples() {
            learner.record_sample(s);
        }
        let learned = learner.learned().unwrap();
        assert!((learned.mean() - 30.0).abs() < 0.5, "mean {}", learned.mean());
        assert!((learned.std_dev() - 6.0).abs() < 0.5, "sd {}", learned.std_dev());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_offsets_rejected() {
        let mut learner = DistributionLearner::new(LearnedModel::GaussianFit);
        learner.record(f64::NAN);
    }

    /// Drift re-estimation contract (the defense layer's §3.3 loop): after a
    /// step change in the offset regime, a windowed learner converges to the
    /// new regime within exactly one window of samples — the bound the
    /// sequencer-side re-estimation relies on.
    #[test]
    fn windowed_learner_converges_within_one_window_of_drift() {
        const W: usize = 64;
        let mut learner = DistributionLearner::with_window(LearnedModel::GaussianFit, W);
        let mut rng = StdRng::seed_from_u64(11);
        let pre = Gaussian::new(0.0, 2.0);
        let post = Gaussian::new(8.0, 2.0); // a 4σ drift step
        for _ in 0..200 {
            learner.record(pre.sample(&mut rng));
        }
        let before = learner.mean();
        assert!(before.abs() < 1.0, "pre-drift mean {before}");

        // Half a window in: the estimate is mid-transition, pulled off the
        // old regime but not yet settled on the new one.
        for _ in 0..W / 2 {
            learner.record(post.sample(&mut rng));
        }
        let mid = learner.mean();
        assert!(mid > before + 2.0 && mid < 7.0, "mid-drift mean {mid}");

        // One full window after the step, every retained sample comes from
        // the new regime: the fit matches it to sampling noise.
        for _ in 0..W / 2 {
            learner.record(post.sample(&mut rng));
        }
        assert_eq!(learner.len(), W);
        let learned = learner.learned().unwrap();
        assert!((learned.mean() - 8.0).abs() < 1.0, "mean {}", learned.mean());
        assert!((learned.std_dev() - 2.0).abs() < 1.0, "sd {}", learned.std_dev());
    }

    /// `record_sample` (probe path) and `record_all` (residual-batch path,
    /// used by the sequencer-side defense) feed the identical pipeline: the
    /// same offsets produce bit-identical fits through either entry point.
    #[test]
    fn record_sample_and_record_all_agree_bitwise() {
        let offsets: Vec<f64> = (0..40).map(|i| (i as f64 * 0.73).sin() * 5.0 + 1.5).collect();
        let samples: Vec<OffsetSample> = offsets
            .iter()
            .enumerate()
            .map(|(i, &offset)| OffsetSample {
                offset,
                rtt: 10.0 + i as f64,
                completed_at: i as f64,
            })
            .collect();

        let mut via_samples = DistributionLearner::with_window(LearnedModel::GaussianFit, 32);
        for s in &samples {
            via_samples.record_sample(s);
        }
        let mut via_batch = DistributionLearner::with_window(LearnedModel::GaussianFit, 32);
        via_batch.record_all(&offsets);

        assert_eq!(via_samples.len(), via_batch.len());
        assert_eq!(via_samples.mean().to_bits(), via_batch.mean().to_bits());
        assert_eq!(via_samples.std_dev().to_bits(), via_batch.std_dev().to_bits());
        let (a, b) = (via_samples.learned().unwrap(), via_batch.learned().unwrap());
        assert_eq!(a.mean().to_bits(), b.mean().to_bits());
        assert_eq!(a.std_dev().to_bits(), b.std_dev().to_bits());
    }
}
