//! Auction-app burst workloads.
//!
//! §1 of the paper: "in financial exchanges some event leading to market
//! volatility may be broadcast to all the clients simultaneously, eliciting a
//! large volume of responses by the clients". A burst workload models one or
//! more such trigger events: after each trigger every client responds once
//! (or several times) with a small random reaction delay.

use crate::events::GenerationEvent;
use rand::RngCore;
use tommy_core::message::ClientId;
use tommy_stats::distribution::{Distribution, OffsetDistribution};

/// A burst workload: `rounds` trigger events spaced `round_interval` apart;
/// after each trigger every client responds `responses_per_client` times with
/// reaction delays drawn from `reaction_delay`.
#[derive(Debug, Clone)]
pub struct BurstWorkload {
    /// Number of clients responding to each trigger.
    pub clients: usize,
    /// Number of trigger events.
    pub rounds: usize,
    /// Time between consecutive triggers.
    pub round_interval: f64,
    /// Messages each client sends per trigger.
    pub responses_per_client: usize,
    /// Distribution of a client's reaction delay after the trigger.
    pub reaction_delay: OffsetDistribution,
    /// Gap between consecutive responses of the same client within a round.
    pub intra_client_gap: f64,
    /// Time of the first trigger.
    pub start: f64,
}

impl BurstWorkload {
    /// A single-round burst with exponential reaction delays of the given
    /// mean — the canonical market-volatility scenario.
    pub fn market_event(clients: usize, mean_reaction: f64) -> Self {
        assert!(clients > 0, "need at least one client");
        assert!(mean_reaction > 0.0, "reaction delay must be positive");
        BurstWorkload {
            clients,
            rounds: 1,
            round_interval: 0.0,
            responses_per_client: 1,
            reaction_delay: OffsetDistribution::shifted_exponential(0.0, 1.0 / mean_reaction),
            intra_client_gap: mean_reaction,
            start: 0.0,
        }
    }

    /// Set the number of trigger rounds and their spacing.
    pub fn with_rounds(mut self, rounds: usize, round_interval: f64) -> Self {
        assert!(rounds > 0, "need at least one round");
        assert!(round_interval >= 0.0);
        self.rounds = rounds;
        self.round_interval = round_interval;
        self
    }

    /// Set how many responses each client sends per trigger.
    pub fn with_responses_per_client(mut self, responses: usize, intra_client_gap: f64) -> Self {
        assert!(responses > 0, "need at least one response per client");
        assert!(intra_client_gap >= 0.0);
        self.responses_per_client = responses;
        self.intra_client_gap = intra_client_gap;
        self
    }

    /// Set the time of the first trigger.
    pub fn with_start(mut self, start: f64) -> Self {
        assert!(start.is_finite());
        self.start = start;
        self
    }

    /// Total number of events this workload generates.
    pub fn total_messages(&self) -> usize {
        self.clients * self.rounds * self.responses_per_client
    }

    /// Generate the ground-truth events (unsorted; callers that need the
    /// omniscient order should sort by true time).
    pub fn generate(&self, rng: &mut dyn RngCore) -> Vec<GenerationEvent> {
        let mut events = Vec::with_capacity(self.total_messages());
        for round in 0..self.rounds {
            let trigger = self.start + round as f64 * self.round_interval;
            for client in 0..self.clients {
                let reaction = self.reaction_delay.sample(rng).max(0.0);
                for r in 0..self.responses_per_client {
                    let t = trigger + reaction + r as f64 * self.intra_client_gap;
                    events.push(GenerationEvent::new(ClientId(client as u32), t));
                }
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_round_burst_counts_and_timing() {
        let wl = BurstWorkload::market_event(50, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        let events = wl.generate(&mut rng);
        assert_eq!(events.len(), 50);
        assert_eq!(wl.total_messages(), 50);
        // All responses happen after the trigger at t = 0.
        assert!(events.iter().all(|e| e.true_time >= 0.0));
        // Mean reaction is roughly the configured mean.
        let mean: f64 = events.iter().map(|e| e.true_time).sum::<f64>() / events.len() as f64;
        assert!((mean - 2.0).abs() < 1.0, "mean reaction = {mean}");
    }

    #[test]
    fn burst_is_dense_compared_to_round_interval() {
        let wl = BurstWorkload::market_event(100, 1.0).with_rounds(3, 1000.0);
        let mut rng = StdRng::seed_from_u64(2);
        let events = wl.generate(&mut rng);
        assert_eq!(events.len(), 300);
        // Events cluster tightly after each trigger: every event is within
        // a small window of its round's trigger.
        for e in &events {
            let round_offset = e.true_time % 1000.0;
            assert!(round_offset < 50.0, "event at {} too far from trigger", e.true_time);
        }
    }

    #[test]
    fn multiple_responses_per_client_are_spaced() {
        let wl = BurstWorkload::market_event(1, 1.0).with_responses_per_client(3, 5.0);
        let mut rng = StdRng::seed_from_u64(3);
        let events = wl.generate(&mut rng);
        assert_eq!(events.len(), 3);
        assert!((events[1].true_time - events[0].true_time - 5.0).abs() < 1e-9);
        assert!((events[2].true_time - events[1].true_time - 5.0).abs() < 1e-9);
    }

    #[test]
    fn every_client_appears_in_every_round() {
        let wl = BurstWorkload::market_event(10, 1.0).with_rounds(2, 100.0);
        let mut rng = StdRng::seed_from_u64(4);
        let events = wl.generate(&mut rng);
        let first_round: std::collections::HashSet<u32> = events
            .iter()
            .filter(|e| e.true_time < 100.0)
            .map(|e| e.client.0)
            .collect();
        assert_eq!(first_round.len(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn zero_clients_rejected() {
        BurstWorkload::market_event(0, 1.0);
    }
}
