//! Mid-stream clock drift and step events.
//!
//! Unlike [`misreport`](super::misreport), a drifting client was *honest* at
//! registration time: the distribution it shared matched its clock when the
//! probes ran. The clock then moved — a slow frequency error (ramp) or a
//! sudden step (NTP re-sync, VM migration) — and the registered model went
//! stale. §3.3's answer is periodic re-estimation; this module produces the
//! inputs that force it.

use tommy_core::message::{ClientId, Message};

/// Ground-truth time if the simulation attached one, else the reported
/// timestamp (attacks on truth-less streams key off what the client said).
pub(super) fn truth_of(m: &Message) -> f64 {
    m.true_time.unwrap_or(m.timestamp)
}

/// The shape of a clock excursion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriftKind {
    /// Frequency error: the clock gains `rate` seconds of offset per second
    /// of true time after onset (negative `rate` = losing time).
    Ramp {
        /// Offset accumulated per unit of true time past the onset.
        rate: f64,
    },
    /// A one-shot step of `delta` at the onset (positive = clock jumps
    /// forward).
    Step {
        /// Size of the jump applied to every timestamp after onset.
        delta: f64,
    },
}

/// A clock excursion starting at a point in true time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockDrift {
    /// True time at which the excursion begins; earlier messages are
    /// untouched.
    pub onset: f64,
    /// Ramp or step.
    pub kind: DriftKind,
}

impl ClockDrift {
    /// Extra offset (beyond the registered distribution) a drifting clock
    /// shows at true time `t`.
    pub fn offset_at(&self, t: f64) -> f64 {
        if t < self.onset {
            return 0.0;
        }
        match self.kind {
            DriftKind::Ramp { rate } => rate * (t - self.onset),
            DriftKind::Step { delta } => delta,
        }
    }
}

/// Apply `drift` to every message of the `drifters`, leaving other clients
/// and all ground-truth times untouched. Each drifting client's timestamps
/// are re-clamped to stay monotone (a real clock that steps *backwards*
/// still never reports a time below its own last reading — the standard
/// monotone-clock guard, same as the tagging step).
pub fn apply_drift(messages: &[Message], drifters: &[ClientId], drift: &ClockDrift) -> Vec<Message> {
    let mut out: Vec<Message> = messages.to_vec();
    // Walk each drifting client's messages in true-time order and clamp.
    let mut indices: Vec<usize> = (0..out.len())
        .filter(|&i| drifters.contains(&out[i].client))
        .collect();
    indices.sort_by(|&a, &b| {
        truth_of(&out[a])
            .partial_cmp(&truth_of(&out[b]))
            .expect("finite true times")
    });
    let mut floors: std::collections::HashMap<ClientId, f64> = std::collections::HashMap::new();
    for i in indices {
        let t = truth_of(&out[i]);
        let m = &mut out[i];
        let shifted = m.timestamp + drift.offset_at(t);
        let floor = floors.entry(m.client).or_insert(f64::NEG_INFINITY);
        m.timestamp = shifted.max(*floor);
        *floor = m.timestamp;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tommy_core::message::MessageId;

    fn msgs() -> Vec<Message> {
        (0..10)
            .map(|i| {
                Message::with_true_time(
                    MessageId(i),
                    ClientId((i % 2) as u32),
                    i as f64,
                    i as f64,
                )
            })
            .collect()
    }

    #[test]
    fn ramp_accumulates_after_onset_only() {
        let drift = ClockDrift {
            onset: 4.0,
            kind: DriftKind::Ramp { rate: 0.5 },
        };
        let out = apply_drift(&msgs(), &[ClientId(0)], &drift);
        for (h, d) in msgs().iter().zip(out.iter()) {
            assert_eq!(h.true_time, d.true_time);
            if h.client != ClientId(0) || h.true_time.unwrap() < 4.0 {
                assert_eq!(h.timestamp, d.timestamp);
            } else {
                let expect = h.timestamp + 0.5 * (h.true_time.unwrap() - 4.0);
                assert!((d.timestamp - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn step_is_flat_after_onset() {
        let drift = ClockDrift {
            onset: 5.0,
            kind: DriftKind::Step { delta: 3.0 },
        };
        let out = apply_drift(&msgs(), &[ClientId(1)], &drift);
        for (h, d) in msgs().iter().zip(out.iter()) {
            if h.client == ClientId(1) && h.true_time.unwrap() >= 5.0 {
                assert!((d.timestamp - (h.timestamp + 3.0)).abs() < 1e-12);
            } else {
                assert_eq!(h.timestamp, d.timestamp);
            }
        }
    }

    #[test]
    fn backwards_step_keeps_timestamps_monotone() {
        let drift = ClockDrift {
            onset: 5.0,
            kind: DriftKind::Step { delta: -4.0 },
        };
        let out = apply_drift(&msgs(), &[ClientId(0), ClientId(1)], &drift);
        for c in [ClientId(0), ClientId(1)] {
            let ts: Vec<f64> = out
                .iter()
                .filter(|m| m.client == c)
                .map(|m| m.timestamp)
                .collect();
            for w in ts.windows(2) {
                assert!(w[1] >= w[0], "client {c:?} went backwards: {ts:?}");
            }
        }
        // And the step still shows once the clock climbs past the floor:
        // client 0's message at true time 8 would honestly read 8, reads 4
        // clamped to the floor 4 (from true time 4), i.e. the excursion is
        // visible as a plateau.
        let late: Vec<f64> = out
            .iter()
            .filter(|m| m.client == ClientId(0) && m.true_time.unwrap() >= 5.0)
            .map(|m| m.timestamp)
            .collect();
        assert!(late.iter().all(|&t| t <= 6.0), "late = {late:?}");
    }

    #[test]
    fn offset_at_is_zero_before_onset() {
        let ramp = ClockDrift {
            onset: 10.0,
            kind: DriftKind::Ramp { rate: 2.0 },
        };
        assert_eq!(ramp.offset_at(9.999), 0.0);
        assert_eq!(ramp.offset_at(10.0), 0.0);
        assert!((ramp.offset_at(12.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn non_drifters_are_untouched() {
        let drift = ClockDrift {
            onset: 0.0,
            kind: DriftKind::Ramp { rate: 1.0 },
        };
        let out = apply_drift(&msgs(), &[ClientId(7)], &drift);
        assert_eq!(out, msgs());
    }
}
