//! Misreported-distribution attacks: lying to the registry, not the clock.
//!
//! §3.3 of the paper has clients learn their own offset distributions and
//! share them with the sequencer — an honesty assumption §5 calls out as the
//! first thing a Byzantine client breaks. A misreporting client keeps its
//! *timestamps* honest (they still come from its real clock) but registers a
//! false distribution: a deflated σ buys unearned ordering confidence, an
//! inflated σ drags neighbours into its batches, and a stale
//! [`SharedDistribution`](tommy_clock::SharedDistribution) snapshot centres
//! the sequencer's model on where the clock used to be.

use tommy_clock::SharedDistribution;
use tommy_core::message::ClientId;
use tommy_stats::distribution::{Distribution as _, OffsetDistribution};

/// One way of lying about an offset distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Misreport {
    /// Claim a standard deviation `factor` times the true one (`factor > 1`):
    /// the sequencer over-merges the client's messages with its neighbours,
    /// widening batches around the attacker.
    InflateSigma {
        /// Multiplier applied to the true σ (must be ≥ 1 and finite).
        factor: f64,
    },
    /// Claim a standard deviation `1/factor` of the true one (`factor > 1`):
    /// the sequencer takes the client's noisy timestamps at face value,
    /// confidently ordering pairs the evidence cannot support.
    DeflateSigma {
        /// Divisor applied to the true σ (must be ≥ 1 and finite).
        factor: f64,
    },
    /// Register a snapshot learned before the clock moved: the claimed
    /// distribution is the true one shifted by `-mean_shift` (the client's
    /// clock has since advanced by `mean_shift` relative to the snapshot),
    /// round-tripped through the [`SharedDistribution`] wire summary exactly
    /// as a real client would have shipped it.
    StaleSnapshot {
        /// How far the clock has moved since the snapshot was taken.
        mean_shift: f64,
    },
}

impl Misreport {
    /// The distribution the attacker *claims*, given its true one.
    ///
    /// Gaussian truths stay Gaussian with the lied-about parameters;
    /// non-Gaussian truths are summarized by their moments first (a
    /// misreporter ships the compact Gaussian wire form — see
    /// [`SharedDistribution::from_distribution`]), then distorted. The claim
    /// is always round-tripped through [`SharedDistribution`] so the lie
    /// travels the same path an honest registration would.
    pub fn claimed(&self, truth: &OffsetDistribution) -> OffsetDistribution {
        let (mean, sd) = match truth {
            OffsetDistribution::Gaussian(g) => (g.mean(), g.std_dev()),
            other => (other.mean(), other.std_dev()),
        };
        let (mean, sd) = match *self {
            Misreport::InflateSigma { factor } => {
                assert!(factor >= 1.0 && factor.is_finite(), "inflate factor must be >= 1");
                (mean, sd * factor)
            }
            Misreport::DeflateSigma { factor } => {
                assert!(factor >= 1.0 && factor.is_finite(), "deflate factor must be >= 1");
                (mean, sd / factor)
            }
            Misreport::StaleSnapshot { mean_shift } => {
                assert!(mean_shift.is_finite(), "mean shift must be finite");
                (mean - mean_shift, sd)
            }
        };
        SharedDistribution::Gaussian {
            mean,
            // A literal zero σ would make downstream probabilities
            // degenerate; the tiniest positive spread keeps the claim usable
            // while staying an extreme lie.
            std_dev: sd.max(1e-9),
        }
        .to_distribution()
    }
}

/// The registry seeds a misreporting population hands the sequencer: every
/// attacker's distribution is replaced by [`Misreport::claimed`], honest
/// clients keep the truth. Message timestamps are untouched — the lie lives
/// entirely in the registration.
pub fn misreported_offsets(
    offsets: &[(ClientId, OffsetDistribution)],
    attackers: &[ClientId],
    misreport: &Misreport,
) -> Vec<(ClientId, OffsetDistribution)> {
    offsets
        .iter()
        .map(|(client, truth)| {
            if attackers.contains(client) {
                (*client, misreport.claimed(truth))
            } else {
                (*client, truth.clone())
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn offsets() -> Vec<(ClientId, OffsetDistribution)> {
        (0..4)
            .map(|c| (ClientId(c), OffsetDistribution::gaussian(1.0, 4.0)))
            .collect()
    }

    #[test]
    fn deflate_shrinks_sigma_and_keeps_mean() {
        let claimed = Misreport::DeflateSigma { factor: 8.0 }
            .claimed(&OffsetDistribution::gaussian(1.0, 4.0));
        assert!((claimed.mean() - 1.0).abs() < 1e-12);
        assert!((claimed.std_dev() - 0.5).abs() < 1e-12);
        assert!(claimed.is_gaussian());
    }

    #[test]
    fn inflate_grows_sigma() {
        let claimed = Misreport::InflateSigma { factor: 3.0 }
            .claimed(&OffsetDistribution::gaussian(-2.0, 4.0));
        assert!((claimed.mean() - -2.0).abs() < 1e-12);
        assert!((claimed.std_dev() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn stale_snapshot_shifts_the_mean_back() {
        let claimed = Misreport::StaleSnapshot { mean_shift: 10.0 }
            .claimed(&OffsetDistribution::gaussian(3.0, 2.0));
        assert!((claimed.mean() - -7.0).abs() < 1e-12);
        assert!((claimed.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn non_gaussian_truths_are_summarized_by_moments() {
        let truth = OffsetDistribution::laplace(2.0, 3.0);
        let claimed = Misreport::DeflateSigma { factor: 2.0 }.claimed(&truth);
        assert!(claimed.is_gaussian());
        assert!((claimed.mean() - truth.mean()).abs() < 1e-9);
        assert!((claimed.std_dev() - truth.std_dev() / 2.0).abs() < 1e-9);
    }

    #[test]
    fn only_attackers_are_replaced() {
        let truth = offsets();
        let attackers = [ClientId(1), ClientId(3)];
        let seeds = misreported_offsets(&truth, &attackers, &Misreport::DeflateSigma { factor: 4.0 });
        for ((c, claimed), (_, honest)) in seeds.iter().zip(truth.iter()) {
            if attackers.contains(c) {
                assert!((claimed.std_dev() - honest.std_dev() / 4.0).abs() < 1e-9);
            } else {
                assert_eq!(claimed, honest);
            }
        }
    }

    #[test]
    #[should_panic(expected = ">= 1")]
    fn deflate_factor_below_one_rejected() {
        Misreport::DeflateSigma { factor: 0.5 }.claimed(&OffsetDistribution::gaussian(0.0, 1.0));
    }
}
