//! One-knob attack parameterization for scenario sweeps.
//!
//! Experiments want "family × intensity" axes, not a bag of per-attack
//! constants. [`AttackPlan`] maps a single `intensity ∈ [0, 1]` onto
//! concrete parameters for each family ([`Misreport`](super::Misreport),
//! [`ClockDrift`](super::ClockDrift), [`apply_collusion`](super::apply_collusion),
//! [`apply_correlated_collusion`](super::apply_correlated_collusion))
//! so `ScenarioConfig` can carry an attack as plain `Copy` data and the
//! bench sweep can dial it up. Everything here is deterministic: the same
//! plan applied to the same honest workload yields the same attacked
//! workload, so seed-stability of a scenario reduces to seed-stability of
//! its honest generator.

use tommy_core::message::{ClientId, Message};
use tommy_stats::distribution::OffsetDistribution;

use super::drift::{apply_drift, ClockDrift, DriftKind};
use super::misreport::{misreported_offsets, Misreport};
use super::apply_collusion;

/// Which of the three attack families a plan exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackFamily {
    /// Attackers register a lie (deflated σ + stale mean) but timestamp
    /// honestly. Defended by the KS cross-check + quarantine.
    Misreport,
    /// Attackers registered honestly, then their clocks ramp away
    /// mid-stream. Defended by drift detection + online re-estimation.
    Drift,
    /// Attackers forge near-tied timestamps to push the sequencer into the
    /// cyclic regime. Bounded by FAS repair; the trust layer reports but
    /// cannot fully reverse it.
    Collusion,
    /// Attackers co-move their timestamp errors with a pre-shared
    /// pseudorandom pad while keeping exactly honest-looking marginals
    /// ([`apply_correlated_collusion`](super::apply_correlated_collusion)).
    /// Invisible to per-client KS/z checks; defended by the cross-client
    /// correlation detector + quarantine.
    CorrelatedCollusion,
}

impl AttackFamily {
    /// All families, in sweep order.
    pub const ALL: [AttackFamily; 4] = [
        AttackFamily::Misreport,
        AttackFamily::Drift,
        AttackFamily::Collusion,
        AttackFamily::CorrelatedCollusion,
    ];

    /// Stable lowercase name for JSON rows and bench labels.
    pub fn name(&self) -> &'static str {
        match self {
            AttackFamily::Misreport => "misreport",
            AttackFamily::Drift => "drift",
            AttackFamily::Collusion => "collusion",
            AttackFamily::CorrelatedCollusion => "correlated_collusion",
        }
    }
}

/// A fully parameterized attack: family, intensity, onset, attacker count,
/// and the magnitude scale tying `intensity` to the workload's units.
///
/// `intensity` is the sweep axis: `0.0` is a no-op for every family, `1.0`
/// the strongest configured attack. `scale` is an absolute σ-like magnitude
/// (callers typically pass the scenario's clock σ) so the same intensity
/// means "the same multiple of the clock noise" across scenarios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackPlan {
    /// Attack family to run.
    pub family: AttackFamily,
    /// Attack strength in `[0, 1]`.
    pub intensity: f64,
    /// Where in the stream (fraction of the true-time span) the attack
    /// switches on. Misreports ignore this — the lie is in the
    /// registration, active from the first message.
    pub onset_fraction: f64,
    /// How many clients attack (the first `attackers` client ids).
    pub attackers: u32,
    /// Magnitude scale in timestamp units (σ-like; must be positive).
    pub scale: f64,
}

impl AttackPlan {
    /// A plan with default onset (30% into the stream), one attacker for
    /// misreport/drift and three for either collusion family (collusion
    /// needs partners), and unit scale.
    pub fn new(family: AttackFamily, intensity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&intensity),
            "intensity must be in [0, 1], got {intensity}"
        );
        AttackPlan {
            family,
            intensity,
            onset_fraction: 0.3,
            attackers: match family {
                AttackFamily::Collusion | AttackFamily::CorrelatedCollusion => 3,
                _ => 1,
            },
            scale: 1.0,
        }
    }

    /// Set the onset point as a fraction of the stream's true-time span.
    pub fn with_onset_fraction(mut self, onset_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&onset_fraction),
            "onset fraction must be in [0, 1]"
        );
        self.onset_fraction = onset_fraction;
        self
    }

    /// Set the number of attacking clients (the first `attackers` ids).
    pub fn with_attackers(mut self, attackers: u32) -> Self {
        assert!(attackers >= 1, "need at least one attacker");
        self.attackers = attackers;
        self
    }

    /// Set the magnitude scale (e.g. the scenario's clock σ).
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
        self.scale = scale;
        self
    }

    /// The attacking client ids: the first `attackers` clients.
    pub fn attacker_ids(&self) -> Vec<ClientId> {
        (0..self.attackers).map(ClientId).collect()
    }

    /// The misreport this plan's intensity maps to (deflated σ composed
    /// with a stale mean), if the family is [`AttackFamily::Misreport`].
    pub fn misreport(&self) -> Option<(Misreport, Misreport)> {
        if self.family != AttackFamily::Misreport || self.intensity == 0.0 {
            return None;
        }
        Some((
            // σ claimed up to 8× too small at full intensity…
            Misreport::DeflateSigma {
                factor: 1.0 + 7.0 * self.intensity,
            },
            // …and a mean stale by up to 2 scale units.
            Misreport::StaleSnapshot {
                mean_shift: 2.0 * self.scale * self.intensity,
            },
        ))
    }

    /// The distributions the sequencer is *told*: the truth for honest
    /// clients and for non-misreport families (a drifting client was honest
    /// at registration time), a composed lie for misreporting attackers.
    pub fn claimed_offsets(
        &self,
        truth: &[(ClientId, OffsetDistribution)],
    ) -> Vec<(ClientId, OffsetDistribution)> {
        match self.misreport() {
            None => truth.to_vec(),
            Some((deflate, stale)) => {
                let attackers = self.attacker_ids();
                let deflated = misreported_offsets(truth, &attackers, &deflate);
                misreported_offsets(&deflated, &attackers, &stale)
            }
        }
    }

    /// True time at which the attack switches on for `messages`.
    fn onset_time(&self, messages: &[Message]) -> f64 {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for m in messages {
            let t = super::drift::truth_of(m);
            lo = lo.min(t);
            hi = hi.max(t);
        }
        if lo > hi {
            return 0.0;
        }
        lo + self.onset_fraction * (hi - lo)
    }

    /// Apply this plan's timestamp-level effect to an honest workload.
    ///
    /// Misreport and zero-intensity plans are the identity — the misreport
    /// attack lives entirely in [`Self::claimed_offsets`] — so an attacked
    /// scenario at intensity 0 is bit-identical to its honest control. Drift
    /// and collusion forge timestamps from the onset point on, followed by a
    /// per-client monotone pass mirroring the tagging step's monotone-clock
    /// guard.
    pub fn apply(&self, messages: &[Message]) -> Vec<Message> {
        if self.intensity == 0.0 || self.family == AttackFamily::Misreport {
            return messages.to_vec();
        }
        let attackers = self.attacker_ids();
        let mut out = match self.family {
            AttackFamily::Misreport => messages.to_vec(),
            AttackFamily::Drift => {
                if self.intensity == 0.0 {
                    messages.to_vec()
                } else {
                    let onset = self.onset_time(messages);
                    let span = messages
                        .iter()
                        .map(super::drift::truth_of)
                        .fold(f64::NEG_INFINITY, f64::max)
                        - onset;
                    // The ramp accumulates ~4 scale units of offset by the
                    // end of the stream at full intensity.
                    let rate = if span > 0.0 {
                        4.0 * self.scale * self.intensity / span
                    } else {
                        0.0
                    };
                    apply_drift(
                        messages,
                        &attackers,
                        &ClockDrift {
                            onset,
                            kind: DriftKind::Ramp { rate },
                        },
                    )
                }
            }
            AttackFamily::Collusion => {
                if self.intensity == 0.0 {
                    messages.to_vec()
                } else {
                    let onset = self.onset_time(messages);
                    let window = 2.0 * self.scale * self.intensity;
                    // Collude only the post-onset suffix: earlier messages
                    // keep their honest timestamps.
                    let post: Vec<Message> = messages
                        .iter()
                        .filter(|m| super::drift::truth_of(m) >= onset)
                        .cloned()
                        .collect();
                    let colluded = apply_collusion(&post, &attackers, window);
                    let forged: std::collections::HashMap<_, _> =
                        colluded.iter().map(|m| (m.id, m.timestamp)).collect();
                    messages
                        .iter()
                        .map(|m| {
                            let mut m = m.clone();
                            if let Some(&ts) = forged.get(&m.id) {
                                m.timestamp = ts;
                            }
                            m
                        })
                        .collect()
                }
            }
            AttackFamily::CorrelatedCollusion => {
                // λ is the intensity directly: the fraction of honest clock
                // noise displaced by the shared signal.
                let onset = self.onset_time(messages);
                super::apply_correlated_collusion(
                    messages,
                    &attackers,
                    self.intensity,
                    self.scale,
                    onset,
                )
            }
        };
        // Monotone-clock guard: each client's reported timestamps never go
        // backwards in true-time order, whatever the attack did.
        let mut order: Vec<usize> = (0..out.len()).collect();
        order.sort_by(|&a, &b| {
            super::drift::truth_of(&out[a])
                .partial_cmp(&super::drift::truth_of(&out[b]))
                .expect("finite true times")
        });
        let mut floors: std::collections::HashMap<ClientId, f64> = std::collections::HashMap::new();
        for i in order {
            let m = &mut out[i];
            let floor = floors.entry(m.client).or_insert(f64::NEG_INFINITY);
            m.timestamp = m.timestamp.max(*floor);
            *floor = m.timestamp;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tommy_core::message::MessageId;
    use tommy_stats::distribution::Distribution as _;

    fn msgs() -> Vec<Message> {
        (0..20)
            .map(|i| {
                Message::with_true_time(
                    MessageId(i),
                    ClientId((i % 4) as u32),
                    i as f64,
                    i as f64,
                )
            })
            .collect()
    }

    fn truth() -> Vec<(ClientId, OffsetDistribution)> {
        (0..4)
            .map(|c| (ClientId(c), OffsetDistribution::gaussian(0.0, 4.0)))
            .collect()
    }

    #[test]
    fn zero_intensity_is_a_noop_for_every_family() {
        for family in AttackFamily::ALL {
            let plan = AttackPlan::new(family, 0.0);
            assert_eq!(plan.apply(&msgs()), msgs(), "{family:?}");
            assert_eq!(plan.claimed_offsets(&truth()), truth(), "{family:?}");
        }
    }

    #[test]
    fn misreport_lies_in_the_registry_not_the_stream() {
        let plan = AttackPlan::new(AttackFamily::Misreport, 1.0).with_scale(4.0);
        assert_eq!(plan.apply(&msgs()), msgs());
        let claimed = plan.claimed_offsets(&truth());
        let (c, lie) = &claimed[0];
        assert_eq!(*c, ClientId(0));
        // σ deflated 8×, mean stale by 2 × scale.
        assert!((lie.std_dev() - 0.5).abs() < 1e-9, "σ = {}", lie.std_dev());
        assert!((lie.mean() - -8.0).abs() < 1e-9, "μ = {}", lie.mean());
        for (c, d) in claimed.iter().skip(1) {
            assert_eq!(d, &truth()[c.0 as usize].1);
        }
    }

    #[test]
    fn drift_ramps_only_the_attacker_after_onset() {
        let plan = AttackPlan::new(AttackFamily::Drift, 0.5)
            .with_scale(2.0)
            .with_onset_fraction(0.5);
        let out = plan.apply(&msgs());
        assert_eq!(plan.claimed_offsets(&truth()), truth());
        let onset = 9.5; // 0 + 0.5 × (19 − 0)
        for (h, d) in msgs().iter().zip(out.iter()) {
            if h.client != ClientId(0) || h.true_time.unwrap() < onset {
                assert_eq!(h.timestamp, d.timestamp);
            }
        }
        // The ramp accumulates 4 × scale × intensity = 4 over the post-onset
        // span (9.5 → 19); the attacker's last message at true time 16 has
        // gained rate × (16 − 9.5).
        let last = out.iter().rfind(|m| m.client == ClientId(0)).unwrap();
        let honest_msgs = msgs();
        let honest = honest_msgs
            .iter()
            .rfind(|m| m.client == ClientId(0))
            .unwrap()
            .timestamp;
        let gained = last.timestamp - honest;
        let expect = 4.0 * 2.0 * 0.5 / 9.5 * (16.0 - 9.5);
        assert!((gained - expect).abs() < 1e-9, "gained = {gained}, expect = {expect}");
    }

    #[test]
    fn collusion_ties_post_onset_colluders_only() {
        let plan = AttackPlan::new(AttackFamily::Collusion, 1.0)
            .with_scale(1.5)
            .with_onset_fraction(0.5);
        let out = plan.apply(&msgs());
        let onset = 9.5;
        let colluders = plan.attacker_ids();
        assert_eq!(colluders.len(), 3);
        for (h, d) in msgs().iter().zip(out.iter()) {
            if h.true_time.unwrap() < onset || !colluders.contains(&h.client) {
                assert_eq!(h.timestamp, d.timestamp, "pre-onset or honest moved");
            }
        }
        // Post-onset colluder messages within a window (2 × 1.5 × 1 = 3)
        // snap together: at least one pair closer than honestly possible.
        let post: Vec<f64> = out
            .iter()
            .filter(|m| colluders.contains(&m.client) && m.true_time.unwrap() >= onset)
            .map(|m| m.timestamp)
            .collect();
        let mut sorted = post.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min_gap = sorted
            .windows(2)
            .map(|w| w[1] - w[0])
            .fold(f64::INFINITY, f64::min);
        assert!(min_gap < 0.1, "no near-tie formed: {sorted:?}");
    }

    #[test]
    fn apply_is_deterministic_and_monotone_per_client() {
        for family in AttackFamily::ALL {
            for intensity in [0.25, 0.6, 1.0] {
                let plan = AttackPlan::new(family, intensity).with_scale(3.0);
                let a = plan.apply(&msgs());
                let b = plan.apply(&msgs());
                assert_eq!(a, b, "{family:?}@{intensity} not deterministic");
                for c in 0..4 {
                    let ts: Vec<f64> = a
                        .iter()
                        .filter(|m| m.client == ClientId(c))
                        .map(|m| m.timestamp)
                        .collect();
                    for w in ts.windows(2) {
                        assert!(w[1] >= w[0], "{family:?} client {c} backwards: {ts:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn family_names_are_stable() {
        assert_eq!(AttackFamily::Misreport.name(), "misreport");
        assert_eq!(AttackFamily::Drift.name(), "drift");
        assert_eq!(AttackFamily::Collusion.name(), "collusion");
        assert_eq!(AttackFamily::CorrelatedCollusion.name(), "correlated_collusion");
    }

    #[test]
    fn correlated_collusion_plan_forges_post_onset_attackers_only() {
        let plan = AttackPlan::new(AttackFamily::CorrelatedCollusion, 0.6)
            .with_scale(2.0)
            .with_onset_fraction(0.5);
        assert_eq!(plan.attackers, 3);
        assert_eq!(plan.claimed_offsets(&truth()), truth(), "registry stays honest");
        let out = plan.apply(&msgs());
        let onset = 9.5;
        let colluders = plan.attacker_ids();
        let mut forged_any = false;
        for (h, d) in msgs().iter().zip(out.iter()) {
            assert_eq!(h.true_time, d.true_time);
            if h.true_time.unwrap() < onset || !colluders.contains(&h.client) {
                assert_eq!(h.timestamp, d.timestamp, "pre-onset or honest moved");
            } else if h.timestamp != d.timestamp {
                forged_any = true;
            }
        }
        assert!(forged_any, "no post-onset colluder timestamp changed");
    }

    #[test]
    #[should_panic(expected = "intensity")]
    fn out_of_range_intensity_rejected() {
        AttackPlan::new(AttackFamily::Drift, 1.5);
    }
}
