//! Byzantine timestamp manipulation and adversarial attack families.
//!
//! §5 of the paper: "In auction-apps, clients have an incentive to dictate
//! sequencing of messages e.g., by manipulating the timestamps attached to
//! the messages, as it may translate to monetary benefits e.g., winning
//! trades in a financial exchange." This module applies such attacks to an
//! honest workload so experiments can quantify how much an attacker gains
//! under each sequencer, and so the defense path in `tommy-core` (trust
//! tracking, quarantine, online re-estimation) has something to defend
//! against.
//!
//! Four parameterized attack families are provided (see the repository's
//! `ARCHITECTURE.md`, "Threat model & degradation"):
//!
//! * misreport ([`Misreport`], [`misreported_offsets`]) — lying about the
//!   *distribution* a client registers (inflated/deflated σ, stale
//!   [`SharedDistribution`](tommy_clock::SharedDistribution) snapshots)
//!   while its timestamps stay honest;
//! * drift ([`ClockDrift`], [`apply_drift`]) — mid-stream clock drift or
//!   step events: the registered distribution was honest when shared but
//!   the clock has since moved;
//! * timestamp forgery and tie-forcing collusion ([`apply_attack`],
//!   [`apply_collusion`]) — forging the timestamps themselves;
//! * correlated collusion ([`apply_correlated_collusion`]) — colluders
//!   replace part of their honest clock noise with a pre-shared
//!   pseudorandom *pad* keyed by message ordinal, co-moving their
//!   timestamp errors without changing their marginal spread. Invisible to
//!   per-client KS/z checks; caught by the cross-client correlation
//!   detector in `tommy-core`'s defense layer.
//!
//! [`AttackPlan`] wraps all four behind one `(family, intensity, onset)`
//! parameterization so scenario sweeps can dial an attack up and down.

mod drift;
mod misreport;
mod plan;

pub use drift::{apply_drift, ClockDrift, DriftKind};
pub use misreport::{misreported_offsets, Misreport};
pub use plan::{AttackFamily, AttackPlan};

use tommy_core::message::{ClientId, Message};

/// A timestamp-manipulation strategy for a single Byzantine client.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimestampAttack {
    /// Subtract a constant from every timestamp ("I was earlier than I was").
    BackdateBy(f64),
    /// Report a fraction of the honest timestamp's distance to a reference
    /// time (aggressively racing to the front without being absurd).
    RaceToFront {
        /// The reference time the attacker pretends to have acted at.
        reference: f64,
        /// Fraction of the honest delay the attacker keeps (0 = claim the
        /// reference time exactly, 1 = honest).
        keep_fraction: f64,
    },
}

/// Apply an attack to every message of `attacker`, leaving other clients'
/// messages untouched. Ground-truth times are preserved (the attack changes
/// what the attacker *claims*, not what actually happened).
pub fn apply_attack(
    messages: &[Message],
    attacker: ClientId,
    attack: TimestampAttack,
) -> Vec<Message> {
    messages
        .iter()
        .map(|m| {
            if m.client != attacker {
                return m.clone();
            }
            let mut forged = m.clone();
            forged.timestamp = match attack {
                TimestampAttack::BackdateBy(delta) => m.timestamp - delta,
                TimestampAttack::RaceToFront {
                    reference,
                    keep_fraction,
                } => reference + (m.timestamp - reference) * keep_fraction.clamp(0.0, 1.0),
            };
            forged
        })
        .collect()
}

/// Apply a *collusion* attack: every message a colluding client generates
/// within `window` of a message from another colluder is snapped to a
/// near-tie with it (the earliest colluder timestamp in the cluster, plus a
/// tiny per-client spread to keep per-client monotonicity well-defined).
///
/// Forcing ties is rational for Byzantine clients whose offset
/// distributions are *intransitive* (see
/// [`intransitive::condorcet_offsets`](crate::intransitive::condorcet_offsets)):
/// tied timestamps push the sequencer into the cyclic regime where ordering
/// is decided by cycle-breaking heuristics rather than by timestamp
/// evidence — each colluder gets a shot at rank none of them could claim
/// honestly. Ground-truth times are untouched, like
/// [`apply_attack`].
pub fn apply_collusion(messages: &[Message], colluders: &[ClientId], window: f64) -> Vec<Message> {
    assert!(window >= 0.0 && window.is_finite(), "window must be non-negative");
    let spread = window * 1e-3;
    let mut out: Vec<Message> = messages.to_vec();
    // Cluster colluder messages by timestamp proximity, walking in
    // timestamp order.
    let mut colluding: Vec<usize> = (0..out.len())
        .filter(|&i| colluders.contains(&out[i].client))
        .collect();
    colluding.sort_by(|&a, &b| {
        out[a]
            .timestamp
            .partial_cmp(&out[b].timestamp)
            .expect("finite timestamps")
    });
    let mut cluster_start = f64::NEG_INFINITY;
    let mut cluster_rank = 0usize;
    for &i in &colluding {
        let ts = out[i].timestamp;
        if ts - cluster_start > window {
            cluster_start = ts;
            cluster_rank = 0;
        }
        // Messages tie to the cluster head plus a tiny cluster-local spread:
        // deterministic, and later messages (walked in timestamp order) get
        // larger offsets, so each client's stream stays monotone. Capped at
        // the window so a pathologically large cluster cannot overrun the
        // next cluster's head.
        out[i].timestamp = cluster_start + (cluster_rank as f64 * spread).min(window);
        cluster_rank += 1;
    }
    out
}

/// splitmix64's finalizer: a cheap, well-mixed 64-bit hash used to derive
/// the colluders' shared pad deterministically from a message ordinal.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The colluders' pre-shared pad: a deterministic pseudorandom sequence
/// with zero mean and unit variance (uniform over ±√3), indexed by message
/// ordinal. Sharing a pad seed ahead of time — rather than coordinating on
/// wall-clock — needs no real-time communication between colluders and
/// survives arbitrary interleaving differences between their streams.
fn shared_pad(k: u64) -> f64 {
    let h = splitmix64(k);
    // 53 high bits → uniform in [0, 1), then to ±√3 (zero mean, unit variance).
    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
    (2.0 * u - 1.0) * 3.0_f64.sqrt()
}

/// Apply a *correlated collusion* attack: the colluders pre-share a
/// pseudorandom pad (`shared_pad`), and from `onset` on each mixes the
/// pad value at its own message ordinal `k` into its forged timestamp:
///
/// ```text
/// forged = truth + (1 − λ)·(honest_ts − truth) + λ·a·pad(k),
///          a = scale·√((2 − λ)(1 + λ)/λ)
/// ```
///
/// The amplitude `a` sits a factor `√(1 + λ)` above the variance-preserving
/// point: the forged error spread is `σ·√(1 + 2λ² − λ³)` — at most `√2·σ`
/// even at full `λ`, well inside the blind zone of per-client KS and
/// z-score checks (a KS distance under 0.15 against the claimed Gaussian,
/// versus the 0.3 detection floor) — while buying the colluders maximal
/// co-movement. Their errors correlate in exactly the per-ordinal pairing a
/// cross-client correlation detector uses (`k`-th residual against `k`-th
/// residual): the pairwise residual correlation is
/// `λ(2 − λ)(1 + λ) / (1 + 2λ² − λ³)` — ≈ 0.89 at `λ = 0.6`, ≈ 0.82 at
/// `λ = 0.5`, and a sub-threshold ≈ 0.49 at `λ = 0.25`. Keying the pad by
/// ordinal rather than wall-clock is the colluders' strongest realistic
/// strategy; weaker (time-keyed) coordination only lowers the correlation
/// the detector measures. This is precisely the attack the defense layer's
/// cross-client correlation detector exists to catch. Ground-truth times
/// are preserved, like [`apply_attack`].
pub fn apply_correlated_collusion(
    messages: &[Message],
    colluders: &[ClientId],
    lambda: f64,
    scale: f64,
    onset: f64,
) -> Vec<Message> {
    assert!(
        (0.0..=1.0).contains(&lambda),
        "lambda must be in [0, 1], got {lambda}"
    );
    assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
    if lambda == 0.0 {
        return messages.to_vec();
    }
    let amplitude = scale * ((2.0 - lambda) * (1.0 + lambda) / lambda).sqrt();
    // Each colluder's message ordinal: its rank within its own stream in
    // true-time order (the order the colluder generated them in), counting
    // pre-onset messages too so the pad index never depends on the onset.
    let mut ordinal: Vec<u64> = vec![0; messages.len()];
    for colluder in colluders {
        let mut own: Vec<usize> = (0..messages.len())
            .filter(|&i| messages[i].client == *colluder)
            .collect();
        own.sort_by(|&a, &b| {
            drift::truth_of(&messages[a])
                .partial_cmp(&drift::truth_of(&messages[b]))
                .expect("finite true times")
        });
        for (k, &i) in own.iter().enumerate() {
            ordinal[i] = k as u64;
        }
    }
    messages
        .iter()
        .enumerate()
        .map(|(i, m)| {
            if !colluders.contains(&m.client) {
                return m.clone();
            }
            let t = drift::truth_of(m);
            if t < onset {
                return m.clone();
            }
            let mut forged = m.clone();
            forged.timestamp = t
                + (1.0 - lambda) * (m.timestamp - t)
                + lambda * amplitude * shared_pad(ordinal[i]);
            forged
        })
        .collect()
}

/// The attacker's mean rank improvement: how many positions earlier (in a
/// rank ordering) the attacker's messages land under the forged timestamps
/// compared to the honest ones, according to a plain sort by timestamp.
/// Positive values mean the attack helps.
pub fn naive_rank_gain(honest: &[Message], forged: &[Message], attacker: ClientId) -> f64 {
    fn mean_rank(messages: &[Message], attacker: ClientId) -> f64 {
        let mut sorted: Vec<&Message> = messages.iter().collect();
        sorted.sort_by(|a, b| a.timestamp.partial_cmp(&b.timestamp).expect("finite"));
        let ranks: Vec<usize> = sorted
            .iter()
            .enumerate()
            .filter(|(_, m)| m.client == attacker)
            .map(|(i, _)| i)
            .collect();
        if ranks.is_empty() {
            return 0.0;
        }
        ranks.iter().sum::<usize>() as f64 / ranks.len() as f64
    }
    mean_rank(honest, attacker) - mean_rank(forged, attacker)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tommy_core::message::MessageId;

    fn msgs() -> Vec<Message> {
        (0..10)
            .map(|i| {
                Message::with_true_time(
                    MessageId(i),
                    ClientId((i % 5) as u32),
                    10.0 + i as f64,
                    10.0 + i as f64,
                )
            })
            .collect()
    }

    #[test]
    fn backdating_only_affects_the_attacker() {
        let honest = msgs();
        let forged = apply_attack(&honest, ClientId(2), TimestampAttack::BackdateBy(100.0));
        for (h, f) in honest.iter().zip(forged.iter()) {
            if h.client == ClientId(2) {
                assert!((f.timestamp - (h.timestamp - 100.0)).abs() < 1e-12);
            } else {
                assert_eq!(h.timestamp, f.timestamp);
            }
            assert_eq!(h.true_time, f.true_time);
        }
    }

    #[test]
    fn backdating_improves_naive_rank() {
        let honest = msgs();
        let forged = apply_attack(&honest, ClientId(4), TimestampAttack::BackdateBy(50.0));
        let gain = naive_rank_gain(&honest, &forged, ClientId(4));
        assert!(gain > 0.0, "gain = {gain}");
    }

    #[test]
    fn race_to_front_compresses_towards_reference() {
        let honest = msgs();
        let forged = apply_attack(
            &honest,
            ClientId(0),
            TimestampAttack::RaceToFront {
                reference: 10.0,
                keep_fraction: 0.1,
            },
        );
        for (h, f) in honest.iter().zip(forged.iter()) {
            if h.client == ClientId(0) {
                assert!(f.timestamp <= h.timestamp);
                assert!(f.timestamp >= 10.0);
            }
        }
    }

    #[test]
    fn keep_fraction_one_is_a_noop() {
        let honest = msgs();
        let forged = apply_attack(
            &honest,
            ClientId(1),
            TimestampAttack::RaceToFront {
                reference: 0.0,
                keep_fraction: 1.0,
            },
        );
        for (h, f) in honest.iter().zip(forged.iter()) {
            assert_eq!(h.timestamp, f.timestamp);
        }
        assert_eq!(naive_rank_gain(&honest, &forged, ClientId(1)), 0.0);
    }

    #[test]
    fn collusion_ties_nearby_colluder_messages() {
        // Clients 0, 1, 2 collude; their messages at 10, 11, 12 fall in one
        // 3-unit window and snap to near-ties at the cluster head (10.0),
        // while the next cluster (15, 16, 17) stays separate.
        let honest = msgs();
        let colluders = [ClientId(0), ClientId(1), ClientId(2)];
        let forged = apply_collusion(&honest, &colluders, 3.0);
        let tied: Vec<f64> = forged
            .iter()
            .filter(|m| colluders.contains(&m.client) && m.timestamp < 14.0)
            .map(|m| m.timestamp)
            .collect();
        assert_eq!(tied.len(), 3);
        for ts in &tied {
            assert!((ts - 10.0).abs() <= 3.0 * 1e-3 * 3.0, "ts = {ts}");
        }
        // Non-colluders and every ground-truth time are untouched.
        for (h, f) in honest.iter().zip(forged.iter()) {
            assert_eq!(h.true_time, f.true_time);
            if !colluders.contains(&h.client) {
                assert_eq!(h.timestamp, f.timestamp);
            }
        }
    }

    /// Regression: a colluder with *two* messages inside one window cluster
    /// must keep its own timestamps monotone (the spread is cluster-local
    /// and increases along the walk, not keyed on a global rank).
    #[test]
    fn collusion_keeps_each_client_monotone_within_a_cluster() {
        let honest = vec![
            Message::with_true_time(MessageId(0), ClientId(0), 10.0, 10.0),
            Message::with_true_time(MessageId(1), ClientId(1), 10.1, 10.1),
            Message::with_true_time(MessageId(2), ClientId(2), 10.2, 10.2),
            Message::with_true_time(MessageId(3), ClientId(2), 10.3, 10.3),
        ];
        let colluders = [ClientId(0), ClientId(1), ClientId(2)];
        let forged = apply_collusion(&honest, &colluders, 3.0);
        for c in colluders {
            let ts: Vec<f64> = forged
                .iter()
                .filter(|m| m.client == c)
                .map(|m| m.timestamp)
                .collect();
            for w in ts.windows(2) {
                assert!(w[1] >= w[0], "client {c:?} went backwards: {ts:?}");
            }
        }
    }

    #[test]
    fn collusion_with_distant_messages_leaves_them_apart() {
        let honest = msgs();
        // Window smaller than the 5-unit gap between a colluder's own
        // messages: each message is its own cluster, timestamps unchanged.
        let forged = apply_collusion(&honest, &[ClientId(0), ClientId(1)], 0.1);
        for (h, f) in honest.iter().zip(forged.iter()) {
            assert!((h.timestamp - f.timestamp).abs() < 0.1 * 1e-3 * 2.0 + 1e-12);
        }
    }

    /// Two colluders with orthogonal honest error patterns, one honest
    /// bystander, across `rounds` rounds of shared true times.
    fn correlated_setup(rounds: u64) -> Vec<Message> {
        let mut v = Vec::new();
        let mut id = 0;
        for r in 0..rounds {
            let t = r as f64 * 16.0;
            // Colluder 0: +1, −1, +1, …; colluder 1: +1, +1, −1, −1, … —
            // orthogonal over a multiple of 4 rounds, so their honest
            // errors are uncorrelated by construction.
            let e0 = if r % 2 == 0 { 1.0 } else { -1.0 };
            let e1 = if r % 4 < 2 { 1.0 } else { -1.0 };
            v.push(Message::with_true_time(MessageId(id), ClientId(0), t + e0, t));
            v.push(Message::with_true_time(MessageId(id + 1), ClientId(1), t + e1, t));
            v.push(Message::with_true_time(MessageId(id + 2), ClientId(2), t + 0.5, t));
            id += 3;
        }
        v
    }

    fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
        let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
        cov / (vx * vy).sqrt()
    }

    fn errors_of(messages: &[Message], client: ClientId) -> Vec<f64> {
        messages
            .iter()
            .filter(|m| m.client == client)
            .map(|m| m.timestamp - m.true_time.unwrap())
            .collect()
    }

    #[test]
    fn correlated_collusion_coordinates_without_changing_marginals() {
        let honest = correlated_setup(40);
        let colluders = [ClientId(0), ClientId(1)];
        // Full λ: colluders at the same ordinal tie exactly (pure shared
        // pad), and the pad's amplitude stays within the uniform bound
        // ±√3·√2·scale (`a = scale·√2` at λ = 1) — the same order of
        // magnitude as honest clock noise.
        let forged = apply_correlated_collusion(&honest, &colluders, 1.0, 1.0, 0.0);
        let (e0, e1) = (errors_of(&forged, ClientId(0)), errors_of(&forged, ClientId(1)));
        assert_eq!(e0, e1, "full-λ colluders must co-move exactly");
        for e in &e0 {
            assert!(e.abs() <= 6.0_f64.sqrt() + 1e-9, "amplitude {e}");
        }
        // The honest bystander and every true time are untouched.
        for (h, f) in honest.iter().zip(forged.iter()) {
            assert_eq!(h.true_time, f.true_time);
            if h.client == ClientId(2) {
                assert_eq!(h.timestamp, f.timestamp);
            }
        }
        // λ = 0 is the identity; pre-onset messages are untouched too.
        assert_eq!(
            apply_correlated_collusion(&honest, &colluders, 0.0, 1.0, 0.0),
            honest
        );
        let late = apply_correlated_collusion(&honest, &colluders, 1.0, 1.0, 1e9);
        assert_eq!(late, honest);
    }

    #[test]
    fn correlated_collusion_raises_pair_correlation() {
        let honest = correlated_setup(40);
        let colluders = [ClientId(0), ClientId(1)];
        let r_honest = pearson(
            &errors_of(&honest, ClientId(0)),
            &errors_of(&honest, ClientId(1)),
        );
        assert!(r_honest.abs() < 1e-9, "orthogonal by construction: {r_honest}");
        let forged = apply_correlated_collusion(&honest, &colluders, 0.6, 1.0, 0.0);
        let r_forged = pearson(
            &errors_of(&forged, ClientId(0)),
            &errors_of(&forged, ClientId(1)),
        );
        assert!(r_forged > 0.3, "co-movement too weak: r = {r_forged}");
    }

    #[test]
    fn absent_attacker_changes_nothing() {
        let honest = msgs();
        let forged = apply_attack(&honest, ClientId(99), TimestampAttack::BackdateBy(5.0));
        assert_eq!(honest, forged);
        assert_eq!(naive_rank_gain(&honest, &forged, ClientId(99)), 0.0);
    }
}
