//! Poisson arrival workloads.
//!
//! Steady-state traffic: every client generates messages as an independent
//! Poisson process. Useful for the online-sequencer experiments, where the
//! interesting regime is a sustained stream rather than a single burst.

use crate::events::GenerationEvent;
use rand::Rng;
use rand::RngCore;
use tommy_core::message::ClientId;

/// A Poisson workload over a fixed horizon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonWorkload {
    /// Number of independent clients.
    pub clients: usize,
    /// Per-client arrival rate (messages per time unit).
    pub rate_per_client: f64,
    /// Generation horizon: events are generated in `[start, start + horizon)`.
    pub horizon: f64,
    /// Start of the horizon.
    pub start: f64,
}

impl PoissonWorkload {
    /// Create a Poisson workload starting at time 0.
    pub fn new(clients: usize, rate_per_client: f64, horizon: f64) -> Self {
        assert!(clients > 0, "need at least one client");
        assert!(rate_per_client > 0.0, "rate must be positive");
        assert!(horizon > 0.0, "horizon must be positive");
        PoissonWorkload {
            clients,
            rate_per_client,
            horizon,
            start: 0.0,
        }
    }

    /// Set the start of the generation horizon.
    pub fn with_start(mut self, start: f64) -> Self {
        assert!(start.is_finite());
        self.start = start;
        self
    }

    /// Expected total number of events.
    pub fn expected_messages(&self) -> f64 {
        self.clients as f64 * self.rate_per_client * self.horizon
    }

    /// Generate the ground-truth events (per-client exponential gaps).
    pub fn generate(&self, rng: &mut dyn RngCore) -> Vec<GenerationEvent> {
        let mut events = Vec::with_capacity(self.expected_messages() as usize + self.clients);
        for client in 0..self.clients {
            let mut t = self.start;
            loop {
                let u: f64 = 1.0 - rng.random::<f64>();
                t += -u.ln() / self.rate_per_client;
                if t >= self.start + self.horizon {
                    break;
                }
                events.push(GenerationEvent::new(ClientId(client as u32), t));
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn event_count_matches_expectation() {
        let wl = PoissonWorkload::new(20, 0.5, 1000.0);
        let mut rng = StdRng::seed_from_u64(1);
        let events = wl.generate(&mut rng);
        let expected = wl.expected_messages();
        let actual = events.len() as f64;
        assert!(
            (actual - expected).abs() / expected < 0.05,
            "expected ~{expected}, got {actual}"
        );
    }

    #[test]
    fn events_stay_within_horizon() {
        let wl = PoissonWorkload::new(5, 1.0, 100.0).with_start(500.0);
        let mut rng = StdRng::seed_from_u64(2);
        let events = wl.generate(&mut rng);
        assert!(events.iter().all(|e| e.true_time >= 500.0 && e.true_time < 600.0));
    }

    #[test]
    fn per_client_times_are_strictly_increasing() {
        let wl = PoissonWorkload::new(3, 2.0, 200.0);
        let mut rng = StdRng::seed_from_u64(3);
        let events = wl.generate(&mut rng);
        for c in 0..3u32 {
            let times: Vec<f64> = events
                .iter()
                .filter(|e| e.client == ClientId(c))
                .map(|e| e.true_time)
                .collect();
            for w in times.windows(2) {
                assert!(w[1] > w[0]);
            }
        }
    }

    #[test]
    fn exponential_gaps_have_the_right_mean() {
        let wl = PoissonWorkload::new(1, 0.25, 100_000.0);
        let mut rng = StdRng::seed_from_u64(4);
        let events = wl.generate(&mut rng);
        let gaps: Vec<f64> = events.windows(2).map(|w| w[1].true_time - w[0].true_time).collect();
        let mean_gap: f64 = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!((mean_gap - 4.0).abs() < 0.2, "mean gap = {mean_gap}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        PoissonWorkload::new(1, 0.0, 10.0);
    }
}
