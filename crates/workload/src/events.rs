//! Ground-truth generation events.

use tommy_core::message::ClientId;

/// One event as seen by the omniscient observer: which client generated a
/// message, and at what true (sequencer-frame) time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerationEvent {
    /// The generating client.
    pub client: ClientId,
    /// Ground-truth generation time.
    pub true_time: f64,
}

impl GenerationEvent {
    /// Create a generation event.
    pub fn new(client: ClientId, true_time: f64) -> Self {
        assert!(true_time.is_finite(), "generation time must be finite");
        GenerationEvent { client, true_time }
    }
}

/// Sort events by ground-truth time (the omniscient observer's fair order),
/// breaking exact ties by client id for determinism.
pub fn sort_by_true_time(events: &mut [GenerationEvent]) {
    events.sort_by(|a, b| {
        a.true_time
            .partial_cmp(&b.true_time)
            .expect("finite times")
            .then_with(|| a.client.cmp(&b.client))
    });
}

/// The smallest gap between consecutive events (by true time); `None` when
/// fewer than two events are present. This is the "inter-messages gap" axis
/// of Figure 5.
pub fn min_inter_event_gap(events: &[GenerationEvent]) -> Option<f64> {
    if events.len() < 2 {
        return None;
    }
    let mut sorted = events.to_vec();
    sort_by_true_time(&mut sorted);
    sorted
        .windows(2)
        .map(|w| w[1].true_time - w[0].true_time)
        .fold(None, |acc, gap| match acc {
            None => Some(gap),
            Some(min) => Some(min.min(gap)),
        })
}

/// The mean gap between consecutive events (by true time); `None` when fewer
/// than two events are present.
pub fn mean_inter_event_gap(events: &[GenerationEvent]) -> Option<f64> {
    if events.len() < 2 {
        return None;
    }
    let mut sorted = events.to_vec();
    sort_by_true_time(&mut sorted);
    let total: f64 = sorted.windows(2).map(|w| w[1].true_time - w[0].true_time).sum();
    Some(total / (sorted.len() - 1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(client: u32, t: f64) -> GenerationEvent {
        GenerationEvent::new(ClientId(client), t)
    }

    #[test]
    fn sorting_orders_by_time_then_client() {
        let mut events = vec![ev(2, 5.0), ev(1, 3.0), ev(3, 5.0)];
        sort_by_true_time(&mut events);
        assert_eq!(events[0].client, ClientId(1));
        assert_eq!(events[1].client, ClientId(2));
        assert_eq!(events[2].client, ClientId(3));
    }

    #[test]
    fn gap_computations() {
        let events = vec![ev(0, 0.0), ev(1, 1.0), ev(2, 4.0)];
        assert_eq!(min_inter_event_gap(&events), Some(1.0));
        assert_eq!(mean_inter_event_gap(&events), Some(2.0));
    }

    #[test]
    fn gaps_of_tiny_inputs_are_none() {
        assert_eq!(min_inter_event_gap(&[]), None);
        assert_eq!(min_inter_event_gap(&[ev(0, 1.0)]), None);
        assert_eq!(mean_inter_event_gap(&[ev(0, 1.0)]), None);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_time_rejected() {
        GenerationEvent::new(ClientId(0), f64::INFINITY);
    }
}
