//! Byzantine timestamp manipulation.
//!
//! §5 of the paper: "In auction-apps, clients have an incentive to dictate
//! sequencing of messages e.g., by manipulating the timestamps attached to
//! the messages, as it may translate to monetary benefits e.g., winning
//! trades in a financial exchange." This module applies such attacks to an
//! honest workload so experiments can quantify how much an attacker gains
//! under each sequencer (the paper leaves defences to future work; measuring
//! the exposure is the first step).

use tommy_core::message::{ClientId, Message};

/// A timestamp-manipulation strategy for a single Byzantine client.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimestampAttack {
    /// Subtract a constant from every timestamp ("I was earlier than I was").
    BackdateBy(f64),
    /// Report a fraction of the honest timestamp's distance to a reference
    /// time (aggressively racing to the front without being absurd).
    RaceToFront {
        /// The reference time the attacker pretends to have acted at.
        reference: f64,
        /// Fraction of the honest delay the attacker keeps (0 = claim the
        /// reference time exactly, 1 = honest).
        keep_fraction: f64,
    },
}

/// Apply an attack to every message of `attacker`, leaving other clients'
/// messages untouched. Ground-truth times are preserved (the attack changes
/// what the attacker *claims*, not what actually happened).
pub fn apply_attack(
    messages: &[Message],
    attacker: ClientId,
    attack: TimestampAttack,
) -> Vec<Message> {
    messages
        .iter()
        .map(|m| {
            if m.client != attacker {
                return m.clone();
            }
            let mut forged = m.clone();
            forged.timestamp = match attack {
                TimestampAttack::BackdateBy(delta) => m.timestamp - delta,
                TimestampAttack::RaceToFront {
                    reference,
                    keep_fraction,
                } => reference + (m.timestamp - reference) * keep_fraction.clamp(0.0, 1.0),
            };
            forged
        })
        .collect()
}

/// The attacker's mean rank improvement: how many positions earlier (in a
/// rank ordering) the attacker's messages land under the forged timestamps
/// compared to the honest ones, according to a plain sort by timestamp.
/// Positive values mean the attack helps.
pub fn naive_rank_gain(honest: &[Message], forged: &[Message], attacker: ClientId) -> f64 {
    fn mean_rank(messages: &[Message], attacker: ClientId) -> f64 {
        let mut sorted: Vec<&Message> = messages.iter().collect();
        sorted.sort_by(|a, b| a.timestamp.partial_cmp(&b.timestamp).expect("finite"));
        let ranks: Vec<usize> = sorted
            .iter()
            .enumerate()
            .filter(|(_, m)| m.client == attacker)
            .map(|(i, _)| i)
            .collect();
        if ranks.is_empty() {
            return 0.0;
        }
        ranks.iter().sum::<usize>() as f64 / ranks.len() as f64
    }
    mean_rank(honest, attacker) - mean_rank(forged, attacker)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tommy_core::message::MessageId;

    fn msgs() -> Vec<Message> {
        (0..10)
            .map(|i| {
                Message::with_true_time(
                    MessageId(i),
                    ClientId((i % 5) as u32),
                    10.0 + i as f64,
                    10.0 + i as f64,
                )
            })
            .collect()
    }

    #[test]
    fn backdating_only_affects_the_attacker() {
        let honest = msgs();
        let forged = apply_attack(&honest, ClientId(2), TimestampAttack::BackdateBy(100.0));
        for (h, f) in honest.iter().zip(forged.iter()) {
            if h.client == ClientId(2) {
                assert!((f.timestamp - (h.timestamp - 100.0)).abs() < 1e-12);
            } else {
                assert_eq!(h.timestamp, f.timestamp);
            }
            assert_eq!(h.true_time, f.true_time);
        }
    }

    #[test]
    fn backdating_improves_naive_rank() {
        let honest = msgs();
        let forged = apply_attack(&honest, ClientId(4), TimestampAttack::BackdateBy(50.0));
        let gain = naive_rank_gain(&honest, &forged, ClientId(4));
        assert!(gain > 0.0, "gain = {gain}");
    }

    #[test]
    fn race_to_front_compresses_towards_reference() {
        let honest = msgs();
        let forged = apply_attack(
            &honest,
            ClientId(0),
            TimestampAttack::RaceToFront {
                reference: 10.0,
                keep_fraction: 0.1,
            },
        );
        for (h, f) in honest.iter().zip(forged.iter()) {
            if h.client == ClientId(0) {
                assert!(f.timestamp <= h.timestamp);
                assert!(f.timestamp >= 10.0);
            }
        }
    }

    #[test]
    fn keep_fraction_one_is_a_noop() {
        let honest = msgs();
        let forged = apply_attack(
            &honest,
            ClientId(1),
            TimestampAttack::RaceToFront {
                reference: 0.0,
                keep_fraction: 1.0,
            },
        );
        for (h, f) in honest.iter().zip(forged.iter()) {
            assert_eq!(h.timestamp, f.timestamp);
        }
        assert_eq!(naive_rank_gain(&honest, &forged, ClientId(1)), 0.0);
    }

    #[test]
    fn absent_attacker_changes_nothing() {
        let honest = msgs();
        let forged = apply_attack(&honest, ClientId(99), TimestampAttack::BackdateBy(5.0));
        assert_eq!(honest, forged);
        assert_eq!(naive_rank_gain(&honest, &forged, ClientId(99)), 0.0);
    }
}
