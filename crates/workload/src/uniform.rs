//! Evenly spaced generation events with a configurable inter-message gap.
//!
//! Figure 5 of the paper sweeps both the clock error and the "inter-messages
//! gap across clients"; this generator controls the latter exactly: message
//! `k` is generated at `start + k * gap`, with clients assigned round-robin.

use crate::events::GenerationEvent;
use rand::Rng;
use rand::RngCore;
use tommy_core::message::ClientId;

/// A workload with an exact, constant gap between consecutive generations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformWorkload {
    /// Number of participating clients (assigned round-robin).
    pub clients: usize,
    /// Total number of messages to generate.
    pub messages: usize,
    /// Gap between consecutive generation times.
    pub gap: f64,
    /// Generation time of the first message.
    pub start: f64,
    /// When `true`, the round-robin client assignment is shuffled so that
    /// consecutive messages come from random clients instead of a fixed
    /// rotation.
    pub shuffle_clients: bool,
}

impl UniformWorkload {
    /// A uniform workload starting at time 0 with rotating client assignment.
    pub fn new(clients: usize, messages: usize, gap: f64) -> Self {
        assert!(clients > 0, "need at least one client");
        assert!(gap >= 0.0 && gap.is_finite(), "gap must be non-negative");
        UniformWorkload {
            clients,
            messages,
            gap,
            start: 0.0,
            shuffle_clients: false,
        }
    }

    /// Randomize which client generates each message.
    pub fn with_shuffled_clients(mut self) -> Self {
        self.shuffle_clients = true;
        self
    }

    /// Set the generation time of the first message.
    pub fn with_start(mut self, start: f64) -> Self {
        assert!(start.is_finite());
        self.start = start;
        self
    }

    /// Generate the ground-truth events.
    pub fn generate(&self, rng: &mut dyn RngCore) -> Vec<GenerationEvent> {
        (0..self.messages)
            .map(|k| {
                let client = if self.shuffle_clients {
                    ClientId(rng.random_range(0..self.clients as u32))
                } else {
                    ClientId((k % self.clients) as u32)
                };
                GenerationEvent::new(client, self.start + k as f64 * self.gap)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{mean_inter_event_gap, min_inter_event_gap};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gap_is_exact() {
        let wl = UniformWorkload::new(10, 100, 2.5);
        let mut rng = StdRng::seed_from_u64(1);
        let events = wl.generate(&mut rng);
        assert_eq!(events.len(), 100);
        assert_eq!(min_inter_event_gap(&events), Some(2.5));
        assert_eq!(mean_inter_event_gap(&events), Some(2.5));
    }

    #[test]
    fn round_robin_client_assignment() {
        let wl = UniformWorkload::new(3, 7, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let events = wl.generate(&mut rng);
        let clients: Vec<u32> = events.iter().map(|e| e.client.0).collect();
        assert_eq!(clients, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn shuffled_assignment_uses_all_clients() {
        let wl = UniformWorkload::new(5, 500, 1.0).with_shuffled_clients();
        let mut rng = StdRng::seed_from_u64(2);
        let events = wl.generate(&mut rng);
        let used: std::collections::HashSet<u32> = events.iter().map(|e| e.client.0).collect();
        assert_eq!(used.len(), 5);
        for c in &used {
            assert!(*c < 5);
        }
    }

    #[test]
    fn start_offset_applies() {
        let wl = UniformWorkload::new(1, 3, 10.0).with_start(1000.0);
        let mut rng = StdRng::seed_from_u64(1);
        let events = wl.generate(&mut rng);
        assert_eq!(events[0].true_time, 1000.0);
        assert_eq!(events[2].true_time, 1020.0);
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn zero_clients_rejected() {
        UniformWorkload::new(0, 10, 1.0);
    }
}
