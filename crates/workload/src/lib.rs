//! # tommy-workload
//!
//! Workload generators for the Tommy experiments.
//!
//! §1 of the paper motivates fair sequencing with *auction-apps*: "millions
//! of events by hundreds of clients are generated within a very small window
//! of time upon some sensitive event". §4 evaluates fairness as a function of
//! the clock error and of the inter-message gap across clients. This crate
//! generates those workloads:
//!
//! * [`events`] — ground-truth generation events (who generated what, when,
//!   according to the omniscient observer);
//! * [`burst`] — the auction-app burst: all clients respond shortly after a
//!   trigger (market-volatility broadcast, ad-auction request, drop);
//! * [`uniform`] — evenly spaced generation with a configurable inter-message
//!   gap (the second axis of Figure 5);
//! * [`poisson`] — Poisson arrivals per client, for steady-state experiments;
//! * [`population`] — per-client clock-error populations (homogeneous,
//!   heterogeneous, multi-region);
//! * [`tagging`] — the §4 tagging step: turn generation events into
//!   [`Message`](tommy_core::message::Message)s by reading each client's
//!   simulated clock;
//! * [`adversarial`] — four parameterized Byzantine attack families (§5
//!   "Byzantine Clients"): misreported distributions, mid-stream clock
//!   drift/steps, coordinated timestamp collusion, and correlated
//!   (shared-signal) collusion, unified behind
//!   [`adversarial::AttackPlan`] for intensity sweeps;
//! * [`intransitive`] — cycle-forcing workloads: Condorcet (intransitive
//!   dice) offset mixes and heavy-tailed populations whose preceding
//!   probabilities are *not* transitive, exercising the feedback-arc-set
//!   machinery that Gaussian workloads (Appendix A) never reach;
//! * [`testkit`] — shared test scaffolding for the integration suites:
//!   census builders, paired differential engines, the [`testkit::StreamEngine`]
//!   driving surface over both the single-engine and sharded sequencers,
//!   lockstep drain/compare helpers and the common stream-close sequence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod burst;
pub mod events;
pub mod intransitive;
pub mod poisson;
pub mod population;
pub mod tagging;
pub mod testkit;
pub mod uniform;

pub use adversarial::{AttackFamily, AttackPlan};
pub use burst::BurstWorkload;
pub use events::GenerationEvent;
pub use intransitive::{condorcet_offsets, IntransitiveWorkload};
pub use poisson::PoissonWorkload;
pub use population::ClockPopulation;
pub use tagging::tag_messages;
pub use uniform::UniformWorkload;
