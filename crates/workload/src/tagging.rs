//! Turning generation events into timestamped messages.
//!
//! §4 of the paper: "At message generation, a client reads the wall-clock
//! time t, samples noise ε from the distribution, and tags the message with
//! T = t + ε." This module performs that tagging step against each client's
//! simulated clock and records the ground truth alongside, so that metrics
//! can later compare the sequencer output to the omniscient observer.

use crate::events::GenerationEvent;
use rand::RngCore;
use std::collections::HashMap;
use tommy_clock::offset::ClockModel;
use tommy_core::message::{ClientId, Message, MessageId};

/// Tag every generation event with a noisy local timestamp.
///
/// Message ids are assigned in the order of `events` starting at
/// `first_id`. Events from clients missing from `clocks` are skipped (a
/// deployment would reject messages from unregistered clients).
pub fn tag_messages(
    events: &[GenerationEvent],
    clocks: &HashMap<ClientId, ClockModel>,
    first_id: u64,
    rng: &mut dyn RngCore,
) -> Vec<Message> {
    let mut messages = Vec::with_capacity(events.len());
    let mut next_id = first_id;
    for event in events {
        let Some(clock) = clocks.get(&event.client) else {
            continue;
        };
        let offset = clock.sample_offset(event.true_time, rng);
        let timestamp = event.true_time + offset;
        messages.push(Message::with_true_time(
            MessageId(next_id),
            event.client,
            timestamp,
            event.true_time,
        ));
        next_id += 1;
    }
    messages
}

/// Tag messages while forcing each client's timestamps to be monotone
/// non-decreasing (a client with a monotonic local clock never emits a
/// timestamp smaller than its previous one). The online sequencer's
/// watermark logic requires this property.
pub fn tag_messages_monotone(
    events: &[GenerationEvent],
    clocks: &HashMap<ClientId, ClockModel>,
    first_id: u64,
    rng: &mut dyn RngCore,
) -> Vec<Message> {
    // Per-client last emitted timestamp.
    let mut last: HashMap<ClientId, f64> = HashMap::new();
    let mut events_sorted = events.to_vec();
    crate::events::sort_by_true_time(&mut events_sorted);

    let mut messages = Vec::with_capacity(events_sorted.len());
    let mut next_id = first_id;
    for event in &events_sorted {
        let Some(clock) = clocks.get(&event.client) else {
            continue;
        };
        let offset = clock.sample_offset(event.true_time, rng);
        let mut timestamp = event.true_time + offset;
        if let Some(prev) = last.get(&event.client) {
            if timestamp < *prev {
                timestamp = *prev;
            }
        }
        last.insert(event.client, timestamp);
        messages.push(Message::with_true_time(
            MessageId(next_id),
            event.client,
            timestamp,
            event.true_time,
        ));
        next_id += 1;
    }
    messages
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn clocks(sigma: f64, n: u32) -> HashMap<ClientId, ClockModel> {
        (0..n)
            .map(|c| (ClientId(c), ClockModel::gaussian(0.0, sigma)))
            .collect()
    }

    fn events(n: usize) -> Vec<GenerationEvent> {
        (0..n)
            .map(|i| GenerationEvent::new(ClientId((i % 3) as u32), i as f64 * 10.0))
            .collect()
    }

    #[test]
    fn tagging_preserves_ground_truth() {
        let clocks = clocks(5.0, 3);
        let events = events(30);
        let mut rng = StdRng::seed_from_u64(1);
        let msgs = tag_messages(&events, &clocks, 100, &mut rng);
        assert_eq!(msgs.len(), 30);
        assert_eq!(msgs[0].id, MessageId(100));
        for (m, e) in msgs.iter().zip(events.iter()) {
            assert_eq!(m.true_time, Some(e.true_time));
            assert_eq!(m.client, e.client);
        }
    }

    #[test]
    fn perfect_clocks_tag_exactly() {
        let clocks = clocks(0.0, 3);
        let events = events(9);
        let mut rng = StdRng::seed_from_u64(2);
        let msgs = tag_messages(&events, &clocks, 0, &mut rng);
        for m in msgs {
            assert_eq!(Some(m.timestamp), m.true_time);
        }
    }

    #[test]
    fn noise_has_the_configured_spread() {
        let clocks = clocks(20.0, 3);
        let events: Vec<GenerationEvent> = (0..5000)
            .map(|i| GenerationEvent::new(ClientId((i % 3) as u32), 0.0))
            .collect();
        let mut rng = StdRng::seed_from_u64(3);
        let msgs = tag_messages(&events, &clocks, 0, &mut rng);
        let offsets: Vec<f64> = msgs.iter().map(|m| m.realized_offset().unwrap()).collect();
        let mean: f64 = offsets.iter().sum::<f64>() / offsets.len() as f64;
        let var: f64 = offsets.iter().map(|o| (o - mean).powi(2)).sum::<f64>() / offsets.len() as f64;
        assert!(mean.abs() < 1.5, "mean = {mean}");
        assert!((var.sqrt() - 20.0).abs() < 1.5, "sd = {}", var.sqrt());
    }

    #[test]
    fn unknown_clients_are_skipped() {
        let clocks = clocks(1.0, 1); // only client 0 registered
        let events = events(9); // clients 0, 1, 2
        let mut rng = StdRng::seed_from_u64(4);
        let msgs = tag_messages(&events, &clocks, 0, &mut rng);
        assert_eq!(msgs.len(), 3);
        assert!(msgs.iter().all(|m| m.client == ClientId(0)));
    }

    #[test]
    fn monotone_tagging_never_goes_backwards_per_client() {
        let clocks = clocks(50.0, 3);
        let events: Vec<GenerationEvent> = (0..300)
            .map(|i| GenerationEvent::new(ClientId((i % 3) as u32), i as f64))
            .collect();
        let mut rng = StdRng::seed_from_u64(5);
        let msgs = tag_messages_monotone(&events, &clocks, 0, &mut rng);
        for c in 0..3u32 {
            let ts: Vec<f64> = msgs
                .iter()
                .filter(|m| m.client == ClientId(c))
                .map(|m| m.timestamp)
                .collect();
            for w in ts.windows(2) {
                assert!(w[1] >= w[0]);
            }
        }
    }
}
