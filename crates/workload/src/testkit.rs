//! Test-support helpers shared by the integration suites.
//!
//! The equivalence, defense and fault suites under `tests/` all need the
//! same scaffolding: build a census, register it into one or more engines,
//! drive identical event streams through them in lockstep, close the stream
//! (far-future heartbeats → tick → flush), and compare emitted batches
//! bitwise. This module is that scaffolding, factored out once so
//! `tests/sparse_dense_equivalence.rs`, `tests/collusion_defense.rs`,
//! `tests/fault_invariants.rs` and `tests/sharded_equivalence.rs` stop
//! copy-pasting it.
//!
//! The [`StreamEngine`] trait is the common surface the helpers drive:
//! implemented by both the single-engine [`OnlineSequencer`] and the
//! sharded [`ShardedSequencer`], so a differential harness can run one of
//! each through the same schedule with the same code.

use rand::rngs::StdRng;
use tommy_core::checker::ModelSpec;
use tommy_core::config::{FastPathMode, SequencerConfig};
use tommy_core::defense::{DefenseConfig, ExpectedDelay};
use tommy_core::error::CoreError;
use tommy_core::message::{ClientId, Message, MessageId};
use tommy_core::sequencer::online::{EmittedBatch, OnlineSequencer};
use tommy_core::sequencer::sharded::ShardedSequencer;
use tommy_stats::distribution::{Distribution, OffsetDistribution};

/// The common driving surface of the online engines: submit/heartbeat with
/// an arrival clock, advance time, close out, and drain emitted batches.
///
/// [`OnlineSequencer`] applies every event eagerly, so [`pump`](Self::pump)
/// is a no-op; [`ShardedSequencer`] queues events per shard, so `pump`
/// drives the queues through the cross-shard merge. Differential harnesses
/// call `pump` after every event and get the right behavior from both.
pub trait StreamEngine {
    /// Register (or re-register) a client's claimed offset distribution.
    fn register(&mut self, client: ClientId, dist: OffsetDistribution);
    /// Submit a message observed at `arrival` on the sequencer's clock.
    fn submit_at(&mut self, message: Message, arrival: f64) -> Result<(), CoreError>;
    /// Record a client heartbeat observed at `arrival`.
    fn heartbeat_at(
        &mut self,
        client: ClientId,
        timestamp: f64,
        arrival: f64,
    ) -> Result<(), CoreError>;
    /// Apply any queued work up to `now` (no-op for eager engines).
    fn pump(&mut self, now: f64);
    /// Advance the sequencer clock to `now`, releasing what became safe.
    fn tick_at(&mut self, now: f64);
    /// Force out everything still pending, watermarks notwithstanding.
    fn flush_all(&mut self);
    /// Drain the emitted-batch buffer.
    fn drain(&mut self) -> Vec<EmittedBatch>;
}

impl StreamEngine for OnlineSequencer {
    fn register(&mut self, client: ClientId, dist: OffsetDistribution) {
        self.register_client(client, dist);
    }
    fn submit_at(&mut self, message: Message, arrival: f64) -> Result<(), CoreError> {
        self.submit(message, arrival).map(|_| ())
    }
    fn heartbeat_at(
        &mut self,
        client: ClientId,
        timestamp: f64,
        arrival: f64,
    ) -> Result<(), CoreError> {
        self.heartbeat(client, timestamp, arrival).map(|_| ())
    }
    fn pump(&mut self, _now: f64) {}
    fn tick_at(&mut self, now: f64) {
        self.tick(now);
    }
    fn flush_all(&mut self) {
        self.flush();
    }
    fn drain(&mut self) -> Vec<EmittedBatch> {
        self.take_emitted()
    }
}

impl StreamEngine for ShardedSequencer {
    fn register(&mut self, client: ClientId, dist: OffsetDistribution) {
        self.register_client(client, dist);
    }
    fn submit_at(&mut self, message: Message, arrival: f64) -> Result<(), CoreError> {
        self.submit(message, arrival)
    }
    fn heartbeat_at(
        &mut self,
        client: ClientId,
        timestamp: f64,
        arrival: f64,
    ) -> Result<(), CoreError> {
        self.heartbeat(client, timestamp, arrival)
    }
    fn pump(&mut self, now: f64) {
        self.drive(now);
    }
    fn tick_at(&mut self, now: f64) {
        self.tick(now);
    }
    fn flush_all(&mut self) {
        self.flush();
    }
    fn drain(&mut self) -> Vec<EmittedBatch> {
        self.take_emitted()
    }
}

/// A census of `clients` zero-mean Gaussian clients with a common σ.
pub fn gaussian_census(clients: usize, sigma: f64) -> Vec<(ClientId, OffsetDistribution)> {
    (0..clients as u32)
        .map(|c| (ClientId(c), OffsetDistribution::gaussian(0.0, sigma)))
        .collect()
}

/// Register every `(client, distribution)` pair into an engine.
pub fn register_all<E: StreamEngine>(engine: &mut E, offsets: &[(ClientId, OffsetDistribution)]) {
    for (client, dist) in offsets {
        engine.register(*client, dist.clone());
    }
}

/// An `Auto` sequencer and its `ForceDense` twin over the same census — the
/// sparse ≡ dense differential pair.
pub fn paired_engines(
    offsets: &[(ClientId, OffsetDistribution)],
) -> (OnlineSequencer, OnlineSequencer) {
    let mut auto = OnlineSequencer::new(SequencerConfig::default());
    let mut dense =
        OnlineSequencer::new(SequencerConfig::default().with_fast_path(FastPathMode::ForceDense));
    register_all(&mut auto, offsets);
    register_all(&mut dense, offsets);
    (auto, dense)
}

/// The defended configuration the sim runners and the defense suite share:
/// small windows so the defense reaches verdicts within short streams,
/// online delay estimation so heterogeneous links don't shift residuals.
pub fn defended_config() -> SequencerConfig {
    SequencerConfig::new().with_p_safe(0.99).with_defense(
        DefenseConfig::enabled()
            .with_window(24)
            .with_min_samples(12)
            .with_check_interval(4)
            .with_expected_delay(ExpectedDelay::Online),
    )
}

/// One honest message: client's clock error drawn from its own claimed
/// distribution, arriving after its (sequencer-unknown) link delay. Returns
/// the message and its arrival time.
pub fn honest_message(
    id: u64,
    client: ClientId,
    truth: f64,
    dist: &OffsetDistribution,
    delay: f64,
    rng: &mut StdRng,
) -> (Message, f64) {
    let ts = truth + dist.sample(rng);
    (
        Message::with_true_time(MessageId(id), client, ts, truth),
        truth + delay,
    )
}

/// Drive a round-robin honest stream through a defended sequencer and
/// return it for counter inspection. `delays[c]` is client `c`'s constant
/// link delay; per-client generation spacing is `4 · clients`, wide enough
/// to keep honest timestamps monotone for the σ the suites use.
pub fn run_honest(
    seed: u64,
    dists: &[(ClientId, OffsetDistribution)],
    delays: &[f64],
    rounds: u64,
    config: SequencerConfig,
) -> OnlineSequencer {
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seq = OnlineSequencer::new(config);
    register_all(&mut seq, dists);
    let clients = dists.len() as u64;
    let mut id = 0;
    for round in 0..rounds {
        for (c, (client, dist)) in dists.iter().enumerate() {
            let truth = (round * clients + c as u64) as f64 * 4.0;
            let (msg, arrival) = honest_message(id, *client, truth, dist, delays[c], &mut rng);
            seq.submit(msg, arrival).expect("registered, unique id");
            id += 1;
        }
    }
    seq
}

/// The small-model census the checker suites share: three clients with
/// moderate clocks (σ = 2).
pub fn model_offsets() -> Vec<(ClientId, OffsetDistribution)> {
    gaussian_census(3, 2.0)
}

/// The small-model stream: two well-separated messages per client, with
/// fixed sub-σ noise so every schedule stays deterministic.
pub fn model_messages() -> Vec<Message> {
    let noise = [0.4, -0.7, 1.1, -0.2, 0.9, -1.3];
    noise
        .iter()
        .enumerate()
        .map(|(i, off)| {
            let truth = 10.0 + 15.0 * i as f64;
            Message::with_true_time(
                MessageId(i as u64),
                ClientId((i % 3) as u32),
                truth + off,
                truth,
            )
        })
        .collect()
}

/// The small-model spec over [`model_offsets`] and [`model_messages`],
/// bounded to two in-flight deliveries.
pub fn model_spec() -> ModelSpec {
    ModelSpec::new(model_offsets(), model_messages()).with_max_in_flight(2)
}

/// Assert two freshly drained batch sequences are bit-identical — ids,
/// ranks, safe-emission times, emission clocks. Returns how many messages
/// the sequences carried (counted once).
pub fn assert_batches_bit_identical(a: &[EmittedBatch], b: &[EmittedBatch], ctx: &str) -> usize {
    assert_eq!(a.len(), b.len(), "batch count diverged at {ctx}");
    let mut messages = 0;
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.rank, y.rank, "rank diverged at {ctx}");
        assert_eq!(x.message_ids(), y.message_ids(), "batch diverged at {ctx}");
        assert_eq!(
            x.safe_after.to_bits(),
            y.safe_after.to_bits(),
            "safe-emission time diverged at {ctx}"
        );
        assert_eq!(
            x.emitted_at.to_bits(),
            y.emitted_at.to_bits(),
            "emission clock diverged at {ctx}"
        );
        messages += x.messages.len();
    }
    messages
}

/// Drain two engines and assert the freshly emitted batches are
/// bit-identical. Returns how many messages were emitted this step.
pub fn drain_lockstep<A: StreamEngine, B: StreamEngine>(a: &mut A, b: &mut B, ctx: &str) -> usize {
    let x = a.drain();
    let y = b.drain();
    assert_batches_bit_identical(&x, &y, ctx)
}

/// Assert two single-engine twins agree on the maintained order *and* on
/// every batch boundary over the current pending set.
pub fn assert_boundaries_agree(a: &mut OnlineSequencer, b: &mut OnlineSequencer, ctx: &str) {
    assert_eq!(
        a.pending_order(),
        b.pending_order(),
        "pending order / boundary set diverged at {ctx}"
    );
}

/// Close a stream the way every suite does: heartbeat each client far past
/// the pending horizon, tick the clock there, flush the stragglers, and
/// drain. Returns the batches released by the close.
pub fn close_stream<E: StreamEngine>(
    engine: &mut E,
    clients: &[ClientId],
    horizon: f64,
) -> Vec<EmittedBatch> {
    for &client in clients {
        engine
            .heartbeat_at(client, horizon, horizon)
            .expect("registered client heartbeat");
    }
    engine.tick_at(horizon);
    engine.flush_all();
    engine.drain()
}

/// Every message id carried by a batch sequence, in emission order.
pub fn emitted_ids(batches: &[EmittedBatch]) -> Vec<MessageId> {
    batches.iter().flat_map(|b| b.message_ids()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn census_and_model_builders_are_stable() {
        let census = gaussian_census(3, 2.0);
        assert_eq!(census.len(), 3);
        assert_eq!(census, model_offsets());
        let messages = model_messages();
        assert_eq!(messages.len(), 6);
        for pair in messages.windows(2) {
            assert!(pair[0].true_time < pair[1].true_time);
        }
        let report = model_spec().check().expect("well-formed model");
        assert!(report.ok(), "violations: {:?}", report.violations);
    }

    #[test]
    fn lockstep_helpers_accept_identical_twins() {
        let offsets = gaussian_census(3, 1.0);
        let (mut auto, mut dense) = paired_engines(&offsets);
        let mut emitted = 0;
        for i in 0..20u64 {
            let t = i as f64 * 5.0;
            let m = Message::new(MessageId(i), ClientId((i % 3) as u32), t);
            auto.submit_at(m.clone(), t + 1.0).expect("valid");
            dense.submit_at(m, t + 1.0).expect("valid");
            for (client, _) in &offsets {
                auto.heartbeat_at(*client, t, t + 1.0).expect("heartbeat");
                dense.heartbeat_at(*client, t, t + 1.0).expect("heartbeat");
            }
            emitted += drain_lockstep(&mut auto, &mut dense, "step");
            assert_boundaries_agree(&mut auto, &mut dense, "step");
        }
        let clients: Vec<ClientId> = offsets.iter().map(|(c, _)| *c).collect();
        let a = close_stream(&mut auto, &clients, 10_000.0);
        let d = close_stream(&mut dense, &clients, 10_000.0);
        emitted += assert_batches_bit_identical(&a, &d, "close");
        assert_eq!(emitted, 20);
        assert_eq!(emitted_ids(&a).len(), a.iter().map(|b| b.messages.len()).sum::<usize>());
    }

    #[test]
    fn stream_engine_drives_the_sharded_wrapper() {
        let offsets = gaussian_census(4, 1.0);
        let mut sharded = ShardedSequencer::new(SequencerConfig::default().with_shards(2));
        register_all(&mut sharded, &offsets);
        let clients: Vec<ClientId> = offsets.iter().map(|(c, _)| *c).collect();
        let mut total = 0;
        for i in 0..24u64 {
            let t = i as f64 * 5.0;
            let m = Message::new(MessageId(i), ClientId((i % 4) as u32), t);
            for &client in &clients {
                if client != m.client {
                    sharded.heartbeat_at(client, t, t + 1.0).expect("heartbeat");
                }
            }
            sharded.submit_at(m, t + 1.0).expect("valid");
            sharded.pump(t + 1.0);
            total += sharded.drain().iter().map(|b| b.messages.len()).sum::<usize>();
        }
        total += close_stream(&mut sharded, &clients, 10_000.0)
            .iter()
            .map(|b| b.messages.len())
            .sum::<usize>();
        assert_eq!(total, 24, "every message emitted exactly once");
    }

    #[test]
    fn run_honest_emits_and_stays_trusted() {
        let dists = gaussian_census(3, 2.0);
        let seq = run_honest(5, &dists, &[1.0, 1.5, 2.0], 10, defended_config());
        let stats = seq.stats();
        assert_eq!(stats.quarantines, 0, "{stats:?}");
        let mut rng = StdRng::seed_from_u64(1);
        let (msg, arrival) = honest_message(999, ClientId(0), 1e6, &dists[0].1, 1.0, &mut rng);
        assert_eq!(msg.client, ClientId(0));
        assert_eq!(arrival, 1e6 + 1.0);
    }
}
