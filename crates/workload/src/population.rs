//! Per-client clock-error populations.
//!
//! §3.1 of the paper: "Different clients may have different distributions due
//! to heterogeneous synchronization conditions (e.g., different temperature
//! in different parts of a data center, asymmetric latency between clients)."
//! A [`ClockPopulation`] describes how per-client [`ClockModel`]s are drawn
//! for an experiment: homogeneous (the Figure 5 setting, every client gets
//! `N(μ, σ²)` with the same σ), heterogeneous (per-client σ drawn from a
//! range), or multi-region (a few discrete synchronization qualities).

use rand::Rng;
use rand::RngCore;
use std::collections::HashMap;
use tommy_clock::offset::ClockModel;
use tommy_core::message::ClientId;
use tommy_stats::distribution::OffsetDistribution;
use tommy_stats::gaussian::Gaussian;

/// A recipe for assigning clock models to a set of clients.
#[derive(Debug, Clone)]
pub enum ClockPopulation {
    /// Every client gets a Gaussian offset with the same parameters — the
    /// §4 evaluation setting.
    Homogeneous {
        /// Mean clock offset of every client.
        mean: f64,
        /// Clock offset standard deviation of every client.
        std_dev: f64,
    },
    /// Every client gets a Gaussian offset whose standard deviation is drawn
    /// uniformly from `[min_std_dev, max_std_dev]` and whose mean is drawn
    /// uniformly from `[-mean_spread, +mean_spread]`.
    Heterogeneous {
        /// Smallest per-client standard deviation.
        min_std_dev: f64,
        /// Largest per-client standard deviation.
        max_std_dev: f64,
        /// Half-width of the uniform range the per-client mean is drawn from.
        mean_spread: f64,
    },
    /// Clients are assigned round-robin to regions, each with its own offset
    /// distribution — the multi-data-center setting of §2.
    MultiRegion(
        /// Offset distribution of each region.
        Vec<OffsetDistribution>,
    ),
    /// Every client gets the same, explicitly provided distribution.
    Explicit(
        /// The shared offset distribution.
        OffsetDistribution,
    ),
}

impl ClockPopulation {
    /// The Figure 5 population: zero-mean Gaussian offsets with standard
    /// deviation `std_dev` for every client.
    pub fn gaussian(std_dev: f64) -> Self {
        ClockPopulation::Homogeneous {
            mean: 0.0,
            std_dev,
        }
    }

    /// Draw the clock model for one client.
    pub fn model_for(&self, client: ClientId, rng: &mut dyn RngCore) -> ClockModel {
        match self {
            ClockPopulation::Homogeneous { mean, std_dev } => ClockModel::gaussian(*mean, *std_dev),
            ClockPopulation::Heterogeneous {
                min_std_dev,
                max_std_dev,
                mean_spread,
            } => {
                let sd = if max_std_dev > min_std_dev {
                    rng.random_range(*min_std_dev..*max_std_dev)
                } else {
                    *min_std_dev
                };
                let mean = if *mean_spread > 0.0 {
                    rng.random_range(-*mean_spread..*mean_spread)
                } else {
                    0.0
                };
                ClockModel::gaussian(mean, sd)
            }
            ClockPopulation::MultiRegion(regions) => {
                assert!(!regions.is_empty(), "multi-region population needs regions");
                let region = (client.0 as usize) % regions.len();
                ClockModel::from_distribution(regions[region].clone())
            }
            ClockPopulation::Explicit(dist) => ClockModel::from_distribution(dist.clone()),
        }
    }

    /// Build the clock models for `clients` clients (ids `0..clients`).
    pub fn build(&self, clients: usize, rng: &mut dyn RngCore) -> HashMap<ClientId, ClockModel> {
        (0..clients as u32)
            .map(|c| (ClientId(c), self.model_for(ClientId(c), rng)))
            .collect()
    }

    /// The distribution each client would *share with the sequencer* under
    /// the oracle assumption of §4 (the sequencer is seeded with the true
    /// distribution rather than a learned estimate).
    pub fn oracle_distributions(
        &self,
        clients: usize,
        rng: &mut dyn RngCore,
    ) -> HashMap<ClientId, OffsetDistribution> {
        self.build(clients, rng)
            .into_iter()
            .map(|(c, model)| (c, model.distribution().clone()))
            .collect()
    }

    /// A convenient default heterogeneous population spanning the clock error
    /// range the paper cites for multi-region deployments.
    pub fn wide_area() -> Self {
        ClockPopulation::MultiRegion(vec![
            OffsetDistribution::Gaussian(Gaussian::new(0.0, 1.0)), // same-DC, well synced
            OffsetDistribution::Gaussian(Gaussian::new(5.0, 20.0)), // cross-region
            OffsetDistribution::shifted_log_normal(-10.0, 3.0, 0.5), // skewed long tail
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tommy_stats::distribution::Distribution;

    #[test]
    fn homogeneous_population_is_identical_across_clients() {
        let pop = ClockPopulation::gaussian(25.0);
        let mut rng = StdRng::seed_from_u64(1);
        let models = pop.build(10, &mut rng);
        assert_eq!(models.len(), 10);
        for model in models.values() {
            assert_eq!(model.offset_std_dev(), 25.0);
            assert_eq!(model.distribution().mean(), 0.0);
        }
    }

    #[test]
    fn heterogeneous_population_varies() {
        let pop = ClockPopulation::Heterogeneous {
            min_std_dev: 1.0,
            max_std_dev: 50.0,
            mean_spread: 10.0,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let models = pop.build(100, &mut rng);
        let sds: Vec<f64> = models.values().map(|m| m.offset_std_dev()).collect();
        let min = sds.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = sds.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(min >= 1.0 && max <= 50.0);
        assert!(max - min > 20.0, "expected real spread, got [{min}, {max}]");
    }

    #[test]
    fn multi_region_assignment_is_round_robin() {
        let pop = ClockPopulation::MultiRegion(vec![
            OffsetDistribution::gaussian(0.0, 1.0),
            OffsetDistribution::gaussian(0.0, 100.0),
        ]);
        let mut rng = StdRng::seed_from_u64(3);
        let models = pop.build(4, &mut rng);
        assert_eq!(models[&ClientId(0)].offset_std_dev(), 1.0);
        assert_eq!(models[&ClientId(1)].offset_std_dev(), 100.0);
        assert_eq!(models[&ClientId(2)].offset_std_dev(), 1.0);
        assert_eq!(models[&ClientId(3)].offset_std_dev(), 100.0);
    }

    #[test]
    fn oracle_distributions_match_models() {
        let pop = ClockPopulation::gaussian(7.0);
        let mut rng = StdRng::seed_from_u64(4);
        let dists = pop.oracle_distributions(5, &mut rng);
        assert_eq!(dists.len(), 5);
        for d in dists.values() {
            assert!((d.std_dev() - 7.0).abs() < 1e-12);
        }
    }

    #[test]
    fn wide_area_population_has_three_regions() {
        let pop = ClockPopulation::wide_area();
        let mut rng = StdRng::seed_from_u64(5);
        let models = pop.build(6, &mut rng);
        // Clients 0 and 3 share a region; 0 and 1 do not.
        assert_eq!(
            models[&ClientId(0)].offset_std_dev(),
            models[&ClientId(3)].offset_std_dev()
        );
        assert_ne!(
            models[&ClientId(0)].offset_std_dev(),
            models[&ClientId(1)].offset_std_dev()
        );
    }
}
