//! Intransitive (cycle-forcing) workloads.
//!
//! Appendix A of the paper proves that *Gaussian* offsets always yield a
//! transitive `likely-happened-before` relation — the regime every Figure 5
//! experiment lives in. This module generates the opposite regime, the one
//! §3.4 only gestures at: offset mixes whose pairwise preceding
//! probabilities form **Condorcet cycles**, so the tournament contains
//! strongly connected components and the feedback-arc-set machinery actually
//! runs. Two ingredients:
//!
//! * [`condorcet_offsets`] — three *intransitive-dice* offset distributions
//!   (narrow-bump mixtures at the classic `{2,4,9} / {1,6,8} / {3,5,7}`
//!   pips): `P(δ_A > δ_B)`, `P(δ_B > δ_C)`, `P(δ_C > δ_A)` are all `5/9`,
//!   so three messages with (near-)equal timestamps — one per die — are
//!   *guaranteed* to close a 3-cycle, whatever the threshold.
//! * [`IntransitiveWorkload`] — a message stream interleaving honest
//!   traffic (Gaussian, or heavy-tailed log-normal clients via
//!   [`with_heavy_tails`](IntransitiveWorkload::with_heavy_tails)) with
//!   Condorcet *bursts*: the three dice clients submit with near-tied
//!   timestamps (the collusion attack of
//!   [`adversarial::apply_collusion`](crate::adversarial::apply_collusion)
//!   — §5's Byzantine clients have every incentive to force ties the
//!   sequencer must arbitrate). The `cyclic_fraction` knob sweeps how much
//!   of the stream is cycle-forcing, which is exactly the axis the
//!   `fas_stress` bench measures the incremental FAS engine along.
//!
//! Bursts are spaced far apart relative to the dice scale, so each burst
//! forms its own strongly connected component instead of one stream-wide
//! cycle — the many-small-cycles shape an adversary gets by colluding per
//! auction round rather than once globally.

use rand::Rng;
use rand::RngCore;
use std::collections::HashMap;
use tommy_core::message::{ClientId, Message, MessageId};
use tommy_stats::distribution::{Distribution, OffsetDistribution};

/// Number of colluding Condorcet clients (the three intransitive dice).
pub const CONDORCET_CLIENTS: u32 = 3;

/// The three intransitive-dice offset distributions at the given `scale`:
/// narrow Gaussian bumps (σ = `0.08 × scale`) at pips `{2,4,9}`, `{1,6,8}`
/// and `{3,5,7}` times `scale`, each with weight ⅓.
///
/// For equal timestamps the preceding probability between two messages is
/// `P(δ_i > δ_j)`, which for these dice is `5/9` around the cycle
/// `A → B → C → A` — an intransitive triple by construction. The bumps are
/// wide enough for the default 1024-point discretization grid to resolve
/// (≈ 8 grid points per σ) and narrow enough that the `5/9` margins survive
/// discretization with room to spare.
///
/// # Panics
///
/// Panics unless `scale` is positive and finite.
pub fn condorcet_offsets(scale: f64) -> [OffsetDistribution; 3] {
    assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
    let bump = |pip: f64| OffsetDistribution::gaussian(pip * scale, 0.08 * scale);
    let die = |pips: [f64; 3]| {
        OffsetDistribution::Mixture(pips.map(|p| (1.0 / 3.0, bump(p))).to_vec())
    };
    [
        die([2.0, 4.0, 9.0]),
        die([1.0, 6.0, 8.0]),
        die([3.0, 5.0, 7.0]),
    ]
}

/// A workload that interleaves honest traffic with Condorcet bursts (see
/// the module docs). Construct with [`new`](Self::new), shape with the
/// builders, then call [`offsets`](Self::offsets) to seed the sequencer's
/// registry and [`generate`](Self::generate) to produce the stream.
#[derive(Debug, Clone)]
pub struct IntransitiveWorkload {
    honest_clients: usize,
    messages: usize,
    cyclic_fraction: f64,
    scale: f64,
    honest_std_dev: f64,
    spacing: f64,
    heavy_tailed: bool,
}

impl IntransitiveWorkload {
    /// A workload of `messages` messages over `honest_clients` honest
    /// clients plus the three Condorcet clients, with `cyclic_fraction` of
    /// the stream emitted as cycle-forcing bursts.
    ///
    /// Defaults: dice scale 10, honest σ 2, honest spacing 1.
    ///
    /// # Panics
    ///
    /// Panics unless `honest_clients ≥ 1`, `messages ≥ 1` and
    /// `0 ≤ cyclic_fraction ≤ 1`.
    pub fn new(honest_clients: usize, messages: usize, cyclic_fraction: f64) -> Self {
        assert!(honest_clients >= 1, "need at least one honest client");
        assert!(messages >= 1, "need at least one message");
        assert!(
            (0.0..=1.0).contains(&cyclic_fraction),
            "cyclic fraction must be in [0, 1], got {cyclic_fraction}"
        );
        IntransitiveWorkload {
            honest_clients,
            messages,
            cyclic_fraction,
            scale: 10.0,
            honest_std_dev: 2.0,
            spacing: 1.0,
            heavy_tailed: false,
        }
    }

    /// Builder: the dice scale (offset magnitude of the Condorcet clients).
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
        self.scale = scale;
        self
    }

    /// Builder: the honest clients' clock-offset standard deviation.
    pub fn with_honest_std_dev(mut self, std_dev: f64) -> Self {
        assert!(std_dev > 0.0 && std_dev.is_finite(), "std dev must be positive");
        self.honest_std_dev = std_dev;
        self
    }

    /// Builder: the mean gap between honest messages.
    pub fn with_spacing(mut self, spacing: f64) -> Self {
        assert!(spacing > 0.0 && spacing.is_finite(), "spacing must be positive");
        self.spacing = spacing;
        self
    }

    /// Builder: give the honest clients heavy-tailed (shifted log-normal)
    /// offsets instead of Gaussian ones — the "Gaussian-like but with a long
    /// tail and skewed behaviour" shape §3.3 cites. Heavy-tailed honest
    /// traffic exercises the discretized probability path for *every* pair,
    /// not just pairs touching a Condorcet client.
    pub fn with_heavy_tails(mut self, enabled: bool) -> Self {
        self.heavy_tailed = enabled;
        self
    }

    /// Total number of clients (honest plus the three Condorcet dice).
    pub fn total_clients(&self) -> usize {
        self.honest_clients + CONDORCET_CLIENTS as usize
    }

    /// Number of messages the generated stream will contain.
    pub fn messages(&self) -> usize {
        self.messages
    }

    /// The per-client offset distributions to register with the sequencer:
    /// clients `0..3` are the Condorcet dice, clients `3..3+honest` the
    /// honest population.
    pub fn offsets(&self) -> Vec<(ClientId, OffsetDistribution)> {
        let mut out = Vec::with_capacity(self.total_clients());
        for (c, die) in condorcet_offsets(self.scale).into_iter().enumerate() {
            out.push((ClientId(c as u32), die));
        }
        for h in 0..self.honest_clients as u32 {
            let dist = if self.heavy_tailed {
                // Median ≈ shift + e^mu: centred near zero with a right tail
                // a few σ-equivalents long.
                OffsetDistribution::shifted_log_normal(
                    -self.honest_std_dev,
                    self.honest_std_dev.ln().max(0.0),
                    0.6,
                )
            } else {
                OffsetDistribution::gaussian(0.0, self.honest_std_dev)
            };
            out.push((ClientId(CONDORCET_CLIENTS + h), dist));
        }
        out
    }

    /// Generate the stream: messages carry ground-truth times, are sorted by
    /// true time, and every client's timestamps are monotone non-decreasing
    /// (the online sequencer's ordered-channel requirement).
    ///
    /// Honest messages tick forward by [`spacing`](Self::with_spacing) with
    /// sampled offsets; every burst emits one near-tied message from each
    /// Condorcet client and skips the clock far enough ahead
    /// (`10 × scale`) that consecutive bursts cannot strongly connect.
    pub fn generate(&self, rng: &mut dyn RngCore) -> Vec<Message> {
        let burst_size = CONDORCET_CLIENTS as usize;
        let bursts = ((self.messages as f64 * self.cyclic_fraction) / burst_size as f64).round()
            as usize;
        let bursts = bursts.min(self.messages / burst_size);
        let honest = self.messages - bursts * burst_size;
        // One burst after every `honest_per_burst` honest messages (and any
        // leftover bursts at the end of the stream).
        let honest_per_burst = honest
            .checked_div(bursts)
            .map_or(usize::MAX, |per| per.max(1));
        let burst_gap = 10.0 * self.scale;
        let tie_spread = 1e-3 * self.scale;
        let honest_dists: Vec<OffsetDistribution> = self
            .offsets()
            .into_iter()
            .skip(burst_size)
            .map(|(_, d)| d)
            .collect();

        let mut out = Vec::with_capacity(self.messages);
        let mut floors: HashMap<ClientId, f64> = HashMap::new();
        let mut t = 0.0;
        let mut next_id = 0u64;
        let mut emitted_honest = 0usize;
        let mut emitted_bursts = 0usize;
        let mut honest_since_burst = 0usize;
        let push = |client: ClientId,
                        timestamp: f64,
                        true_time: f64,
                        next_id: &mut u64,
                        floors: &mut HashMap<ClientId, f64>,
                        out: &mut Vec<Message>| {
            let floor = floors.get(&client).copied().unwrap_or(f64::NEG_INFINITY);
            let ts = timestamp.max(floor);
            floors.insert(client, ts);
            out.push(Message::with_true_time(
                MessageId(*next_id),
                client,
                ts,
                true_time,
            ));
            *next_id += 1;
        };
        while out.len() < self.messages {
            let burst_due = emitted_bursts < bursts
                && (honest_since_burst >= honest_per_burst || emitted_honest == honest);
            if burst_due {
                // The collusion: three near-tied timestamps, one per die,
                // isolated from the rest of the stream by the burst gap.
                t += burst_gap;
                for c in 0..CONDORCET_CLIENTS {
                    push(
                        ClientId(c),
                        t + c as f64 * tie_spread,
                        t,
                        &mut next_id,
                        &mut floors,
                        &mut out,
                    );
                }
                t += burst_gap;
                emitted_bursts += 1;
                honest_since_burst = 0;
            } else {
                t += self.spacing;
                let h = rng.random_range(0..self.honest_clients);
                let offset = honest_dists[h].sample(rng);
                push(
                    ClientId(CONDORCET_CLIENTS + h as u32),
                    t + offset,
                    t,
                    &mut next_id,
                    &mut floors,
                    &mut out,
                );
                emitted_honest += 1;
                honest_since_burst += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tommy_core::precedence::PrecedenceMatrix;
    use tommy_core::registry::DistributionRegistry;
    use tommy_core::tournament::Tournament;

    fn registry_for(workload: &IntransitiveWorkload) -> DistributionRegistry {
        let mut reg = DistributionRegistry::new();
        for (client, dist) in workload.offsets() {
            reg.register(client, dist);
        }
        reg
    }

    /// The construction's foundation: equal-timestamp messages from the
    /// three dice form a Condorcet cycle in the preceding probabilities.
    #[test]
    fn condorcet_offsets_cycle_at_equal_timestamps() {
        let mut reg = DistributionRegistry::new();
        for (c, die) in condorcet_offsets(10.0).into_iter().enumerate() {
            reg.register(ClientId(c as u32), die);
        }
        let msg = |id: u64, c: u32| Message::new(MessageId(id), ClientId(c), 100.0);
        let (a, b, c) = (msg(0, 0), msg(1, 1), msg(2, 2));
        let p_ab = reg.preceding_probability(&a, &b).unwrap();
        let p_bc = reg.preceding_probability(&b, &c).unwrap();
        let p_ca = reg.preceding_probability(&c, &a).unwrap();
        // Each edge of the cycle carries the dice margin 5/9 ≈ 0.556.
        for (name, p) in [("A→B", p_ab), ("B→C", p_bc), ("C→A", p_ca)] {
            assert!(p > 0.52 && p < 0.6, "{name} = {p}");
        }
    }

    /// A generated burst really produces a cyclic tournament component, and
    /// an all-honest stream never does.
    #[test]
    fn bursts_force_cycles_and_honest_streams_stay_transitive() {
        let cyclic = IntransitiveWorkload::new(5, 40, 0.5);
        let reg = registry_for(&cyclic);
        let mut rng = StdRng::seed_from_u64(7);
        let messages = cyclic.generate(&mut rng);
        assert_eq!(messages.len(), 40);
        let matrix = PrecedenceMatrix::compute(&messages, &reg).unwrap();
        let tournament = Tournament::from_matrix(&matrix);
        assert!(tournament.has_cycle(), "bursts must close cycles");

        let honest = IntransitiveWorkload::new(5, 40, 0.0);
        let reg = registry_for(&honest);
        let messages = honest.generate(&mut rng);
        let matrix = PrecedenceMatrix::compute(&messages, &reg).unwrap();
        assert!(
            Tournament::from_matrix(&matrix).is_transitive(),
            "a Gaussian-only stream must stay transitive (Appendix A)"
        );
    }

    #[test]
    fn stream_is_monotone_per_client_and_true_time_sorted() {
        let workload = IntransitiveWorkload::new(4, 120, 0.3).with_heavy_tails(true);
        let mut rng = StdRng::seed_from_u64(3);
        let messages = workload.generate(&mut rng);
        assert_eq!(messages.len(), 120);
        let mut last_ts: HashMap<ClientId, f64> = HashMap::new();
        let mut last_true = f64::NEG_INFINITY;
        for m in &messages {
            let true_time = m.true_time.expect("generated streams carry true times");
            assert!(true_time >= last_true, "true times must be sorted");
            last_true = true_time;
            let floor = last_ts.get(&m.client).copied().unwrap_or(f64::NEG_INFINITY);
            assert!(m.timestamp >= floor, "client timestamps must be monotone");
            last_ts.insert(m.client, m.timestamp);
        }
    }

    #[test]
    fn cyclic_fraction_controls_burst_share() {
        let workload = IntransitiveWorkload::new(6, 200, 0.2);
        let mut rng = StdRng::seed_from_u64(11);
        let messages = workload.generate(&mut rng);
        let from_dice = messages
            .iter()
            .filter(|m| m.client.0 < CONDORCET_CLIENTS)
            .count();
        let share = from_dice as f64 / messages.len() as f64;
        assert!(
            (share - 0.2).abs() < 0.05,
            "dice share {share} should track cyclic_fraction"
        );
        // Zero fraction → no dice messages at all.
        let honest_only = IntransitiveWorkload::new(6, 50, 0.0);
        let messages = honest_only.generate(&mut rng);
        assert!(messages.iter().all(|m| m.client.0 >= CONDORCET_CLIENTS));
    }

    #[test]
    fn offsets_cover_every_client() {
        let workload = IntransitiveWorkload::new(4, 10, 0.5).with_heavy_tails(true);
        let offsets = workload.offsets();
        assert_eq!(offsets.len(), workload.total_clients());
        assert!(offsets[..3].iter().all(|(_, d)| !d.is_gaussian()));
        // Heavy-tailed honest clients are log-normal, not Gaussian.
        assert!(offsets[3..].iter().all(|(_, d)| !d.is_gaussian()));
        let gaussian_honest = IntransitiveWorkload::new(4, 10, 0.5);
        assert!(gaussian_honest.offsets()[3..].iter().all(|(_, d)| d.is_gaussian()));
    }
}
