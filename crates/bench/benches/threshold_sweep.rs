//! Ablation A1 bench: the threshold sweep (batch resolution vs confidence).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tommy_bench::bench_scenario;
use tommy_sim::experiments::threshold_sweep;

fn threshold_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("threshold_sweep");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    let base = bench_scenario();
    for row in threshold_sweep::run(&base, &[0.6, 0.75, 0.9]) {
        println!(
            "threshold_sweep: threshold={:.2} batches={} ras_norm={:.4} coverage={:.4} accuracy={:.4}",
            row.threshold, row.batches, row.ras_normalized, row.coverage, row.accuracy
        );
    }

    group.bench_function("three_thresholds", |b| {
        b.iter(|| threshold_sweep::run(&base, &[0.6, 0.75, 0.9]))
    });
    group.finish();
}

criterion_group!(benches, threshold_bench);
criterion_main!(benches);
