//! Wire-protocol codec bench: encode/decode throughput of the frames a busy
//! sequencer handles (submits, heartbeats, batch emissions, distribution
//! shares).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tommy_clock::shared::SharedDistribution;
use tommy_core::message::{ClientId, MessageId};
use tommy_wire::frame::{encode_frame, FrameDecoder};
use tommy_wire::messages::WireMessage;

fn wire_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500));

    let submit = WireMessage::Submit {
        id: MessageId(123),
        client: ClientId(7),
        timestamp: 1234.567,
    };
    let batch = WireMessage::BatchEmit {
        rank: 42,
        message_ids: (0..64).map(MessageId).collect(),
    };
    let share = WireMessage::ShareDistribution {
        client: ClientId(7),
        distribution: SharedDistribution::Histogram {
            lo: -50.0,
            hi: 50.0,
            counts: vec![3; 64],
        },
    };

    group.bench_function("encode_submit", |b| b.iter(|| encode_frame(&submit)));
    group.bench_function("encode_batch_64", |b| b.iter(|| encode_frame(&batch)));
    group.bench_function("encode_share_histogram", |b| b.iter(|| encode_frame(&share)));

    let stream: Vec<u8> = [&submit, &batch, &share]
        .iter()
        .flat_map(|m| encode_frame(m).to_vec())
        .collect();
    group.bench_function("decode_three_frames", |b| {
        b.iter(|| {
            let mut decoder = FrameDecoder::new();
            decoder.feed(&stream);
            decoder.drain().unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, wire_bench);
criterion_main!(benches);
