//! Figure 5 regeneration bench: runs the Tommy-vs-TrueTime comparison at
//! three points of the clock-error axis and prints the resulting RAS values,
//! so `cargo bench` both times the pipeline and reproduces the figure's
//! shape (Tommy ≥ TrueTime, gap growing with clock error).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tommy_bench::bench_scenario;
use tommy_sim::runner::run_offline_comparison;

fn fig5_ras(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_ras");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    for sigma in [0.0, 40.0, 120.0] {
        let cfg = bench_scenario().with_clock_std_dev(sigma);
        // Print the figure row once, outside the timing loop.
        let result = run_offline_comparison(&cfg);
        println!(
            "fig5: sigma={sigma:>6.1} tommy_ras={:>7} truetime_ras={:>7} tommy_norm={:.4} truetime_norm={:.4}",
            result.tommy.score(),
            result.truetime.score(),
            result.tommy.normalized(),
            result.truetime.normalized()
        );
        group.bench_with_input(BenchmarkId::new("comparison", sigma as u64), &cfg, |b, cfg| {
            b.iter(|| run_offline_comparison(cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, fig5_ras);
criterion_main!(benches);
