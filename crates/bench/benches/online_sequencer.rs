//! Appendix C / online sequencing bench: replays the worked example and a
//! small streaming workload through the online sequencer.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tommy_sim::experiments::appendix_c;
use tommy_sim::experiments::psafe_sweep::{self, OnlineSetup};
use tommy_sim::scenario::ScenarioConfig;

fn online_sequencer(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_sequencer");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    let result = appendix_c::run(0.999);
    println!(
        "appendix_c: {} batch(es), {} messages, T_b = {:.3}",
        result.stats.batches_emitted, result.stats.messages_emitted, result.safe_after
    );

    group.bench_function("appendix_c_example", |b| b.iter(|| appendix_c::run(0.999)));

    let base = ScenarioConfig::default()
        .with_size(20, 100)
        .with_clock_std_dev(5.0)
        .with_gap(2.0);
    group.bench_function("streaming_100_messages", |b| {
        b.iter(|| psafe_sweep::run(&base, &OnlineSetup::default(), &[0.999]))
    });
    group.finish();
}

criterion_group!(benches, online_sequencer);
criterion_main!(benches);
