//! Ablation A2 bench: the p_safe latency/confidence trade-off on the online
//! sequencer.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tommy_sim::experiments::psafe_sweep::{self, OnlineSetup};
use tommy_sim::scenario::ScenarioConfig;

fn psafe_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("psafe_latency");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    let base = ScenarioConfig::default()
        .with_size(20, 80)
        .with_clock_std_dev(5.0)
        .with_gap(2.0);
    for row in psafe_sweep::run(&base, &OnlineSetup::default(), &psafe_sweep::default_p_safes()) {
        println!(
            "psafe_latency: p_safe={:.4} mean_latency={:.3} violations={} ras_norm={:.4}",
            row.p_safe,
            row.mean_emission_latency,
            row.fairness_violations,
            row.ras.normalized()
        );
    }

    group.bench_function("sweep", |b| {
        b.iter(|| psafe_sweep::run(&base, &OnlineSetup::default(), &[0.9, 0.999]))
    });
    group.finish();
}

criterion_group!(benches, psafe_bench);
criterion_main!(benches);
