//! Pair-kernel column fill vs the seed per-call loop.
//!
//! One online *arrival* at pending-set size `n` must compute the `n`
//! preceding probabilities of its new matrix column. The seed path paid the
//! full registry overhead per query (atomic bump, two `HashMap` lookups,
//! Gaussian-vs-discretized re-dispatch); the pair-kernel engine resolves
//! ≤ C kernels (C = distinct pending clients) and fills the column with
//! tight per-kernel loops over contiguous timestamps — bit-identical values
//! (pinned by tests in `tommy-core` and the bench lib), fraction of the
//! cost. Both strategies are timed on the same pending set, for a Gaussian
//! registry and for a mixed Gaussian/Laplace one (the discretized kernel
//! path).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::time::Duration;
use tommy_bench::{legacy_column, stream_message, stream_registry};
use tommy_core::message::ClientId;
use tommy_core::precedence::PrecedenceMatrix;
use tommy_core::registry::DistributionRegistry;
use tommy_stats::distribution::OffsetDistribution;

/// A registry where half the stream clients are Laplace, forcing the
/// discretized difference-grid kernel path for mixed pairs.
fn mixed_registry() -> DistributionRegistry {
    let mut registry = DistributionRegistry::new();
    for c in 0..tommy_bench::STREAM_CLIENTS {
        let dist = if c % 2 == 0 {
            OffsetDistribution::gaussian(0.0, 5.0)
        } else {
            OffsetDistribution::laplace(0.0, 5.0)
        };
        registry.register(ClientId(c), dist);
    }
    registry
}

fn column_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("column_build");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    for (name, registry) in [
        ("gaussian", stream_registry()),
        ("mixed", mixed_registry()),
    ] {
        for n in [200usize, 1000] {
            let pending: Vec<_> = (0..n).map(stream_message).collect();
            let arrival = stream_message(n);
            // Warm the registry's difference-grid cache so both strategies
            // measure steady-state query cost, not one-time convolutions.
            legacy_column(&pending, &arrival, &registry);

            let mut matrix = PrecedenceMatrix::empty();
            for m in &pending {
                matrix.insert(m.clone(), &registry).unwrap();
            }

            group.bench_with_input(
                BenchmarkId::new(format!("kernel_{name}"), n),
                &n,
                |b, _| {
                    b.iter_batched(
                        || matrix.clone(),
                        |mut m| {
                            std::hint::black_box(
                                m.insert(arrival.clone(), &registry).unwrap(),
                            )
                        },
                        BatchSize::SmallInput,
                    )
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("legacy_{name}"), n),
                &n,
                |b, _| {
                    b.iter(|| std::hint::black_box(legacy_column(&pending, &arrival, &registry)))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, column_bench);
criterion_main!(benches);
