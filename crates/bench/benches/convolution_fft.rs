//! Ablation A3 bench: FFT versus direct convolution when building the
//! difference distribution f_Δθ (§3.3's log-linear optimization), plus the
//! single preceding-probability costs (Gaussian closed form vs numeric).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tommy_stats::convolution::{difference_distribution, ConvolutionMethod};
use tommy_stats::discretized::DiscretizedPdf;
use tommy_stats::distribution::OffsetDistribution;
use tommy_stats::gaussian::Gaussian;

fn convolution_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("convolution");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    for points in [256usize, 1024, 4096] {
        let a = DiscretizedPdf::from_distribution(
            &OffsetDistribution::shifted_log_normal(-5.0, 2.0, 0.5),
            points,
        );
        let b = DiscretizedPdf::from_distribution(&OffsetDistribution::laplace(0.0, 10.0), points);
        group.bench_with_input(BenchmarkId::new("fft", points), &points, |bencher, _| {
            bencher.iter(|| difference_distribution(&a, &b, ConvolutionMethod::Fft))
        });
        if points <= 1024 {
            group.bench_with_input(BenchmarkId::new("direct", points), &points, |bencher, _| {
                bencher.iter(|| difference_distribution(&a, &b, ConvolutionMethod::Direct))
            });
        }
    }

    let gi = Gaussian::new(0.0, 20.0);
    let gj = Gaussian::new(5.0, 10.0);
    group.bench_function("preceding_probability_closed_form", |b| {
        b.iter(|| gi.preceding_probability(100.0, &gj, 101.0))
    });
    group.finish();
}

criterion_group!(benches, convolution_bench);
criterion_main!(benches);
