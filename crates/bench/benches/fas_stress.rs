//! FAS-stress bench: the incremental FAS engine versus the exhaustive
//! full-recompute fallback on cycle-forcing (Condorcet-burst) workloads.
//!
//! The measured event is one complete Condorcet burst arriving on a core
//! that already tracks `n` pending messages (of which `cyclic_fraction` are
//! earlier bursts): three near-tied dice messages are inserted — two clean
//! singleton insertions plus the merge that closes the 3-cycle — with a
//! candidate recomputation after each (the online sequencer's per-arrival
//! behaviour), then removed again to restore the steady state.
//!
//! * `incremental/f{frac}/n` — the incremental engine: the merge re-solves
//!   only the 3-member SCC it created; every other component's cached order
//!   is untouched. O(n) per arrival.
//! * `fallback/f{frac}/n` — the historical behaviour
//!   ([`SequencerConfig::with_incremental_fas`]`(false)`): each cyclic
//!   insert invalidates the whole maintained order and the next candidate
//!   recomputation rebuilds it one-shot — O(n²) adjacency + SCC pass plus
//!   one exhaustive greedy pass per cyclic component, per arrival.
//!
//! Both paths produce bit-identical orders and batches (property-tested in
//! `tommy-core` and `tests/fas_incremental.rs`); only the work differs.
//! `cargo run --release -p tommy-bench --bin fas_baseline` records the
//! whole-stream throughput comparison in `BENCH_fas.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tommy_bench::{fas_burst_after, fas_core_state, fas_registry, fas_stream, fas_workload};
use tommy_core::message::MessageId;

const SIZES: [usize; 2] = [500, 2000];
const FRACTIONS: [f64; 2] = [0.2, 0.5];

fn fas_stress(c: &mut Criterion) {
    let mut group = c.benchmark_group("fas_stress");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    for fraction in FRACTIONS {
        for n in SIZES {
            let workload = fas_workload(n, fraction);
            let stream = fas_stream(&workload);
            let registry = fas_registry(&workload);
            let burst = fas_burst_after(&stream);
            let burst_ids: Vec<MessageId> = burst.iter().map(|m| m.id).collect();

            for (label, incremental) in [("incremental", true), ("fallback", false)] {
                let (mut matrix, mut core) = fas_core_state(&stream, &registry, incremental);
                let id = BenchmarkId::new(label, format!("f{:.0}%/{n}", fraction * 100.0));
                group.bench_function(id, |b| {
                    b.iter(|| {
                        for m in &burst {
                            matrix.insert(m.clone(), &registry).expect("registered");
                            core.insert_last(&matrix);
                            std::hint::black_box(core.candidate_indices(&matrix, None));
                        }
                        let removed: Vec<usize> = burst_ids
                            .iter()
                            .filter_map(|id| matrix.index_of(*id))
                            .collect();
                        matrix.remove_batch(&burst_ids);
                        core.remove_indices(&removed, &matrix);
                        std::hint::black_box(core.candidate_indices(&matrix, None));
                    })
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, fas_stress);
criterion_main!(benches);
