//! Adversarial-robustness smoke bench: streams one attacked scenario per
//! family through the online sequencer, defended and undefended, and prints
//! the RAS/counter row for each — so `cargo bench` both times the defense
//! path and sanity-checks that it engages (quarantines or re-estimations
//! fire under attack, never on the honest control).
//!
//! The full sweep behind `BENCH_adversarial.json` lives in
//! `src/bin/adversarial_baseline.rs`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tommy_bench::run_adversarial_stream;
use tommy_workload::AttackFamily;

fn adversarial(c: &mut Criterion) {
    let mut group = c.benchmark_group("adversarial");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    let intensity = 0.6;
    for family in AttackFamily::ALL {
        for defended in [false, true] {
            // Print the sweep row once, outside the timing loop.
            let result = run_adversarial_stream(family, intensity, defended);
            println!(
                "adversarial: family={:<10} defended={defended:<5} ras={:.4} violations={} \
                 quarantines={} reestimations={} margin_fallbacks={}",
                family.name(),
                result.ras.normalized(),
                result.stats.fairness_violations,
                result.quarantines,
                result.reestimations,
                result.margin_fallbacks
            );
            let id = BenchmarkId::new(
                family.name(),
                if defended { "defended" } else { "undefended" },
            );
            group.bench_function(id, |b| {
                b.iter(|| run_adversarial_stream(family, intensity, defended))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, adversarial);
criterion_main!(benches);
