//! Batch-boundary maintenance bench: the incremental engine versus the
//! from-scratch fair-order constructor, at online-realistic pending sizes.
//!
//! Three measurements per pending-set size `n`:
//!
//! * `incremental_arrival/n` — one arrival's boundary maintenance on an
//!   [`IncrementalFairOrder`] tracking `n` messages: insert at the
//!   tournament-chosen position (two adjacent-pair re-evaluations) plus the
//!   removal that restores the state (one seam re-evaluation) — the
//!   steady-state per-arrival cost.
//! * `from_scratch/n` — what each arrival used to cost instead:
//!   `FairOrder::from_linear_order` over the full maintained order (`n − 1`
//!   adjacent-pair probes plus the rank-index hashing of every message).
//! * `pipeline_one_shot/n` — the whole shared pipeline tail
//!   ([`tommy_bench::run_pipeline`]) for scale context.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tommy_bench::{run_pipeline, stream_message, stream_registry};
use tommy_core::batching::{FairOrder, IncrementalFairOrder};
use tommy_core::config::SequencerConfig;
use tommy_core::precedence::PrecedenceMatrix;
use tommy_core::tournament::IncrementalTournament;

const SIZES: [usize; 2] = [500, 2000];
const THRESHOLD: f64 = 0.75;

fn batch_boundary(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_boundary");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    let registry = stream_registry();
    let config = SequencerConfig::default();

    for n in SIZES {
        // `n` pending messages, plus the (n+1)-th arrival whose maintenance
        // cost is being measured.
        let mut matrix_with_arrival = PrecedenceMatrix::empty();
        let mut tournament = IncrementalTournament::new();
        let mut engine = IncrementalFairOrder::new(THRESHOLD);
        let mut arrival_pos = 0usize;
        for i in 0..=n {
            matrix_with_arrival
                .insert(stream_message(i), &registry)
                .expect("registered clients");
            let pos = tournament
                .insert_last(&matrix_with_arrival)
                .expect("Gaussian stream stays transitive");
            if i < n {
                engine.insert_at(pos, &matrix_with_arrival);
            } else {
                arrival_pos = pos;
            }
        }
        let matrix_pending = {
            let mut m = PrecedenceMatrix::empty();
            for i in 0..n {
                m.insert(stream_message(i), &registry).expect("registered clients");
            }
            m
        };
        // The engine's maintained order over the n pending messages — the
        // input each from-scratch recomputation would walk.
        let order = engine.order().to_vec();

        group.bench_with_input(BenchmarkId::new("incremental_arrival", n), &n, |b, _| {
            b.iter(|| {
                engine.insert_at(arrival_pos, &matrix_with_arrival);
                engine.remove_slots(&[n], &matrix_pending);
            })
        });
        group.bench_with_input(BenchmarkId::new("from_scratch", n), &n, |b, _| {
            b.iter(|| FairOrder::from_linear_order(&matrix_pending, &order, THRESHOLD))
        });
        group.bench_with_input(BenchmarkId::new("pipeline_one_shot", n), &n, |b, _| {
            b.iter(|| run_pipeline(&matrix_pending, &config))
        });
    }
    group.finish();
}

criterion_group!(benches, batch_boundary);
criterion_main!(benches);
