//! Appendix B bench: the full matrix → tournament → batching pipeline on the
//! paper's worked example (and on a larger synthetic matrix for scale).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tommy_sim::experiments::appendix_b;

fn appendix_b_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("appendix_b");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500));

    let result = appendix_b::run(0.75);
    println!(
        "appendix_b: batches at threshold 0.75 = {:?}",
        appendix_b::batches_as_labels(&result)
    );

    group.bench_function("worked_example_threshold_075", |b| {
        b.iter(|| appendix_b::run(0.75))
    });
    group.bench_function("worked_example_threshold_090", |b| {
        b.iter(|| appendix_b::run(0.9))
    });
    group.finish();
}

criterion_group!(benches, appendix_b_pipeline);
criterion_main!(benches);
