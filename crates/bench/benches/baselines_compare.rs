//! Ablation A4 bench: FIFO / WFO / TrueTime / Tommy across network jitter.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tommy_sim::experiments::baselines;

fn baselines_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines_compare");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    for row in baselines::run(50, 150, 1.0, 20.0, &baselines::default_jitters(), 17) {
        println!(
            "baselines: jitter={:>5.1} fifo={:.4} wfo={:.4} truetime={:.4} tommy={:.4}",
            row.network_jitter,
            row.fifo.normalized(),
            row.wfo.normalized(),
            row.truetime.normalized(),
            row.tommy.normalized()
        );
    }

    group.bench_function("four_sequencers_one_jitter", |b| {
        b.iter(|| baselines::run(50, 150, 1.0, 20.0, &[5.0], 17))
    });
    group.finish();
}

criterion_group!(benches, baselines_bench);
criterion_main!(benches);
