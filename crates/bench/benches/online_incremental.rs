//! Incremental-precedence-engine bench: the streaming arrival path must
//! scale near-linearly in pending-set size, where the seed implementation
//! (full matrix + tournament rebuild per arrival) is quadratic-or-worse.
//!
//! Three measurements per pending-set size `n`:
//!
//! * `stream_incremental/n` — submit `n` watermark-blocked arrivals through
//!   the online sequencer in its default mode (the sparse fast path on this
//!   all-Gaussian stream; the `sparse_path` bench isolates the dense-vs-
//!   sparse arrival-cost split).
//! * `stream_scratch/n` — the same stream through the seed path: a
//!   from-scratch candidate recomputation per arrival (O(k²) queries at
//!   arrival `k`). Skipped at the largest sizes, where a single iteration
//!   takes tens of seconds.
//! * `tick_cached/n` — a pure clock tick against `n` pending messages:
//!   O(1), zero probability queries, and — pinned by the counting allocator
//!   below before the measurements start — zero heap allocations.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use tommy_bench::{prefilled_sequencer, run_incremental_stream, run_scratch_stream};

/// A pass-through allocator that counts allocation calls, so the bench can
/// *assert* (not just measure) that a cached tick touches the heap zero
/// times — a regression here would show up as noise long before it showed
/// up as a mean shift.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// A cached tick against a settled pending set performs **zero** heap
/// allocations: the candidate is cached, nothing emits (the silent client
/// blocks the watermark frontier), and the returned batch vector is empty.
fn assert_cached_tick_is_allocation_free() {
    let mut sequencer = prefilled_sequencer(200);
    let now = 201.0;
    // Settle the candidate cache (this may allocate).
    sequencer.tick(now);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..100 {
        std::hint::black_box(sequencer.tick(now).len());
    }
    let allocations = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocations, 0,
        "a cached tick must not touch the heap (got {allocations} allocations over 100 ticks)"
    );
    eprintln!("tick allocation pin: 100 cached ticks, 0 heap allocations");
}

const SIZES: [usize; 4] = [50, 200, 500, 2000];
/// From-scratch recomputation is O(n³) for the whole stream; cap the sizes
/// so one bench iteration stays under a few seconds.
const SCRATCH_MAX: usize = 500;

fn online_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_incremental");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    for n in SIZES {
        group.bench_with_input(BenchmarkId::new("stream_incremental", n), &n, |b, &n| {
            b.iter(|| run_incremental_stream(n))
        });
    }
    for n in SIZES.iter().copied().filter(|&n| n <= SCRATCH_MAX) {
        group.bench_with_input(BenchmarkId::new("stream_scratch", n), &n, |b, &n| {
            b.iter(|| run_scratch_stream(n))
        });
    }
    for n in SIZES {
        let mut sequencer = prefilled_sequencer(n);
        let now = n as f64 + 1.0;
        group.bench_with_input(BenchmarkId::new("tick_cached", n), &n, |b, _| {
            b.iter(|| sequencer.tick(now).len())
        });
    }
    group.finish();
}

criterion_group!(benches, online_incremental);

fn main() {
    assert_cached_tick_is_allocation_free();
    benches();
}
