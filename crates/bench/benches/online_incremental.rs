//! Incremental-precedence-engine bench: the streaming arrival path must
//! scale near-linearly in pending-set size, where the seed implementation
//! (full matrix + tournament rebuild per arrival) is quadratic-or-worse.
//!
//! Three measurements per pending-set size `n`:
//!
//! * `stream_incremental/n` — submit `n` watermark-blocked arrivals through
//!   the incremental online sequencer (O(k) probability queries at arrival
//!   `k`).
//! * `stream_scratch/n` — the same stream through the seed path: a
//!   from-scratch candidate recomputation per arrival (O(k²) queries at
//!   arrival `k`). Skipped at the largest sizes, where a single iteration
//!   takes tens of seconds.
//! * `tick_cached/n` — a pure clock tick against `n` pending messages:
//!   O(1), zero probability queries, regardless of `n`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tommy_bench::{prefilled_sequencer, run_incremental_stream, run_scratch_stream};

const SIZES: [usize; 4] = [50, 200, 500, 2000];
/// From-scratch recomputation is O(n³) for the whole stream; cap the sizes
/// so one bench iteration stays under a few seconds.
const SCRATCH_MAX: usize = 500;

fn online_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_incremental");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    for n in SIZES {
        group.bench_with_input(BenchmarkId::new("stream_incremental", n), &n, |b, &n| {
            b.iter(|| run_incremental_stream(n))
        });
    }
    for n in SIZES.iter().copied().filter(|&n| n <= SCRATCH_MAX) {
        group.bench_with_input(BenchmarkId::new("stream_scratch", n), &n, |b, &n| {
            b.iter(|| run_scratch_stream(n))
        });
    }
    for n in SIZES {
        let mut sequencer = prefilled_sequencer(n);
        let now = n as f64 + 1.0;
        group.bench_with_input(BenchmarkId::new("tick_cached", n), &n, |b, _| {
            b.iter(|| sequencer.tick(now).len())
        });
    }
    group.finish();
}

criterion_group!(benches, online_incremental);
criterion_main!(benches);
