//! Sparse-fast-path bench: per-arrival cost of the order-statistics treap
//! engine against the dense matrix engine it retires, on the identical
//! all-Gaussian watermark-blocked stream.
//!
//! Two measurements per pending-set size `n`:
//!
//! * `stream_sparse/n` — submit `n` arrivals through the default (`Auto`)
//!   sequencer: O(log k) treap placement plus a bounded number of lazy
//!   boundary/candidate evaluations at arrival `k`, no dense column ever
//!   materialized.
//! * `stream_dense/n` — the same stream through `ForceDense`: a full
//!   O(k)-query probability column per arrival over the O(k²)-byte matrix.
//!   Capped at [`DENSE_MAX`] — the dense matrix at 10k pending is 800 MB of
//!   probability storage and minutes per iteration.
//!
//! The `online_baseline` binary records the same comparison (plus the peak
//! memory split) into `BENCH_online.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tommy_bench::{run_dense_stream, run_incremental_stream};

const SIZES: [usize; 2] = [2000, 10_000];
/// The dense engine holds an O(n²) matrix and pays O(n) queries per
/// arrival; past this size a single iteration dominates the bench run.
const DENSE_MAX: usize = 2000;

fn sparse_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_path");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    for n in SIZES {
        group.bench_with_input(BenchmarkId::new("stream_sparse", n), &n, |b, &n| {
            b.iter(|| run_incremental_stream(n))
        });
    }
    for n in SIZES.iter().copied().filter(|&n| n <= DENSE_MAX) {
        group.bench_with_input(BenchmarkId::new("stream_dense", n), &n, |b, &n| {
            b.iter(|| run_dense_stream(n))
        });
    }
    group.finish();
}

criterion_group!(benches, sparse_path);
criterion_main!(benches);
