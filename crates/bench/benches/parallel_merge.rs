//! Parallel-merge bench: end-to-end sharded sequencing throughput at
//! K ∈ {1, 2, 4} shards over the identical stream — the criterion twin of
//! the `parallel_baseline` binary (which records the full 10k-message sweep
//! plus the fairness columns into `BENCH_parallel.json`).
//!
//! K = 1 is the bit-identical single-engine passthrough, so the group
//! directly prices the combiner: routing, per-shard staging, and the
//! watermark-driven k-way merge. On a single-core host the K > 1 rows
//! measure scoped-thread overhead rather than speedup (see the baseline's
//! `caveat` convention).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tommy_bench::run_parallel_cell;

const MESSAGES: usize = 1_500;
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn parallel_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_merge");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    for shards in SHARD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("stream", shards),
            &shards,
            |b, &shards| b.iter(|| run_parallel_cell(MESSAGES, shards)),
        );
    }
    group.finish();
}

criterion_group!(benches, parallel_merge);
criterion_main!(benches);
