//! Ablation A5 bench: offline sequencing cost as the message count grows
//! (the pairwise matrix is O(n²); this quantifies the constant).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tommy_sim::runner::run_offline_comparison;
use tommy_sim::scenario::ScenarioConfig;

fn scaling_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequencer_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    for messages in [50usize, 200, 500] {
        let cfg = ScenarioConfig::default()
            .with_size(messages.min(100), messages)
            .with_clock_std_dev(20.0)
            .with_gap(1.0);
        group.bench_with_input(
            BenchmarkId::new("offline_comparison", messages),
            &cfg,
            |b, cfg| b.iter(|| run_offline_comparison(cfg)),
        );
    }
    group.finish();
}

criterion_group!(benches, scaling_bench);
criterion_main!(benches);
