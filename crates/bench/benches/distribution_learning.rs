//! Ablation A6 bench: client-side distribution learning from synchronization
//! probes, and the learned-vs-oracle sequencing comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tommy_clock::learning::{DistributionLearner, LearnedModel};
use tommy_clock::offset::ClockModel;
use tommy_clock::sync::{PathModel, SyncSession};
use tommy_sim::experiments::learning;

fn learning_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("distribution_learning");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    for row in learning::run(20, 60, 2.0, 15.0, &[64, 1024], 23) {
        println!(
            "learning: probes={} learned_norm={:.4} oracle_norm={:.4}",
            row.probes,
            row.learned.normalized(),
            row.oracle.normalized()
        );
    }

    for probes in [64usize, 1024] {
        group.bench_with_input(BenchmarkId::new("probe_and_fit", probes), &probes, |b, &n| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                let clock = ClockModel::gaussian(2.0, 10.0);
                let mut session = SyncSession::new(clock, PathModel::symmetric(2.0, 0.5), 1.0, 0.0);
                let mut learner = DistributionLearner::new(LearnedModel::GaussianFit);
                for k in 0..n {
                    session.run_probe(k as f64, &mut rng);
                }
                learner.record_all(&session.offset_estimates());
                learner.learned()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, learning_bench);
criterion_main!(benches);
