//! Incremental tournament maintenance vs from-scratch rebuild.
//!
//! One online *arrival* at pending-set size `n` must pay O(n): orient the
//! `n` new edges and binary-insert into the maintained Hamiltonian path.
//! The seed path instead rebuilt `Tournament::from_matrix` + `linear_order`
//! — O(n²) comparisons — per arrival. This bench times exactly that pair of
//! strategies on the same matrix state.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::time::Duration;
use tommy_bench::{stream_message, stream_registry};
use tommy_core::config::SequencerConfig;
use tommy_core::precedence::PrecedenceMatrix;
use tommy_core::tournament::{IncrementalTournament, Tournament};

fn arrival_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("tournament_incremental");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    let registry = stream_registry();
    let config = SequencerConfig::default();

    for n in [50usize, 200, 500] {
        // Matrix over n+1 messages; tournament maintained over the first n,
        // so each iteration replays exactly one arrival.
        let mut matrix = PrecedenceMatrix::empty();
        let mut tournament = IncrementalTournament::new();
        for i in 0..n {
            matrix.insert(stream_message(i), &registry).unwrap();
            tournament.insert_last(&matrix);
        }
        tournament.linear_order(&matrix, &config, None);
        matrix.insert(stream_message(n), &registry).unwrap();

        group.bench_with_input(BenchmarkId::new("incremental_arrival", n), &n, |b, _| {
            b.iter_batched(
                || tournament.clone(),
                |mut t| {
                    t.insert_last(&matrix);
                    std::hint::black_box(t.linear_order(&matrix, &config, None))
                },
                BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("scratch_rebuild", n), &n, |b, _| {
            b.iter(|| {
                let t = Tournament::from_matrix(&matrix);
                std::hint::black_box(t.linear_order(&matrix, &config, None))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, arrival_bench);
criterion_main!(benches);
