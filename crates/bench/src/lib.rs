//! # tommy-bench
//!
//! Criterion benchmark harness for the Tommy reproduction. Each bench target
//! regenerates (a scaled-down version of) one figure/table of the paper or
//! one DESIGN.md ablation; see `DESIGN.md` §2 for the mapping and
//! `EXPERIMENTS.md` for the recorded results.
//!
//! The benches share a small helper for a fast Criterion configuration so
//! that `cargo bench --workspace` completes in minutes rather than hours.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use tommy_sim::scenario::ScenarioConfig;

/// A scenario sized for benchmarking: large enough to be representative,
/// small enough that a criterion iteration completes in milliseconds.
pub fn bench_scenario() -> ScenarioConfig {
    ScenarioConfig::default()
        .with_size(100, 200)
        .with_clock_std_dev(20.0)
        .with_gap(1.0)
        .with_seed(42)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_scenario_is_small_but_nontrivial() {
        let s = bench_scenario();
        assert!(s.clients >= 50);
        assert!(s.messages >= 100);
    }
}
