//! # tommy-bench
//!
//! Criterion benchmark harness for the Tommy reproduction. Each bench target
//! regenerates (a scaled-down version of) one figure/table of the paper or
//! one DESIGN.md ablation; see `DESIGN.md` §2 for the mapping and
//! `EXPERIMENTS.md` for the recorded results.
//!
//! The benches share a small helper for a fast Criterion configuration so
//! that `cargo bench --workspace` completes in minutes rather than hours.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use tommy_core::batching::FairOrder;
use tommy_core::config::{FastPathMode, SequencerConfig};
use tommy_core::sequencer::online::OnlineStats;
use tommy_core::message::{ClientId, Message, MessageId};
use tommy_core::precedence::PrecedenceMatrix;
use tommy_core::registry::DistributionRegistry;
use tommy_core::sequencer::emission::batch_emission_time;
use tommy_core::sequencer::online::OnlineSequencer;
use tommy_core::sequencer::{SequencingCore, SequencingOutcome};
use tommy_core::tournament::Tournament;
use tommy_netsim::FaultPlan;
use tommy_sim::faults::{run_fault_stream, FaultStreamResult};
use tommy_sim::runner::{
    run_online_stream, run_parallel_stream, OnlineStreamResult, ParallelStreamResult,
};
use tommy_sim::scenario::ScenarioConfig;
use tommy_stats::distribution::OffsetDistribution;
use tommy_wire::RecoveryPolicy;
use tommy_workload::intransitive::IntransitiveWorkload;
use tommy_workload::{AttackFamily, AttackPlan};

/// A scenario sized for benchmarking: large enough to be representative,
/// small enough that a criterion iteration completes in milliseconds.
pub fn bench_scenario() -> ScenarioConfig {
    ScenarioConfig::default()
        .with_size(100, 200)
        .with_clock_std_dev(20.0)
        .with_gap(1.0)
        .with_seed(42)
}

/// Safe-emission quantile used by the adversarial sweep (the sim runner
/// convention).
pub const ADVERSARIAL_P_SAFE: f64 = 0.99;

/// The adversarial-sweep scenario regime: 6 clients, 240 messages, σ = 3
/// clocks at gap 8 — wide enough gaps that the honest stream is nearly
/// perfectly orderable, so any RAS loss in the sweep is attributable to the
/// attack (and any RAS recovered to the defense). `intensity == 0.0` is the
/// honest control: no attack plan is attached at all.
pub fn adversarial_scenario(
    family: AttackFamily,
    intensity: f64,
    defended: bool,
) -> ScenarioConfig {
    let cfg = ScenarioConfig::default()
        .with_size(6, 240)
        .with_clock_std_dev(3.0)
        .with_gap(4.0)
        .with_seed(21)
        .with_defended(defended);
    if intensity == 0.0 {
        cfg
    } else {
        let mut plan = AttackPlan::new(family, intensity).with_scale(cfg.clock_std_dev);
        if family == AttackFamily::CorrelatedCollusion {
            // Pad coordination needs no trigger event: colluders share their
            // pad before the stream starts and co-move from the first
            // message. The mid-stream onset sweep belongs to the drift and
            // forgery families, where the "before" segment is the contrast.
            plan = plan.with_onset_fraction(0.0);
        }
        cfg.with_adversarial(plan)
    }
}

/// One adversarial-sweep cell: stream the scenario through the online
/// sequencer at [`ADVERSARIAL_P_SAFE`] — the measurement behind
/// `BENCH_adversarial.json`.
pub fn run_adversarial_stream(
    family: AttackFamily,
    intensity: f64,
    defended: bool,
) -> OnlineStreamResult {
    run_online_stream(
        &adversarial_scenario(family, intensity, defended),
        ADVERSARIAL_P_SAFE,
    )
}

/// Safe-emission quantile of the fault sweep (the sim runner convention).
pub const FAULT_P_SAFE: f64 = 0.99;

/// Messages per fault-sweep run (the pending-scale the acceptance numbers
/// are quoted at).
pub const FAULT_MESSAGES: usize = 500;

/// The fault-sweep scenario regime: 8 clients, 500 messages, σ = 3 clocks at
/// gap 4 — the honest stream is nearly perfectly orderable, so RAS loss in a
/// cell is attributable to the injected faults (and throughput loss to the
/// recovery machinery).
pub fn fault_scenario() -> ScenarioConfig {
    ScenarioConfig::default()
        .with_size(8, FAULT_MESSAGES)
        .with_clock_std_dev(3.0)
        .with_gap(4.0)
        .with_seed(21)
}

/// One fault-sweep cell: stream [`fault_scenario`] through the full wire
/// path under `plans` and `policy` — the measurement behind
/// `BENCH_faults.json`.
pub fn run_fault_cell(plans: &[FaultPlan], policy: RecoveryPolicy) -> FaultStreamResult {
    run_fault_stream(&fault_scenario(), plans, policy, FAULT_P_SAFE)
}

/// Safe-emission quantile of the parallel-merge sweep (the sim runner
/// convention).
pub const PARALLEL_P_SAFE: f64 = 0.99;

/// Messages per parallel-merge baseline run — the pending-scale the
/// `BENCH_parallel.json` acceptance numbers are quoted at.
pub const PARALLEL_MESSAGES: usize = 10_000;

/// The parallel-merge scenario regime: 16 clients (divisible across every
/// shard count the sweep uses), σ = 3 clocks at gap 2 — dense enough that
/// the combiner's watermark actually arbitrates overlapping cross-shard
/// keys rather than rubber-stamping well-separated ones.
pub fn parallel_scenario(messages: usize, shards: usize) -> ScenarioConfig {
    ScenarioConfig::default()
        .with_size(16, messages)
        .with_clock_std_dev(3.0)
        .with_gap(2.0)
        .with_seed(42)
        .with_shards(shards)
}

/// One parallel-merge cell: stream [`parallel_scenario`] through the
/// sharded sequencer at [`PARALLEL_P_SAFE`] — the measurement behind
/// `BENCH_parallel.json` and the `parallel_merge` criterion smoke.
pub fn run_parallel_cell(messages: usize, shards: usize) -> ParallelStreamResult {
    run_parallel_stream(&parallel_scenario(messages, shards), PARALLEL_P_SAFE)
}

/// Number of clients used by the streaming precedence benchmarks.
pub const STREAM_CLIENTS: u32 = 8;

/// A client id that is registered but never speaks: its watermark blocks
/// every emission, so the benchmarks measure pure arrival-path cost with the
/// pending set growing to the full stream length.
pub const SILENT_CLIENT: u32 = 9_999;

/// The `i`-th message of the streaming benchmark workload (round-robin
/// across [`STREAM_CLIENTS`], unit timestamp spacing).
pub fn stream_message(i: usize) -> Message {
    Message::new(
        MessageId(i as u64),
        ClientId(i as u32 % STREAM_CLIENTS),
        i as f64,
    )
}

/// A registry holding the streaming benchmark's Gaussian clients.
pub fn stream_registry() -> DistributionRegistry {
    let mut registry = DistributionRegistry::new();
    for c in 0..STREAM_CLIENTS {
        registry.register(ClientId(c), OffsetDistribution::gaussian(0.0, 5.0));
    }
    registry.register(
        ClientId(SILENT_CLIENT),
        OffsetDistribution::gaussian(0.0, 5.0),
    );
    registry
}

/// An online sequencer pre-loaded with `pending` watermark-blocked messages.
/// The default (`Auto`) fast-path mode rides the sparse engine: the stream
/// census is all-Gaussian.
pub fn prefilled_sequencer(pending: usize) -> OnlineSequencer {
    prefilled_sequencer_mode(pending, FastPathMode::Auto)
}

/// [`prefilled_sequencer`] with an explicit fast-path mode, for dense-vs-
/// sparse arrival-cost comparisons over the identical workload.
pub fn prefilled_sequencer_mode(pending: usize, fast_path: FastPathMode) -> OnlineSequencer {
    let mut sequencer =
        OnlineSequencer::new(SequencerConfig::default().with_fast_path(fast_path));
    for c in 0..STREAM_CLIENTS {
        sequencer.register_client(ClientId(c), OffsetDistribution::gaussian(0.0, 5.0));
    }
    sequencer.register_client(
        ClientId(SILENT_CLIENT),
        OffsetDistribution::gaussian(0.0, 5.0),
    );
    for i in 0..pending {
        let m = stream_message(i);
        let arrival = m.timestamp;
        sequencer.submit(m, arrival).expect("valid submission");
    }
    sequencer
}

/// Stream `messages` arrivals through the online sequencer in its default
/// (`Auto`) mode — the sparse fast path on this all-Gaussian workload, with
/// O(log pending) treap placement and lazy boundary evaluations per arrival.
/// Returns the number of messages left pending, which equals `messages`
/// because the silent client blocks every watermark.
pub fn run_incremental_stream(messages: usize) -> usize {
    let mut sequencer = prefilled_sequencer(messages);
    sequencer.tick(messages as f64 + 1.0);
    sequencer.pending_len()
}

/// Stream `messages` arrivals through the dense matrix engine
/// (`ForceDense`): each submit materializes a full probability column —
/// O(pending) queries — and the run holds the O(pending²) matrix. This is
/// the engine the sparse fast path retires on closed-form streams.
pub fn run_dense_stream(messages: usize) -> usize {
    let mut sequencer = prefilled_sequencer_mode(messages, FastPathMode::ForceDense);
    sequencer.tick(messages as f64 + 1.0);
    sequencer.pending_len()
}

/// [`run_incremental_stream`]'s counters: stream `messages` watermark-blocked
/// arrivals in the given mode and return the sequencer's [`OnlineStats`]
/// (peak-memory accounting and fast-path counters for the baseline rows).
pub fn stream_stats(messages: usize, fast_path: FastPathMode) -> OnlineStats {
    let mut sequencer = prefilled_sequencer_mode(messages, fast_path);
    sequencer.tick(messages as f64 + 1.0);
    sequencer.stats()
}

/// Stream `messages` arrivals through the pre-incremental (seed) path: every
/// arrival rebuilds the full precedence matrix, tournament, linear order and
/// candidate batch from scratch — O(pending²) probability queries per
/// arrival. This is the baseline the `online_incremental` bench compares
/// against.
pub fn run_scratch_stream(messages: usize) -> usize {
    let registry = stream_registry();
    let config = SequencerConfig::default();
    let mut pending: Vec<Message> = Vec::with_capacity(messages);
    for i in 0..messages {
        pending.push(stream_message(i));
        let (batch, _safe_after) = scratch_candidate_batch(&pending, &registry, &config);
        // The silent client's watermark would block every emission; the seed
        // still recomputed the candidate on each arrival, which is the cost
        // being measured.
        std::hint::black_box(batch);
    }
    pending.len()
}

/// The seed implementation of an arrival's probability column: one
/// [`DistributionRegistry::preceding_probability`] call per pending message,
/// each paying the full per-query overhead (atomic counter bump, two
/// distribution lookups, Gaussian-vs-discretized re-dispatch). This is the
/// baseline the `column_build` bench compares the pair-kernel column fill
/// against; the kernel fill produces bit-identical values (asserted in this
/// crate's tests and in `tommy-core`'s).
pub fn legacy_column(
    pending: &[Message],
    arrival: &Message,
    registry: &DistributionRegistry,
) -> Vec<f64> {
    pending
        .iter()
        .map(|existing| {
            registry
                .preceding_probability(existing, arrival)
                .expect("registered clients")
        })
        .collect()
}

/// Run the one-shot §3.4 pipeline tail (linear order → fair order +
/// diagnostics) over a prebuilt matrix through the same [`SequencingCore`]
/// both production sequencers use — the benchmark entry point for the
/// shared pipeline, and the reference the `batch_boundary` bench contrasts
/// the incremental engine against.
pub fn run_pipeline(matrix: &PrecedenceMatrix, config: &SequencerConfig) -> SequencingOutcome {
    let mut core = SequencingCore::new(*config);
    core.load(matrix);
    core.outcome(matrix, None)
}

/// Honest (Gaussian) client count of the FAS-stress workload.
pub const FAS_HONEST_CLIENTS: usize = 8;

/// Dice scale of the FAS-stress workload's Condorcet clients.
pub const FAS_SCALE: f64 = 10.0;

/// The FAS-stress workload: `messages` messages, `cyclic_fraction` of them
/// Condorcet collusion bursts, over [`FAS_HONEST_CLIENTS`] honest Gaussian
/// clients (see `tommy_workload::intransitive`).
pub fn fas_workload(messages: usize, cyclic_fraction: f64) -> IntransitiveWorkload {
    IntransitiveWorkload::new(FAS_HONEST_CLIENTS, messages, cyclic_fraction)
        .with_scale(FAS_SCALE)
        .with_honest_std_dev(2.0)
        .with_spacing(1.0)
}

/// The FAS-stress message stream (deterministic: seed 42).
pub fn fas_stream(workload: &IntransitiveWorkload) -> Vec<Message> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    workload.generate(&mut rng)
}

/// A registry holding the FAS-stress workload's clients (dice + honest).
pub fn fas_registry(workload: &IntransitiveWorkload) -> DistributionRegistry {
    let mut registry = DistributionRegistry::new();
    for (client, dist) in workload.offsets() {
        registry.register(client, dist);
    }
    registry
}

/// A precedence matrix + sequencing core prefilled with `stream` and
/// refreshed (valid maintained order), with the incremental FAS engine on or
/// off — the steady state the `fas_stress` bench measures arrivals against.
pub fn fas_core_state(
    stream: &[Message],
    registry: &DistributionRegistry,
    incremental: bool,
) -> (PrecedenceMatrix, SequencingCore) {
    let config = SequencerConfig::default().with_incremental_fas(incremental);
    let mut matrix = PrecedenceMatrix::empty();
    let mut core = SequencingCore::new(config);
    for m in stream {
        matrix.insert(m.clone(), registry).expect("registered clients");
        core.insert_last(&matrix);
    }
    // Settle any pending recompute so every measured iteration starts from a
    // valid maintained order.
    core.candidate_indices(&matrix, None);
    (matrix, core)
}

/// One Condorcet burst placed after `stream` (ids and timestamps follow on
/// from it) — the cycle-forcing arrival event the `fas_stress` bench replays
/// against a prefilled core. The third message of the trio closes the
/// 3-cycle.
pub fn fas_burst_after(stream: &[Message]) -> [Message; 3] {
    let next_id = stream.iter().map(|m| m.id.0 + 1).max().unwrap_or(0);
    let t = stream
        .iter()
        .map(|m| m.timestamp)
        .fold(0.0f64, f64::max)
        + 10.0 * FAS_SCALE;
    let tie = 1e-3 * FAS_SCALE;
    [0u64, 1, 2].map(|k| {
        Message::new(
            MessageId(next_id + k),
            ClientId(k as u32),
            t + k as f64 * tie,
        )
    })
}

/// Counters of one [`run_fas_stream`] run, alongside its wall-clock cost.
#[derive(Debug, Clone, Copy)]
pub struct FasStreamReport {
    /// Messages left pending (equals the stream length: the silent client
    /// blocks every emission).
    pub pending: usize,
    /// Full tournament/linear-order recomputations (the fallback's cost
    /// driver; zero with the incremental engine).
    pub full_rebuilds: u64,
    /// SCC-scoped local repairs (the incremental engine's cost driver; zero
    /// on the fallback path).
    pub local_repairs: u64,
    /// Exhaustive greedy FAS passes over the run
    /// (`graph::fas::exhaustive_passes` delta).
    pub exhaustive_passes: u64,
}

/// Stream a pre-generated FAS-stress workload through the online sequencer
/// with the incremental FAS engine on or off — the whole-stream measurement
/// behind `BENCH_fas.json`. A watermark-blocked silent client keeps every
/// message pending (like [`run_incremental_stream`]), so the run measures
/// pure arrival-path cost with the pending set growing to the stream length.
pub fn run_fas_stream(
    stream: &[Message],
    workload: &IntransitiveWorkload,
    incremental: bool,
) -> FasStreamReport {
    let exhaustive_before = tommy_core::graph::fas::exhaustive_passes();
    let config = SequencerConfig::default().with_incremental_fas(incremental);
    let mut sequencer = OnlineSequencer::new(config);
    for (client, dist) in workload.offsets() {
        sequencer.register_client(client, dist);
    }
    sequencer.register_client(
        ClientId(SILENT_CLIENT),
        OffsetDistribution::gaussian(0.0, 5.0),
    );
    for m in stream {
        let arrival = m.true_time.unwrap_or(m.timestamp);
        sequencer.submit(m.clone(), arrival).expect("valid submission");
    }
    FasStreamReport {
        pending: sequencer.pending_len(),
        full_rebuilds: sequencer.tournament().full_rebuilds(),
        local_repairs: sequencer.tournament().local_repairs(),
        exhaustive_passes: tommy_core::graph::fas::exhaustive_passes() - exhaustive_before,
    }
}

/// The seed implementation of the online sequencer's candidate-batch
/// computation: from-scratch matrix + tournament + linear order + threshold
/// batching + Appendix C closure rule. Kept verbatim (not routed through
/// [`SequencingCore`]) because it *is* the measured baseline of the
/// `online_incremental` bench.
pub fn scratch_candidate_batch(
    pending: &[Message],
    registry: &DistributionRegistry,
    config: &SequencerConfig,
) -> (Vec<Message>, f64) {
    let matrix = PrecedenceMatrix::compute(pending, registry).expect("registered clients");
    let tournament = Tournament::from_matrix(&matrix);
    let linear = tournament.linear_order(&matrix, config, None);
    let order = FairOrder::from_linear_order(&matrix, &linear, config.threshold);
    let first = order.batches().first().expect("non-empty pending set");
    let mut in_batch: Vec<usize> = first
        .messages
        .iter()
        .map(|id| matrix.index_of(*id).expect("id from matrix"))
        .collect();
    let mut member = vec![false; matrix.len()];
    for &i in &in_batch {
        member[i] = true;
    }
    loop {
        let mut grew = false;
        // Index-based: the loop both reads `member` and (via `in_batch`)
        // extends the membership it is iterating against.
        #[allow(clippy::needless_range_loop)]
        for cand in 0..matrix.len() {
            if member[cand] {
                continue;
            }
            let inseparable = in_batch.iter().any(|&b| {
                let p = matrix.prob(b, cand).max(matrix.prob(cand, b));
                p <= config.threshold
            });
            if inseparable {
                member[cand] = true;
                in_batch.push(cand);
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    in_batch.sort_unstable();
    let batch: Vec<Message> = in_batch.iter().map(|&i| matrix.message(i).clone()).collect();
    let safe_after = batch_emission_time(registry, &batch, config.p_safe);
    (batch, safe_after)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_scenario_is_small_but_nontrivial() {
        let s = bench_scenario();
        assert!(s.clients >= 50);
        assert!(s.messages >= 100);
    }

    #[test]
    fn streams_keep_everything_pending() {
        assert_eq!(run_incremental_stream(25), 25);
        assert_eq!(run_dense_stream(25), 25);
        assert_eq!(run_scratch_stream(25), 25);
    }

    /// The two engines really take the two paths on this workload: the
    /// default stream avoids every dense column and allocates no matrix;
    /// the forced-dense stream does the opposite.
    #[test]
    fn stream_stats_split_by_mode() {
        let sparse = stream_stats(30, FastPathMode::Auto);
        assert_eq!(sparse.dense_columns_avoided, 30, "{sparse:?}");
        assert!(sparse.lazy_evals > 0, "{sparse:?}");
        assert_eq!(sparse.peak_matrix_bytes, 0, "{sparse:?}");
        assert!(sparse.peak_index_bytes > 0, "{sparse:?}");

        let dense = stream_stats(30, FastPathMode::ForceDense);
        assert_eq!(dense.dense_columns_avoided, 0, "{dense:?}");
        assert_eq!(dense.lazy_evals, 0, "{dense:?}");
        assert!(dense.peak_matrix_bytes > 0, "{dense:?}");
        assert_eq!(dense.peak_index_bytes, 0, "{dense:?}");
    }

    #[test]
    fn legacy_column_matches_kernel_insert_bitwise() {
        let registry = stream_registry();
        let pending: Vec<Message> = (0..40).map(stream_message).collect();
        let arrival = stream_message(40);
        let legacy = legacy_column(&pending, &arrival, &registry);

        let mut matrix = PrecedenceMatrix::empty();
        for m in &pending {
            matrix.insert(m.clone(), &registry).unwrap();
        }
        let idx = matrix.insert(arrival.clone(), &registry).unwrap();
        for (j, &p) in legacy.iter().enumerate() {
            assert_eq!(
                matrix.prob(j, idx).to_bits(),
                p.to_bits(),
                "column element {j}"
            );
        }
    }

    /// The FAS-stress harness really exercises both paths: on a cyclic
    /// stream the incremental engine repairs locally (zero full rebuilds)
    /// while the fallback rebuilds wholesale (zero local repairs) — and a
    /// cycle-free stream performs no FAS work on either path.
    #[test]
    fn fas_stream_modes_split_the_counters() {
        let workload = fas_workload(60, 0.3);
        let stream = fas_stream(&workload);
        assert_eq!(stream.len(), 60);

        let incremental = run_fas_stream(&stream, &workload, true);
        assert_eq!(incremental.pending, 60);
        assert_eq!(incremental.full_rebuilds, 0, "{incremental:?}");
        assert!(incremental.local_repairs > 0, "{incremental:?}");
        assert!(incremental.exhaustive_passes > 0, "{incremental:?}");

        let fallback = run_fas_stream(&stream, &workload, false);
        assert_eq!(fallback.pending, 60);
        assert!(fallback.full_rebuilds > 0, "{fallback:?}");
        assert_eq!(fallback.local_repairs, 0, "{fallback:?}");
        assert!(
            fallback.exhaustive_passes >= incremental.exhaustive_passes,
            "the fallback re-runs the exhaustive pass per event: {fallback:?} vs {incremental:?}"
        );

        let honest = fas_workload(40, 0.0);
        let stream = fas_stream(&honest);
        for incremental in [true, false] {
            let report = run_fas_stream(&stream, &honest, incremental);
            assert_eq!(report.full_rebuilds, 0);
            assert_eq!(report.local_repairs, 0);
            assert_eq!(report.exhaustive_passes, 0);
        }
    }

    /// The parallel-merge harness really splits by shard count: K = 1 is
    /// the single-engine anchor (no combiner work, no cross-shard pairs,
    /// same score as the online runner) and K = 4 merges across shards with
    /// every message emitted and real cross-shard pairs scored.
    #[test]
    fn parallel_cells_split_by_shard_count() {
        let anchor = run_parallel_cell(300, 1);
        assert_eq!(anchor.shards_used, 1);
        assert_eq!(anchor.stats.shard_merges, 0, "{:?}", anchor.stats);
        assert_eq!(anchor.stats.cross_shard_evals, 0, "{:?}", anchor.stats);
        assert_eq!(anchor.partitioned.cross.pairs(), 0);
        let single = run_online_stream(&parallel_scenario(300, 1), PARALLEL_P_SAFE);
        assert_eq!(anchor.ras.score(), single.ras.score());

        let merged = run_parallel_cell(300, 4);
        assert_eq!(merged.shards_used, 4);
        assert_eq!(merged.stats.messages_emitted, 300, "{:?}", merged.stats);
        assert!(merged.stats.shard_merges > 0, "{:?}", merged.stats);
        assert!(merged.partitioned.cross.pairs() > 0);
        assert_eq!(merged.partitioned.total().score(), merged.ras.score());
    }

    /// The adversarial sweep harness really exercises the defense: the
    /// honest control raises no alarms (defended or not), a strong misreport
    /// attack gets quarantined, and every cell is deterministic.
    #[test]
    fn adversarial_harness_engages_the_defense() {
        let honest = run_adversarial_stream(AttackFamily::Misreport, 0.0, true);
        assert_eq!(honest.quarantines, 0, "honest control must raise no alarms");
        assert_eq!(honest.reestimations, 0);
        assert_eq!(honest.margin_fallbacks, 0);

        let undefended = run_adversarial_stream(AttackFamily::Misreport, 0.6, false);
        assert_eq!(undefended.quarantines, 0, "defense off must stay silent");

        let defended = run_adversarial_stream(AttackFamily::Misreport, 0.6, true);
        assert!(defended.quarantines >= 1, "{:?}", defended.stats);
        assert!(defended.margin_fallbacks > 0, "{:?}", defended.stats);

        let again = run_adversarial_stream(AttackFamily::Misreport, 0.6, true);
        assert_eq!(defended.ras.score(), again.ras.score(), "cells must be deterministic");
        assert_eq!(defended.stats.fairness_violations, again.stats.fairness_violations);
    }

    #[test]
    fn adversarial_harness_engages_the_collusion_detector() {
        // The honest control runs the correlation checks but never fires them.
        let honest = run_adversarial_stream(AttackFamily::Misreport, 0.0, true);
        assert!(honest.stats.collusion_checks > 0, "{:?}", honest.stats);
        assert_eq!(honest.stats.collusion_quarantines, 0, "{:?}", honest.stats);

        // Pad-coordinated colluders at λ = 0.6 keep honest marginals but are
        // caught — and only — by the cross-client correlation detector.
        let defended = run_adversarial_stream(AttackFamily::CorrelatedCollusion, 0.6, true);
        assert!(defended.stats.collusion_quarantines >= 2, "{:?}", defended.stats);
        assert_eq!(
            defended.quarantines, defended.stats.collusion_quarantines,
            "marginal checks must stay blind to the marginal-preserving forgery"
        );
        assert!(defended.stats.peak_collusion_score > 0.6, "{:?}", defended.stats);

        // At λ = 0.25 the pairwise correlation λ(2 − λ)(1 + λ)/(1 + 2λ² − λ³)
        // ≈ 0.49 sits below the detection threshold: a weak colluder evades,
        // with no false alarms.
        let weak = run_adversarial_stream(AttackFamily::CorrelatedCollusion, 0.25, true);
        assert_eq!(weak.stats.collusion_quarantines, 0, "{:?}", weak.stats);

        let undefended = run_adversarial_stream(AttackFamily::CorrelatedCollusion, 0.6, false);
        assert_eq!(undefended.stats.collusion_checks, 0, "defense off must stay silent");
        assert_eq!(undefended.stats.collusion_quarantines, 0);
    }

    #[test]
    fn run_pipeline_matches_offline_sequencer() {
        use tommy_core::sequencer::offline::TommySequencer;
        let registry = stream_registry();
        let pending: Vec<Message> = (0..30).map(stream_message).collect();
        let config = SequencerConfig::default();
        let matrix = PrecedenceMatrix::compute(&pending, &registry).unwrap();
        let via_core = run_pipeline(&matrix, &config);

        let mut offline = TommySequencer::new(config);
        for c in 0..STREAM_CLIENTS {
            offline.register_client(ClientId(c), OffsetDistribution::gaussian(0.0, 5.0));
        }
        let via_sequencer = offline.sequence_detailed(&pending).unwrap();
        assert_eq!(via_core.order, via_sequencer.order);
        assert_eq!(via_core.transitive, via_sequencer.transitive);
        assert_eq!(via_core.cyclic_components, via_sequencer.cyclic_components);
        assert_eq!(
            via_core.confident_pair_fraction,
            via_sequencer.confident_pair_fraction
        );
    }

    #[test]
    fn scratch_candidate_matches_incremental_engine() {
        // Same pending set → the baseline's candidate batch must be exactly
        // the batch the incremental engine emits first, so the bench really
        // compares two implementations of one algorithm.
        let registry = stream_registry();
        let config = SequencerConfig::default();
        let pending: Vec<Message> = (0..12).map(stream_message).collect();
        let (batch, safe_after) = scratch_candidate_batch(&pending, &registry, &config);
        assert!(!batch.is_empty());
        assert!(safe_after.is_finite());

        let mut sequencer = prefilled_sequencer(12);
        let first = &sequencer.flush()[0];
        let scratch_ids: Vec<_> = batch.iter().map(|m| m.id).collect();
        assert_eq!(first.message_ids(), scratch_ids);
        assert_eq!(first.safe_after, safe_after);
    }
}
