//! Emit `BENCH_fas.json`: whole-stream throughput of the online sequencer
//! on cycle-forcing (Condorcet-burst) workloads, with the incremental FAS
//! engine versus the exhaustive full-recompute fallback, across a
//! cyclic-fraction sweep at 500/2000 pending.
//!
//! Every message stays pending behind a silent client's watermark (as in
//! `online_baseline`), so the numbers are pure arrival-path cost. The two
//! modes emit bit-identical batches (property-tested); the JSON also records
//! the counters that explain the gap: full rebuilds (fallback) versus
//! SCC-scoped local repairs (incremental), and the exhaustive greedy passes
//! each mode paid.
//!
//! Run from the repository root:
//!
//! ```text
//! cargo run --release -p tommy-bench --bin fas_baseline
//! ```

use std::fmt::Write as _;
use std::time::Instant;
use tommy_bench::{fas_stream, fas_workload, run_fas_stream, FasStreamReport};

const SIZES: [usize; 2] = [500, 2000];
const FRACTIONS: [f64; 3] = [0.0, 0.2, 0.5];
const TARGET_SECONDS: f64 = 0.4;

/// Repeat `f` until `TARGET_SECONDS` of wall clock elapse (at least once);
/// return seconds per call alongside the last report.
fn time_per_call<F: FnMut() -> FasStreamReport>(mut f: F) -> (f64, FasStreamReport) {
    f(); // one untimed warm-up call
    let start = Instant::now();
    let mut calls = 0u64;
    let report;
    loop {
        let r = f();
        calls += 1;
        if start.elapsed().as_secs_f64() >= TARGET_SECONDS {
            report = r;
            break;
        }
    }
    (start.elapsed().as_secs_f64() / calls as f64, report)
}

fn main() {
    let mut rows = Vec::new();
    for fraction in FRACTIONS {
        for n in SIZES {
            let workload = fas_workload(n, fraction);
            let stream = fas_stream(&workload);

            eprintln!("measuring incremental FAS stream at n = {n}, cyclic = {fraction} ...");
            let (inc_secs, inc_report) =
                time_per_call(|| run_fas_stream(&stream, &workload, true));
            let inc_rate = n as f64 / inc_secs;

            eprintln!("measuring fallback FAS stream at n = {n}, cyclic = {fraction} ...");
            let (fb_secs, fb_report) =
                time_per_call(|| run_fas_stream(&stream, &workload, false));
            let fb_rate = n as f64 / fb_secs;

            assert_eq!(inc_report.pending, n, "silent client must block emission");
            rows.push((fraction, n, inc_rate, fb_rate, inc_report, fb_report));
        }
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"fas_stress\",\n");
    json.push_str(
        "  \"description\": \"online streaming throughput on Condorcet-burst workloads: \
         incremental FAS engine vs exhaustive full-recompute fallback\",\n",
    );
    json.push_str("  \"unit\": \"messages_per_sec\",\n");
    json.push_str("  \"results\": [\n");
    for (i, (fraction, n, inc, fb, inc_report, fb_report)) in rows.iter().enumerate() {
        let FasStreamReport {
            local_repairs,
            exhaustive_passes: inc_passes,
            ..
        } = inc_report;
        let FasStreamReport {
            full_rebuilds,
            exhaustive_passes: fb_passes,
            ..
        } = fb_report;
        let _ = write!(
            json,
            "    {{\"cyclic_fraction\": {fraction}, \"pending\": {n}, \
             \"incremental_msgs_per_sec\": {inc:.1}, \"fallback_msgs_per_sec\": {fb:.1}, \
             \"speedup\": {:.2}, \"incremental_local_repairs\": {local_repairs}, \
             \"incremental_exhaustive_passes\": {inc_passes}, \
             \"fallback_full_rebuilds\": {full_rebuilds}, \
             \"fallback_exhaustive_passes\": {fb_passes}}}",
            inc / fb
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_fas.json", &json).expect("write BENCH_fas.json");
    println!("{json}");
    eprintln!("wrote BENCH_fas.json");
}
