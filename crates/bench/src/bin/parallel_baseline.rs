//! Emit `BENCH_parallel.json`: end-to-end throughput of the sharded online
//! sequencer at K ∈ {1, 2, 4} shards over the identical 10k-message stream
//! ([`tommy_bench::parallel_scenario`]), with the K = 1 single-engine run as
//! the anchor. Alongside wall clock the sweep records the *fairness* cost of
//! the merge: the normalized RAS of each merged order, its gap vs the K = 1
//! anchor, the cross-shard RAS split, and the combiner counters
//! (`shard_merges`, `cross_shard_evals`, `shard_imbalance`).
//!
//! Run from the repository root:
//!
//! ```text
//! cargo run --release -p tommy-bench --bin parallel_baseline
//! ```
//!
//! Mirroring `offline_baseline`'s convention, a run on a single-core host
//! records an explicit `caveat` field: the speedup column then measures
//! scoped-thread overhead, not parallelism, and only the fairness columns
//! are meaningful until the baseline is regenerated on multi-core hardware.

use std::fmt::Write as _;
use std::time::Instant;
use tommy_bench::{run_parallel_cell, PARALLEL_MESSAGES};
use tommy_sim::runner::ParallelStreamResult;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

struct Row {
    shards: usize,
    result: ParallelStreamResult,
    secs: f64,
}

fn main() {
    let threads_detected = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    eprintln!("hardware parallelism: {threads_detected} core(s) detected");

    let mut rows = Vec::new();
    for shards in SHARD_COUNTS {
        eprintln!("measuring K = {shards} over {PARALLEL_MESSAGES} messages ...");
        // One untimed warm-up at a smaller scale, then time the full run
        // twice and keep the faster pass (the run is deterministic; the
        // spread between passes is allocator/page-cache noise).
        std::hint::black_box(run_parallel_cell(PARALLEL_MESSAGES / 10, shards));
        let mut secs = f64::INFINITY;
        let mut result = None;
        for _ in 0..2 {
            let start = Instant::now();
            let r = run_parallel_cell(PARALLEL_MESSAGES, shards);
            secs = secs.min(start.elapsed().as_secs_f64());
            result = Some(r);
        }
        let result = result.expect("at least one timed pass");
        assert_eq!(
            result.stats.messages_emitted, PARALLEL_MESSAGES,
            "K = {shards} lost messages"
        );
        rows.push(Row {
            shards,
            result,
            secs,
        });
    }

    let anchor_rate = PARALLEL_MESSAGES as f64 / rows[0].secs;
    let anchor_ras = rows[0].result.ras.normalized();

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"parallel_merge\",\n");
    json.push_str(
        "  \"description\": \"sharded online sequencing throughput and fairness vs the \
         single-engine anchor, identical 10k-message stream per shard count\",\n",
    );
    json.push_str("  \"unit\": \"messages_per_second\",\n");
    let _ = writeln!(json, "  \"messages\": {PARALLEL_MESSAGES},");
    let _ = writeln!(json, "  \"threads_detected\": {threads_detected},");
    json.push_str(
        "  \"note\": \"speedup_vs_k1 is wall-clock ratio against the K=1 single-engine \
         anchor and is bounded by the recording host's core count (threads_detected); \
         ras_gap_vs_k1 and cross_ras are hardware-independent — the merge watermark \
         makes them deterministic for a given seed.\",\n",
    );
    if threads_detected == 1 {
        json.push_str(
            "  \"caveat\": \"recorded on a single-core host: msgs_per_sec and \
             speedup_vs_k1 measure scoped-thread overhead, not parallel speedup; \
             regenerate on multi-core hardware for the real scaling numbers. The \
             fairness columns (ras, ras_gap_vs_k1, cross_ras) are meaningful \
             everywhere\",\n",
        );
    }
    json.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let rate = PARALLEL_MESSAGES as f64 / row.secs;
        let stats = &row.result.stats;
        let _ = write!(
            json,
            "    {{\"shards\": {}, \"shards_used\": {}, \"elapsed_ms\": {:.2}, \
             \"msgs_per_sec\": {:.0}, \"speedup_vs_k1\": {:.2}, \"ras\": {:.4}, \
             \"ras_gap_vs_k1\": {:.4}, \"cross_ras\": {:.4}, \"cross_pairs\": {}, \
             \"batches\": {}, \"shard_merges\": {}, \"cross_shard_evals\": {}, \
             \"shard_imbalance\": {}}}",
            row.shards,
            row.result.shards_used,
            row.secs * 1e3,
            rate,
            rate / anchor_rate,
            row.result.ras.normalized(),
            anchor_ras - row.result.ras.normalized(),
            row.result.partitioned.cross.normalized(),
            row.result.partitioned.cross.pairs(),
            row.result.batches,
            stats.shard_merges,
            stats.cross_shard_evals,
            stats.shard_imbalance,
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("{json}");
    eprintln!("wrote BENCH_parallel.json");
}
