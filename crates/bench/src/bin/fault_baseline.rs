//! Emit `BENCH_faults.json`: throughput, RAS and recovery counters of the
//! fault-injected streaming path (sequenced stream frames → wire framing →
//! gap/duplicate/reorder recovery → liveness-enabled online sequencer) as a
//! loss-rate × reordering × recovery-policy sweep.
//!
//! Each row records what the fault actually cost: messages per second,
//! normalized RAS over the delivered subset, how many messages got through,
//! and the session/liveness counters (gaps detected, duplicates dropped,
//! retransmit requests, skips, evictions) that explain the recovery.
//!
//! Run from the repository root:
//!
//! ```text
//! cargo run --release -p tommy-bench --bin fault_baseline
//! ```

use std::fmt::Write as _;
use std::time::Instant;
use tommy_bench::{run_fault_cell, FAULT_MESSAGES};
use tommy_netsim::{FaultFamily, FaultPlan};
use tommy_sim::faults::FaultStreamResult;
use tommy_wire::RecoveryPolicy;

const LOSS_RATES: [f64; 3] = [0.0, 0.05, 0.2];
const TARGET_SECONDS: f64 = 0.4;

/// Repeat `f` until `TARGET_SECONDS` of wall clock elapse (at least once);
/// return seconds per call alongside the last result.
fn time_per_call<F: FnMut() -> FaultStreamResult>(mut f: F) -> (f64, FaultStreamResult) {
    f(); // one untimed warm-up call
    let start = Instant::now();
    let mut calls = 0u64;
    let result;
    loop {
        let r = f();
        calls += 1;
        if start.elapsed().as_secs_f64() >= TARGET_SECONDS {
            result = r;
            break;
        }
    }
    (start.elapsed().as_secs_f64() / calls as f64, result)
}

fn policies() -> Vec<(&'static str, RecoveryPolicy)> {
    vec![
        ("halt", RecoveryPolicy::Halt),
        ("skip", RecoveryPolicy::SkipAfterTimeout { timeout: 10.0 }),
        (
            "retransmit",
            RecoveryPolicy::RequestRetransmit {
                max_retries: 4,
                base_backoff: 2.0,
            },
        ),
    ]
}

fn main() {
    let mut rows = Vec::new();
    for loss in LOSS_RATES {
        for reorder in [false, true] {
            let mut plans = Vec::new();
            if loss > 0.0 {
                plans.push(FaultPlan::new(FaultFamily::Loss, loss));
            }
            if reorder {
                plans.push(FaultPlan::new(FaultFamily::Reorder, 1.0).with_scale(4.0));
            }
            for (policy_name, policy) in policies() {
                eprintln!("measuring loss {loss}, reorder {reorder}, policy {policy_name} ...");
                let (secs, result) = time_per_call(|| run_fault_cell(&plans, policy));
                let rate = FAULT_MESSAGES as f64 / secs;
                rows.push((loss, reorder, policy_name, rate, result));
            }
        }
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"faults\",\n");
    json.push_str(
        "  \"description\": \"throughput, RAS and recovery counters of the fault-injected \
         wire path across loss rate x reordering x recovery policy\",\n",
    );
    json.push_str("  \"unit\": \"messages_per_sec\",\n");
    json.push_str("  \"results\": [\n");
    let n = rows.len();
    for (i, (loss, reorder, policy, rate, result)) in rows.into_iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"loss\": {loss}, \"reorder\": {reorder}, \"policy\": \"{policy}\", \
             \"msgs_per_sec\": {rate:.1}, \"ras_normalized\": {:.6}, \
             \"submitted\": {}, \"emitted\": {}, \"frames_dropped\": {}, \
             \"gaps_detected\": {}, \"dupes_dropped\": {}, \"reorders_buffered\": {}, \
             \"retransmit_requests\": {}, \"sequences_skipped\": {}, \
             \"evictions\": {}, \"watermark_stall_ticks\": {}}}",
            result.ras.normalized(),
            result.submitted,
            result.stats.messages_emitted,
            result.frames_dropped,
            result.stats.gaps_detected,
            result.stats.dupes_dropped,
            result.stats.reorders_buffered,
            result.stats.retransmit_requests,
            result.stats.sequences_skipped,
            result.stats.evictions,
            result.stats.watermark_stall_ticks,
        );
        json.push_str(if i + 1 < n { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_faults.json", &json).expect("write BENCH_faults.json");
    println!("{json}");
    eprintln!("wrote BENCH_faults.json");
}
