//! Emit `BENCH_offline.json`: wall-clock cost of the offline (batch-mode)
//! pairwise matrix build — serial vs the tiled multi-threaded build — plus
//! end-to-end `sequence_detailed` throughput, at several message counts. The
//! workload matches the `sequencer_scaling` bench (Gaussian population,
//! σ = 20, unit gap).
//!
//! Run from the repository root:
//!
//! ```text
//! cargo run --release -p tommy-bench --bin offline_baseline
//! ```
//!
//! The parallel build is bit-identical to the serial one (verified on every
//! size before timing), so `speedup` is purely a wall-clock ratio; it
//! reflects the hardware parallelism of the machine the baseline was
//! recorded on (the `threads` field).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;
use tommy_core::config::{resolve_parallelism, SequencerConfig};
use tommy_core::message::ClientId;
use tommy_core::precedence::PrecedenceMatrix;
use tommy_core::sequencer::offline::TommySequencer;
use tommy_sim::runner::{generate_messages, oracle_registry};
use tommy_sim::scenario::ScenarioConfig;
use tommy_stats::distribution::OffsetDistribution;

const SIZES: [usize; 4] = [200, 500, 1000, 2000];
const TARGET_SECONDS: f64 = 0.4;

/// Repeat `f` until `TARGET_SECONDS` of wall clock elapse (at least once);
/// return seconds per call.
fn time_per_call<F: FnMut()>(mut f: F) -> f64 {
    // One untimed warm-up call.
    f();
    let start = Instant::now();
    let mut calls = 0u64;
    loop {
        f();
        calls += 1;
        if start.elapsed().as_secs_f64() >= TARGET_SECONDS {
            break;
        }
    }
    start.elapsed().as_secs_f64() / calls as f64
}

fn scenario(messages: usize) -> ScenarioConfig {
    ScenarioConfig::default()
        .with_size(messages.min(100), messages)
        .with_clock_std_dev(20.0)
        .with_gap(1.0)
}

fn main() {
    // Detect the hardware directly (not only through `resolve_parallelism`)
    // so the recorded baseline states both what the host *had* and what the
    // tiled build *used* — a single-core container can otherwise masquerade
    // as a meaningless "speedup ≈ 1" datapoint.
    let threads_detected = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let threads_used = resolve_parallelism(0);
    eprintln!(
        "hardware parallelism: {threads_detected} core(s) detected, \
         {threads_used} worker(s) used"
    );

    // Never let a single-core run clobber a baseline recorded on real
    // parallel hardware: a multi-core recording is recognizable by the
    // absence of the single-core `caveat` field (the convention every
    // baseline binary in this crate follows).
    if threads_detected == 1 {
        if let Ok(existing) = std::fs::read_to_string("BENCH_offline.json") {
            if !existing.contains("\"caveat\"") {
                eprintln!(
                    "skip: BENCH_offline.json was recorded on multi-core hardware \
                     (no \"caveat\" field); refusing to overwrite it from a \
                     single-core host — rerun on multi-core hardware to refresh"
                );
                return;
            }
        }
    }

    let mut rows = Vec::new();
    for n in SIZES {
        let cfg = scenario(n);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let messages = generate_messages(&cfg, &mut rng);
        let registry = oracle_registry(&cfg);

        // Sanity: the parallel build must be bit-identical to the serial one.
        let serial_matrix = PrecedenceMatrix::compute(&messages, &registry).unwrap();
        let parallel_matrix =
            PrecedenceMatrix::compute_parallel(&messages, &registry, 0).unwrap();
        for i in 0..n {
            for j in 0..n {
                assert!(
                    serial_matrix.prob(i, j) == parallel_matrix.prob(i, j),
                    "parallel build diverged at ({i},{j})"
                );
            }
        }

        eprintln!("measuring serial matrix build at n = {n} ...");
        let serial_secs = time_per_call(|| {
            std::hint::black_box(PrecedenceMatrix::compute(&messages, &registry).unwrap());
        });
        eprintln!("measuring parallel matrix build at n = {n} ...");
        let parallel_secs = time_per_call(|| {
            std::hint::black_box(
                PrecedenceMatrix::compute_parallel(&messages, &registry, 0).unwrap(),
            );
        });
        // The tiled code path with a fixed worker count, so the tiling
        // overhead is visible even when auto-detection resolves to 1 thread
        // (single-core container): on such hosts this measures pure
        // oversubscription overhead, on multi-core hosts it tracks
        // `parallel_build_ms`.
        eprintln!("measuring tiled (4-worker) matrix build at n = {n} ...");
        let tiled_secs = time_per_call(|| {
            std::hint::black_box(
                PrecedenceMatrix::compute_parallel(&messages, &registry, 4).unwrap(),
            );
        });

        // End-to-end offline sequencing (matrix + tournament + batching),
        // matching the sequencer_scaling bench's pipeline.
        let make_sequencer = |parallelism: usize| {
            let mut seq = TommySequencer::new(
                SequencerConfig::default()
                    .with_threshold(cfg.threshold)
                    .with_parallelism(parallelism),
            );
            for c in 0..cfg.clients as u32 {
                seq.register_client(
                    ClientId(c),
                    OffsetDistribution::gaussian(0.0, cfg.clock_std_dev),
                );
            }
            seq
        };
        eprintln!("measuring serial sequence_detailed at n = {n} ...");
        let mut serial_seq = make_sequencer(1);
        let sequence_serial_secs = time_per_call(|| {
            std::hint::black_box(serial_seq.sequence_detailed(&messages).unwrap());
        });
        eprintln!("measuring parallel sequence_detailed at n = {n} ...");
        let mut parallel_seq = make_sequencer(0);
        let sequence_parallel_secs = time_per_call(|| {
            std::hint::black_box(parallel_seq.sequence_detailed(&messages).unwrap());
        });

        rows.push((
            n,
            serial_secs,
            parallel_secs,
            tiled_secs,
            sequence_serial_secs,
            sequence_parallel_secs,
        ));
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"offline_matrix_build\",\n");
    json.push_str(
        "  \"description\": \"offline pairwise matrix build and end-to-end sequencing, \
         serial vs tiled parallel build\",\n",
    );
    json.push_str("  \"unit\": \"milliseconds\",\n");
    let _ = writeln!(json, "  \"threads_detected\": {threads_detected},");
    let _ = writeln!(json, "  \"threads_used\": {threads_used},");
    json.push_str(
        "  \"note\": \"build_speedup is serial/parallel wall clock and is bounded by the \
         recording host's core count (threads_detected field); the tiled build is \
         bit-identical to serial, so regenerate on multi-core hardware for the real \
         speedup. tiled4_build_ms forces 4 workers to expose the tiling overhead \
         itself.\",\n",
    );
    if threads_detected == 1 {
        json.push_str(
            "  \"caveat\": \"recorded on a single-core host: parallel_build_ms and \
             build_speedup measure thread-pool overhead, not parallel speedup; only the \
             serial columns are meaningful here\",\n",
        );
    }
    json.push_str("  \"results\": [\n");
    for (i, (n, serial, parallel, tiled, seq_serial, seq_parallel)) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"messages\": {n}, \"serial_build_ms\": {:.2}, \"parallel_build_ms\": {:.2}, \
             \"build_speedup\": {:.2}, \"tiled4_build_ms\": {:.2}, \"sequence_serial_ms\": {:.2}, \
             \"sequence_parallel_ms\": {:.2}}}",
            serial * 1e3,
            parallel * 1e3,
            serial / parallel,
            tiled * 1e3,
            seq_serial * 1e3,
            seq_parallel * 1e3,
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_offline.json", &json).expect("write BENCH_offline.json");
    println!("{json}");
    eprintln!("wrote BENCH_offline.json");
}
