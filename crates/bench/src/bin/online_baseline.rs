//! Emit `BENCH_online.json`: messages/sec of the online sequencer's
//! streaming path at several pending-set sizes — the default sparse fast
//! path across the whole sweep, the dense matrix engine and the seed's
//! recompute-from-scratch path where they finish in reasonable time — plus
//! the cost of a cached clock tick and the peak-memory split between the
//! dense matrix and the sparse index.
//!
//! Run from the repository root:
//!
//! ```text
//! cargo run --release -p tommy-bench --bin online_baseline
//! ```

use std::fmt::Write as _;
use std::time::Instant;
use tommy_bench::{
    prefilled_sequencer, run_dense_stream, run_incremental_stream, run_scratch_stream,
    stream_stats,
};
use tommy_core::config::FastPathMode;

const SIZES: [usize; 6] = [50, 200, 500, 2000, 10_000, 100_000];
// The dense engine pays O(n) queries per arrival over an O(n²)-byte matrix:
// at 10k pending the matrix alone is 800 MB, at 100k it would be 80 GB —
// the comparison rows stop at 2000 and the sparse column carries the sweep.
const DENSE_MAX: usize = 2000;
// The scratch (seed) path is O(n³) over the stream; recording it through
// n = 500 keeps the speedup column computable without minutes-long calls.
const SCRATCH_MAX: usize = 500;
const TARGET_SECONDS: f64 = 0.4;

/// Repeat `f` until `TARGET_SECONDS` of wall clock elapse (at least once);
/// return seconds per call.
fn time_per_call<F: FnMut()>(mut f: F) -> f64 {
    // One untimed warm-up call.
    f();
    let start = Instant::now();
    let mut calls = 0u64;
    loop {
        f();
        calls += 1;
        if start.elapsed().as_secs_f64() >= TARGET_SECONDS {
            break;
        }
    }
    start.elapsed().as_secs_f64() / calls as f64
}

struct Row {
    n: usize,
    sparse_rate: f64,
    dense_rate: Option<f64>,
    scratch_rate: Option<f64>,
    tick_ns: f64,
    peak_index_bytes: usize,
    dense_peak_matrix_bytes: Option<usize>,
}

fn main() {
    let mut rows = Vec::new();
    for n in SIZES {
        eprintln!("measuring sparse (default) stream at n = {n} ...");
        let sparse_secs = time_per_call(|| {
            run_incremental_stream(n);
        });
        let sparse_rate = n as f64 / sparse_secs;

        let dense_rate = (n <= DENSE_MAX).then(|| {
            eprintln!("measuring dense stream at n = {n} ...");
            let dense_secs = time_per_call(|| {
                run_dense_stream(n);
            });
            n as f64 / dense_secs
        });

        let scratch_rate = (n <= SCRATCH_MAX).then(|| {
            eprintln!("measuring scratch stream at n = {n} ...");
            let scratch_secs = time_per_call(|| {
                run_scratch_stream(n);
            });
            n as f64 / scratch_secs
        });

        eprintln!("measuring cached tick at n = {n} ...");
        let mut sequencer = prefilled_sequencer(n);
        let now = n as f64 + 1.0;
        // Hot ticks: measure a batch of 1000 per call to keep timer overhead
        // out of the number.
        let tick_ns = time_per_call(|| {
            for _ in 0..1000 {
                std::hint::black_box(sequencer.tick(now).len());
            }
        }) / 1000.0
            * 1e9;

        // Peak-memory split: the sparse run never allocates the matrix
        // (asserted here, not just recorded), the dense run never builds
        // the index.
        let sparse_stats = stream_stats(n, FastPathMode::Auto);
        assert_eq!(
            sparse_stats.peak_matrix_bytes, 0,
            "the fast path must not materialize the dense matrix"
        );
        let dense_peak_matrix_bytes = (n <= DENSE_MAX)
            .then(|| stream_stats(n, FastPathMode::ForceDense).peak_matrix_bytes);

        rows.push(Row {
            n,
            sparse_rate,
            dense_rate,
            scratch_rate,
            tick_ns,
            peak_index_bytes: sparse_stats.peak_index_bytes,
            dense_peak_matrix_bytes,
        });
    }

    let fmt_opt = |v: &Option<f64>| match v {
        Some(rate) => format!("{rate:.1}"),
        None => "null".to_string(),
    };
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"online_incremental\",\n");
    json.push_str(
        "  \"description\": \"online sequencer streaming throughput by pending-set size: \
         sparse fast path (default) vs dense matrix engine vs seed scratch path\",\n",
    );
    json.push_str("  \"unit\": \"messages_per_sec\",\n");
    json.push_str(
        "  \"note\": \"dense rows stop at 2000 pending (the matrix is O(n^2) bytes: 800 MB \
         at 10k, 80 GB at 100k); the sparse index is O(n) and carries the sweep to 100k. \
         peak_index_bytes / dense_peak_matrix_bytes are the engines' peak-memory high-water \
         marks over the run.\",\n",
    );
    json.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let speedup = match row.dense_rate {
            Some(dense) => format!("{:.2}", row.sparse_rate / dense),
            None => "null".to_string(),
        };
        let matrix_bytes = match row.dense_peak_matrix_bytes {
            Some(bytes) => format!("{bytes}"),
            None => "null".to_string(),
        };
        let _ = write!(
            json,
            "    {{\"pending\": {}, \"sparse_msgs_per_sec\": {:.1}, \
             \"dense_msgs_per_sec\": {}, \"scratch_msgs_per_sec\": {}, \
             \"sparse_over_dense\": {speedup}, \"tick_ns\": {:.1}, \
             \"peak_index_bytes\": {}, \"dense_peak_matrix_bytes\": {matrix_bytes}}}",
            row.n,
            row.sparse_rate,
            fmt_opt(&row.dense_rate),
            fmt_opt(&row.scratch_rate),
            row.tick_ns,
            row.peak_index_bytes,
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_online.json", &json).expect("write BENCH_online.json");
    println!("{json}");
    eprintln!("wrote BENCH_online.json");
}
