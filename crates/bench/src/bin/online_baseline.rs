//! Emit `BENCH_online.json`: messages/sec of the online sequencer's
//! streaming path at several pending-set sizes, for the incremental engine
//! and (where it finishes in reasonable time) the seed's
//! recompute-from-scratch path, plus the cost of a cached clock tick.
//!
//! Run from the repository root:
//!
//! ```text
//! cargo run --release -p tommy-bench --bin online_baseline
//! ```

use std::fmt::Write as _;
use std::time::Instant;
use tommy_bench::{prefilled_sequencer, run_incremental_stream, run_scratch_stream};

const SIZES: [usize; 4] = [50, 200, 500, 2000];
// The scratch (seed) path is O(n³) over the stream, so 2000 takes minutes —
// but recording it keeps the speedup column computable across the whole
// sweep.
const SCRATCH_MAX: usize = 2000;
const TARGET_SECONDS: f64 = 0.4;

/// Repeat `f` until `TARGET_SECONDS` of wall clock elapse (at least once);
/// return seconds per call.
fn time_per_call<F: FnMut()>(mut f: F) -> f64 {
    // One untimed warm-up call.
    f();
    let start = Instant::now();
    let mut calls = 0u64;
    loop {
        f();
        calls += 1;
        if start.elapsed().as_secs_f64() >= TARGET_SECONDS {
            break;
        }
    }
    start.elapsed().as_secs_f64() / calls as f64
}

fn main() {
    let mut rows = Vec::new();
    for n in SIZES {
        eprintln!("measuring incremental stream at n = {n} ...");
        let inc_secs = time_per_call(|| {
            run_incremental_stream(n);
        });
        let inc_rate = n as f64 / inc_secs;

        let scratch_rate = if n <= SCRATCH_MAX {
            eprintln!("measuring scratch stream at n = {n} ...");
            let scratch_secs = time_per_call(|| {
                run_scratch_stream(n);
            });
            Some(n as f64 / scratch_secs)
        } else {
            None
        };

        eprintln!("measuring cached tick at n = {n} ...");
        let mut sequencer = prefilled_sequencer(n);
        let now = n as f64 + 1.0;
        // Hot ticks: measure a batch of 1000 per call to keep timer overhead
        // out of the number.
        let tick_ns = time_per_call(|| {
            for _ in 0..1000 {
                std::hint::black_box(sequencer.tick(now).len());
            }
        }) / 1000.0
            * 1e9;

        rows.push((n, inc_rate, scratch_rate, tick_ns));
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"online_incremental\",\n");
    json.push_str("  \"description\": \"online sequencer streaming throughput by pending-set size\",\n");
    json.push_str("  \"unit\": \"messages_per_sec\",\n");
    json.push_str("  \"results\": [\n");
    for (i, (n, inc, scratch, tick_ns)) in rows.iter().enumerate() {
        let scratch_str = match scratch {
            Some(rate) => format!("{rate:.1}"),
            None => "null".to_string(),
        };
        let speedup = match scratch {
            Some(rate) => format!("{:.2}", inc / rate),
            None => "null".to_string(),
        };
        let _ = write!(
            json,
            "    {{\"pending\": {n}, \"incremental_msgs_per_sec\": {inc:.1}, \
             \"scratch_msgs_per_sec\": {scratch_str}, \"speedup\": {speedup}, \
             \"tick_ns\": {tick_ns:.1}}}"
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_online.json", &json).expect("write BENCH_online.json");
    println!("{json}");
    eprintln!("wrote BENCH_online.json");
}
