//! Emit `BENCH_adversarial.json`: RAS and throughput of the online
//! sequencer under each adversarial attack family (misreported
//! distributions, mid-stream clock drift, timestamp collusion, correlated
//! shared-signal collusion), defended versus undefended, at two attack
//! intensities plus the honest control.
//!
//! Each row also records the defense counters that explain the recovery:
//! quarantines, drift-triggered re-estimations, messages sequenced under
//! quarantine fallback margins, and the cross-client correlation counters
//! (checks run, collusion quarantines, peak pair score) — alongside the
//! fairness violations the attack actually caused, and a `detected` flag
//! (did the defense take any action at all).
//!
//! Run from the repository root:
//!
//! ```text
//! cargo run --release -p tommy-bench --bin adversarial_baseline
//! ```

use std::fmt::Write as _;
use std::time::Instant;
use tommy_bench::run_adversarial_stream;
use tommy_sim::runner::OnlineStreamResult;
use tommy_workload::AttackFamily;

const INTENSITIES: [f64; 2] = [0.25, 0.6];
const MESSAGES: usize = 240;
const TARGET_SECONDS: f64 = 0.4;

/// Repeat `f` until `TARGET_SECONDS` of wall clock elapse (at least once);
/// return seconds per call alongside the last result.
fn time_per_call<F: FnMut() -> OnlineStreamResult>(mut f: F) -> (f64, OnlineStreamResult) {
    f(); // one untimed warm-up call
    let start = Instant::now();
    let mut calls = 0u64;
    let result;
    loop {
        let r = f();
        calls += 1;
        if start.elapsed().as_secs_f64() >= TARGET_SECONDS {
            result = r;
            break;
        }
    }
    (start.elapsed().as_secs_f64() / calls as f64, result)
}

fn main() {
    // (family label, family, intensity); the honest control rides along as a
    // zero-intensity misreport row so both defended and undefended baselines
    // land in the same table.
    let mut cells: Vec<(&'static str, AttackFamily, f64)> =
        vec![("honest", AttackFamily::Misreport, 0.0)];
    for family in AttackFamily::ALL {
        for intensity in INTENSITIES {
            cells.push((family.name(), family, intensity));
        }
    }

    let mut rows = Vec::new();
    for (label, family, intensity) in cells {
        for defended in [false, true] {
            eprintln!(
                "measuring {label} @ intensity {intensity}, defended = {defended} ..."
            );
            let (secs, result) = time_per_call(|| run_adversarial_stream(family, intensity, defended));
            let rate = MESSAGES as f64 / secs;
            rows.push((label, intensity, defended, rate, result));
        }
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"adversarial\",\n");
    json.push_str(
        "  \"description\": \"online RAS and throughput under each attack family, \
         defended vs undefended, across attack intensities\",\n",
    );
    json.push_str("  \"unit\": \"messages_per_sec\",\n");
    json.push_str("  \"results\": [\n");
    let n = rows.len();
    for (i, (label, intensity, defended, rate, result)) in rows.into_iter().enumerate() {
        let detected =
            result.quarantines > 0 || result.reestimations > 0 || result.margin_fallbacks > 0;
        let _ = write!(
            json,
            "    {{\"family\": \"{label}\", \"intensity\": {intensity}, \
             \"defended\": {defended}, \"ras_normalized\": {:.6}, \
             \"msgs_per_sec\": {rate:.1}, \"fairness_violations\": {}, \
             \"quarantines\": {}, \"reestimations\": {}, \
             \"margin_fallbacks\": {}, \"collusion_checks\": {}, \
             \"collusion_quarantines\": {}, \"peak_collusion_score\": {:.4}, \
             \"detected\": {detected}}}",
            result.ras.normalized(),
            result.stats.fairness_violations,
            result.quarantines,
            result.reestimations,
            result.margin_fallbacks,
            result.stats.collusion_checks,
            result.stats.collusion_quarantines,
            result.stats.peak_collusion_score,
        );
        json.push_str(if i + 1 < n { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_adversarial.json", &json).expect("write BENCH_adversarial.json");
    println!("{json}");
    eprintln!("wrote BENCH_adversarial.json");
}
