//! Table and CSV output helpers for the experiment binaries.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given header.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} does not match header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (comma-separated, no quoting — cells never contain
    /// commas in this workspace).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with a fixed number of decimals (helper for experiment
/// binaries).
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(&["sigma", "ras"]);
        t.row(&[fmt(5.0, 1), fmt(0.93, 3)]);
        t.row(&[fmt(100.0, 1), fmt(-0.25, 3)]);
        let rendered = t.render();
        assert!(rendered.contains("sigma"));
        assert!(rendered.contains("100.0"));
        assert!(rendered.contains("-0.250"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1".into()]);
    }
}
