//! Ablation A6: learned vs oracle clock-offset distributions as a function of
//! the synchronization-probe budget.

use tommy_sim::experiments::learning;
use tommy_sim::output::{fmt, Table};

fn main() {
    let rows = learning::run(50, 150, 2.0, 15.0, &learning::default_probe_counts(), 23);
    let mut table = Table::new(&["probes", "learned_ras_norm", "oracle_ras_norm", "gap"]);
    for row in &rows {
        table.row(&[
            row.probes.to_string(),
            fmt(row.learned.normalized(), 4),
            fmt(row.oracle.normalized(), 4),
            fmt(row.oracle.normalized() - row.learned.normalized(), 4),
        ]);
    }
    println!("{}", table.render());
}
