//! Regenerate Figure 5: RAS of Tommy vs TrueTime vs clock standard deviation,
//! for several inter-message gaps.
//!
//! Usage: `cargo run -p tommy-sim --release --bin fig5 [clients] [messages]`
//! (defaults: 500 clients, 500 messages — the paper's population size).

use tommy_sim::experiments::fig5;
use tommy_sim::output::{fmt, Table};
use tommy_sim::scenario::ScenarioConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let clients: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(500);
    let messages: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(500);

    let base = ScenarioConfig::default().with_size(clients, messages).with_seed(42);
    let (sigmas, gaps) = fig5::default_sweep();
    eprintln!(
        "figure 5 sweep: {clients} clients, {messages} messages, seed {}, threshold {}",
        base.seed, base.threshold
    );

    let rows = fig5::run(&base, &sigmas, &gaps);
    let mut table = Table::new(&[
        "gap",
        "clock_std_dev",
        "tommy_ras",
        "truetime_ras",
        "tommy_norm",
        "truetime_norm",
    ]);
    for row in &rows {
        table.row(&[
            fmt(row.inter_message_gap, 1),
            fmt(row.clock_std_dev, 1),
            row.tommy_ras.to_string(),
            row.truetime_ras.to_string(),
            fmt(row.tommy_normalized, 4),
            fmt(row.truetime_normalized, 4),
        ]);
    }
    println!("{}", table.render());
    println!("# CSV\n{}", table.to_csv());
}
