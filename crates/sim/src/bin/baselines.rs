//! Ablation A4: FIFO vs WFO vs TrueTime vs Tommy across network jitter
//! levels (the Figure 2–4 deployment spectrum).

use tommy_sim::experiments::baselines;
use tommy_sim::output::{fmt, Table};

fn main() {
    let clock_std_dev = 20.0;
    let rows = baselines::run(100, 300, 1.0, clock_std_dev, &baselines::default_jitters(), 17);
    eprintln!("baseline spectrum: clock sigma = {clock_std_dev}");
    let mut table = Table::new(&["jitter", "fifo", "wfo", "truetime", "tommy"]);
    for row in &rows {
        table.row(&[
            fmt(row.network_jitter, 1),
            fmt(row.fifo.normalized(), 4),
            fmt(row.wfo.normalized(), 4),
            fmt(row.truetime.normalized(), 4),
            fmt(row.tommy.normalized(), 4),
        ]);
    }
    println!("{}", table.render());
}
