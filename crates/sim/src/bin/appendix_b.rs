//! Reproduce the Appendix B worked example: the four-message probability
//! matrix, the extracted order A ≺ B ≺ C ≺ D, and the batching
//! {A} ≺ {B, C} ≺ {D} at threshold 0.75 (plus the 0.6 / 0.9 variants the
//! appendix discusses).

use tommy_sim::experiments::appendix_b;

fn main() {
    println!("Appendix B pairwise preceding probabilities (rows precede columns):");
    print!("      ");
    for label in appendix_b::LABELS {
        print!("{label:>7}");
    }
    println!();
    for (i, row) in appendix_b::APPENDIX_B_MATRIX.iter().enumerate() {
        print!("  {} ", appendix_b::LABELS[i]);
        for (j, p) in row.iter().enumerate() {
            if i == j {
                print!("{:>7}", "-");
            } else {
                print!("{p:>7.2}");
            }
        }
        println!();
    }
    println!();

    for threshold in [0.6, 0.75, 0.9] {
        let result = appendix_b::run(threshold);
        let labels = appendix_b::batches_as_labels(&result);
        println!(
            "threshold {threshold:>4}: transitive={} batches={}",
            result.transitive,
            labels
                .iter()
                .map(|b| format!("{{{b}}}"))
                .collect::<Vec<_>>()
                .join(" < ")
        );
    }
}
