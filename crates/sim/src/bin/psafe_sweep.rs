//! Ablation A2: sweep `p_safe` on the online sequencer and report the
//! emission-latency / fairness trade-off.

use tommy_sim::experiments::psafe_sweep::{self, OnlineSetup};
use tommy_sim::output::{fmt, Table};
use tommy_sim::scenario::ScenarioConfig;

fn main() {
    let base = ScenarioConfig::default()
        .with_size(50, 200)
        .with_clock_std_dev(5.0)
        .with_gap(2.0);
    eprintln!(
        "p_safe sweep: {} clients, {} messages, sigma {}",
        base.clients, base.messages, base.clock_std_dev
    );
    let rows = psafe_sweep::run(&base, &OnlineSetup::default(), &psafe_sweep::default_p_safes());
    let mut table = Table::new(&[
        "p_safe",
        "mean_emission_latency",
        "fairness_violations",
        "ras_norm",
        "emitted_before_flush",
    ]);
    for row in &rows {
        table.row(&[
            fmt(row.p_safe, 4),
            fmt(row.mean_emission_latency, 3),
            row.fairness_violations.to_string(),
            fmt(row.ras.normalized(), 4),
            row.emitted_before_flush.to_string(),
        ]);
    }
    println!("{}", table.render());
}
