//! Ablation A1: sweep the batching threshold and report batch resolution,
//! coverage, accuracy and RAS.

use tommy_sim::experiments::threshold_sweep;
use tommy_sim::output::{fmt, Table};
use tommy_sim::scenario::ScenarioConfig;

fn main() {
    let base = ScenarioConfig::default()
        .with_size(200, 400)
        .with_clock_std_dev(20.0)
        .with_gap(1.0);
    eprintln!(
        "threshold sweep: {} clients, {} messages, sigma {}, gap {}",
        base.clients, base.messages, base.clock_std_dev, base.inter_message_gap
    );
    let rows = threshold_sweep::run(&base, &threshold_sweep::default_thresholds());
    let mut table = Table::new(&[
        "threshold",
        "batches",
        "ras_norm",
        "accuracy",
        "coverage",
        "resolution",
    ]);
    for row in &rows {
        table.row(&[
            fmt(row.threshold, 2),
            row.batches.to_string(),
            fmt(row.ras_normalized, 4),
            fmt(row.accuracy, 4),
            fmt(row.coverage, 4),
            fmt(row.resolution, 4),
        ]);
    }
    println!("{}", table.render());
}
