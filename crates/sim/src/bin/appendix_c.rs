//! Reproduce the Appendix C online-sequencing worked example: a
//! high-uncertainty message from one client forces two otherwise orderable
//! messages from another client into the same batch, and the batch is only
//! emitted after its safe-emission time.

use tommy_sim::experiments::appendix_c;

fn main() {
    for p_safe in [0.9, 0.99, 0.999] {
        let result = appendix_c::run(p_safe);
        println!("p_safe = {p_safe}");
        println!("  safe emission time T_b = {:.3}", result.safe_after);
        for batch in &result.emitted {
            let members: Vec<String> = batch
                .messages
                .iter()
                .map(|m| format!("{} (T={})", m.id, m.timestamp))
                .collect();
            println!(
                "  batch rank {} emitted at {:.3}: [{}]",
                batch.rank,
                batch.emitted_at,
                members.join(", ")
            );
        }
        println!(
            "  emitted batches = {}, messages = {}, fairness violations = {}",
            result.stats.batches_emitted,
            result.stats.messages_emitted,
            result.stats.fairness_violations
        );
        println!();
    }
}
