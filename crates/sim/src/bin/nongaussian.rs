//! Ablation A3: non-Gaussian clock-offset families — exact (convolution)
//! path versus a per-client Gaussian approximation, plus intransitivity
//! counts.

use tommy_sim::experiments::nongaussian;
use tommy_sim::output::{fmt, Table};

fn main() {
    let rows = nongaussian::run(60, 150, 2.0, 21, &nongaussian::default_families());
    let mut table = Table::new(&[
        "family",
        "exact_ras_norm",
        "approx_ras_norm",
        "exact_raw",
        "approx_raw",
        "cyclic_components",
    ]);
    for row in &rows {
        table.row(&[
            row.family.clone(),
            fmt(row.exact.normalized(), 4),
            fmt(row.gaussian_approx.normalized(), 4),
            row.exact.score().to_string(),
            row.gaussian_approx.score().to_string(),
            row.cyclic_components.to_string(),
        ]);
    }
    println!("{}", table.render());
}
