//! # tommy-sim
//!
//! The experiment harness of the Tommy reproduction. It composes the
//! substrate crates (workload generation, clock models, the network
//! simulator) with the sequencers in `tommy-core` and the metrics in
//! `tommy-metrics` to regenerate every quantitative result of the paper:
//!
//! * **Figure 5** — RAS of Tommy vs the TrueTime baseline as a function of
//!   the clock standard deviation and the inter-message gap
//!   ([`experiments::fig5`]).
//! * **Appendix B** — the four-message worked example
//!   ([`experiments::appendix_b`]).
//! * **Appendix C** — the online-sequencing worked example
//!   ([`experiments::appendix_c`]).
//! * **Ablations A1–A6** of DESIGN.md — threshold sweep, `p_safe` sweep,
//!   non-Gaussian offsets, baseline spectrum, scalability and
//!   distribution-learning experiments.
//!
//! Every experiment is exposed both as a library function returning typed
//! rows (so integration tests and criterion benches can call it) and as a
//! binary under `src/bin/` that prints the rows as a table/CSV.
//!
//! [`faults`] adds the fault-injected streaming runner: the same scenarios
//! driven through the full wire path (sequenced stream frames, framing and
//! CRC, gap/duplicate/reorder recovery) over a deterministic lossy network,
//! with a liveness-enabled sequencer evicting wedged clients.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod faults;
pub mod output;
pub mod runner;
pub mod scenario;

pub use faults::{run_fault_stream, FaultStreamResult, FAULT_STALENESS_DEADLINE};
pub use runner::{
    run_offline_comparison, run_online_stream, run_parallel_stream, ComparisonResult,
    OnlineStreamResult, ParallelStreamResult,
};
pub use scenario::ScenarioConfig;
