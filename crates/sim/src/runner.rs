//! End-to-end offline comparison runner (the §4 evaluation loop).
//!
//! One run follows the paper's evaluation exactly: seed every client with a
//! Gaussian clock-offset distribution, generate ground-truth events with a
//! controlled inter-message gap, tag each with `T = t + ε`, hand the full
//! message set to each sequencer (Tommy, TrueTime, WFO), and score every
//! output against the omniscient observer with the Rank Agreement Score.

use crate::scenario::ScenarioConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tommy_core::baselines::{TrueTimeSequencer, WfoSequencer};
use tommy_core::config::SequencerConfig;
use tommy_core::message::{ClientId, Message};
use tommy_core::registry::DistributionRegistry;
use tommy_core::sequencer::offline::TommySequencer;
use tommy_metrics::batchstats::BatchStats;
use tommy_metrics::ras::{rank_agreement_score, RasScore};
use tommy_stats::distribution::OffsetDistribution;
use tommy_workload::population::ClockPopulation;
use tommy_workload::tagging::tag_messages;
use tommy_workload::uniform::UniformWorkload;

/// The scored output of one scenario for all compared sequencers.
#[derive(Debug, Clone, Copy)]
pub struct ComparisonResult {
    /// RAS of the Tommy offline sequencer.
    pub tommy: RasScore,
    /// RAS of the TrueTime-style baseline.
    pub truetime: RasScore,
    /// RAS of the WaitsForOne baseline (timestamp sort).
    pub wfo: RasScore,
    /// Batch statistics of Tommy's output.
    pub tommy_batches: BatchStats,
    /// Batch statistics of TrueTime's output.
    pub truetime_batches: BatchStats,
    /// Whether Tommy's tournament was transitive (expected `true` for
    /// Gaussian offsets, Appendix A).
    pub transitive: bool,
}

/// Generate the messages of a scenario (shared by the offline comparison and
/// the online experiments).
///
/// Inter-message gaps are exponentially distributed with mean
/// `inter_message_gap` (a Poisson-like auction burst), so adjacent gaps span
/// a range of values instead of being all identical — the same spread the
/// paper's workload exhibits and what gives Figure 5 its smooth shape.
pub fn generate_messages(config: &ScenarioConfig, rng: &mut StdRng) -> Vec<Message> {
    let population = ClockPopulation::gaussian(config.clock_std_dev);
    let clocks = population.build(config.clients, rng);
    let events = if config.inter_message_gap > 0.0 {
        let gap_dist =
            OffsetDistribution::shifted_exponential(0.0, 1.0 / config.inter_message_gap);
        let mut t = 0.0;
        (0..config.messages)
            .map(|_| {
                use tommy_stats::distribution::Distribution as _;
                t += gap_dist.sample(rng);
                let client = ClientId(rand::Rng::random_range(rng, 0..config.clients as u32));
                tommy_workload::events::GenerationEvent::new(client, t)
            })
            .collect()
    } else {
        let workload =
            UniformWorkload::new(config.clients, config.messages, config.inter_message_gap)
                .with_shuffled_clients();
        workload.generate(rng)
    };
    tag_messages(&events, &clocks, 0, rng)
}

/// Build a registry seeded with the oracle distributions of a homogeneous
/// Gaussian population (the §4 setting: "we seed the clients with clock
/// offsets distributions, instead of clients learning such distributions").
pub fn oracle_registry(config: &ScenarioConfig) -> DistributionRegistry {
    let mut registry = DistributionRegistry::new();
    for c in 0..config.clients as u32 {
        registry.register(
            ClientId(c),
            OffsetDistribution::gaussian(0.0, config.clock_std_dev),
        );
    }
    registry
}

/// Run one offline comparison scenario.
pub fn run_offline_comparison(config: &ScenarioConfig) -> ComparisonResult {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let messages = generate_messages(config, &mut rng);

    // Tommy.
    let seq_config = SequencerConfig::default().with_threshold(config.threshold);
    let mut tommy = TommySequencer::new(seq_config);
    for c in 0..config.clients as u32 {
        tommy.register_client(
            ClientId(c),
            OffsetDistribution::gaussian(0.0, config.clock_std_dev),
        );
    }
    let outcome = tommy
        .sequence_detailed(&messages)
        .expect("all clients registered");

    // TrueTime baseline.
    let registry = oracle_registry(config);
    let truetime_order = TrueTimeSequencer::new(&registry)
        .sequence(&messages)
        .expect("all clients registered");

    // WFO baseline (assumes negligible clock error; here it just sorts by
    // the noisy timestamps).
    let clients: Vec<ClientId> = (0..config.clients as u32).map(ClientId).collect();
    let wfo_order =
        WfoSequencer::sequence_offline(&clients, &messages).expect("all clients registered");

    ComparisonResult {
        tommy: rank_agreement_score(&outcome.order, &messages),
        truetime: rank_agreement_score(&truetime_order, &messages),
        wfo: rank_agreement_score(&wfo_order, &messages),
        tommy_batches: BatchStats::from_order(&outcome.order),
        truetime_batches: BatchStats::from_order(&truetime_order),
        transitive: outcome.transitive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(sigma: f64, gap: f64) -> ScenarioConfig {
        ScenarioConfig::default()
            .with_size(40, 80)
            .with_clock_std_dev(sigma)
            .with_gap(gap)
            .with_seed(7)
    }

    #[test]
    fn perfect_clocks_give_perfect_scores() {
        let result = run_offline_comparison(&small(0.0, 1.0));
        assert!(result.tommy.normalized() > 0.99, "{:?}", result.tommy);
        assert!(result.truetime.normalized() > 0.99);
        assert!(result.wfo.normalized() > 0.99);
        assert!(result.transitive);
    }

    #[test]
    fn tommy_beats_truetime_under_large_clock_error() {
        // Figure 5's headline: when the clock error is large relative to the
        // inter-message gap, TrueTime collapses to indifference (score ~0)
        // while Tommy still orders many pairs correctly.
        let result = run_offline_comparison(&small(50.0, 1.0));
        assert!(
            result.tommy.score() > result.truetime.score(),
            "tommy {:?} vs truetime {:?}",
            result.tommy,
            result.truetime
        );
        assert!(result.truetime.normalized() >= 0.0);
        assert!(result.tommy_batches.batches >= result.truetime_batches.batches);
    }

    #[test]
    fn truetime_never_scores_negative() {
        for sigma in [5.0, 20.0, 80.0] {
            let result = run_offline_comparison(&small(sigma, 0.5));
            assert!(result.truetime.score() >= 0, "sigma {sigma}: {:?}", result.truetime);
        }
    }

    #[test]
    fn gaussian_population_is_always_transitive() {
        for seed in 0..5 {
            let cfg = small(30.0, 1.0).with_seed(seed);
            assert!(run_offline_comparison(&cfg).transitive);
        }
    }

    #[test]
    fn results_are_deterministic_per_seed() {
        let a = run_offline_comparison(&small(25.0, 1.0));
        let b = run_offline_comparison(&small(25.0, 1.0));
        assert_eq!(a.tommy.score(), b.tommy.score());
        assert_eq!(a.truetime.score(), b.truetime.score());
        assert_eq!(a.wfo.score(), b.wfo.score());
    }

    #[test]
    fn wider_gap_improves_everyone() {
        let tight = run_offline_comparison(&small(20.0, 0.5));
        let wide = run_offline_comparison(&small(20.0, 50.0));
        assert!(wide.tommy.normalized() > tight.tommy.normalized());
        assert!(wide.truetime.normalized() >= tight.truetime.normalized());
    }
}
